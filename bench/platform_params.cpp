// Reproduces Section 5.1: platform-parameter measurements.
//
//   d0,LUT    (transition counting)            paper: 480 ps
//   t_step    (taps per half-period in a chain) paper: ~17 ps
//   sigma_LUT (differential dual-RO, 1000 reps) paper: ~2 ps
//
// Also demonstrates the paper's measurement-window warning: repeating the
// jitter measurement with a ~1 us window lets flicker dominate and
// overestimates sigma.
#include <cstdio>

#include "bench_util.hpp"
#include "model/platform_measurement.hpp"

int main() {
  using namespace trng;
  bench::print_header("Section 5.1: platform parameter measurements");

  std::printf("%-6s %-12s %-12s %-12s\n", "die", "d0,LUT [ps]", "t_step [ps]",
              "sigma [ps]");
  bench::print_rule(48);
  for (std::uint64_t die = 1; die <= 5; ++die) {
    fpga::Fabric fabric(fpga::DeviceGeometry{}, 40 + die);
    model::PlatformMeasurement pm(fabric, 7 * die);
    std::printf("%-6llu %-12.1f %-12.2f %-12.2f\n",
                static_cast<unsigned long long>(die), pm.measure_lut_delay(),
                pm.measure_t_step(), pm.measure_jitter_sigma());
  }
  bench::print_rule(48);
  std::printf("paper:  %-12s %-12s %-12s\n\n", "480", "~17", "~2");

  // The measurement-window warning.
  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  model::PlatformMeasurement pm(fabric, 7);
  std::printf("jitter vs measurement window (paper: keep it << 1 us,\n"
              "otherwise low-frequency noise dominates):\n");
  for (double t_acc : {20.0e3, 100.0e3, 500.0e3, 1.0e6}) {
    std::printf("  window %7.2f us -> sigma_est = %.2f ps\n", t_acc / 1.0e6,
                pm.measure_jitter_sigma(400, t_acc));
  }
  return 0;
}
