// Reproduces Table 1: "Evaluation of different design versions."
//
// Paper columns: k, tA, H_RAW (from the model), n_NIST (minimal XOR
// compression rate to pass all NIST tests, measured), H_NEW (model, after
// compression), throughput after compression.
//
// This bench regenerates every row by (a) evaluating the stochastic model
// exactly as the paper does and (b) driving the full simulated TRNG through
// the SP 800-22 battery to find n_NIST empirically. An extra column reports
// the empirically estimated raw entropy of the simulated hardware.
//
// Paper reference rows (Spartan-6, f_clk = 100 MHz):
//   k=1 tA=10ns:  H_RAW 0.99  n_NIST 7    H_NEW 0.999  14.3  Mb/s
//   k=1 tA=20ns:  H_RAW 0.999 n_NIST 7    H_NEW 0.999   7.14 Mb/s
//   k=4 tA=10ns:  H_RAW 0.03  n_NIST >16  H_NEW NA       NA
//   k=4 tA=50ns:  H_RAW 0.7   n_NIST 13   H_NEW 0.999   1.53 Mb/s
//   k=4 tA=100ns: H_RAW 0.94  n_NIST 10   H_NEW 0.999   1    Mb/s
//   k=4 tA=200ns: H_RAW 0.99  n_NIST 6    H_NEW 0.999   0.83 Mb/s
//
// Size knobs: TRNG_BENCH_BITS (battery sequence length per np candidate,
// default 60000), TRNG_BENCH_MAXNP (search cap, default 16).
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "core/trng.hpp"
#include "model/design_space.hpp"
#include "model/stochastic_model.hpp"
#include "stattests/battery.hpp"
#include "stattests/estimators.hpp"

namespace {

using namespace trng;

struct Row {
  int k;
  Cycles na;
  const char* paper_h_raw;
  const char* paper_n_nist;
  const char* paper_tp;
};

constexpr Row kRows[] = {
    {1, 1, "0.99", "7", "14.3"},   {1, 2, "0.999", "7", "7.14"},
    {4, 1, "0.03", ">16", "NA"},   {4, 5, "0.7", "13", "1.53"},
    {4, 10, "0.94", "10", "1"},    {4, 20, "0.99", "6", "0.83"},
};

}  // namespace

int main() {
  const std::size_t test_bits = bench::env_size("TRNG_BENCH_BITS", 60000);
  const auto max_np =
      static_cast<unsigned>(bench::env_size("TRNG_BENCH_MAXNP", 16));

  bench::print_header("Table 1: evaluation of different design versions");
  std::printf("battery length per np candidate: %zu bits (TRNG_BENCH_BITS)\n\n",
              test_bits);

  core::PlatformParams platform;  // the paper's measured values
  model::StochasticModel model(platform);
  model::DesignSpaceExplorer explorer(model);

  fpga::Fabric fabric(fpga::DeviceGeometry{}, /*die_seed=*/42);
  stat::TestBattery battery;

  std::printf(
      "%-3s %-7s | %-7s %-7s %-6s %-7s | %-7s %-7s %-6s %-7s %-9s\n", "k",
      "tA[ns]", "HRAWp", "nNISTp", "HNEWp", "TPp", "HRAWm", "nNIST", "HNEW",
      "TP[Mb/s]", "Hraw(sim)");
  bench::print_rule(96);

  for (const Row& row : kRows) {
    const double t_a = static_cast<double>(row.na) * 10000.0;
    const double h_raw_model = model.entropy_lower_bound(t_a, row.k);

    // Model-guided n_NIST search window: start slightly below the model's
    // own minimal np for H >= 0.997 (the paper's H_NEW = 0.999 target
    // with our sigma, see EXPERIMENTS.md).
    std::optional<unsigned> model_np;
    try {
      model_np = explorer.min_np(row.k, row.na, 0.997, max_np);
    } catch (const std::runtime_error&) {
      model_np = std::nullopt;  // hopeless row ("> max_np")
    }

    core::DesignParams params;
    params.k = row.k;
    params.accumulation_cycles = row.na;
    core::CarryChainTrng trng(fabric, params, 1000 + row.na);

    // Empirical raw-entropy estimate from a dedicated sample.
    const auto raw_sample = trng.generate_raw(trng::common::Bits{std::min<std::size_t>(test_bits, 60000)});
    const double h_raw_sim =
        stat::shannon_entropy_estimate(raw_sample, 4);

    std::optional<unsigned> n_nist;
    double h_new_model = 0.0;
    if (model_np.has_value()) {
      auto source = [&trng](std::size_t count) {
        return trng.generate_raw(trng::common::Bits{count});
      };
      // Search around the model prediction (the paper's Step 2 -> Step 4
      // flow: the model narrows the design space, statistics confirm).
      const unsigned start = *model_np > 2 ? *model_np - 2 : 1;
      for (unsigned np = start; np <= max_np && !n_nist; ++np) {
        const auto raw = source(test_bits * np);
        if (battery.run(raw.xor_fold(np)).all_passed()) n_nist = np;
      }
      if (n_nist) {
        h_new_model =
            model.entropy_after_postprocessing(t_a, row.k, *n_nist);
      }
    }

    char n_nist_str[16];
    char h_new_str[16];
    char tp_str[16];
    if (n_nist.has_value()) {
      std::snprintf(n_nist_str, sizeof n_nist_str, "%u", *n_nist);
      std::snprintf(h_new_str, sizeof h_new_str, "%.4f", h_new_model);
      std::snprintf(tp_str, sizeof tp_str, "%.2f",
                    model.throughput_bps(row.na, *n_nist) / 1.0e6);
    } else {
      std::snprintf(n_nist_str, sizeof n_nist_str, ">%u", max_np);
      std::snprintf(h_new_str, sizeof h_new_str, "NA");
      std::snprintf(tp_str, sizeof tp_str, "NA");
    }

    std::printf(
        "%-3d %-7" PRIu64 " | %-7s %-7s %-6s %-7s | %-7.4f %-7s %-6s %-8s %-9.4f\n",
        row.k, row.na * 10, row.paper_h_raw, row.paper_n_nist, "0.999",
        row.paper_tp, h_raw_model, n_nist_str, h_new_str, tp_str, h_raw_sim);
  }

  bench::print_rule(96);
  std::printf(
      "columns: *p = paper-reported, *m = our model (sigma_LUT = 2 ps as\n"
      "measured; the paper's H_RAW values correspond to an effective sigma\n"
      "~2.8 ps — see EXPERIMENTS.md), nNIST/TP = measured on the simulated\n"
      "hardware, Hraw(sim) = plug-in entropy estimate of raw simulated bits.\n");
  return 0;
}
