// Reproduces Figure 4: representative TDC data snippets —
// (a) regular sampling, (b) double edge, (c) bubbles in the code —
// plus their occurrence statistics on the simulated hardware.
//
// The TRNG is run in free-running mode so the sampling phase sweeps the
// whole oscillator period and all three phenomena appear.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/extractor.hpp"
#include "core/trng.hpp"
#include "fpga/fabric.hpp"
#include "sim/sampler.hpp"

namespace {

using namespace trng;

std::string render(const sim::LineSnapshot& snap) {
  std::string s;
  for (bool b : snap) s.push_back(b ? '1' : '0');
  return s;
}

}  // namespace

int main() {
  const std::size_t captures = bench::env_size("TRNG_BENCH_BITS", 200000);
  bench::print_header("Figure 4: TDC data snippets and their statistics");

  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  const auto floorplan =
      fpga::TrngFloorplan::canonical(fabric.geometry(), 3, 36, 0, 17);
  const auto elaborated = fabric.elaborate(floorplan);
  sim::SampleController sampler(elaborated, fabric.spec().flip_flop,
                                sim::NoiseConfig{}, 77,
                                sim::SamplingMode::kFreeRunning);
  core::EntropyExtractor extractor(36, 1);

  std::size_t counts[4] = {};  // regular, double, bubbles, no-edge
  bool shown[4] = {};
  std::printf("examples (C1..C3 = the three delay lines, tap 0 first):\n\n");

  for (std::size_t i = 0; i < captures; ++i) {
    const auto cap = sampler.next_capture(1);
    const auto cls = sim::classify_snapshots(cap.lines);
    std::size_t idx = 0;
    const char* label = nullptr;
    switch (cls) {
      case sim::SnapshotClass::kRegular:
        idx = 0;
        label = "(a) regular sampling";
        break;
      case sim::SnapshotClass::kDoubleEdge:
        idx = 1;
        label = "(b) double edge (extractor decodes the first)";
        break;
      case sim::SnapshotClass::kBubbles:
        idx = 2;
        label = "(c) bubbles in the code (filtered by priority decode)";
        break;
      case sim::SnapshotClass::kNoEdge:
        idx = 3;
        label = "(!) no edge captured";
        break;
    }
    ++counts[idx];
    if (!shown[idx] && label != nullptr) {
      shown[idx] = true;
      std::printf("%s\n", label);
      for (std::size_t l = 0; l < cap.lines.size(); ++l) {
        std::printf("  C%zu: %s\n", l + 1, render(cap.lines[l]).c_str());
      }
      const auto r = extractor.extract(cap.lines);
      std::printf("  -> edge position %d, bit %d\n\n", r.edge_position,
                  r.bit ? 1 : 0);
    }
  }

  const double n = static_cast<double>(captures);
  std::printf("occurrence statistics over %zu captures:\n", captures);
  std::printf("  regular      : %8zu (%6.3f%%)\n", counts[0],
              100.0 * static_cast<double>(counts[0]) / n);
  std::printf("  double edge  : %8zu (%6.3f%%)\n", counts[1],
              100.0 * static_cast<double>(counts[1]) / n);
  std::printf("  bubbles      : %8zu (%6.3f%%)\n", counts[2],
              100.0 * static_cast<double>(counts[2]) / n);
  std::printf("  missed edge  : %8zu (%6.3f%%)   (paper: never at m = 36)\n",
              counts[3], 100.0 * static_cast<double>(counts[3]) / n);
  std::printf("  metastable FF captures: %llu\n",
              static_cast<unsigned long long>(sampler.metastable_events()));
  return 0;
}
