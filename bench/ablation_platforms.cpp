// Future-work ablation (paper Section 7): "applying the presented
// methodology on different implementation platforms."
//
// For each built-in fabric profile (Spartan-6 / Artix-7-class /
// Cyclone-IV-class) the complete design flow reruns:
//   Step 1  measure d0, t_step, sigma on the simulated die,
//   Step 2  model: Eq. 8 improvement factor, minimal tA for H >= 0.997,
//           np for the resulting raw entropy,
//   Step 3  implement with a platform-appropriate m (> d0/t_step),
//   Step 4  verify with the fast NIST screen.
#include <cstdio>

#include "bench_util.hpp"
#include "core/trng.hpp"
#include "fpga/profiles.hpp"
#include "model/design_space.hpp"
#include "model/platform_measurement.hpp"
#include "stattests/battery.hpp"

int main() {
  using namespace trng;
  const std::size_t bits = bench::env_size("TRNG_BENCH_BITS", 60000);
  bench::print_header(
      "Future work: the methodology on different platforms (Section 7)");

  std::printf("%-20s %-8s %-8s %-7s %-8s %-9s %-4s %-5s %-10s %s\n",
              "platform", "d0[ps]", "t_s[ps]", "sigma", "Eq.8", "tA(H.997)",
              "m", "np", "TP[Mb/s]", "screen");
  bench::print_rule(100);

  for (const auto& profile : fpga::builtin_profiles()) {
    const fpga::Fabric fabric = profile.make_fabric(42);

    // Step 1: measurement.
    model::PlatformMeasurement pm(fabric, 7);
    core::PlatformParams platform;
    platform.d0_lut_ps = pm.measure_lut_delay();
    platform.t_step_ps = pm.measure_t_step();
    platform.sigma_lut_ps = pm.measure_jitter_sigma(600);
    platform.f_clk_hz = profile.f_clk_hz;

    // Step 2: model.
    model::StochasticModel m(platform);
    model::DesignSpaceExplorer explorer(m);
    const double improvement = m.improvement_factor(1);
    const Cycles na = explorer.min_accumulation_cycles(1, 0.997);
    // Empirical np needs headroom over the model's (structural bias);
    // start from the model np + 2, as Table 1 measures for Spartan-6.
    unsigned np = explorer.min_np(1, na, 0.997) + 2;

    // Step 3: implement. m = smallest multiple of 4 comfortably above
    // d0/t_step (the paper's +25% robustness margin).
    int m_taps = static_cast<int>(platform.d0_lut_ps / platform.t_step_ps *
                                  1.25);
    m_taps = (m_taps + 3) / 4 * 4;
    core::DesignParams params;
    params.m = m_taps;
    params.accumulation_cycles = na;
    core::CarryChainTrng trng(fabric, params, 5);

    // Step 4: verify (bump np until the screen passes, like Table 1).
    stat::TestBattery::Options opt;
    opt.include_slow = false;
    stat::TestBattery battery(opt);
    bool ok = false;
    for (; np <= 16 && !ok; ++np) {
      ok = battery.run(trng.generate_raw(trng::common::Bits{bits * np}).xor_fold(np))
               .all_passed();
      if (ok) break;
    }

    std::printf("%-20s %-8.0f %-8.2f %-7.2f %-8.0f %-9llu %-4d %-5u %-10.2f %s\n",
                profile.name.c_str(), platform.d0_lut_ps, platform.t_step_ps,
                platform.sigma_lut_ps, improvement,
                static_cast<unsigned long long>(na) * 10, m_taps, np,
                profile.f_clk_hz / static_cast<double>(na) / np / 1.0e6,
                ok ? "pass" : "FAIL");
  }
  bench::print_rule(100);
  std::printf(
      "expected shape: finer carry taps (Artix-7) raise the Eq. 8 factor\n"
      "and throughput; coarser taps (Cyclone) lower both; the flow itself\n"
      "is platform-independent — the point of the paper's methodology.\n");
  return 0;
}
