// Reproduces Figure 7: Shannon entropy as a function of tau for
// sigma_acc in {t_step, t_step/2, t_step/3}.
//
// Prints the three curves over tau/t_step in [-0.5, 0.5] as data rows plus
// an ASCII rendering; the qualitative features to check against the paper:
// every curve is symmetric, dips at tau = 0 (the worst case used for the
// lower bound) and reaches H = 1 at tau = +-t_step/2; smaller sigma_acc
// dips deeper.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "model/stochastic_model.hpp"

int main() {
  using namespace trng;
  bench::print_header("Figure 7: Shannon entropy vs tau");

  core::PlatformParams platform;
  model::StochasticModel m(platform);
  const double t = platform.t_step_ps;
  const double sigmas[3] = {t, t / 2.0, t / 3.0};

  std::printf("%8s  %-10s %-12s %-12s\n", "tau/t", "s=t", "s=t/2", "s=t/3");
  bench::print_rule(48);
  for (int i = -10; i <= 10; ++i) {
    const double tau = t * static_cast<double>(i) / 20.0;
    std::printf("%8.2f", tau / t);
    for (double sigma : sigmas) {
      std::printf("  %-10.6f",
                  common::binary_entropy(m.p_one(tau, sigma, 1)));
    }
    std::printf("\n");
  }

  // ASCII rendering, H in [0.5, 1] like the paper's axis.
  std::printf("\nASCII rendering (rows: H from 1.00 down to 0.55)\n");
  constexpr int kCols = 61;
  constexpr int kRowsAscii = 10;
  char grid[kRowsAscii][kCols + 1];
  for (auto& row : grid) {
    for (int c = 0; c < kCols; ++c) row[c] = ' ';
    row[kCols] = '\0';
  }
  const char mark[3] = {'*', 'o', '.'};
  for (int c = 0; c < kCols; ++c) {
    const double tau = t * (static_cast<double>(c) / (kCols - 1) - 0.5);
    for (int s = 0; s < 3; ++s) {
      const double h = common::binary_entropy(m.p_one(tau, sigmas[s], 1));
      const int r = static_cast<int>((1.0 - h) / 0.5 * kRowsAscii);
      if (r >= 0 && r < kRowsAscii) grid[r][c] = mark[s];
    }
  }
  for (int r = 0; r < kRowsAscii; ++r) {
    std::printf("H=%4.2f |%s|\n", 1.0 - 0.05 * r, grid[r]);
  }
  std::printf("        tau/t from -0.5 to +0.5;  * s=t   o s=t/2   . s=t/3\n");

  // The worst case quoted in the text: the bound is reached at tau = 0.
  std::printf("\nworst-case check (lower bound at tau = 0):\n");
  for (double sigma : sigmas) {
    double h_min = 1.0;
    double tau_min = 0.0;
    for (int i = -50; i <= 50; ++i) {
      const double tau = t * static_cast<double>(i) / 100.0;
      const double h = common::binary_entropy(m.p_one(tau, sigma, 1));
      if (h < h_min) {
        h_min = h;
        tau_min = tau;
      }
    }
    std::printf("  sigma_acc = t/%.0f: min H = %.6f at tau/t = %.2f\n",
                t / sigma, h_min, tau_min / t);
  }
  return 0;
}
