// Shared helpers for the reproduction benches: consistent table rendering
// and environment-variable size knobs so `--quick` CI runs and full
// paper-scale runs share one binary.
#pragma once

#include <cstdio>
#include <string>

#include "common/env.hpp"

namespace trng::bench {

/// Reads a size knob from the environment (e.g. TRNG_BENCH_BITS); returns
/// `fallback` when unset or unparsable. Delegates to the shared helper so
/// examples and smoke tests use the same parsing rules.
using trng::common::env_size;

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace trng::bench
