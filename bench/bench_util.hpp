// Shared helpers for the reproduction benches: consistent table rendering
// and environment-variable size knobs so `--quick` CI runs and full
// paper-scale runs share one binary.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace trng::bench {

/// Reads a size knob from the environment (e.g. TRNG_BENCH_BITS); returns
/// `fallback` when unset or unparsable.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace trng::bench
