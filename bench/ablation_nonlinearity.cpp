// Ablation of Section 5.2: TDC bin non-linearity (DNL) and its two
// mitigations — the single-clock-region placement constraint and k = 4
// down-sampling.
//
// Reports, per configuration: bin-width statistics (min/mean/max, DNL rms
// and peak) from the elaborated timing, plus a code-density measurement
// (edge-position histogram under free-running sampling) as the empirical
// cross-check — the same methodology as Menninga et al. [6].
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/extractor.hpp"
#include "fpga/fabric.hpp"
#include "model/nonlinearity.hpp"
#include "sim/sampler.hpp"

namespace {

using namespace trng;

void report(const char* label, const fpga::Fabric& fabric, int base_row,
            int k, std::size_t captures) {
  const auto floorplan =
      fpga::TrngFloorplan::canonical(fabric.geometry(), 3, 36, 0, base_row);
  const auto elaborated = fabric.elaborate(floorplan, k);
  const bool single_region =
      floorplan.single_clock_region(fabric.geometry());

  // Structural DNL from elaborated timing (line 0).
  const auto dnl = model::analyze_dnl(elaborated.lines[0], k);

  // Code-density: distribution of decoded first-edge positions while
  // free-running (phase sweeps uniformly): wider bins catch more edges.
  sim::SampleController sampler(elaborated, fabric.spec().flip_flop,
                                sim::NoiseConfig{}, 31,
                                sim::SamplingMode::kFreeRunning);
  core::EntropyExtractor extractor(36, k);
  std::vector<std::size_t> hist(static_cast<std::size_t>(36 / k), 0);
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < captures; ++i) {
    const auto cap = sampler.next_capture(1);
    const auto r = extractor.extract(cap.lines);
    if (r.edge_found) {
      const auto bin = static_cast<std::size_t>(r.edge_position / k);
      if (bin < hist.size()) {
        ++hist[bin];
        ++decoded;
      }
    }
  }
  // Empirical DNL over the first ~d0/t_step positions (deeper bins see
  // only double-edge leftovers).
  const std::size_t usable = static_cast<std::size_t>(26 / k);
  double mean = 0.0;
  for (std::size_t b = 0; b < usable; ++b) {
    mean += static_cast<double>(hist[b]);
  }
  mean /= static_cast<double>(usable);
  double peak = 0.0;
  for (std::size_t b = 0; b < usable; ++b) {
    const double rel = (static_cast<double>(hist[b]) - mean) / mean;
    peak = std::max(peak, std::abs(rel));
  }

  std::printf("%-34s %-7s %5.1f/%5.1f/%5.1f  %6.3f  %6.3f   %6.3f\n", label,
              single_region ? "yes" : "no", dnl.min_bin_ps, dnl.mean_bin_ps,
              dnl.max_bin_ps, dnl.dnl_rms, dnl.dnl_peak, peak);
  (void)decoded;
}

}  // namespace

int main() {
  const std::size_t captures = bench::env_size("TRNG_BENCH_BITS", 60000);
  bench::print_header(
      "Section 5.2 ablation: TDC non-linearity vs placement and k");

  std::printf("%-34s %-7s %-17s %-7s %-8s %s\n", "configuration", "1-region",
              "bin min/mean/max", "DNLrms", "DNLpeak", "code-density peak");
  bench::print_rule(96);

  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  // Paper placement: rows 17..25, single clock region.
  report("k=1, single clock region", fabric, 17, 1, captures);
  // Bad placement: rows 12..20 straddle the region-0/1 boundary.
  report("k=1, crossing region boundary", fabric, 12, 1, captures);
  // Down-sampling fixes structural DNL (Section 5.2).
  report("k=4, single clock region", fabric, 17, 4, captures);
  report("k=4, crossing region boundary", fabric, 12, 4, captures);
  // Reference: an ideal die has no DNL at all.
  fpga::Fabric ideal(fpga::DeviceGeometry{}, 1, fpga::ideal_fabric_spec());
  report("k=1, ideal fabric (reference)", ideal, 17, 1, captures);

  bench::print_rule(96);
  std::printf(
      "expected shape (paper + Menninga [6]): crossing a clock region adds\n"
      "a large skew step into one bin (DNL peak up); k = 4 merges the\n"
      "unequal CARRY4 taps into near-uniform 4-tap bins (DNL down).\n");
  return 0;
}
