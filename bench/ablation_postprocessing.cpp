// Ablation of Section 4.5: XOR post-processing.
//
// Part 1 checks Eq. 7 (b_pp = 2^(np-1) b^np) in its validity domain: with
// white-only noise the raw bits are i.i.d. and the measured bias after
// XOR folding must track the piling-up prediction seeded by the measured
// raw bias.
//
// Part 2 repeats the experiment with the full noise taxonomy (flicker +
// supply drift): the raw bits are then serially correlated and XOR folding
// is much less effective than Eq. 7 promises — the reason the measured
// n_NIST of Table 1 exceeds what the worst-case-bias model alone would
// suggest.
//
// Part 3 compares against the Von Neumann extension.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/postprocess.hpp"
#include "core/trng.hpp"
#include "model/stochastic_model.hpp"

namespace {

using namespace trng;

void fold_table(const common::BitStream& raw, unsigned max_np) {
  const double b_raw = std::fabs(raw.ones_fraction() - 0.5);
  std::printf("raw bias: %.4f\n", b_raw);
  std::printf("%-4s %-12s %-14s %-12s\n", "np", "bias (meas)", "Eq.7 predict",
              "throughput x");
  bench::print_rule(48);
  for (unsigned np = 1; np <= max_np; np += 2) {
    const auto folded = raw.xor_fold(np);
    const double b_meas = std::fabs(folded.ones_fraction() - 0.5);
    const double b_pred = model::StochasticModel::xor_bias(b_raw, np);
    std::printf("%-4u %-12.5f %-14.5f 1/%u\n", np, b_meas, b_pred, np);
  }
}

}  // namespace

int main() {
  const std::size_t out_bits = bench::env_size("TRNG_BENCH_BITS", 40000);
  bench::print_header("Section 4.5 ablation: XOR post-processing vs Eq. 7");

  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  core::DesignParams p;
  p.k = 4;
  p.accumulation_cycles = 5;  // tA = 50 ns: meaningful raw bias
  const unsigned max_np = 9;

  std::printf("[1] white-only noise (i.i.d. raw bits — Eq. 7's domain):\n");
  core::CarryChainTrng iid_trng(fabric, p, 31, sim::NoiseConfig::white_only());
  const auto iid_raw = iid_trng.generate_raw(trng::common::Bits{out_bits * max_np});
  fold_table(iid_raw, max_np);
  std::printf("sampling floor ~%.5f on %zu bits\n\n",
              0.5 / std::sqrt(static_cast<double>(out_bits)), out_bits);

  std::printf("[2] full noise taxonomy (flicker + supply drift -> serially\n"
              "    correlated raw bits; Eq. 7 becomes optimistic):\n");
  core::CarryChainTrng drift_trng(fabric, p, 31, sim::NoiseConfig{});
  const auto drift_raw = drift_trng.generate_raw(trng::common::Bits{out_bits * max_np});
  fold_table(drift_raw, max_np);

  core::VonNeumannPostProcessor vn;
  const auto vn_out = vn.process(iid_raw);
  std::printf("\n[3] Von Neumann extension on the i.i.d. stream: bias %.5f "
              "at rate %.3f out/in (expected p(1-p) = %.3f)\n",
              std::fabs(vn_out.ones_fraction() - 0.5),
              static_cast<double>(vn_out.size()) /
                  static_cast<double>(iid_raw.size()),
              core::VonNeumannPostProcessor::expected_rate(
                  iid_raw.ones_fraction()));
  std::printf(
      "expected shape: in [1] the measured bias tracks Eq. 7 down to the\n"
      "sampling floor; in [2] correlated drift keeps the folded bias well\n"
      "above the prediction — the gap the paper's measured n_NIST absorbs.\n");
  return 0;
}
