// google-benchmark microbenchmarks of the library's hot paths: the
// simulation inner loops, the extractor, post-processing and the
// statistical tests. These guard the practicality of the harness (Table 1
// regeneration runs millions of captures).
//
// Before the google-benchmark suite runs, main() measures every canonical
// bit source through both BitSource paths — per-bit next_bit() calls vs one
// bulk generate_into() — and writes the results to BENCH_throughput.json
// (machine-readable; see emit_throughput_json below for knobs).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <thread>

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/elementary.hpp"
#include "core/extractor.hpp"
#include "core/source_registry.hpp"
#include "core/trng.hpp"
#include "model/stochastic_model.hpp"
#include "server/client.hpp"
#include "server/serverd.hpp"
#include "service/entropy_pool.hpp"
#include "stattests/battery.hpp"
#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_wordpar.hpp"

namespace {

using namespace trng;

void BM_Xoshiro(benchmark::State& state) {
  common::Xoshiro256StarStar rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_GaussianDraw(benchmark::State& state) {
  common::Xoshiro256StarStar rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_gaussian());
}
BENCHMARK(BM_GaussianDraw);

void BM_TrngRawBit(benchmark::State& state) {
  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  core::DesignParams p;
  p.accumulation_cycles = static_cast<Cycles>(state.range(0));
  core::CarryChainTrng trng(fabric, p, 7);
  for (auto _ : state) benchmark::DoNotOptimize(trng.next_raw_bit());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrngRawBit)->Arg(1)->Arg(5)->Arg(20);

void BM_TrngBatchedBits(benchmark::State& state) {
  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  core::DesignParams p;
  p.accumulation_cycles = static_cast<Cycles>(state.range(0));
  core::CarryChainTrng trng(fabric, p, 7);
  constexpr std::size_t kBits = 256;
  std::uint64_t words[(kBits + 63) / 64];
  for (auto _ : state) {
    trng.generate_into(words, trng::common::Bits{kBits});
    benchmark::DoNotOptimize(words[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBits));
}
BENCHMARK(BM_TrngBatchedBits)->Arg(1)->Arg(5)->Arg(20);

void BM_ElementaryAnalyticBit(benchmark::State& state) {
  core::ElementaryTrng trng(480.0, 2.0, 800, 7);
  for (auto _ : state) benchmark::DoNotOptimize(trng.next_bit());
}
BENCHMARK(BM_ElementaryAnalyticBit);

void BM_ExtractorDecode(benchmark::State& state) {
  core::EntropyExtractor ex(36, 1);
  std::vector<sim::LineSnapshot> lines(3, sim::LineSnapshot(36, false));
  for (int j = 0; j < 14; ++j) lines[1][static_cast<std::size_t>(j)] = true;
  for (auto _ : state) benchmark::DoNotOptimize(ex.extract(lines));
}
BENCHMARK(BM_ExtractorDecode);

void BM_ModelPOne(benchmark::State& state) {
  model::StochasticModel m{core::PlatformParams{}};
  double tau = 0.0;
  for (auto _ : state) {
    tau += 0.1;
    if (tau > 8.0) tau = 0.0;
    benchmark::DoNotOptimize(m.p_one(tau, 9.13, 1));
  }
}
BENCHMARK(BM_ModelPOne);

void BM_ModelPOneFolded(benchmark::State& state) {
  model::StochasticModel m{core::PlatformParams{}};
  double tau = 0.0;
  for (auto _ : state) {
    tau += 0.1;
    if (tau > 400.0) tau = 0.0;
    benchmark::DoNotOptimize(m.p_one_folded(tau, 28.9, 4));
  }
}
BENCHMARK(BM_ModelPOneFolded);

const common::BitStream& bench_bits() {
  static const common::BitStream bits = [] {
    common::Xoshiro256StarStar rng(99);
    common::BitStream b;
    for (int w = 0; w < 1 << 14; ++w) b.append_bits(rng.next(), 64);
    return b;  // 2^20 bits
  }();
  return bits;
}

void BM_NistFrequency(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::frequency_test(bench_bits()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bench_bits().size()));
}
BENCHMARK(BM_NistFrequency);

void BM_NistRuns(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::runs_test(bench_bits()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bench_bits().size()));
}
BENCHMARK(BM_NistRuns);

void BM_NistDft(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::dft_test(bench_bits()));
}
BENCHMARK(BM_NistDft);

void BM_NistSerial(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::serial_test(bench_bits()));
}
BENCHMARK(BM_NistSerial);

void BM_BerlekampMassey500(benchmark::State& state) {
  std::vector<bool> block;
  common::Xoshiro256StarStar rng(5);
  for (int i = 0; i < 500; ++i) block.push_back(rng.next() & 1);
  for (auto _ : state) benchmark::DoNotOptimize(stat::berlekamp_massey(block));
}
BENCHMARK(BM_BerlekampMassey500);

void BM_XorFold(benchmark::State& state) {
  const auto& bits = bench_bits();
  for (auto _ : state) benchmark::DoNotOptimize(bits.xor_fold(7));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_XorFold);

// --- BitSource throughput comparison -> BENCH_throughput.json ------------
//
// For every canonical source (registry line-up plus the raw carry-chain
// TRNG itself) this times the two BitSource paths over the same bit budget:
//
//   * "scalar": one next_bit() call per bit (the bit-at-a-time interface),
//   * "batched": a single generate_into() covering the whole budget.
//
// Each path runs `repeats` passes over the bit budget on a persistent
// generator; every pass is timed in small chunks and the minimum per-bit
// chunk time is reported. The chunked minimum discards scheduler
// preemption (which otherwise contaminates whole multi-millisecond
// passes on a loaded machine) identically for both paths. Bit budget and
// repeat count come from TRNG_BENCH_THROUGHPUT_BITS / _REPEATS, and the
// output path from TRNG_BENCH_THROUGHPUT_JSON.

struct ThroughputRow {
  std::string id;
  double scalar_ns_per_bit = 0.0;
  double batched_ns_per_bit = 0.0;
};

template <typename F>
double min_chunk_ns_per_bit(F&& run_chunk, std::size_t nbits, int repeats) {
  const std::size_t chunk = std::min<std::size_t>(nbits, 256);
  double best = 0.0;
  bool first = true;
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t done = 0; done < nbits; done += chunk) {
      const std::size_t n = std::min(chunk, nbits - done);
      const auto t0 = std::chrono::steady_clock::now();
      run_chunk(n);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns =
          std::chrono::duration<double, std::nano>(t1 - t0).count() /
          static_cast<double>(n);
      if (first || ns < best) best = ns;
      first = false;
    }
  }
  return best;
}

ThroughputRow measure_source(const std::string& id, core::BitSource& scalar,
                             core::BitSource& batched, std::size_t nbits,
                             int repeats) {
  std::vector<std::uint64_t> words((nbits + 63) / 64);
  // One untimed pass per path warms caches and generator state.
  scalar.next_bit();
  batched.generate_into(words.data(), trng::common::Bits{std::min<std::size_t>(nbits, 64)});

  ThroughputRow row;
  row.id = id;
  row.scalar_ns_per_bit = min_chunk_ns_per_bit(
      [&](std::size_t n) {
        bool sink = false;
        for (std::size_t i = 0; i < n; ++i) sink ^= scalar.next_bit();
        benchmark::DoNotOptimize(sink);
      },
      nbits, repeats);
  row.batched_ns_per_bit = min_chunk_ns_per_bit(
      [&](std::size_t n) {
        batched.generate_into(words.data(), trng::common::Bits{n});
        benchmark::DoNotOptimize(words[0]);
      },
      nbits, repeats);
  return row;
}

// --- EntropyPool draw throughput ----------------------------------------
//
// Times a blocking consumer drawing a fixed bit budget from the service
// layer at 1/2/4/8 producers of the raw carry-chain TRNG, in two modes:
//
//   * "paced": every producer is throttled to TRNG_BENCH_POOL_PACE bits/s
//     (default 32 kb/s), emulating a hardware-clocked source — an FPGA
//     die produces at its clocked rate no matter how many instances
//     exist, so pool throughput should scale with the producer count
//     until the simulating CPU saturates. This is the serving-layer
//     scaling figure.
//   * "unpaced": producers run the simulation flat out. On a machine with
//     fewer hardware threads than producers this measures CPU-bound
//     simulation capacity, not service scaling — reported alongside
//     hardware_threads so readers can interpret it honestly.
//
// The health gate is left wide open (h = 0.05): admission control is
// exercised by the tests; here every generated block must reach the ring
// so the measurement is pure serving-path throughput.

struct PoolRow {
  std::size_t producers = 0;
  double bits_per_s = 0.0;
};

double measure_pool_draw(std::size_t producers, double pace_bits_per_s,
                         std::size_t nbits) {
  service::PoolConfig cfg;
  cfg.producers = producers;
  cfg.producer.block_bits = common::Bits{4096};
  cfg.producer.h_per_bit = 0.05;  // wide open: measure serving, not gating
  cfg.producer.pace_bits_per_s = pace_bits_per_s;
  cfg.ring_capacity_words = common::Words{1 << 12};

  service::EntropyPool pool(
      [](std::size_t index,
         std::uint64_t seed) -> std::unique_ptr<core::BitSource> {
        // One simulated die per producer, raw carry-chain bits (the same
        // generator as the "carry-chain-raw" row above).
        const fpga::Fabric fabric(fpga::DeviceGeometry{}, 200 + index);
        return std::make_unique<core::CarryChainTrng>(
            fabric, core::DesignParams{}, seed);
      },
      cfg);

  std::vector<std::uint64_t> chunk(64);
  const std::size_t total_words = nbits / 64;
  const auto t0 = std::chrono::steady_clock::now();
  pool.start();
  for (std::size_t drawn = 0; drawn < total_words;) {
    const std::size_t want = std::min(chunk.size(), total_words - drawn);
    drawn += pool.draw(chunk.data(), common::Words{want}).count();
    benchmark::DoNotOptimize(chunk[0]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  pool.stop();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(nbits) / seconds;
}

void emit_pool_rows(std::FILE* f, const std::vector<PoolRow>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "      {\"producers\": %zu, \"bits_per_s\": %.0f, "
                 "\"speedup_vs_1\": %.2f}%s\n",
                 rows[i].producers, rows[i].bits_per_s,
                 rows[i].bits_per_s / rows[0].bits_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
}

// --- Entropy-daemon draw throughput --------------------------------------
//
// Times concurrent clients pulling conditioned bytes through the full
// daemon stack (pool -> per-shard Hash_DRBG -> session threads -> framed
// socketpair protocol) at 1/4/16/64 clients. Every request's end-to-end
// latency is measured client-side, so the p50/p99 rows capture framing,
// scheduling and DRBG generate cost together — the figure a consumer of
// the daemon actually sees. On hosts with fewer cores than clients the
// high-client rows measure time-sliced serving, not parallel speedup
// (same caveat as pool_draw.unpaced); requests/s is still meaningful.
//
// The run also reports the conditioning tier's amortization: conditioned
// bytes served per raw pool entropy byte consumed by DRBG (re)seeds.
// This is the ROADMAP's "millions of users" ratio — raw gated entropy is
// kb/s-scale, the DRBG front multiplies it — and it is deterministic
// (byte accounting, not timing), so the JSON asserts it stays >= 50x.

struct ServerRow {
  std::size_t clients = 0;
  double requests_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double conditioned_bits_per_s = 0.0;
};

struct ServerAmortization {
  std::uint64_t conditioned_bytes = 0;
  std::uint64_t raw_entropy_bytes = 0;
};

ServerRow measure_server_draw(std::size_t clients,
                              std::size_t requests_per_client,
                              std::uint32_t request_bytes,
                              ServerAmortization* amortization) {
  server::ServerConfig cfg;
  cfg.pool.producers = 2;
  cfg.pool.producer.block_bits = common::Bits{4096};
  cfg.pool.producer.h_per_bit = 0.05;  // wide open: measure serving
  cfg.pool.ring_capacity_words = common::Words{1 << 12};

  server::ServerDaemon daemon(
      [](std::size_t index,
         std::uint64_t seed) -> std::unique_ptr<core::BitSource> {
        const fpga::Fabric fabric(fpga::DeviceGeometry{}, 300 + index);
        return std::make_unique<core::CarryChainTrng>(
            fabric, core::DesignParams{}, seed);
      },
      cfg);
  daemon.start();

  std::vector<int> fds;
  fds.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fds.push_back(daemon.connect_client());
  }

  std::mutex latencies_mu;
  std::vector<double> latencies_us;
  latencies_us.reserve(clients * requests_per_client);
  std::atomic<std::uint64_t> bytes_ok{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    const int fd = fds[c];
    workers.emplace_back([&, fd] {
      std::vector<double> local;
      local.reserve(requests_per_client);
      for (std::size_t r = 0; r < requests_per_client; ++r) {
        const auto r0 = std::chrono::steady_clock::now();
        const auto reply = server::client::draw(fd, request_bytes);
        const auto r1 = std::chrono::steady_clock::now();
        if (reply.ok && reply.status == server::Status::kOk) {
          bytes_ok.fetch_add(reply.bytes.size());
          local.push_back(
              std::chrono::duration<double, std::micro>(r1 - r0).count());
        }
      }
      const std::lock_guard<std::mutex> lk(latencies_mu);
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
    });
  }
  for (auto& t : workers) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  for (int fd : fds) ::close(fd);

  if (amortization != nullptr) {
    for (std::size_t s = 0; s < daemon.metrics().shards(); ++s) {
      const auto& sc = daemon.metrics().shard(s);
      amortization->conditioned_bytes += sc.bytes_generated.load();
      amortization->raw_entropy_bytes +=
          sc.entropy_words_consumed.load() * sizeof(std::uint64_t);
    }
  }
  daemon.stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  ServerRow row;
  row.clients = clients;
  if (!latencies_us.empty() && seconds > 0.0) {
    const std::size_t n = latencies_us.size();
    row.requests_per_s = static_cast<double>(n) / seconds;
    row.p50_us = latencies_us[n / 2];
    row.p99_us = latencies_us[std::min(n - 1, (n * 99) / 100)];
    row.conditioned_bits_per_s =
        static_cast<double>(bytes_ok.load()) * 8.0 / seconds;
  }
  return row;
}

void emit_server_draw_section(std::FILE* f) {
  const std::size_t requests_per_client =
      common::env_size("TRNG_BENCH_SERVER_REQUESTS", 32);
  const auto request_bytes = static_cast<std::uint32_t>(
      common::env_size("TRNG_BENCH_SERVER_REQUEST_BYTES", 4096));

  ServerAmortization amortization;
  std::vector<ServerRow> rows;
  for (std::size_t clients : {std::size_t{1}, std::size_t{4},
                              std::size_t{16}, std::size_t{64}}) {
    rows.push_back(measure_server_draw(clients, requests_per_client,
                                       request_bytes, &amortization));
  }
  const double ratio =
      amortization.raw_entropy_bytes > 0
          ? static_cast<double>(amortization.conditioned_bytes) /
                static_cast<double>(amortization.raw_entropy_bytes)
          : 0.0;

  std::fprintf(f, "  \"server_draw\": {\n");
  std::fprintf(f, "    \"source\": \"carry-chain-raw (one die per shard, "
                  "2 shards)\",\n");
  std::fprintf(f, "    \"request_bytes\": %u,\n", request_bytes);
  std::fprintf(f, "    \"requests_per_client\": %zu,\n", requests_per_client);
  std::fprintf(f, "    \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServerRow& r = rows[i];
    std::fprintf(f,
                 "      {\"clients\": %zu, \"requests_per_s\": %.0f, "
                 "\"p50_us\": %.1f, \"p99_us\": %.1f, "
                 "\"conditioned_bits_per_s\": %.0f}%s\n",
                 r.clients, r.requests_per_s, r.p50_us, r.p99_us,
                 r.conditioned_bits_per_s, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"amortization\": {\n");
  std::fprintf(f,
               "      \"comment\": \"conditioned bytes served per raw pool "
               "entropy byte eaten by DRBG (re)seeds; deterministic byte "
               "accounting, expected >= 50\",\n");
  std::fprintf(f, "      \"conditioned_bytes\": %llu,\n",
               static_cast<unsigned long long>(amortization.conditioned_bytes));
  std::fprintf(f, "      \"raw_entropy_bytes\": %llu,\n",
               static_cast<unsigned long long>(
                   amortization.raw_entropy_bytes));
  std::fprintf(f, "      \"ratio\": %.1f\n", ratio);
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  },\n");
  if (ratio < 50.0) {
    std::fprintf(stderr,
                 "perf_microbench: WARNING: server_draw amortization %.1fx "
                 "< 50x (conditioned %llu bytes / raw %llu bytes)\n",
                 ratio,
                 static_cast<unsigned long long>(
                     amortization.conditioned_bytes),
                 static_cast<unsigned long long>(
                     amortization.raw_entropy_bytes));
  }
}

// --- SP 800-22 battery engine comparison ---------------------------------
//
// Times every battery test per-kernel (scalar bit-serial reference vs the
// word-parallel rewrite) and the whole 15-test battery per engine (scalar,
// word-parallel, word-parallel + BatteryExecutor threads) on one fixed
// random stream. All three engines return bit-identical reports, so this
// is a pure speed comparison. Bit budget and repeat count come from
// TRNG_BENCH_BATTERY_BITS / _REPEATS. The threaded row is bounded by
// hardware_threads — on a single-core host it degenerates to the
// word-parallel row plus scheduling overhead (same caveat as the unpaced
// pool_draw rows), so the JSON carries the thread count alongside.

template <typename F>
double best_run_seconds(F&& run, int repeats) {
  double best = 0.0;
  bool first = true;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (first || s < best) best = s;
    first = false;
  }
  return best;
}

struct BatteryTestRow {
  const char* name;
  double scalar_ns_per_bit = 0.0;
  double wordpar_ns_per_bit = 0.0;
};

void emit_battery_section(std::FILE* f) {
  const std::size_t nbits =
      common::env_size("TRNG_BENCH_BATTERY_BITS", std::size_t{1} << 20);
  const int repeats = static_cast<int>(
      common::env_size("TRNG_BENCH_BATTERY_REPEATS", 2));

  common::Xoshiro256StarStar rng(20260806);
  common::BitStream bits;
  bits.reserve(nbits + 64);
  for (std::size_t w = 0; w < nbits / 64 + 1; ++w) {
    bits.append_bits(rng.next(), 64);
  }
  bits = bits.slice(0, nbits);
  const double n = static_cast<double>(nbits);

  using TestFn = stat::TestResult (*)(const common::BitStream&);
  struct Pair {
    const char* name;
    TestFn scalar;
    TestFn wordpar;
  };
  // Default-argument wrappers so the table can hold plain function pointers.
  static constexpr Pair kPairs[] = {
      {"frequency", [](const common::BitStream& b) { return stat::frequency_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::frequency_test(b); }},
      {"block_frequency", [](const common::BitStream& b) { return stat::block_frequency_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::block_frequency_test(b); }},
      {"runs", [](const common::BitStream& b) { return stat::runs_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::runs_test(b); }},
      {"longest_run", [](const common::BitStream& b) { return stat::longest_run_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::longest_run_test(b); }},
      {"cumulative_sums", [](const common::BitStream& b) { return stat::cumulative_sums_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::cumulative_sums_test(b); }},
      {"serial", [](const common::BitStream& b) { return stat::serial_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::serial_test(b); }},
      {"approximate_entropy", [](const common::BitStream& b) { return stat::approximate_entropy_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::approximate_entropy_test(b); }},
      {"random_excursions", [](const common::BitStream& b) { return stat::random_excursions_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::random_excursions_test(b); }},
      {"random_excursions_variant", [](const common::BitStream& b) { return stat::random_excursions_variant_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::random_excursions_variant_test(b); }},
      {"rank", [](const common::BitStream& b) { return stat::rank_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::rank_test(b); }},
      {"dft", [](const common::BitStream& b) { return stat::dft_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::dft_test(b); }},
      {"non_overlapping_template", [](const common::BitStream& b) { return stat::non_overlapping_template_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::non_overlapping_template_test(b); }},
      {"overlapping_template", [](const common::BitStream& b) { return stat::overlapping_template_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::overlapping_template_test(b); }},
      {"universal", [](const common::BitStream& b) { return stat::universal_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::universal_test(b); }},
      {"linear_complexity", [](const common::BitStream& b) { return stat::linear_complexity_test(b); },
       [](const common::BitStream& b) { return stat::wordpar::linear_complexity_test(b); }},
  };

  std::vector<BatteryTestRow> rows;
  for (const Pair& p : kPairs) {
    BatteryTestRow row;
    row.name = p.name;
    row.scalar_ns_per_bit =
        best_run_seconds([&] { benchmark::DoNotOptimize(p.scalar(bits)); },
                         repeats) *
        1e9 / n;
    row.wordpar_ns_per_bit =
        best_run_seconds([&] { benchmark::DoNotOptimize(p.wordpar(bits)); },
                         repeats) *
        1e9 / n;
    rows.push_back(row);
  }

  auto run_engine = [&bits](stat::TestBattery::Engine engine,
                            unsigned threads) {
    stat::TestBattery::Options opt;
    opt.engine = engine;
    opt.threads = threads;
    const auto report = stat::TestBattery(opt).run(bits);
    benchmark::DoNotOptimize(report.results.size());
  };
  const unsigned pool_threads = 4;
  const double scalar_s = best_run_seconds(
      [&] { run_engine(stat::TestBattery::Engine::kScalar, 0); }, repeats);
  const double wordpar_s = best_run_seconds(
      [&] { run_engine(stat::TestBattery::Engine::kWordParallel, 0); },
      repeats);
  const double threaded_s = best_run_seconds(
      [&] { run_engine(stat::TestBattery::Engine::kThreaded, pool_threads); },
      repeats);

  std::fprintf(f, "  \"battery\": {\n");
  std::fprintf(f, "    \"bits\": %zu,\n", nbits);
  std::fprintf(f, "    \"repeats\": %d,\n", repeats);
  std::fprintf(f, "    \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"tests\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BatteryTestRow& r = rows[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"scalar_ns_per_bit\": %.3f, "
                 "\"wordpar_ns_per_bit\": %.3f, \"speedup\": %.2f}%s\n",
                 r.name, r.scalar_ns_per_bit, r.wordpar_ns_per_bit,
                 r.scalar_ns_per_bit / r.wordpar_ns_per_bit,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f, "    \"whole_battery\": {\n");
  std::fprintf(f, "      \"scalar_ns_per_bit\": %.3f,\n", scalar_s * 1e9 / n);
  std::fprintf(f, "      \"wordpar_ns_per_bit\": %.3f,\n",
               wordpar_s * 1e9 / n);
  std::fprintf(f, "      \"threaded_ns_per_bit\": %.3f,\n",
               threaded_s * 1e9 / n);
  std::fprintf(f, "      \"threads\": %u,\n", pool_threads);
  std::fprintf(f, "      \"wordpar_speedup\": %.2f,\n", scalar_s / wordpar_s);
  std::fprintf(f, "      \"threaded_speedup\": %.2f,\n",
               scalar_s / threaded_s);
  std::fprintf(f,
               "      \"comment\": \"all engines return bit-identical "
               "reports; the threaded row runs the word-parallel kernels on "
               "a %u-thread BatteryExecutor and is bounded by "
               "hardware_threads — on hosts with fewer cores than threads "
               "it matches the wordpar row plus scheduling overhead (same "
               "caveat as pool_draw.unpaced), and the wordpar_speedup "
               "column is the host-independent figure\"\n",
               pool_threads);
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  },\n");
}

void emit_throughput_json() {
  const std::size_t nbits =
      common::env_size("TRNG_BENCH_THROUGHPUT_BITS", 4096);
  const int repeats = static_cast<int>(
      common::env_size("TRNG_BENCH_THROUGHPUT_REPEATS", 5));
  const char* path_env = std::getenv("TRNG_BENCH_THROUGHPUT_JSON");
  const std::string path = path_env ? path_env : "BENCH_throughput.json";

  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  std::vector<ThroughputRow> rows;

  {
    // The headline comparison: the paper's TRNG at its default design point,
    // raw bits, scalar next_raw_bit() vs the fused packed pipeline.
    core::CarryChainTrng scalar(fabric, core::DesignParams{}, 7);
    core::CarryChainTrng batched(fabric, core::DesignParams{}, 7);
    rows.push_back(
        measure_source("carry-chain-raw", scalar, batched, nbits, repeats));
  }
  for (const auto& factory : core::canonical_sources(fabric)) {
    auto scalar = factory.make(7);
    auto batched = factory.make(7);
    rows.push_back(
        measure_source(factory.id, *scalar, *batched, nbits, repeats));
  }

  // Warn-level assertion: the batched wrapper must never be slower than the
  // scalar path (budget 1% for timer noise). A warning here means per-call
  // setup has crept back into a word loop somewhere; it does not fail the
  // run because microbenchmark noise on shared runners would flake.
  for (const ThroughputRow& r : rows) {
    const double speedup = r.scalar_ns_per_bit / r.batched_ns_per_bit;
    if (speedup < 0.99) {
      std::fprintf(stderr,
                   "perf_microbench: WARNING: source '%s' batched_speedup "
                   "%.2f < 0.99 (scalar %.1f ns/bit, batched %.1f ns/bit)\n",
                   r.id.c_str(), speedup, r.scalar_ns_per_bit,
                   r.batched_ns_per_bit);
    }
  }

  // Service-layer draw throughput at increasing producer counts.
  const std::size_t pool_bits =
      common::env_size("TRNG_BENCH_POOL_BITS", 65536);
  const double pool_pace = static_cast<double>(
      common::env_size("TRNG_BENCH_POOL_PACE", 32000));
  std::vector<PoolRow> paced_rows;
  std::vector<PoolRow> unpaced_rows;
  for (std::size_t producers : {1, 2, 4, 8, 16}) {
    paced_rows.push_back(
        {producers, measure_pool_draw(producers, pool_pace, pool_bits)});
  }
  for (std::size_t producers : {1, 2, 4, 8, 16}) {
    unpaced_rows.push_back(
        {producers, measure_pool_draw(producers, 0.0, pool_bits)});
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_microbench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"bit_source_throughput\",\n");
  std::fprintf(f, "  \"bits_per_measurement\": %zu,\n", nbits);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"aggregation\": \"min\",\n");
  std::fprintf(f, "  \"sources\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ThroughputRow& r = rows[i];
    std::fprintf(f,
                 "    {\"id\": \"%s\", \"scalar_ns_per_bit\": %.1f, "
                 "\"batched_ns_per_bit\": %.1f, \"scalar_bits_per_s\": %.0f, "
                 "\"batched_bits_per_s\": %.0f, \"batched_speedup\": %.2f}%s\n",
                 r.id.c_str(), r.scalar_ns_per_bit, r.batched_ns_per_bit,
                 1e9 / r.scalar_ns_per_bit, 1e9 / r.batched_ns_per_bit,
                 r.scalar_ns_per_bit / r.batched_ns_per_bit,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  emit_battery_section(f);
  emit_server_draw_section(f);
  std::fprintf(f, "  \"pool_draw\": {\n");
  std::fprintf(f, "    \"source\": \"carry-chain-raw (one die per producer)\",\n");
  std::fprintf(f, "    \"block_bits\": 4096,\n");
  std::fprintf(f, "    \"bits_drawn\": %zu,\n", pool_bits);
  std::fprintf(f, "    \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"paced\": {\n");
  std::fprintf(f,
               "      \"comment\": \"producers throttled to a hardware-like "
               "bit rate; measures serving-layer scaling\",\n");
  std::fprintf(f, "      \"pace_bits_per_s_per_producer\": %.0f,\n",
               pool_pace);
  std::fprintf(f, "      \"rows\": [\n");
  emit_pool_rows(f, paced_rows);
  std::fprintf(f, "    ]},\n");
  std::fprintf(f, "    \"unpaced\": {\n");
  std::fprintf(f,
               "      \"comment\": \"producers simulate flat out; bounded by "
               "CPU cores, not by the service layer\",\n");
  std::fprintf(f, "      \"rows\": [\n");
  emit_pool_rows(f, unpaced_rows);
  std::fprintf(f, "    ]}\n");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "perf_microbench: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  emit_throughput_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
