// google-benchmark microbenchmarks of the library's hot paths: the
// simulation inner loops, the extractor, post-processing and the
// statistical tests. These guard the practicality of the harness (Table 1
// regeneration runs millions of captures).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/elementary.hpp"
#include "core/extractor.hpp"
#include "core/trng.hpp"
#include "model/stochastic_model.hpp"
#include "stattests/sp800_22.hpp"

namespace {

using namespace trng;

void BM_Xoshiro(benchmark::State& state) {
  common::Xoshiro256StarStar rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void BM_GaussianDraw(benchmark::State& state) {
  common::Xoshiro256StarStar rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_gaussian());
}
BENCHMARK(BM_GaussianDraw);

void BM_TrngRawBit(benchmark::State& state) {
  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  core::DesignParams p;
  p.accumulation_cycles = static_cast<Cycles>(state.range(0));
  core::CarryChainTrng trng(fabric, p, 7);
  for (auto _ : state) benchmark::DoNotOptimize(trng.next_raw_bit());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrngRawBit)->Arg(1)->Arg(5)->Arg(20);

void BM_ElementaryAnalyticBit(benchmark::State& state) {
  core::ElementaryTrng trng(480.0, 2.0, 800, 7);
  for (auto _ : state) benchmark::DoNotOptimize(trng.next_bit());
}
BENCHMARK(BM_ElementaryAnalyticBit);

void BM_ExtractorDecode(benchmark::State& state) {
  core::EntropyExtractor ex(36, 1);
  std::vector<sim::LineSnapshot> lines(3, sim::LineSnapshot(36, false));
  for (int j = 0; j < 14; ++j) lines[1][static_cast<std::size_t>(j)] = true;
  for (auto _ : state) benchmark::DoNotOptimize(ex.extract(lines));
}
BENCHMARK(BM_ExtractorDecode);

void BM_ModelPOne(benchmark::State& state) {
  model::StochasticModel m{core::PlatformParams{}};
  double tau = 0.0;
  for (auto _ : state) {
    tau += 0.1;
    if (tau > 8.0) tau = 0.0;
    benchmark::DoNotOptimize(m.p_one(tau, 9.13, 1));
  }
}
BENCHMARK(BM_ModelPOne);

void BM_ModelPOneFolded(benchmark::State& state) {
  model::StochasticModel m{core::PlatformParams{}};
  double tau = 0.0;
  for (auto _ : state) {
    tau += 0.1;
    if (tau > 400.0) tau = 0.0;
    benchmark::DoNotOptimize(m.p_one_folded(tau, 28.9, 4));
  }
}
BENCHMARK(BM_ModelPOneFolded);

const common::BitStream& bench_bits() {
  static const common::BitStream bits = [] {
    common::Xoshiro256StarStar rng(99);
    common::BitStream b;
    for (int w = 0; w < 1 << 14; ++w) b.append_bits(rng.next(), 64);
    return b;  // 2^20 bits
  }();
  return bits;
}

void BM_NistFrequency(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::frequency_test(bench_bits()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bench_bits().size()));
}
BENCHMARK(BM_NistFrequency);

void BM_NistRuns(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::runs_test(bench_bits()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bench_bits().size()));
}
BENCHMARK(BM_NistRuns);

void BM_NistDft(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::dft_test(bench_bits()));
}
BENCHMARK(BM_NistDft);

void BM_NistSerial(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(stat::serial_test(bench_bits()));
}
BENCHMARK(BM_NistSerial);

void BM_BerlekampMassey500(benchmark::State& state) {
  std::vector<bool> block;
  common::Xoshiro256StarStar rng(5);
  for (int i = 0; i < 500; ++i) block.push_back(rng.next() & 1);
  for (auto _ : state) benchmark::DoNotOptimize(stat::berlekamp_massey(block));
}
BENCHMARK(BM_BerlekampMassey500);

void BM_XorFold(benchmark::State& state) {
  const auto& bits = bench_bits();
  for (auto _ : state) benchmark::DoNotOptimize(bits.xor_fold(7));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(bits.size()));
}
BENCHMARK(BM_XorFold);

}  // namespace

BENCHMARK_MAIN();
