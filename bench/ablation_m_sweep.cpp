// Ablation of Section 5.2: choosing the delay-line length m.
//
// The paper: the edge must always be captured, which needs
// m > d0 / t_step ~ 29 taps; with m = 32 (8 CARRY4) the edge escaped in
// 0.8% of captures on real silicon (slow LUTs exceed the average d0), so
// the shipped design uses m = 36 (9 CARRY4).
//
// This bench sweeps m over several dies — including deliberately slow
// process corners — and reports the missed-edge rate per (m, die).
#include <cstdio>

#include "bench_util.hpp"
#include "core/trng.hpp"
#include "fpga/fabric.hpp"

int main() {
  using namespace trng;
  const std::size_t captures = bench::env_size("TRNG_BENCH_BITS", 20000);
  bench::print_header("Section 5.2 ablation: missed-edge rate vs m");

  std::printf("%-5s", "m");
  constexpr int kDies = 6;
  for (int die = 0; die < kDies; ++die) std::printf("  die%-7d", die);
  std::printf(" worst-case\n");
  bench::print_rule(76);

  for (int m : {28, 32, 36, 40}) {
    std::printf("%-5d", m);
    double worst = 0.0;
    for (int die = 0; die < kDies; ++die) {
      // Slow corner: the last two dies run 6% / 10% slow, modelling the
      // "some LUTs may be slower" observation.
      fpga::FabricSpec spec;
      if (die == kDies - 2) spec.lut.nominal_delay_ps *= 1.06;
      if (die == kDies - 1) spec.lut.nominal_delay_ps *= 1.10;
      fpga::Fabric fabric(fpga::DeviceGeometry{},
                          9000 + static_cast<std::uint64_t>(die), spec);
      core::DesignParams p;
      p.m = m;
      p.mode = sim::SamplingMode::kFreeRunning;  // sweep all phases
      core::CarryChainTrng trng(fabric, p, 100 + static_cast<unsigned>(die));
      (void)trng.generate_raw(trng::common::Bits{captures});
      const double rate =
          100.0 * static_cast<double>(trng.diagnostics().missed_edges) /
          static_cast<double>(trng.diagnostics().captures);
      worst = rate > worst ? rate : worst;
      std::printf("  %7.3f%%", rate);
    }
    std::printf("  %7.3f%%\n", worst);
  }
  bench::print_rule(76);
  std::printf(
      "paper: m = 32 missed 0.8%% of edges; m = 36 captured every edge.\n"
      "expected shape: misses vanish once m * t_step comfortably exceeds\n"
      "the slowest die's d0 (m >= 36).\n");
  return 0;
}
