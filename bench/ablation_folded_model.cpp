// Beyond-the-paper ablation: the wrap-around (folded) refinement of the
// stochastic model.
//
// The paper's Eq. 3 treats the TDC as an unbounded axis of alternating
// bins. Because every oscillator tap feeds its own delay line, the
// observable first-edge position actually wraps with period d0 — and when
// d0 / (k t_step) sits near an unfavourable value, the wrapped image lands
// on the SAME output parity, collapsing the worst-case entropy below
// Eq. 3's bound. This bench quantifies the gap across the design space and
// demonstrates a die where the collapse is empirically visible.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/trng.hpp"
#include "model/nonlinearity.hpp"
#include "model/stochastic_model.hpp"
#include "stattests/estimators.hpp"

int main() {
  using namespace trng;
  const std::size_t bits = bench::env_size("TRNG_BENCH_BITS", 40000);
  bench::print_header("Extension: folded (wrap-aware) entropy lower bound");

  core::PlatformParams platform;
  model::StochasticModel m(platform);

  std::printf("%-4s %-8s %-10s %-10s %-8s\n", "k", "tA[ns]", "Eq.3 bound",
              "folded", "gap");
  bench::print_rule(44);
  for (int k : {1, 2, 4}) {
    for (Cycles na : {1, 2, 5, 10, 20}) {
      const double t_a = static_cast<double>(na) * 10000.0;
      const double eq3 = m.entropy_lower_bound(t_a, k);
      const double folded = m.folded_entropy_lower_bound(t_a, k);
      std::printf("%-4d %-8llu %-10.4f %-10.4f %-8.4f\n", k,
                  static_cast<unsigned long long>(na) * 10, eq3, folded,
                  eq3 - folded);
    }
  }
  bench::print_rule(44);

  // Empirical demonstration: sweep dies at k=4, tA=100ns with white-only
  // noise (pinned tau) and show the worst die falls below Eq. 3 but not
  // below the folded+DNL-aware bound.
  std::printf("\nempirical die sweep (k=4, tA=100ns, white-only noise):\n");
  std::printf("%-6s %-12s %-12s %-12s %-12s\n", "die", "H(sim)",
              "Eq.3 bound", "folded", "DNL-aware");
  bench::print_rule(60);
  const double eq3 = m.entropy_lower_bound(100000.0, 4);
  const double folded = m.folded_entropy_lower_bound(100000.0, 4);
  for (std::uint64_t die = 1; die <= 5; ++die) {
    fpga::Fabric fabric(fpga::DeviceGeometry{}, 2000 + die);
    const auto fp =
        fpga::TrngFloorplan::canonical(fabric.geometry(), 3, 36, 0, 17);
    const auto elaborated = fabric.elaborate(fp, 4);
    const double dnl_bound = model::dnl_aware_entropy_bound(
        m, elaborated, 100000.0, 4,
        3.0 * fabric.spec().flip_flop.static_offset_sigma_ps);
    core::DesignParams p;
    p.k = 4;
    p.accumulation_cycles = 10;
    core::CarryChainTrng trng(fabric, p, die, sim::NoiseConfig::white_only());
    const double h = common::binary_entropy(
        trng.generate_raw(trng::common::Bits{bits}).ones_fraction());
    std::printf("%-6llu %-12.4f %-12.4f %-12.4f %-12.4f%s\n",
                static_cast<unsigned long long>(die), h, eq3, folded,
                dnl_bound, h < eq3 ? "   <- below Eq. 3!" : "");
  }
  bench::print_rule(60);
  std::printf(
      "takeaway: Eq. 3 is NOT a sound per-die lower bound at k = 4 — the\n"
      "wrap pocket plus bin non-linearity push worst-case dies below it.\n"
      "The folded/DNL-aware bounds remain sound; design guidance: choose\n"
      "n, m, k so that d0/(k t_step) avoids near-even integers, or rely on\n"
      "XOR post-processing budgeted against the folded bound.\n");
  return 0;
}
