// Reproduces Table 2: "Comparison with related work."
//
// For each related design the bench reports the published platform /
// resources / throughput (what Table 2 compares) and additionally runs the
// behavioural simulation of each baseline through a fast statistical
// screen, demonstrating that every simulated generator actually produces
// usable randomness at its reported rate.
#include <cstdio>

#include "bench_util.hpp"
#include "core/baselines/str_trng.hpp"
#include "core/baselines/sunar_trng.hpp"
#include "core/baselines/tero_trng.hpp"
#include "core/trng.hpp"
#include "stattests/battery.hpp"

namespace {

using namespace trng;

void print_row(const char* work, const char* platform, const char* resources,
               double throughput_mbps, const char* screen) {
  std::printf("%-42s %-13s %-12s %10.2f   %s\n", work, platform, resources,
              throughput_mbps, screen);
}

const char* screen_verdict(core::baselines::BaselineTrng& trng,
                           std::size_t bits) {
  stat::TestBattery::Options opt;
  opt.include_slow = false;
  stat::TestBattery battery(opt);
  const auto report = battery.run(trng.generate(bits));
  return report.all_passed() ? "passes screen" : "fails screen";
}

}  // namespace

int main() {
  const std::size_t bits = bench::env_size("TRNG_BENCH_BITS", 120000);

  bench::print_header("Table 2: comparison with related work");
  std::printf("%-42s %-13s %-12s %10s   %s\n", "work", "platform",
              "resources", "TP [Mb/s]", "statistical screen (sim)");
  bench::print_rule(100);

  core::baselines::SunarSchellekensTrng sunar(101);
  const auto si = sunar.info();
  print_row(si.work.c_str(), si.platform.c_str(), si.resources.c_str(),
            si.throughput_bps / 1.0e6, screen_verdict(sunar, bits));

  // Cyclone-3 figures: 133 MHz output; the faster sample clock leaves
  // less jitter accumulation per sample, compensated by the Cyclone
  // ring's larger per-period jitter.
  core::baselines::SelfTimedRingTrng str_cyclone(
      core::baselines::SelfTimedRingTrng::Params{511, 2497.3, 4.5, 133.0e6},
      102);
  print_row("[1] Cherkaoui et al. (self-timed ring)", "Cyclone 3",
            ">511 LUTs", 133.0, screen_verdict(str_cyclone, bits));

  core::baselines::SelfTimedRingTrng str_virtex(103);
  const auto ri = str_virtex.info();
  print_row(ri.work.c_str(), ri.platform.c_str(), ri.resources.c_str(),
            ri.throughput_bps / 1.0e6, screen_verdict(str_virtex, bits));

  core::baselines::TeroTrng tero(104);
  const auto ti = tero.info();
  print_row(ti.work.c_str(), ti.platform.c_str(), ti.resources.c_str(),
            ti.throughput_bps / 1.0e6, screen_verdict(tero, bits));

  // This work: both versions, resources from the elaborated design,
  // throughput = f_clk / (NA * n_NIST) with Table 1's parameters.
  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  {
    core::DesignParams p;  // k = 1, tA = 10 ns, np = 7
    p.np = 7;
    core::CarryChainTrng trng(fabric, p, 105);
    stat::TestBattery::Options opt;
    opt.include_slow = false;
    stat::TestBattery battery(opt);
    const bool ok = battery.run(trng.generate(bits)).all_passed();
    char res[24];
    std::snprintf(res, sizeof res, "%d slices", trng.resources().slices);
    print_row("This work (k=1)", "Spartan 6 (sim)", res,
              trng.throughput_bps() / 1.0e6,
              ok ? "passes screen" : "fails screen");
  }
  {
    // k = 4 entry: with our measured sigma_LUT = 2.0 ps the 50 ns point
    // needs more compression than the paper's 13 (its H_RAW implies an
    // effective sigma ~2.8 ps, see EXPERIMENTS.md); use the 200 ns / np=6
    // row, which both the paper and our die support.
    core::DesignParams p;
    p.k = 4;
    p.accumulation_cycles = 20;  // tA = 200 ns
    p.np = 9;  // our die's measured n_NIST for this row (paper die: 6)
    core::CarryChainTrng trng(fabric, p, 106);
    stat::TestBattery::Options opt;
    opt.include_slow = false;
    stat::TestBattery battery(opt);
    const bool ok = battery.run(trng.generate(bits)).all_passed();
    char res[24];
    std::snprintf(res, sizeof res, "%d slices", trng.resources().slices);
    print_row("This work (k=4)", "Spartan 6 (sim)", res,
              trng.throughput_bps() / 1.0e6,
              ok ? "passes screen" : "fails screen");
  }

  bench::print_rule(100);
  std::printf(
      "paper rows: [8] 565 slices / 2.5 Mb/s; [1] >511 LUTs / 133 & 100\n"
      "Mb/s; [11] not reported / 0.25 Mb/s; this work 67 slices / 14.3 Mb/s\n"
      "(k=1) and 40 slices / 1.53 Mb/s (k=4; we run the 200 ns point\n"
      "at 0.83 Mb/s -- see the np discussion in EXPERIMENTS.md).\n");
  return 0;
}
