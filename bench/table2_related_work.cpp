// Reproduces Table 2: "Comparison with related work."
//
// Every row is produced the same way: the canonical source registry hands
// out a BitSource per design (post-processing decorators already applied),
// the row's platform / resources / throughput come from its SourceInfo,
// and the behavioural simulation is run through a fast statistical screen
// — demonstrating that every simulated generator actually produces usable
// randomness at its reported rate. No concrete generator types appear
// here; adding a design to the registry adds its row.
#include <cstdio>

#include "bench_util.hpp"
#include "core/source_registry.hpp"
#include "fpga/fabric.hpp"
#include "stattests/battery.hpp"

namespace {

using namespace trng;

void print_row(const core::SourceInfo& si, const char* screen) {
  std::printf("%-42s %-13s %-12s %10.2f   %s\n", si.name.c_str(),
              si.platform.c_str(), si.resources.c_str(),
              si.throughput_bps / 1.0e6, screen);
}

const char* screen_verdict(core::BitSource& source, std::size_t bits) {
  stat::TestBattery::Options opt;
  opt.include_slow = false;
  stat::TestBattery battery(opt);
  const auto report = battery.run(source, trng::common::Bits{bits});
  return report.all_passed() ? "passes screen" : "fails screen";
}

}  // namespace

int main() {
  const std::size_t bits = bench::env_size("TRNG_BENCH_BITS", 120000);

  bench::print_header("Table 2: comparison with related work");
  std::printf("%-42s %-13s %-12s %10s   %s\n", "work", "platform",
              "resources", "TP [Mb/s]", "statistical screen (sim)");
  bench::print_rule(100);

  const fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);
  std::uint64_t seed = 101;
  for (const auto& factory : core::canonical_sources(fabric)) {
    const auto source = factory.make(seed++);
    print_row(source->info(), screen_verdict(*source, bits));
  }

  bench::print_rule(100);
  std::printf(
      "paper rows: [8] 565 slices / 2.5 Mb/s; [1] >511 LUTs / 133 & 100\n"
      "Mb/s; [11] not reported / 0.25 Mb/s; this work 67 slices / 14.3 Mb/s\n"
      "(k=1) and 40 slices / 1.53 Mb/s (k=4; we run the 200 ns point\n"
      "at 0.83 Mb/s -- see the np discussion in EXPERIMENTS.md).\n"
      "The elementary-RO row is Section 5.3's comparison baseline, not a\n"
      "Table-2 entry in the paper.\n");
  return 0;
}
