// Robustness ablation (paper Section 3): "the delay of the oscillator
// elements as well as the time-step of the conversion can vary due to the
// temperature or voltage variations and [the] signal edge has to be
// detected under the worst-case conditions."
//
// Sweeps the commercial environmental envelope and reports, per operating
// point: the scaled d0 and t_step, the missed-edge rate at the paper's
// m = 36 (must stay zero — both the oscillator and the TDC scale together,
// so the m-margin survives), the raw-entropy estimate, and the screen
// verdict at the Table-1 working point.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/trng.hpp"
#include "fpga/operating_point.hpp"
#include "stattests/battery.hpp"

int main() {
  using namespace trng;
  const std::size_t bits = bench::env_size("TRNG_BENCH_BITS", 50000);
  bench::print_header(
      "Environmental robustness: temperature / voltage envelope");

  const fpga::Fabric nominal(fpga::DeviceGeometry{}, 42);
  const fpga::OperatingPoint points[] = {
      fpga::OperatingPoint::cold_high_voltage(),
      {0.0, 1.2},
      fpga::OperatingPoint::nominal(),
      {85.0, 1.2},
      fpga::OperatingPoint::hot_low_voltage(),
  };

  std::printf("%-18s %-8s %-8s %-9s %-9s %-10s %s\n", "operating point",
              "d0[ps]", "t_s[ps]", "sigma[ps]", "miss rate", "H(sim,np7)",
              "passes at");
  bench::print_rule(80);

  for (const auto& op : points) {
    const fpga::Fabric fabric = nominal.at(op);
    const auto fp =
        fpga::TrngFloorplan::canonical(fabric.geometry(), 3, 36, 0, 17);
    const auto elaborated = fabric.elaborate(fp);
    const double d0 = elaborated.ro_half_period() / 3.0;
    const double t_step = elaborated.lines[0].total_delay() / 36.0;

    core::DesignParams params;  // Table-1 working point: k=1, tA=10 ns
    core::CarryChainTrng trng(fabric, params, 9);
    const auto raw = trng.generate_raw(trng::common::Bits{bits * 8});
    const auto out = raw.xor_fold(7);
    const double miss_rate =
        static_cast<double>(trng.diagnostics().missed_edges) /
        static_cast<double>(trng.diagnostics().captures);

    // The exact np needed wobbles with the operating point's tau; search
    // upward from the Table-1 value like the n_NIST column does.
    stat::TestBattery::Options opt;
    opt.include_slow = false;
    stat::TestBattery battery(opt);
    unsigned np_needed = 0;
    for (unsigned np = 7; np <= 12 && np_needed == 0; ++np) {
      if (battery.run(trng.generate_raw(trng::common::Bits{bits * np}).xor_fold(np))
              .all_passed()) {
        np_needed = np;
      }
    }

    char label[32];
    std::snprintf(label, sizeof label, "%.0fC / %.2fV", op.temperature_c,
                  op.vdd_v);
    char np_str[12];
    if (np_needed > 0) {
      std::snprintf(np_str, sizeof np_str, "np=%u", np_needed);
    } else {
      std::snprintf(np_str, sizeof np_str, ">12");
    }
    std::printf("%-18s %-8.1f %-8.2f %-9.2f %-9.5f %-10.4f %s\n", label, d0,
                t_step, elaborated.stage_white_sigma_ps, miss_rate,
                common::binary_entropy(out.ones_fraction()), np_str);
  }
  bench::print_rule(80);
  std::printf(
      "expected shape: d0 and t_step scale together (the m = 36 margin\n"
      "holds -> zero missed edges everywhere); hotter dies jitter slightly\n"
      "more (sigma ~ sqrt(T)); the design passes with np within 1-2 of the\n"
      "Table-1 value across the whole envelope.\n");
  return 0;
}
