// Reproduces Eq. 8: the throughput improvement of carry-chain entropy
// extraction over elementary clock sampling scales with the SQUARE of the
// timing resolution:
//
//   (d0 / t_step)^2       = 797   (k = 1)
//   (d0 / (4 t_step))^2   = 49.8  (k = 4)
//
// Three levels of evidence are printed:
//   1. the closed-form factors (exactly the paper's numbers),
//   2. model-level: the ratio of minimal accumulation times to reach the
//      same entropy bound (H >= 0.997) from the stochastic model, for the
//      TDC extractor vs a sampler with resolution d0,
//   3. empirical: the accumulation time at which each simulated
//      generator's P1 converges to its large-t_A asymptote.
#include <cmath>
#include <cstdio>
#include <optional>

#include "bench_util.hpp"
#include "core/elementary.hpp"
#include "core/trng.hpp"
#include "model/design_space.hpp"

namespace {

using namespace trng;

}  // namespace

int main() {
  const std::size_t bits = bench::env_size("TRNG_BENCH_BITS", 50000);
  bench::print_header("Eq. 8: throughput improvement of TDC extraction");

  core::PlatformParams platform;
  model::StochasticModel tdc_model(platform);
  std::printf("closed form (paper): k=1 -> %.0f (797), k=4 -> %.1f (49.8)\n",
              tdc_model.improvement_factor(1), tdc_model.improvement_factor(4));

  // Model-level: minimal accumulation time for H >= 0.997.
  core::PlatformParams elementary_platform = platform;
  elementary_platform.t_step_ps = platform.d0_lut_ps;
  model::StochasticModel elem_model(elementary_platform);
  model::DesignSpaceExplorer tdc_explorer(tdc_model);
  model::DesignSpaceExplorer elem_explorer(elem_model);
  const double target = 0.997;
  const double t_tdc = tdc_explorer.min_accumulation_time_ps(1, target, 0.5);
  const double t_tdc4 = tdc_explorer.min_accumulation_time_ps(4, target, 0.5);
  const double t_elem = elem_explorer.min_accumulation_time_ps(1, target, 0.5);
  std::printf(
      "model minimal tA for H >= %.3f: TDC k=1 %.1f ns, TDC k=4 %.1f ns, "
      "elementary %.1f ns\n",
      target, t_tdc / 1000.0, t_tdc4 / 1000.0, t_elem / 1000.0);
  std::printf("  ratios: elementary/TDC(k=1) = %.0f, elementary/TDC(k=4) = %.1f\n",
              t_elem / t_tdc, t_elem / t_tdc4);

  // Empirical: accumulation time at which each generator's P1 converges to
  // its own large-t_A asymptote (|P1 - P1_inf| < eps). This isolates the
  // jitter-accumulation speed — the quantity Eq. 8 is about — from the
  // structural parity bias of the TDC (the CARRY4's alternating narrow/
  // wide taps keep P1_inf away from 1/2 at ANY accumulation time; XOR
  // post-processing, not accumulation, removes that component — which is
  // also why Table 1 needs n_NIST = 7 even at H_RAW = 0.99).
  // White-only noise on both sides.
  constexpr double kEps = 0.015;
  fpga::Fabric fabric(fpga::DeviceGeometry{}, 42);

  auto tdc_p1 = [&](Cycles na) {
    core::DesignParams p;
    p.accumulation_cycles = na;
    core::CarryChainTrng trng(fabric, p, 55,
                              sim::NoiseConfig::white_only());
    return trng.generate_raw(trng::common::Bits{bits}).ones_fraction();
  };
  const double tdc_inf = tdc_p1(64);
  std::optional<Cycles> tdc_pass;
  for (Cycles na : {1, 2, 3, 4, 6, 8, 12}) {
    if (std::fabs(tdc_p1(na) - tdc_inf) < kEps) {
      tdc_pass = na;
      break;
    }
  }

  auto elem_p1 = [&](Cycles na) {
    core::ElementaryTrng trng(platform.d0_lut_ps, platform.sigma_lut_ps, na,
                              77);
    return trng.generate(trng::common::Bits{bits}).ones_fraction();
  };
  const double elem_inf = elem_p1(200000);
  std::optional<Cycles> elem_pass;
  for (Cycles na : {200, 400, 800, 1600, 2400, 3200, 4800, 6400}) {
    if (std::fabs(elem_p1(na) - elem_inf) < kEps) {
      elem_pass = na;
      break;
    }
  }

  if (tdc_pass && elem_pass) {
    std::printf(
        "empirical P1 convergence (|P1 - P1_inf| < %.3f, %zu bits):\n"
        "  TDC (P1_inf = %.3f, structural parity bias included) at tA = "
        "%llu0 ns\n"
        "  elementary (P1_inf = %.3f) at tA = %llu0 ns\n"
        "  -> measured accumulation-time improvement: %.0fx\n",
        kEps, bits, tdc_inf, static_cast<unsigned long long>(*tdc_pass),
        elem_inf, static_cast<unsigned long long>(*elem_pass),
        static_cast<double>(*elem_pass) / static_cast<double>(*tdc_pass));
  } else {
    std::printf("empirical sweep did not bracket both convergence points "
                "(TDC %s, elementary %s)\n", tdc_pass ? "ok" : "none",
                elem_pass ? "ok" : "none");
  }
  std::printf(
      "(cycle-grid quantization and die-specific tau make the empirical\n"
      "ratio coarse; the paper's claim — ~3 orders of magnitude between\n"
      "elementary and TDC accumulation times — is the shape to check)\n");
  return 0;
}
