# Empty dependencies file for platform_characterization.
# This may be replaced when dependencies are built.
