file(REMOVE_RECURSE
  "CMakeFiles/platform_characterization.dir/platform_characterization.cpp.o"
  "CMakeFiles/platform_characterization.dir/platform_characterization.cpp.o.d"
  "platform_characterization"
  "platform_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
