# Empty dependencies file for online_health_monitor.
# This may be replaced when dependencies are built.
