file(REMOVE_RECURSE
  "CMakeFiles/online_health_monitor.dir/online_health_monitor.cpp.o"
  "CMakeFiles/online_health_monitor.dir/online_health_monitor.cpp.o.d"
  "online_health_monitor"
  "online_health_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_health_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
