# Empty dependencies file for injection_attack.
# This may be replaced when dependencies are built.
