file(REMOVE_RECURSE
  "CMakeFiles/injection_attack.dir/injection_attack.cpp.o"
  "CMakeFiles/injection_attack.dir/injection_attack.cpp.o.d"
  "injection_attack"
  "injection_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/injection_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
