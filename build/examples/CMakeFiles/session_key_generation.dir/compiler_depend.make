# Empty compiler generated dependencies file for session_key_generation.
# This may be replaced when dependencies are built.
