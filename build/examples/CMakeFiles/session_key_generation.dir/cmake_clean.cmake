file(REMOVE_RECURSE
  "CMakeFiles/session_key_generation.dir/session_key_generation.cpp.o"
  "CMakeFiles/session_key_generation.dir/session_key_generation.cpp.o.d"
  "session_key_generation"
  "session_key_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_key_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
