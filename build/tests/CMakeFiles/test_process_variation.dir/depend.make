# Empty dependencies file for test_process_variation.
# This may be replaced when dependencies are built.
