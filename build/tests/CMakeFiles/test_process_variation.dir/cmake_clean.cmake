file(REMOVE_RECURSE
  "CMakeFiles/test_process_variation.dir/test_process_variation.cpp.o"
  "CMakeFiles/test_process_variation.dir/test_process_variation.cpp.o.d"
  "test_process_variation"
  "test_process_variation.pdb"
  "test_process_variation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
