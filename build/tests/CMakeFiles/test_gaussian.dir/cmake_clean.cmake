file(REMOVE_RECURSE
  "CMakeFiles/test_gaussian.dir/test_gaussian.cpp.o"
  "CMakeFiles/test_gaussian.dir/test_gaussian.cpp.o.d"
  "test_gaussian"
  "test_gaussian.pdb"
  "test_gaussian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gaussian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
