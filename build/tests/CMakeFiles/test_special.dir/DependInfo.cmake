
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_special.cpp" "tests/CMakeFiles/test_special.dir/test_special.cpp.o" "gcc" "tests/CMakeFiles/test_special.dir/test_special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/trng_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trng_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stattests/CMakeFiles/trng_stattests.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trng_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/trng_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
