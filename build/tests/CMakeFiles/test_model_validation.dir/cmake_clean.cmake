file(REMOVE_RECURSE
  "CMakeFiles/test_model_validation.dir/test_model_validation.cpp.o"
  "CMakeFiles/test_model_validation.dir/test_model_validation.cpp.o.d"
  "test_model_validation"
  "test_model_validation.pdb"
  "test_model_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
