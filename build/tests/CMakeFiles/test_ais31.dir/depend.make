# Empty dependencies file for test_ais31.
# This may be replaced when dependencies are built.
