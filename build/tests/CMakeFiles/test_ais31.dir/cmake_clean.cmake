file(REMOVE_RECURSE
  "CMakeFiles/test_ais31.dir/test_ais31.cpp.o"
  "CMakeFiles/test_ais31.dir/test_ais31.cpp.o.d"
  "test_ais31"
  "test_ais31.pdb"
  "test_ais31[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ais31.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
