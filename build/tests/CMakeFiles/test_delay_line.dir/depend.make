# Empty dependencies file for test_delay_line.
# This may be replaced when dependencies are built.
