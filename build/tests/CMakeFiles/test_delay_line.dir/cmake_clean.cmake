file(REMOVE_RECURSE
  "CMakeFiles/test_delay_line.dir/test_delay_line.cpp.o"
  "CMakeFiles/test_delay_line.dir/test_delay_line.cpp.o.d"
  "test_delay_line"
  "test_delay_line.pdb"
  "test_delay_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delay_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
