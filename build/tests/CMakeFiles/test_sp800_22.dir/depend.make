# Empty dependencies file for test_sp800_22.
# This may be replaced when dependencies are built.
