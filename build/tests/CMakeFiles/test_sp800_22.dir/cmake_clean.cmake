file(REMOVE_RECURSE
  "CMakeFiles/test_sp800_22.dir/test_sp800_22.cpp.o"
  "CMakeFiles/test_sp800_22.dir/test_sp800_22.cpp.o.d"
  "test_sp800_22"
  "test_sp800_22.pdb"
  "test_sp800_22[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sp800_22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
