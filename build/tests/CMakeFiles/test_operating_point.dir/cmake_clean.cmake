file(REMOVE_RECURSE
  "CMakeFiles/test_operating_point.dir/test_operating_point.cpp.o"
  "CMakeFiles/test_operating_point.dir/test_operating_point.cpp.o.d"
  "test_operating_point"
  "test_operating_point.pdb"
  "test_operating_point[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operating_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
