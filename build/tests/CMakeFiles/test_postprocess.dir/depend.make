# Empty dependencies file for test_postprocess.
# This may be replaced when dependencies are built.
