file(REMOVE_RECURSE
  "CMakeFiles/test_stochastic_model.dir/test_stochastic_model.cpp.o"
  "CMakeFiles/test_stochastic_model.dir/test_stochastic_model.cpp.o.d"
  "test_stochastic_model"
  "test_stochastic_model.pdb"
  "test_stochastic_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stochastic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
