# Empty dependencies file for test_stochastic_model.
# This may be replaced when dependencies are built.
