file(REMOVE_RECURSE
  "CMakeFiles/test_trng.dir/test_trng.cpp.o"
  "CMakeFiles/test_trng.dir/test_trng.cpp.o.d"
  "test_trng"
  "test_trng.pdb"
  "test_trng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
