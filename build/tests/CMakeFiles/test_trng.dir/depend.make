# Empty dependencies file for test_trng.
# This may be replaced when dependencies are built.
