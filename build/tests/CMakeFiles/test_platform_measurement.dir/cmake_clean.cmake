file(REMOVE_RECURSE
  "CMakeFiles/test_platform_measurement.dir/test_platform_measurement.cpp.o"
  "CMakeFiles/test_platform_measurement.dir/test_platform_measurement.cpp.o.d"
  "test_platform_measurement"
  "test_platform_measurement.pdb"
  "test_platform_measurement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
