file(REMOVE_RECURSE
  "CMakeFiles/test_ring_oscillator.dir/test_ring_oscillator.cpp.o"
  "CMakeFiles/test_ring_oscillator.dir/test_ring_oscillator.cpp.o.d"
  "test_ring_oscillator"
  "test_ring_oscillator.pdb"
  "test_ring_oscillator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
