# Empty compiler generated dependencies file for test_ring_oscillator.
# This may be replaced when dependencies are built.
