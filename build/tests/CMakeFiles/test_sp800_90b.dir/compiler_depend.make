# Empty compiler generated dependencies file for test_sp800_90b.
# This may be replaced when dependencies are built.
