file(REMOVE_RECURSE
  "CMakeFiles/test_sp800_90b.dir/test_sp800_90b.cpp.o"
  "CMakeFiles/test_sp800_90b.dir/test_sp800_90b.cpp.o.d"
  "test_sp800_90b"
  "test_sp800_90b.pdb"
  "test_sp800_90b[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sp800_90b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
