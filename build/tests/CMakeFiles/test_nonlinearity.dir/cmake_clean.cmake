file(REMOVE_RECURSE
  "CMakeFiles/test_nonlinearity.dir/test_nonlinearity.cpp.o"
  "CMakeFiles/test_nonlinearity.dir/test_nonlinearity.cpp.o.d"
  "test_nonlinearity"
  "test_nonlinearity.pdb"
  "test_nonlinearity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonlinearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
