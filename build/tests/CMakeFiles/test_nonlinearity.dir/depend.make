# Empty dependencies file for test_nonlinearity.
# This may be replaced when dependencies are built.
