# Empty dependencies file for test_elementary.
# This may be replaced when dependencies are built.
