file(REMOVE_RECURSE
  "CMakeFiles/test_elementary.dir/test_elementary.cpp.o"
  "CMakeFiles/test_elementary.dir/test_elementary.cpp.o.d"
  "test_elementary"
  "test_elementary.pdb"
  "test_elementary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elementary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
