# Empty dependencies file for eq8_improvement.
# This may be replaced when dependencies are built.
