file(REMOVE_RECURSE
  "../bench/eq8_improvement"
  "../bench/eq8_improvement.pdb"
  "CMakeFiles/eq8_improvement.dir/eq8_improvement.cpp.o"
  "CMakeFiles/eq8_improvement.dir/eq8_improvement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq8_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
