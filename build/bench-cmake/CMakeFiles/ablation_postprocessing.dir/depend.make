# Empty dependencies file for ablation_postprocessing.
# This may be replaced when dependencies are built.
