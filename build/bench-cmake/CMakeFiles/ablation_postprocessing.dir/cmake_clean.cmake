file(REMOVE_RECURSE
  "../bench/ablation_postprocessing"
  "../bench/ablation_postprocessing.pdb"
  "CMakeFiles/ablation_postprocessing.dir/ablation_postprocessing.cpp.o"
  "CMakeFiles/ablation_postprocessing.dir/ablation_postprocessing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_postprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
