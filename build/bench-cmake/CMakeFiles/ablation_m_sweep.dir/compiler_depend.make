# Empty compiler generated dependencies file for ablation_m_sweep.
# This may be replaced when dependencies are built.
