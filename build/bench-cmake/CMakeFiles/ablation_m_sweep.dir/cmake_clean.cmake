file(REMOVE_RECURSE
  "../bench/ablation_m_sweep"
  "../bench/ablation_m_sweep.pdb"
  "CMakeFiles/ablation_m_sweep.dir/ablation_m_sweep.cpp.o"
  "CMakeFiles/ablation_m_sweep.dir/ablation_m_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_m_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
