# Empty compiler generated dependencies file for fig7_entropy_vs_tau.
# This may be replaced when dependencies are built.
