file(REMOVE_RECURSE
  "../bench/fig7_entropy_vs_tau"
  "../bench/fig7_entropy_vs_tau.pdb"
  "CMakeFiles/fig7_entropy_vs_tau.dir/fig7_entropy_vs_tau.cpp.o"
  "CMakeFiles/fig7_entropy_vs_tau.dir/fig7_entropy_vs_tau.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_entropy_vs_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
