# Empty dependencies file for ablation_platforms.
# This may be replaced when dependencies are built.
