file(REMOVE_RECURSE
  "../bench/ablation_platforms"
  "../bench/ablation_platforms.pdb"
  "CMakeFiles/ablation_platforms.dir/ablation_platforms.cpp.o"
  "CMakeFiles/ablation_platforms.dir/ablation_platforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
