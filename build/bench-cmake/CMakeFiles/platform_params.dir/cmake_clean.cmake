file(REMOVE_RECURSE
  "../bench/platform_params"
  "../bench/platform_params.pdb"
  "CMakeFiles/platform_params.dir/platform_params.cpp.o"
  "CMakeFiles/platform_params.dir/platform_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
