# Empty compiler generated dependencies file for platform_params.
# This may be replaced when dependencies are built.
