file(REMOVE_RECURSE
  "../bench/table2_related_work"
  "../bench/table2_related_work.pdb"
  "CMakeFiles/table2_related_work.dir/table2_related_work.cpp.o"
  "CMakeFiles/table2_related_work.dir/table2_related_work.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
