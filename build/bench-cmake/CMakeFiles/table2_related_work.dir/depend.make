# Empty dependencies file for table2_related_work.
# This may be replaced when dependencies are built.
