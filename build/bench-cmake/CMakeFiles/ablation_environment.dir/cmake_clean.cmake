file(REMOVE_RECURSE
  "../bench/ablation_environment"
  "../bench/ablation_environment.pdb"
  "CMakeFiles/ablation_environment.dir/ablation_environment.cpp.o"
  "CMakeFiles/ablation_environment.dir/ablation_environment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
