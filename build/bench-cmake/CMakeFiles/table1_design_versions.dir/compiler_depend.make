# Empty compiler generated dependencies file for table1_design_versions.
# This may be replaced when dependencies are built.
