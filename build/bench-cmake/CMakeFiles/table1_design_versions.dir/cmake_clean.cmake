file(REMOVE_RECURSE
  "../bench/table1_design_versions"
  "../bench/table1_design_versions.pdb"
  "CMakeFiles/table1_design_versions.dir/table1_design_versions.cpp.o"
  "CMakeFiles/table1_design_versions.dir/table1_design_versions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_design_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
