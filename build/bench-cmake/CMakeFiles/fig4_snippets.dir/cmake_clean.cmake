file(REMOVE_RECURSE
  "../bench/fig4_snippets"
  "../bench/fig4_snippets.pdb"
  "CMakeFiles/fig4_snippets.dir/fig4_snippets.cpp.o"
  "CMakeFiles/fig4_snippets.dir/fig4_snippets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_snippets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
