# Empty dependencies file for fig4_snippets.
# This may be replaced when dependencies are built.
