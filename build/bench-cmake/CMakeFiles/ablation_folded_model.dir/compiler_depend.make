# Empty compiler generated dependencies file for ablation_folded_model.
# This may be replaced when dependencies are built.
