file(REMOVE_RECURSE
  "../bench/ablation_folded_model"
  "../bench/ablation_folded_model.pdb"
  "CMakeFiles/ablation_folded_model.dir/ablation_folded_model.cpp.o"
  "CMakeFiles/ablation_folded_model.dir/ablation_folded_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_folded_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
