# Empty compiler generated dependencies file for ablation_nonlinearity.
# This may be replaced when dependencies are built.
