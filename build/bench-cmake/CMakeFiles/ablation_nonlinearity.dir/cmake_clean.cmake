file(REMOVE_RECURSE
  "../bench/ablation_nonlinearity"
  "../bench/ablation_nonlinearity.pdb"
  "CMakeFiles/ablation_nonlinearity.dir/ablation_nonlinearity.cpp.o"
  "CMakeFiles/ablation_nonlinearity.dir/ablation_nonlinearity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonlinearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
