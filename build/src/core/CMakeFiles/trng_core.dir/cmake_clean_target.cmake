file(REMOVE_RECURSE
  "libtrng_core.a"
)
