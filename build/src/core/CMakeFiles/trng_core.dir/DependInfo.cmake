
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines/str_trng.cpp" "src/core/CMakeFiles/trng_core.dir/baselines/str_trng.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/baselines/str_trng.cpp.o.d"
  "/root/repo/src/core/baselines/sunar_trng.cpp" "src/core/CMakeFiles/trng_core.dir/baselines/sunar_trng.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/baselines/sunar_trng.cpp.o.d"
  "/root/repo/src/core/baselines/tero_trng.cpp" "src/core/CMakeFiles/trng_core.dir/baselines/tero_trng.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/baselines/tero_trng.cpp.o.d"
  "/root/repo/src/core/elementary.cpp" "src/core/CMakeFiles/trng_core.dir/elementary.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/elementary.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/core/CMakeFiles/trng_core.dir/extractor.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/extractor.cpp.o.d"
  "/root/repo/src/core/health.cpp" "src/core/CMakeFiles/trng_core.dir/health.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/health.cpp.o.d"
  "/root/repo/src/core/postprocess.cpp" "src/core/CMakeFiles/trng_core.dir/postprocess.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/postprocess.cpp.o.d"
  "/root/repo/src/core/trng.cpp" "src/core/CMakeFiles/trng_core.dir/trng.cpp.o" "gcc" "src/core/CMakeFiles/trng_core.dir/trng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/trng_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trng_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
