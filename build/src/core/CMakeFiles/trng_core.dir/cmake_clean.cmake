file(REMOVE_RECURSE
  "CMakeFiles/trng_core.dir/baselines/str_trng.cpp.o"
  "CMakeFiles/trng_core.dir/baselines/str_trng.cpp.o.d"
  "CMakeFiles/trng_core.dir/baselines/sunar_trng.cpp.o"
  "CMakeFiles/trng_core.dir/baselines/sunar_trng.cpp.o.d"
  "CMakeFiles/trng_core.dir/baselines/tero_trng.cpp.o"
  "CMakeFiles/trng_core.dir/baselines/tero_trng.cpp.o.d"
  "CMakeFiles/trng_core.dir/elementary.cpp.o"
  "CMakeFiles/trng_core.dir/elementary.cpp.o.d"
  "CMakeFiles/trng_core.dir/extractor.cpp.o"
  "CMakeFiles/trng_core.dir/extractor.cpp.o.d"
  "CMakeFiles/trng_core.dir/health.cpp.o"
  "CMakeFiles/trng_core.dir/health.cpp.o.d"
  "CMakeFiles/trng_core.dir/postprocess.cpp.o"
  "CMakeFiles/trng_core.dir/postprocess.cpp.o.d"
  "CMakeFiles/trng_core.dir/trng.cpp.o"
  "CMakeFiles/trng_core.dir/trng.cpp.o.d"
  "libtrng_core.a"
  "libtrng_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
