# Empty compiler generated dependencies file for trng_core.
# This may be replaced when dependencies are built.
