
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitstream.cpp" "src/common/CMakeFiles/trng_common.dir/bitstream.cpp.o" "gcc" "src/common/CMakeFiles/trng_common.dir/bitstream.cpp.o.d"
  "/root/repo/src/common/gaussian.cpp" "src/common/CMakeFiles/trng_common.dir/gaussian.cpp.o" "gcc" "src/common/CMakeFiles/trng_common.dir/gaussian.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/common/CMakeFiles/trng_common.dir/io.cpp.o" "gcc" "src/common/CMakeFiles/trng_common.dir/io.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/trng_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/trng_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/special.cpp" "src/common/CMakeFiles/trng_common.dir/special.cpp.o" "gcc" "src/common/CMakeFiles/trng_common.dir/special.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/trng_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/trng_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
