file(REMOVE_RECURSE
  "libtrng_common.a"
)
