file(REMOVE_RECURSE
  "CMakeFiles/trng_common.dir/bitstream.cpp.o"
  "CMakeFiles/trng_common.dir/bitstream.cpp.o.d"
  "CMakeFiles/trng_common.dir/gaussian.cpp.o"
  "CMakeFiles/trng_common.dir/gaussian.cpp.o.d"
  "CMakeFiles/trng_common.dir/io.cpp.o"
  "CMakeFiles/trng_common.dir/io.cpp.o.d"
  "CMakeFiles/trng_common.dir/rng.cpp.o"
  "CMakeFiles/trng_common.dir/rng.cpp.o.d"
  "CMakeFiles/trng_common.dir/special.cpp.o"
  "CMakeFiles/trng_common.dir/special.cpp.o.d"
  "CMakeFiles/trng_common.dir/stats.cpp.o"
  "CMakeFiles/trng_common.dir/stats.cpp.o.d"
  "libtrng_common.a"
  "libtrng_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
