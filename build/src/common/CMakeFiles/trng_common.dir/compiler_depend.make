# Empty compiler generated dependencies file for trng_common.
# This may be replaced when dependencies are built.
