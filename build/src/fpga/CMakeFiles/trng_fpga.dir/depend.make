# Empty dependencies file for trng_fpga.
# This may be replaced when dependencies are built.
