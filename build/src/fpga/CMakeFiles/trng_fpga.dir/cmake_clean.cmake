file(REMOVE_RECURSE
  "CMakeFiles/trng_fpga.dir/clock_tree.cpp.o"
  "CMakeFiles/trng_fpga.dir/clock_tree.cpp.o.d"
  "CMakeFiles/trng_fpga.dir/device.cpp.o"
  "CMakeFiles/trng_fpga.dir/device.cpp.o.d"
  "CMakeFiles/trng_fpga.dir/fabric.cpp.o"
  "CMakeFiles/trng_fpga.dir/fabric.cpp.o.d"
  "CMakeFiles/trng_fpga.dir/placement.cpp.o"
  "CMakeFiles/trng_fpga.dir/placement.cpp.o.d"
  "CMakeFiles/trng_fpga.dir/process_variation.cpp.o"
  "CMakeFiles/trng_fpga.dir/process_variation.cpp.o.d"
  "CMakeFiles/trng_fpga.dir/profiles.cpp.o"
  "CMakeFiles/trng_fpga.dir/profiles.cpp.o.d"
  "libtrng_fpga.a"
  "libtrng_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
