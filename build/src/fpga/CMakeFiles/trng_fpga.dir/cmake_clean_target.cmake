file(REMOVE_RECURSE
  "libtrng_fpga.a"
)
