
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/clock_tree.cpp" "src/fpga/CMakeFiles/trng_fpga.dir/clock_tree.cpp.o" "gcc" "src/fpga/CMakeFiles/trng_fpga.dir/clock_tree.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/trng_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/trng_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/fabric.cpp" "src/fpga/CMakeFiles/trng_fpga.dir/fabric.cpp.o" "gcc" "src/fpga/CMakeFiles/trng_fpga.dir/fabric.cpp.o.d"
  "/root/repo/src/fpga/placement.cpp" "src/fpga/CMakeFiles/trng_fpga.dir/placement.cpp.o" "gcc" "src/fpga/CMakeFiles/trng_fpga.dir/placement.cpp.o.d"
  "/root/repo/src/fpga/process_variation.cpp" "src/fpga/CMakeFiles/trng_fpga.dir/process_variation.cpp.o" "gcc" "src/fpga/CMakeFiles/trng_fpga.dir/process_variation.cpp.o.d"
  "/root/repo/src/fpga/profiles.cpp" "src/fpga/CMakeFiles/trng_fpga.dir/profiles.cpp.o" "gcc" "src/fpga/CMakeFiles/trng_fpga.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
