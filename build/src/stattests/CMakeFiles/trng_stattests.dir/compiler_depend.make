# Empty compiler generated dependencies file for trng_stattests.
# This may be replaced when dependencies are built.
