file(REMOVE_RECURSE
  "libtrng_stattests.a"
)
