file(REMOVE_RECURSE
  "CMakeFiles/trng_stattests.dir/ais31.cpp.o"
  "CMakeFiles/trng_stattests.dir/ais31.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/battery.cpp.o"
  "CMakeFiles/trng_stattests.dir/battery.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/estimators.cpp.o"
  "CMakeFiles/trng_stattests.dir/estimators.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_basic.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_basic.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_complexity.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_complexity.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_dft.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_dft.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_excursions.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_excursions.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_rank.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_rank.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_serial.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_serial.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_templates.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_templates.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_22_universal.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_22_universal.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/sp800_90b.cpp.o"
  "CMakeFiles/trng_stattests.dir/sp800_90b.cpp.o.d"
  "CMakeFiles/trng_stattests.dir/test_result.cpp.o"
  "CMakeFiles/trng_stattests.dir/test_result.cpp.o.d"
  "libtrng_stattests.a"
  "libtrng_stattests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_stattests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
