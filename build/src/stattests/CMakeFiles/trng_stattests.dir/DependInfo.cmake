
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stattests/ais31.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/ais31.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/ais31.cpp.o.d"
  "/root/repo/src/stattests/battery.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/battery.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/battery.cpp.o.d"
  "/root/repo/src/stattests/estimators.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/estimators.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/estimators.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_basic.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_basic.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_basic.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_complexity.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_complexity.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_complexity.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_dft.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_dft.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_dft.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_excursions.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_excursions.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_excursions.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_rank.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_rank.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_rank.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_serial.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_serial.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_serial.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_templates.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_templates.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_templates.cpp.o.d"
  "/root/repo/src/stattests/sp800_22_universal.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_universal.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_22_universal.cpp.o.d"
  "/root/repo/src/stattests/sp800_90b.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_90b.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/sp800_90b.cpp.o.d"
  "/root/repo/src/stattests/test_result.cpp" "src/stattests/CMakeFiles/trng_stattests.dir/test_result.cpp.o" "gcc" "src/stattests/CMakeFiles/trng_stattests.dir/test_result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
