
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/design_space.cpp" "src/model/CMakeFiles/trng_model.dir/design_space.cpp.o" "gcc" "src/model/CMakeFiles/trng_model.dir/design_space.cpp.o.d"
  "/root/repo/src/model/nonlinearity.cpp" "src/model/CMakeFiles/trng_model.dir/nonlinearity.cpp.o" "gcc" "src/model/CMakeFiles/trng_model.dir/nonlinearity.cpp.o.d"
  "/root/repo/src/model/platform_measurement.cpp" "src/model/CMakeFiles/trng_model.dir/platform_measurement.cpp.o" "gcc" "src/model/CMakeFiles/trng_model.dir/platform_measurement.cpp.o.d"
  "/root/repo/src/model/stochastic_model.cpp" "src/model/CMakeFiles/trng_model.dir/stochastic_model.cpp.o" "gcc" "src/model/CMakeFiles/trng_model.dir/stochastic_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trng_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/trng_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trng_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
