file(REMOVE_RECURSE
  "libtrng_model.a"
)
