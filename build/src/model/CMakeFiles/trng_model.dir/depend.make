# Empty dependencies file for trng_model.
# This may be replaced when dependencies are built.
