file(REMOVE_RECURSE
  "CMakeFiles/trng_model.dir/design_space.cpp.o"
  "CMakeFiles/trng_model.dir/design_space.cpp.o.d"
  "CMakeFiles/trng_model.dir/nonlinearity.cpp.o"
  "CMakeFiles/trng_model.dir/nonlinearity.cpp.o.d"
  "CMakeFiles/trng_model.dir/platform_measurement.cpp.o"
  "CMakeFiles/trng_model.dir/platform_measurement.cpp.o.d"
  "CMakeFiles/trng_model.dir/stochastic_model.cpp.o"
  "CMakeFiles/trng_model.dir/stochastic_model.cpp.o.d"
  "libtrng_model.a"
  "libtrng_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
