
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/delay_line.cpp" "src/sim/CMakeFiles/trng_sim.dir/delay_line.cpp.o" "gcc" "src/sim/CMakeFiles/trng_sim.dir/delay_line.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/trng_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/trng_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/ring_oscillator.cpp" "src/sim/CMakeFiles/trng_sim.dir/ring_oscillator.cpp.o" "gcc" "src/sim/CMakeFiles/trng_sim.dir/ring_oscillator.cpp.o.d"
  "/root/repo/src/sim/sampler.cpp" "src/sim/CMakeFiles/trng_sim.dir/sampler.cpp.o" "gcc" "src/sim/CMakeFiles/trng_sim.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/trng_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
