file(REMOVE_RECURSE
  "libtrng_sim.a"
)
