# Empty dependencies file for trng_sim.
# This may be replaced when dependencies are built.
