file(REMOVE_RECURSE
  "CMakeFiles/trng_sim.dir/delay_line.cpp.o"
  "CMakeFiles/trng_sim.dir/delay_line.cpp.o.d"
  "CMakeFiles/trng_sim.dir/noise.cpp.o"
  "CMakeFiles/trng_sim.dir/noise.cpp.o.d"
  "CMakeFiles/trng_sim.dir/ring_oscillator.cpp.o"
  "CMakeFiles/trng_sim.dir/ring_oscillator.cpp.o.d"
  "CMakeFiles/trng_sim.dir/sampler.cpp.o"
  "CMakeFiles/trng_sim.dir/sampler.cpp.o.d"
  "libtrng_sim.a"
  "libtrng_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trng_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
