// Shared enable -> accumulate t_A -> capture accounting (paper Section
// 4.2). Both the carry-chain TRNG's SampleController and the elementary
// TRNG previously kept their own cursor/period arithmetic; this class is
// the single home for it:
//
//   * t_A = N_A * T_clk (accumulation time),
//   * the sample instant of each conversion (cursor + t_A),
//   * the next conversion's start (the following clock edge),
//   * raw throughput f_CLK / N_A — Table 1's throughput column.
#pragma once

#include <stdexcept>

#include "common/types.hpp"

namespace trng::sim {

class AccumulationSchedule {
 public:
  /// Throws std::invalid_argument unless clock_period_ps > 0.
  explicit AccumulationSchedule(Picoseconds clock_period_ps)
      : period_(clock_period_ps) {
    if (!(clock_period_ps > 0.0)) {
      throw std::invalid_argument("AccumulationSchedule: bad clock period");
    }
  }

  Picoseconds clock_period_ps() const { return period_; }
  double clock_hz() const { return 1.0e12 / period_; }

  /// t_A = N_A * T_clk in picoseconds.
  Picoseconds accumulation_time_ps(Cycles accumulation_cycles) const {
    return static_cast<double>(accumulation_cycles) * period_;
  }

  /// Raw bit rate f_CLK / N_A in bits/s.
  double raw_throughput_bps(Cycles accumulation_cycles) const {
    return clock_hz() / static_cast<double>(accumulation_cycles);
  }

  /// Advances one conversion: returns the sample instant (cursor + t_A)
  /// and moves the cursor to the following clock edge. The caller decides
  /// whether the oscillator restarts at the old cursor (restart mode) or
  /// keeps running (free-running mode).
  Picoseconds begin_conversion(Cycles accumulation_cycles) {
    const Picoseconds t_sample =
        cursor_ + accumulation_time_ps(accumulation_cycles);
    cursor_ = t_sample + period_;
    return t_sample;
  }

  /// Current absolute time (cycle-aligned start of the next conversion).
  Picoseconds cursor_ps() const { return cursor_; }

 private:
  Picoseconds period_;
  Picoseconds cursor_ = 0.0;
};

}  // namespace trng::sim
