#include "sim/delay_line.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace trng::sim {

TappedDelayLineSim::TappedDelayLineSim(const fpga::ElaboratedDelayLine& timing,
                                       const fpga::FlipFlopTimingSpec& ff_spec,
                                       std::uint64_t seed)
    : timing_(timing), ff_spec_(ff_spec), rng_(seed ^ 0x7D1ULL) {
  if (timing_.tap_delay.empty()) {
    throw std::invalid_argument("TappedDelayLineSim: empty line timing");
  }
  if (timing_.tap_delay.size() != timing_.cumulative_delay.size() ||
      timing_.tap_delay.size() != timing_.ff_clock_skew.size()) {
    throw std::invalid_argument("TappedDelayLineSim: inconsistent timing");
  }
  static_offset_.reserve(timing_.tap_delay.size());
  for (std::size_t j = 0; j < timing_.tap_delay.size(); ++j) {
    static_offset_.push_back(ff_spec_.static_offset_sigma_ps *
                             rng_.next_gaussian());
  }
}

Picoseconds TappedDelayLineSim::static_offset(int tap) const {
  if (tap < 0 || tap >= taps()) {
    throw std::out_of_range("TappedDelayLineSim::static_offset: bad tap");
  }
  return static_offset_[static_cast<std::size_t>(tap)];
}

Picoseconds TappedDelayLineSim::observation_time(int tap,
                                                 Picoseconds t_clk) const {
  if (tap < 0 || tap >= taps()) {
    throw std::out_of_range("TappedDelayLineSim::observation_time: bad tap");
  }
  const auto j = static_cast<std::size_t>(tap);
  return t_clk + timing_.ff_clock_skew[j] - timing_.cumulative_delay[j];
}

LineSnapshot TappedDelayLineSim::capture(const RingOscillator& source,
                                         int stage, Picoseconds t_clk) {
  LineSnapshot bits;
  bits.reserve(static_cast<std::size_t>(taps()));
  const Picoseconds half_aperture = ff_spec_.aperture_ps / 2.0;

  for (int j = 0; j < taps(); ++j) {
    const Picoseconds s = observation_time(j, t_clk) +
                          static_offset_[static_cast<std::size_t>(j)] +
                          ff_spec_.dynamic_jitter_sigma_ps * rng_.next_gaussian();
    bool v = source.value_at(stage, s);

    // Metastability: if an input edge sits inside the aperture the capture
    // can resolve to either rail, with probability decaying exponentially in
    // the edge distance.
    const auto edges =
        source.edges_in(stage, s - half_aperture, s + half_aperture);
    if (!edges.empty()) {
      Picoseconds nearest = half_aperture;
      for (Picoseconds e : edges) {
        nearest = std::min(nearest, std::fabs(e - s));
      }
      const double p_meta = std::exp(-nearest / ff_spec_.resolution_tau_ps);
      if (rng_.next_double() < p_meta) {
        v = rng_.next_double() < 0.5;
        ++metastable_events_;
      }
    }
    bits.push_back(v);
  }
  return bits;
}

void TappedDelayLineSim::capture_into(const RingOscillator& source, int stage,
                                      Picoseconds t_clk,
                                      std::uint64_t* out_words) {
  const int m = taps();
  const Picoseconds half_aperture = ff_spec_.aperture_ps / 2.0;

  // Copy this stage's (already contiguous) toggle history between two
  // sentinels: the per-tap scan below then walks one flat array instead of
  // binary-searching three times per flip-flop (value_at + edges_in) and
  // allocating a fresh edge vector per tap like the scalar path does. The
  // +/-infinity sentinels absorb the hi == 0 / hi == n boundary checks:
  // the walk and the aperture-window compares below never read past a
  // sentinel, and a sentinel can never satisfy an in-window predicate.
  const auto& hist = source.toggle_history(stage);
  scratch_toggles_.clear();
  scratch_toggles_.reserve(hist.size() + 2);
  scratch_toggles_.push_back(-std::numeric_limits<Picoseconds>::infinity());
  scratch_toggles_.insert(scratch_toggles_.end(), hist.begin(), hist.end());
  scratch_toggles_.push_back(std::numeric_limits<Picoseconds>::infinity());
  const Picoseconds* q = scratch_toggles_.data();
  const std::size_t n = hist.size();
  const bool now_value = source.current_value(stage);

  // Hoisted per-tap inputs: same values observation_time and the member
  // lookups produce, minus a bounds-checked call per flip-flop.
  const Picoseconds* skew = timing_.ff_clock_skew.data();
  const Picoseconds* cum = timing_.cumulative_delay.data();
  const Picoseconds* stat = static_offset_.data();
  const double dyn = ff_spec_.dynamic_jitter_sigma_ps;
  const double tau = ff_spec_.resolution_tau_ps;
  // Work on a local copy of the RNG (written back below) so its state can
  // stay in registers across the loop; the draw sequence is unchanged.
  common::Xoshiro256StarStar rng = rng_;
  std::uint64_t meta_events = 0;

  // hi = index of the first retained toggle strictly after s — exactly the
  // upper_bound value_at computes. Adjacent taps' observation instants are
  // a bin width apart, so a short walk from the previous tap's position
  // replaces a fresh binary search for every tap after the first.
  // Accumulate each output word in a register and store it once: out_words
  // is a uint64_t* the compiler must assume can alias the RNG state, so
  // per-tap read-modify-write stores would force member reloads every
  // iteration. Every word in [0, ceil(m/64)) gets written exactly once, and
  // bits at or above `m` in the last word stay zero.
  std::uint64_t word = 0;
  // hi indexes the padded array: q[hi] is the first toggle strictly after s
  // (q[1..n] are the real toggles), so hi stays in [1, n + 1]. Starting at
  // n + 1 lets tap 0 walk down from the newest toggle — the observation
  // instants sit near the end of the retained history, so a step or two
  // replaces a binary search and lands on the same index upper_bound gives.
  std::size_t hi = n + 1;
  for (int j = 0; j < m; ++j) {
    // Same association as the scalar path:
    // ((t_clk + skew) - cum) + static + dyn * gaussian.
    const Picoseconds s =
        (t_clk + skew[j]) - cum[j] + stat[j] + dyn * rng.next_gaussian();
    while (q[hi - 1] > s) --hi;
    while (q[hi] <= s) ++hi;
    // Parity un-flip of the current value — same computation as value_at
    // (n + 1 - hi real toggles lie strictly after s).
    bool v = now_value != (((n + 1 - hi) & 1U) != 0);

    // Metastability: the toggle nearest to s in [s - ha, s + ha] can only
    // be one of the two neighbours q[hi-1] (<= s) and q[hi] (> s), so the
    // window-occupancy test and the nearest-edge distance reduce to those
    // two — same predicate and same min as the scalar edges_in scan.
    const Picoseconds t0 = s - half_aperture;
    const Picoseconds t1 = s + half_aperture;
    const bool left_in = !(q[hi - 1] < t0);
    const bool right_in = !(t1 < q[hi]);
    if (left_in || right_in) {
      Picoseconds nearest = half_aperture;
      // q[hi-1] <= s < q[hi], so the absolute distances reduce to exact
      // same-value subtractions.
      if (left_in) nearest = std::min(nearest, s - q[hi - 1]);
      if (right_in) nearest = std::min(nearest, q[hi] - s);
      const double p_meta = std::exp(-nearest / tau);
      if (rng.next_double() < p_meta) {
        v = rng.next_double() < 0.5;
        ++meta_events;
      }
    }
    // Branchless pack: v is an unpredictable ~50/50 bit, so a conditional
    // OR would mispredict every other capture.
    word |= static_cast<std::uint64_t>(v) << (j & 63);
    if ((j & 63) == 63) {
      out_words[j >> 6] = word;
      word = 0;
    }
  }
  if ((m & 63) != 0) out_words[static_cast<std::size_t>(m) >> 6] = word;
  rng_ = rng;
  metastable_events_ += meta_events;
}

std::vector<Picoseconds> TappedDelayLineSim::effective_bin_widths() const {
  std::vector<Picoseconds> widths;
  const int m = taps();
  widths.reserve(static_cast<std::size_t>(m > 0 ? m - 1 : 0));
  for (int j = 0; j + 1 < m; ++j) {
    // s_j - s_{j+1}: observation_time differences are independent of t_clk.
    widths.push_back(observation_time(j, 0.0) - observation_time(j + 1, 0.0));
  }
  return widths;
}

int count_edges(const LineSnapshot& snapshot) {
  int edges = 0;
  for (std::size_t j = 0; j + 1 < snapshot.size(); ++j) {
    if (snapshot[j] != snapshot[j + 1]) ++edges;
  }
  return edges;
}

bool has_bubble(const LineSnapshot& snapshot) {
  for (std::size_t j = 1; j + 1 < snapshot.size(); ++j) {
    if (snapshot[j] != snapshot[j - 1] && snapshot[j] != snapshot[j + 1]) {
      return true;
    }
  }
  return false;
}

int count_edges_packed(const std::uint64_t* words, int taps) {
  if (taps <= 1) return 0;
  const std::size_t pairs = static_cast<std::size_t>(taps) - 1;
  const std::size_t nwords = (static_cast<std::size_t>(taps) + 63) / 64;
  int edges = 0;
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t next0 =
        (w + 1 < nwords) ? (words[w + 1] & 1ULL) : 0ULL;
    // Bit b marks a transition between taps 64w+b and 64w+b+1.
    std::uint64_t x = words[w] ^ ((words[w] >> 1) | (next0 << 63));
    const std::size_t base = w * 64;
    if (pairs < base + 64) {
      const std::size_t valid = pairs > base ? pairs - base : 0;
      x &= valid == 0 ? 0ULL : (~0ULL >> (64 - valid));
    }
    edges += std::popcount(x);
  }
  return edges;
}

bool has_bubble_packed(const std::uint64_t* words, int taps) {
  if (taps < 3) return false;
  const std::size_t nwords = (static_cast<std::size_t>(taps) + 63) / 64;
  const std::size_t last = static_cast<std::size_t>(taps) - 2;
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t v = words[w];
    const std::uint64_t prev63 = (w > 0) ? (words[w - 1] >> 63) : 0ULL;
    const std::uint64_t next0 =
        (w + 1 < nwords) ? (words[w + 1] & 1ULL) : 0ULL;
    const std::uint64_t left = (v << 1) | prev63;
    const std::uint64_t right = (v >> 1) | (next0 << 63);
    std::uint64_t b = (v ^ left) & (v ^ right);
    // Restrict to interior taps 1 .. taps-2.
    const std::size_t base = w * 64;
    std::uint64_t mask = ~0ULL;
    if (base == 0) mask &= ~1ULL;
    if (last < base) {
      mask = 0;
    } else if (last - base < 63) {
      mask &= ~0ULL >> (63 - (last - base));
    }
    if ((b & mask) != 0) return true;
  }
  return false;
}

SnapshotClass classify_snapshots(const std::vector<LineSnapshot>& lines) {
  int total_edges = 0;
  bool bubble = false;
  for (const auto& line : lines) {
    total_edges += count_edges(line);
    bubble = bubble || has_bubble(line);
  }
  if (bubble) return SnapshotClass::kBubbles;
  if (total_edges == 0) return SnapshotClass::kNoEdge;
  if (total_edges == 1) return SnapshotClass::kRegular;
  return SnapshotClass::kDoubleEdge;
}

}  // namespace trng::sim
