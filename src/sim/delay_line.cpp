#include "sim/delay_line.hpp"

#include <cmath>
#include <stdexcept>

namespace trng::sim {

TappedDelayLineSim::TappedDelayLineSim(const fpga::ElaboratedDelayLine& timing,
                                       const fpga::FlipFlopTimingSpec& ff_spec,
                                       std::uint64_t seed)
    : timing_(timing), ff_spec_(ff_spec), rng_(seed ^ 0x7D1ULL) {
  if (timing_.tap_delay.empty()) {
    throw std::invalid_argument("TappedDelayLineSim: empty line timing");
  }
  if (timing_.tap_delay.size() != timing_.cumulative_delay.size() ||
      timing_.tap_delay.size() != timing_.ff_clock_skew.size()) {
    throw std::invalid_argument("TappedDelayLineSim: inconsistent timing");
  }
  static_offset_.reserve(timing_.tap_delay.size());
  for (std::size_t j = 0; j < timing_.tap_delay.size(); ++j) {
    static_offset_.push_back(ff_spec_.static_offset_sigma_ps *
                             rng_.next_gaussian());
  }
}

Picoseconds TappedDelayLineSim::static_offset(int tap) const {
  if (tap < 0 || tap >= taps()) {
    throw std::out_of_range("TappedDelayLineSim::static_offset: bad tap");
  }
  return static_offset_[static_cast<std::size_t>(tap)];
}

Picoseconds TappedDelayLineSim::observation_time(int tap,
                                                 Picoseconds t_clk) const {
  if (tap < 0 || tap >= taps()) {
    throw std::out_of_range("TappedDelayLineSim::observation_time: bad tap");
  }
  const auto j = static_cast<std::size_t>(tap);
  return t_clk + timing_.ff_clock_skew[j] - timing_.cumulative_delay[j];
}

LineSnapshot TappedDelayLineSim::capture(const RingOscillator& source,
                                         int stage, Picoseconds t_clk) {
  LineSnapshot bits;
  bits.reserve(static_cast<std::size_t>(taps()));
  const Picoseconds half_aperture = ff_spec_.aperture_ps / 2.0;

  for (int j = 0; j < taps(); ++j) {
    const Picoseconds s = observation_time(j, t_clk) +
                          static_offset_[static_cast<std::size_t>(j)] +
                          ff_spec_.dynamic_jitter_sigma_ps * rng_.next_gaussian();
    bool v = source.value_at(stage, s);

    // Metastability: if an input edge sits inside the aperture the capture
    // can resolve to either rail, with probability decaying exponentially in
    // the edge distance.
    const auto edges =
        source.edges_in(stage, s - half_aperture, s + half_aperture);
    if (!edges.empty()) {
      Picoseconds nearest = half_aperture;
      for (Picoseconds e : edges) {
        nearest = std::min(nearest, std::fabs(e - s));
      }
      const double p_meta = std::exp(-nearest / ff_spec_.resolution_tau_ps);
      if (rng_.next_double() < p_meta) {
        v = rng_.next_double() < 0.5;
        ++metastable_events_;
      }
    }
    bits.push_back(v);
  }
  return bits;
}

std::vector<Picoseconds> TappedDelayLineSim::effective_bin_widths() const {
  std::vector<Picoseconds> widths;
  const int m = taps();
  widths.reserve(static_cast<std::size_t>(m > 0 ? m - 1 : 0));
  for (int j = 0; j + 1 < m; ++j) {
    // s_j - s_{j+1}: observation_time differences are independent of t_clk.
    widths.push_back(observation_time(j, 0.0) - observation_time(j + 1, 0.0));
  }
  return widths;
}

int count_edges(const LineSnapshot& snapshot) {
  int edges = 0;
  for (std::size_t j = 0; j + 1 < snapshot.size(); ++j) {
    if (snapshot[j] != snapshot[j + 1]) ++edges;
  }
  return edges;
}

bool has_bubble(const LineSnapshot& snapshot) {
  for (std::size_t j = 1; j + 1 < snapshot.size(); ++j) {
    if (snapshot[j] != snapshot[j - 1] && snapshot[j] != snapshot[j + 1]) {
      return true;
    }
  }
  return false;
}

SnapshotClass classify_snapshots(const std::vector<LineSnapshot>& lines) {
  int total_edges = 0;
  bool bubble = false;
  for (const auto& line : lines) {
    total_edges += count_edges(line);
    bubble = bubble || has_bubble(line);
  }
  if (bubble) return SnapshotClass::kBubbles;
  if (total_edges == 0) return SnapshotClass::kNoEdge;
  if (total_edges == 1) return SnapshotClass::kRegular;
  return SnapshotClass::kDoubleEdge;
}

}  // namespace trng::sim
