// Tapped-delay-line (carry-chain TDC) capture simulation.
//
// Flip-flop j of a line samples the line's signal as it existed
// cumulative_delay[j] ago, at the FF's own effective clock edge
// (ideal edge + clock-tree skew). In signal time the observation instant of
// tap j is therefore
//
//     s_j = t_clk + ff_clock_skew[j] - cumulative_delay[j].
//
// s_j decreases with j — deeper taps look further into the past — and the
// spacing s_j - s_{j+1} is the *effective bin width*, which inherits the
// CARRY4 structural weights, process variation and clock-skew differences
// (the non-linearity the paper fights with the single-clock-region
// constraint and k=4 down-sampling).
//
// If an input edge lands inside a FF's metastability aperture the captured
// bit resolves randomly — the mechanism that produces the "bubbles" of
// Figure 4(c).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fpga/fabric.hpp"
#include "fpga/primitives.hpp"
#include "sim/ring_oscillator.hpp"

namespace trng::sim {

/// One captured TDC snapshot (the m flip-flop values of one line).
using LineSnapshot = std::vector<bool>;

class TappedDelayLineSim {
 public:
  TappedDelayLineSim(const fpga::ElaboratedDelayLine& timing,
                     const fpga::FlipFlopTimingSpec& ff_spec,
                     std::uint64_t seed);

  /// Captures the line fed by `source` stage `stage` at clock edge `t_clk`.
  /// `source` must already be advanced past t_clk + max skew.
  LineSnapshot capture(const RingOscillator& source, int stage,
                       Picoseconds t_clk);

  /// Batched form of capture(): writes the snapshot packed LSB-first into
  /// `out_words` (tap j -> out_words[j >> 6] bit (j & 63); the caller
  /// provides at least (taps() + 63) / 64 words, which are zero-filled
  /// first). Draws the RNG in exactly the same order as capture(), so for
  /// the same seed and history the packed bits equal the scalar snapshot
  /// bit for bit — the scalar path stays the reference implementation.
  void capture_into(const RingOscillator& source, int stage, Picoseconds t_clk,
                    std::uint64_t* out_words);

  /// Nominal observation instant of tap j in signal time (see file
  /// comment), excluding the FF's static threshold offset and dynamic
  /// jitter (use static_offset() for the former).
  Picoseconds observation_time(int tap, Picoseconds t_clk) const;

  /// Static threshold-induced sampling offset of tap j's flip-flop
  /// (fixed per die, drawn at construction).
  Picoseconds static_offset(int tap) const;

  int taps() const { return static_cast<int>(timing_.tap_delay.size()); }

  /// Effective bin widths s_j - s_{j+1} (size taps()-1); used by the
  /// code-density / non-linearity analysis.
  std::vector<Picoseconds> effective_bin_widths() const;

  /// Number of metastable captures since construction (diagnostics).
  std::uint64_t metastable_events() const { return metastable_events_; }

 private:
  fpga::ElaboratedDelayLine timing_;
  fpga::FlipFlopTimingSpec ff_spec_;
  common::Xoshiro256StarStar rng_;
  std::vector<Picoseconds> static_offset_;  ///< per-FF, fixed per die
  std::vector<Picoseconds> scratch_toggles_;  ///< capture_into work buffer
  std::uint64_t metastable_events_ = 0;
};

/// Classification of a full multi-line snapshot, used to reproduce the
/// phenomenology of Figure 4.
enum class SnapshotClass {
  kRegular,     ///< exactly one edge across all lines (Fig. 4a)
  kDoubleEdge,  ///< two or more edges (Fig. 4b)
  kBubbles,     ///< at least one 1-bit-wide glitch next to an edge (Fig. 4c)
  kNoEdge,      ///< all lines constant — the "missed edge" failure (Sec. 5.2)
};

/// Counts 0->1/1->0 transitions in one line snapshot.
int count_edges(const LineSnapshot& snapshot);

/// True when the snapshot contains an isolated single-bit glitch
/// (pattern 010 or 101 with the single bit differing from both neighbours).
bool has_bubble(const LineSnapshot& snapshot);

/// count_edges on a packed snapshot of `taps` bits (capture_into layout):
/// XOR-with-shift plus popcount per word instead of a per-bit loop.
int count_edges_packed(const std::uint64_t* words, int taps);

/// has_bubble on a packed snapshot of `taps` bits.
bool has_bubble_packed(const std::uint64_t* words, int taps);

/// Classifies the set of line snapshots of one capture.
SnapshotClass classify_snapshots(const std::vector<LineSnapshot>& lines);

}  // namespace trng::sim
