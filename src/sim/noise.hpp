// Noise taxonomy of the stochastic model (paper Section 4.1):
//
//   * white (thermal) noise — independent Gaussian jitter added to every
//     transition through a delay element; the ONLY component the model
//     credits with entropy,
//   * flicker (1/f) noise — slowly-varying correlated delay component,
//   * global noise — power-supply modulation common to all oscillators on
//     the die (a deterministic tone plus a slow random walk),
//
// The model worst-cases everything non-white; the simulator implements all
// of them so experiments can check that the model's bound stays a *lower*
// bound when the non-white components are present.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace trng::sim {

struct NoiseConfig {
  /// Scales the fabric's per-stage white-noise sigma (1.0 = nominal die).
  double white_sigma_scale = 1.0;

  /// Stationary std-dev of the AR(1) flicker component added to each stage
  /// traversal. Calibrated so flicker overtakes white jitter at ~1 us of
  /// accumulation — matching the paper's warning that jitter measurements
  /// must stay "order of 1 us or shorter, otherwise low frequency noise
  /// becomes dominant" (Section 5.1).
  Picoseconds flicker_sigma_ps = 0.05;

  /// AR(1) correlation of the flicker component between consecutive
  /// transitions (close to 1 => low-frequency).
  double flicker_corr = 0.99998;

  /// Relative amplitude of the supply tone (multiplies all delays).
  double supply_amp_rel = 5.0e-5;

  /// Frequency of the supply tone (switching regulator).
  double supply_freq_hz = 1.1e6;

  /// Std-dev of the supply random-walk increment per microsecond step,
  /// as a relative delay multiplier.
  double supply_walk_rel_per_step = 1.0e-5;

  /// Convenience: a configuration with only white noise enabled — the
  /// exact world the stochastic model describes.
  static NoiseConfig white_only() {
    NoiseConfig c;
    c.flicker_sigma_ps = 0.0;
    c.supply_amp_rel = 0.0;
    c.supply_walk_rel_per_step = 0.0;
    return c;
  }
};

/// Common-mode supply/global noise: every delay element on the die sees the
/// same multiplicative modulation. Shared (by reference) between all
/// oscillators so differential measurements cancel it — which is exactly why
/// the paper's jitter measurement is differential (Section 5.1).
class SupplyNoise {
 public:
  SupplyNoise(const NoiseConfig& config, std::uint64_t seed);

  /// Delay multiplier at absolute time `t` (monotone queries advance the
  /// random-walk state lazily; out-of-order queries within the current step
  /// are fine).
  double multiplier_at(Picoseconds t);

 private:
  double amp_;
  double omega_per_ps_;  ///< 2*pi*f in rad/ps
  double phase_;
  double walk_sigma_;
  Picoseconds step_ps_ = 1.0e6;  ///< 1 us random-walk update step
  std::int64_t current_step_ = 0;
  double walk_value_ = 0.0;
  double walk_prev_ = 0.0;
  common::Xoshiro256StarStar rng_;
};

}  // namespace trng::sim
