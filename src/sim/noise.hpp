// Noise taxonomy of the stochastic model (paper Section 4.1):
//
//   * white (thermal) noise — independent Gaussian jitter added to every
//     transition through a delay element; the ONLY component the model
//     credits with entropy,
//   * flicker (1/f) noise — slowly-varying correlated delay component,
//   * global noise — power-supply modulation common to all oscillators on
//     the die (a deterministic tone plus a slow random walk),
//
// The model worst-cases everything non-white; the simulator implements all
// of them so experiments can check that the model's bound stays a *lower*
// bound when the non-white components are present.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace trng::sim {

struct NoiseConfig {
  /// Scales the fabric's per-stage white-noise sigma (1.0 = nominal die).
  double white_sigma_scale = 1.0;

  /// Stationary std-dev of the AR(1) flicker component added to each stage
  /// traversal. Calibrated so flicker overtakes white jitter at ~1 us of
  /// accumulation — matching the paper's warning that jitter measurements
  /// must stay "order of 1 us or shorter, otherwise low frequency noise
  /// becomes dominant" (Section 5.1).
  Picoseconds flicker_sigma_ps = 0.05;

  /// AR(1) correlation of the flicker component between consecutive
  /// transitions (close to 1 => low-frequency).
  double flicker_corr = 0.99998;

  /// Relative amplitude of the supply tone (multiplies all delays).
  double supply_amp_rel = 5.0e-5;

  /// Frequency of the supply tone (switching regulator).
  double supply_freq_hz = 1.1e6;

  /// Std-dev of the supply random-walk increment per microsecond step,
  /// as a relative delay multiplier.
  double supply_walk_rel_per_step = 1.0e-5;

  /// Convenience: a configuration with only white noise enabled — the
  /// exact world the stochastic model describes.
  static NoiseConfig white_only() {
    NoiseConfig c;
    c.flicker_sigma_ps = 0.0;
    c.supply_amp_rel = 0.0;
    c.supply_walk_rel_per_step = 0.0;
    return c;
  }
};

namespace detail {

/// sin(x) via Cody-Waite argument reduction and an odd Taylor polynomial on
/// [-pi/2, pi/2]. Absolute error < 1e-7 for |x| < 1e8, which modulates the
/// supply tone (relative amplitude ~5e-5) by < 5e-12 — far below every other
/// noise source in the simulation. Used instead of libm sin because the tone
/// is evaluated once per simulated oscillator transition and libm's
/// large-argument reduction dominates that budget.
inline double tone_sin(double x) {
  // Split pi so k * kPiHi is exact for |k| < 2^27 (kPiHi has 26 mantissa
  // bits): the reduction r = x - k*pi then loses no significance.
  constexpr double kInvPi = 0.3183098861837907;
  constexpr double kPiHi = 3.14159265160560607910;
  constexpr double kPiLo = 1.98418714791870343106e-09;
  const double kd = std::nearbyint(x * kInvPi);
  const auto k = static_cast<std::int64_t>(kd);
  const double r = (x - kd * kPiHi) - kd * kPiLo;
  const double r2 = r * r;
  // Taylor coefficients of sin about 0 (odd terms through r^11); max error
  // ~r^13/13! ~ 6e-8 at |r| = pi/2.
  const double p =
      r * (1.0 +
           r2 * (-1.6666666666666666e-01 +
                 r2 * (8.3333333333333332e-03 +
                       r2 * (-1.9841269841269841e-04 +
                             r2 * (2.7557319223985893e-06 +
                                   r2 * (-2.5052108385441720e-08))))));
  return (k & 1) ? -p : p;
}

}  // namespace detail

/// Common-mode supply/global noise: every delay element on the die sees the
/// same multiplicative modulation. Shared (by reference) between all
/// oscillators so differential measurements cancel it — which is exactly why
/// the paper's jitter measurement is differential (Section 5.1).
class SupplyNoise {
 public:
  SupplyNoise(const NoiseConfig& config, std::uint64_t seed);

  /// Delay multiplier at absolute time `t` (monotone queries advance the
  /// random-walk state lazily; out-of-order queries within the current step
  /// are fine). Inline: called once per simulated transition.
  double multiplier_at(Picoseconds t) {
    // Advance the random walk to the step containing t. Linear interpolation
    // between step values keeps the process continuous. With a zero step
    // sigma the walk is identically zero, so the state advance is skipped
    // (its draws feed no other consumer).
    double walk = 0.0;
    if (walk_sigma_ != 0.0) {
      // t * (1/step) instead of t / step: one multiply per call on the
      // per-transition path; the reciprocal is exact to 1 ulp.
      const double t_steps = t * inv_step_ps_;
      const auto step = static_cast<std::int64_t>(std::floor(t_steps));
      while (current_step_ < step) {
        walk_prev_ = walk_value_;
        walk_value_ += walk_sigma_ * rng_.next_gaussian();
        ++current_step_;
      }
      const double frac = t_steps - static_cast<double>(current_step_ - 1);
      walk = walk_prev_ + (walk_value_ - walk_prev_) *
                              std::min(std::max(frac, 0.0), 1.0);
    }
    // A zero-amplitude tone contributes exactly +/-0.0 to the sum below, so
    // skipping the sine is bit-identical for that configuration.
    const double tone =
        amp_ == 0.0 ? 0.0 : amp_ * detail::tone_sin(omega_per_ps_ * t + phase_);
    return 1.0 + tone + walk;
  }

 private:
  double amp_;
  double omega_per_ps_;  ///< 2*pi*f in rad/ps
  double phase_;
  double walk_sigma_;
  Picoseconds step_ps_ = 1.0e6;  ///< 1 us random-walk update step
  double inv_step_ps_ = 1.0e-6;  ///< reciprocal of step_ps_
  std::int64_t current_step_ = 0;
  double walk_value_ = 0.0;
  double walk_prev_ = 0.0;
  common::Xoshiro256StarStar rng_;
};

}  // namespace trng::sim
