#include "sim/noise.hpp"

namespace trng::sim {

SupplyNoise::SupplyNoise(const NoiseConfig& config, std::uint64_t seed)
    : amp_(config.supply_amp_rel),
      omega_per_ps_(2.0 * 3.14159265358979323846 * config.supply_freq_hz *
                    1.0e-12),
      walk_sigma_(config.supply_walk_rel_per_step),
      rng_(seed ^ 0x5099177B01523ULL) {
  phase_ = rng_.next_double() * 2.0 * 3.14159265358979323846;
}

}  // namespace trng::sim
