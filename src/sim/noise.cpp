#include "sim/noise.hpp"

#include <cmath>

namespace trng::sim {

SupplyNoise::SupplyNoise(const NoiseConfig& config, std::uint64_t seed)
    : amp_(config.supply_amp_rel),
      omega_per_ps_(2.0 * 3.14159265358979323846 * config.supply_freq_hz *
                    1.0e-12),
      walk_sigma_(config.supply_walk_rel_per_step),
      rng_(seed ^ 0x5099177B01523ULL) {
  phase_ = rng_.next_double() * 2.0 * 3.14159265358979323846;
}

double SupplyNoise::multiplier_at(Picoseconds t) {
  // Advance the random walk to the step containing t. Linear interpolation
  // between step values keeps the process continuous.
  const auto step = static_cast<std::int64_t>(std::floor(t / step_ps_));
  while (current_step_ < step) {
    walk_prev_ = walk_value_;
    walk_value_ += walk_sigma_ * rng_.next_gaussian();
    ++current_step_;
  }
  const double frac = t / step_ps_ - static_cast<double>(current_step_ - 1);
  const double walk = (walk_sigma_ == 0.0)
                          ? 0.0
                          : walk_prev_ + (walk_value_ - walk_prev_) *
                                             std::min(std::max(frac, 0.0), 1.0);
  const double tone = amp_ * std::sin(omega_per_ps_ * t + phase_);
  return 1.0 + tone + walk;
}

}  // namespace trng::sim
