// SampleController: drives one simulated TRNG datapath through its
// enable -> accumulate t_A -> capture cycle (paper Section 4.2: "the
// oscillator is running for a time t_A, after which the sampling signal is
// activated").
//
// Two operating modes:
//   * restart (paper default): ENABLE is deasserted after every capture and
//     the oscillator restarts from its deterministic reset phase, so each
//     bit accumulates jitter for exactly t_A from a known phase;
//   * free-running: the oscillator is never reset and is sampled every N_A
//     cycles (an ablation mode — the edge phase then drifts slowly through
//     the TDC bins, exercising the full tau range of Figure 7).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fpga/fabric.hpp"
#include "sim/delay_line.hpp"
#include "sim/noise.hpp"
#include "sim/ring_oscillator.hpp"

namespace trng::sim {

/// One full conversion: the snapshots of all n delay lines.
struct [[nodiscard]] CaptureResult {
  std::vector<LineSnapshot> lines;
  Picoseconds sample_time_ps = 0.0;
};

enum class SamplingMode { kRestart, kFreeRunning };

class SampleController {
 public:
  /// `elaborated` comes from Fabric::elaborate; one delay line per RO stage.
  SampleController(const fpga::ElaboratedTrng& elaborated,
                   const fpga::FlipFlopTimingSpec& ff_spec,
                   const NoiseConfig& noise, std::uint64_t seed,
                   SamplingMode mode = SamplingMode::kRestart,
                   Picoseconds clock_period_ps =
                       constants::kSystemClockPeriodPs);

  /// Runs one conversion with `accumulation_cycles` system-clock cycles of
  /// jitter accumulation (t_A = N_A * T_clk) and returns the captured
  /// snapshots. Throws std::invalid_argument if accumulation_cycles == 0.
  CaptureResult next_capture(Cycles accumulation_cycles);

  const RingOscillator& oscillator() const { return oscillator_; }
  SamplingMode mode() const { return mode_; }

  /// Sum of metastable captures across all lines (diagnostics).
  std::uint64_t metastable_events() const;

 private:
  NoiseConfig noise_;
  SupplyNoise supply_;
  RingOscillator oscillator_;
  std::vector<TappedDelayLineSim> lines_;
  SamplingMode mode_;
  Picoseconds clock_period_;
  Picoseconds cursor_ = 0.0;  ///< current absolute time (cycle-aligned)
  bool started_ = false;
};

}  // namespace trng::sim
