// SampleController: drives one simulated TRNG datapath through its
// enable -> accumulate t_A -> capture cycle (paper Section 4.2: "the
// oscillator is running for a time t_A, after which the sampling signal is
// activated").
//
// Two operating modes:
//   * restart (paper default): ENABLE is deasserted after every capture and
//     the oscillator restarts from its deterministic reset phase, so each
//     bit accumulates jitter for exactly t_A from a known phase;
//   * free-running: the oscillator is never reset and is sampled every N_A
//     cycles (an ablation mode — the edge phase then drifts slowly through
//     the TDC bins, exercising the full tau range of Figure 7).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fpga/fabric.hpp"
#include "sim/accumulation.hpp"
#include "sim/delay_line.hpp"
#include "sim/noise.hpp"
#include "sim/ring_oscillator.hpp"

namespace trng::sim {

/// One full conversion: the snapshots of all n delay lines.
struct [[nodiscard]] CaptureResult {
  std::vector<LineSnapshot> lines;
  Picoseconds sample_time_ps = 0.0;
};

/// One full conversion in packed form: each line's snapshot occupies
/// `words_per_line` consecutive 64-bit words (tap j of line i at
/// words[i * words_per_line + (j >> 6)] bit (j & 63); tail bits zero).
/// The flat buffer is reused across conversions by next_capture_into, so
/// batched generation performs no per-capture allocation in steady state.
struct [[nodiscard]] PackedCapture {
  std::vector<std::uint64_t> words;
  int words_per_line = 0;
  int taps = 0;   ///< taps per line (m)
  int lines = 0;  ///< number of delay lines (n)
  Picoseconds sample_time_ps = 0.0;

  std::uint64_t* line(int i) {
    return words.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(words_per_line);
  }
  const std::uint64_t* line(int i) const {
    return words.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(words_per_line);
  }
};

enum class SamplingMode { kRestart, kFreeRunning };

class SampleController {
 public:
  /// `elaborated` comes from Fabric::elaborate; one delay line per RO stage.
  SampleController(const fpga::ElaboratedTrng& elaborated,
                   const fpga::FlipFlopTimingSpec& ff_spec,
                   const NoiseConfig& noise, std::uint64_t seed,
                   SamplingMode mode = SamplingMode::kRestart,
                   Picoseconds clock_period_ps =
                       constants::kSystemClockPeriodPs);

  /// Runs one conversion with `accumulation_cycles` system-clock cycles of
  /// jitter accumulation (t_A = N_A * T_clk) and returns the captured
  /// snapshots. Throws std::invalid_argument if accumulation_cycles == 0.
  CaptureResult next_capture(Cycles accumulation_cycles);

  /// Batched form of next_capture(): fills `out` (reusing its buffer) via
  /// TappedDelayLineSim::capture_into. Same simulation, same RNG draw
  /// order — for the same controller state it produces bit-identical
  /// snapshots to next_capture(); the scalar path is the reference.
  void next_capture_into(Cycles accumulation_cycles, PackedCapture& out);

  const RingOscillator& oscillator() const { return oscillator_; }
  SamplingMode mode() const { return mode_; }

  /// The enable -> accumulate -> capture clock accounting.
  const AccumulationSchedule& schedule() const { return schedule_; }

  /// Sum of metastable captures across all lines (diagnostics).
  std::uint64_t metastable_events() const;

 private:
  NoiseConfig noise_;
  SupplyNoise supply_;
  RingOscillator oscillator_;
  std::vector<TappedDelayLineSim> lines_;
  SamplingMode mode_;
  AccumulationSchedule schedule_;
  bool started_ = false;
};

/// classify_snapshots on a packed capture (word-level edge/bubble scans).
SnapshotClass classify_packed(const PackedCapture& capture);

}  // namespace trng::sim
