#include "sim/ring_oscillator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trng::sim {

RingOscillator::RingOscillator(std::vector<Picoseconds> stage_delays,
                               Picoseconds white_sigma_ps,
                               const NoiseConfig& noise, SupplyNoise* supply,
                               std::uint64_t seed,
                               Picoseconds history_window_ps)
    : stage_delays_(std::move(stage_delays)),
      white_sigma_(white_sigma_ps * noise.white_sigma_scale),
      noise_(noise),
      supply_(supply),
      rng_(seed),
      history_window_(history_window_ps) {
  if (stage_delays_.empty()) {
    throw std::invalid_argument("RingOscillator: need at least one stage");
  }
  for (Picoseconds d : stage_delays_) {
    if (!(d > 0.0)) {
      throw std::invalid_argument("RingOscillator: stage delays must be > 0");
    }
  }
  toggles_.resize(stage_delays_.size());
  value_.assign(stage_delays_.size(), true);
}

Picoseconds RingOscillator::mean_stage_delay() const {
  Picoseconds sum = 0.0;
  for (Picoseconds d : stage_delays_) sum += d;
  return sum / static_cast<double>(stage_delays_.size());
}

Picoseconds RingOscillator::nominal_half_period() const {
  Picoseconds sum = 0.0;
  for (Picoseconds d : stage_delays_) sum += d;
  return sum;
}

void RingOscillator::reset(Picoseconds t0) {
  for (auto& q : toggles_) q.clear();
  std::fill(value_.begin(), value_.end(), true);
  running_ = true;
  now_ = t0;
  // ENABLE rises at t0: the NAND (stage 0) sees both inputs high and its
  // output falls one stage delay later.
  pending_stage_ = 0;
  const double mult = supply_ ? supply_->multiplier_at(t0) : 1.0;
  flicker_state_ = noise_.flicker_corr * flicker_state_ +
                   std::sqrt(1.0 - noise_.flicker_corr * noise_.flicker_corr) *
                       noise_.flicker_sigma_ps * rng_.next_gaussian();
  pending_time_ = t0 + stage_delays_[0] * mult +
                  white_sigma_ * rng_.next_gaussian() + flicker_state_;
}

void RingOscillator::advance_to(Picoseconds t) {
  if (!running_) {
    throw std::logic_error("RingOscillator::advance_to: call reset() first");
  }
  while (pending_time_ <= t) {
    const int s = pending_stage_;
    toggles_[static_cast<std::size_t>(s)].push_back(pending_time_);
    value_[static_cast<std::size_t>(s)] = !value_[static_cast<std::size_t>(s)];
    ++transitions_;

    // Launch the transition into the next stage.
    const int next = (s + 1) % stages();
    const double mult = supply_ ? supply_->multiplier_at(pending_time_) : 1.0;
    flicker_state_ =
        noise_.flicker_corr * flicker_state_ +
        std::sqrt(1.0 - noise_.flicker_corr * noise_.flicker_corr) *
            noise_.flicker_sigma_ps * rng_.next_gaussian();
    Picoseconds delay = stage_delays_[static_cast<std::size_t>(next)] * mult +
                        white_sigma_ * rng_.next_gaussian() + flicker_state_;
    // Physical floor: a gate cannot have non-positive propagation delay.
    delay = std::max(delay, 0.05 * stage_delays_[static_cast<std::size_t>(next)]);
    pending_stage_ = next;
    pending_time_ += delay;
  }
  now_ = t;
  prune_history();
}

void RingOscillator::prune_history() {
  const Picoseconds cutoff = now_ - history_window_;
  for (auto& q : toggles_) {
    // Keep one toggle before the window so value_at can resolve the level
    // at the window's left edge.
    while (q.size() > 1 && q[1] < cutoff) q.pop_front();
  }
}

bool RingOscillator::value_at(int stage, Picoseconds t) const {
  if (stage < 0 || stage >= stages()) {
    throw std::out_of_range("RingOscillator::value_at: bad stage");
  }
  if (t > now_) {
    throw std::logic_error("RingOscillator::value_at: time not simulated yet");
  }
  if (t < now_ - history_window_) {
    throw std::logic_error(
        "RingOscillator::value_at: time before retained history window");
  }
  const auto& q = toggles_[static_cast<std::size_t>(stage)];
  // Current value was flipped by all retained toggles; undo those after t.
  const auto it = std::upper_bound(q.begin(), q.end(), t);
  const auto after_t = static_cast<std::size_t>(q.end() - it);
  bool v = value_[static_cast<std::size_t>(stage)];
  if (after_t % 2 == 1) v = !v;
  return v;
}

std::vector<Picoseconds> RingOscillator::edges_in(int stage, Picoseconds t0,
                                                  Picoseconds t1) const {
  if (stage < 0 || stage >= stages()) {
    throw std::out_of_range("RingOscillator::edges_in: bad stage");
  }
  if (t1 > now_) {
    throw std::logic_error("RingOscillator::edges_in: time not simulated yet");
  }
  const auto& q = toggles_[static_cast<std::size_t>(stage)];
  std::vector<Picoseconds> out;
  auto lo = std::lower_bound(q.begin(), q.end(), t0);
  auto hi = std::upper_bound(q.begin(), q.end(), t1);
  out.assign(lo, hi);
  return out;
}

}  // namespace trng::sim
