#include "sim/ring_oscillator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trng::sim {

RingOscillator::RingOscillator(std::vector<Picoseconds> stage_delays,
                               Picoseconds white_sigma_ps,
                               const NoiseConfig& noise, SupplyNoise* supply,
                               std::uint64_t seed,
                               Picoseconds history_window_ps)
    : stage_delays_(std::move(stage_delays)),
      white_sigma_(white_sigma_ps * noise.white_sigma_scale),
      flicker_coeff_(std::sqrt(1.0 - noise.flicker_corr * noise.flicker_corr) *
                     noise.flicker_sigma_ps),
      noise_(noise),
      supply_(supply),
      rng_(seed),
      history_window_(history_window_ps) {
  if (stage_delays_.empty()) {
    throw std::invalid_argument("RingOscillator: need at least one stage");
  }
  for (Picoseconds d : stage_delays_) {
    if (!(d > 0.0)) {
      throw std::invalid_argument("RingOscillator: stage delays must be > 0");
    }
  }
  toggles_.resize(stage_delays_.size());
  value_.assign(stage_delays_.size(), 1);
}

Picoseconds RingOscillator::mean_stage_delay() const {
  Picoseconds sum = 0.0;
  for (Picoseconds d : stage_delays_) sum += d;
  return sum / static_cast<double>(stage_delays_.size());
}

Picoseconds RingOscillator::nominal_half_period() const {
  Picoseconds sum = 0.0;
  for (Picoseconds d : stage_delays_) sum += d;
  return sum;
}

void RingOscillator::reset(Picoseconds t0) {
  for (auto& q : toggles_) q.clear();
  std::fill(value_.begin(), value_.end(), static_cast<unsigned char>(1));
  running_ = true;
  now_ = t0;
  // ENABLE rises at t0: the NAND (stage 0) sees both inputs high and its
  // output falls one stage delay later.
  pending_stage_ = 0;
  const double mult = supply_ ? supply_->multiplier_at(t0) : 1.0;
  flicker_state_ = noise_.flicker_corr * flicker_state_ +
                   flicker_coeff_ * rng_.next_gaussian();
  pending_time_ = t0 + stage_delays_[0] * mult +
                  white_sigma_ * rng_.next_gaussian() + flicker_state_;
}

void RingOscillator::advance_to(Picoseconds t) {
  if (!running_) {
    throw std::logic_error("RingOscillator::advance_to: call reset() first");
  }
  // Hoist loop-carried state into locals: the deque push_back below may
  // write through pointers the compiler cannot prove distinct from *this,
  // which would force a reload of every member each iteration. The
  // arithmetic (and hence the random stream) is unchanged.
  const int nstages = stages();
  const double corr = noise_.flicker_corr;
  const double fcoeff = flicker_coeff_;
  const double wsigma = white_sigma_;
  const Picoseconds* sd = stage_delays_.data();
  std::deque<Picoseconds>* tg = toggles_.data();
  unsigned char* val = value_.data();
  double fs = flicker_state_;
  Picoseconds pt = pending_time_;
  int ps = pending_stage_;
  std::uint64_t trans = transitions_;
  common::Xoshiro256StarStar rng = rng_;
  // The supply's tone/walk state is likewise copied in and written back so
  // multiplier_at runs entirely on locals; nobody else queries the shared
  // supply while this loop runs, so the draw order it sees is unchanged.
  SupplyNoise supply_local = supply_ ? *supply_ : SupplyNoise{{}, 0};
  SupplyNoise* const sup = supply_ ? &supply_local : nullptr;
  while (pt <= t) {
    tg[static_cast<std::size_t>(ps)].push_back(pt);
    val[static_cast<std::size_t>(ps)] ^= 1u;
    ++trans;

    // Launch the transition into the next stage (wrap without the integer
    // division a % would cost on this per-event path).
    int next = ps + 1;
    if (next == nstages) next = 0;
    const double mult = sup ? sup->multiplier_at(pt) : 1.0;
    fs = corr * fs + fcoeff * rng.next_gaussian();
    Picoseconds delay = sd[next] * mult + wsigma * rng.next_gaussian() + fs;
    // Physical floor: a gate cannot have non-positive propagation delay.
    delay = std::max(delay, 0.05 * sd[next]);
    ps = next;
    pt += delay;
  }
  if (supply_) *supply_ = supply_local;
  flicker_state_ = fs;
  pending_time_ = pt;
  pending_stage_ = ps;
  transitions_ = trans;
  rng_ = rng;
  now_ = t;
  prune_history();
}

void RingOscillator::prune_history() {
  // Lazy: retaining extra history is observably identical (every query
  // depends only on toggles at or after its time plus the count of later
  // toggles), so trimming is deferred until a queue is long enough for the
  // walk to be worth its cost. Restart-mode operation clears the queues at
  // every reset and typically never prunes.
  constexpr std::size_t kPruneThreshold = 64;
  bool any_long = false;
  for (const auto& q : toggles_) any_long = any_long || q.size() > kPruneThreshold;
  if (!any_long) return;
  const Picoseconds cutoff = now_ - history_window_;
  for (auto& q : toggles_) {
    // Keep one toggle before the window so value_at can resolve the level
    // at the window's left edge.
    while (q.size() > 1 && q[1] < cutoff) q.pop_front();
  }
}

bool RingOscillator::value_at(int stage, Picoseconds t) const {
  if (stage < 0 || stage >= stages()) {
    throw std::out_of_range("RingOscillator::value_at: bad stage");
  }
  if (t > now_) {
    throw std::logic_error("RingOscillator::value_at: time not simulated yet");
  }
  if (t < now_ - history_window_) {
    throw std::logic_error(
        "RingOscillator::value_at: time before retained history window");
  }
  const auto& q = toggles_[static_cast<std::size_t>(stage)];
  // Current value was flipped by all retained toggles; undo those after t.
  const auto it = std::upper_bound(q.begin(), q.end(), t);
  const auto after_t = static_cast<std::size_t>(q.end() - it);
  bool v = value_[static_cast<std::size_t>(stage)] != 0;
  if (after_t % 2 == 1) v = !v;
  return v;
}

std::vector<Picoseconds> RingOscillator::edges_in(int stage, Picoseconds t0,
                                                  Picoseconds t1) const {
  if (stage < 0 || stage >= stages()) {
    throw std::out_of_range("RingOscillator::edges_in: bad stage");
  }
  if (t1 > now_) {
    throw std::logic_error("RingOscillator::edges_in: time not simulated yet");
  }
  const auto& q = toggles_[static_cast<std::size_t>(stage)];
  std::vector<Picoseconds> out;
  auto lo = std::lower_bound(q.begin(), q.end(), t0);
  auto hi = std::upper_bound(q.begin(), q.end(), t1);
  out.assign(lo, hi);
  return out;
}

}  // namespace trng::sim
