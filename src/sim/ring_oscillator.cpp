#include "sim/ring_oscillator.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace trng::sim {

RingOscillator::RingOscillator(std::vector<Picoseconds> stage_delays,
                               Picoseconds white_sigma_ps,
                               const NoiseConfig& noise, SupplyNoise* supply,
                               std::uint64_t seed,
                               Picoseconds history_window_ps)
    : stage_delays_(std::move(stage_delays)),
      white_sigma_(white_sigma_ps * noise.white_sigma_scale),
      flicker_coeff_(std::sqrt(1.0 - noise.flicker_corr * noise.flicker_corr) *
                     noise.flicker_sigma_ps),
      noise_(noise),
      supply_(supply),
      rng_(seed),
      history_window_(history_window_ps) {
  if (stage_delays_.empty()) {
    throw std::invalid_argument("RingOscillator: need at least one stage");
  }
  for (Picoseconds d : stage_delays_) {
    if (!(d > 0.0)) {
      throw std::invalid_argument("RingOscillator: stage delays must be > 0");
    }
  }
  toggles_.resize(stage_delays_.size());
  value_.assign(stage_delays_.size(), 1);
}

Picoseconds RingOscillator::mean_stage_delay() const {
  Picoseconds sum = 0.0;
  for (Picoseconds d : stage_delays_) sum += d;
  return sum / static_cast<double>(stage_delays_.size());
}

Picoseconds RingOscillator::nominal_half_period() const {
  Picoseconds sum = 0.0;
  for (Picoseconds d : stage_delays_) sum += d;
  return sum;
}

double RingOscillator::take_gaussian() {
  if (gauss_pos_ < gauss_len_) return gauss_buf_[gauss_pos_++];
  return rng_.next_gaussian();
}

void RingOscillator::ensure_gaussians(std::size_t want) {
  const std::size_t left = gauss_len_ - gauss_pos_;
  if (left >= want) return;
  if (gauss_pos_ > 0) {
    std::copy(gauss_buf_.begin() + static_cast<std::ptrdiff_t>(gauss_pos_),
              gauss_buf_.begin() + static_cast<std::ptrdiff_t>(gauss_len_),
              gauss_buf_.begin());
    gauss_len_ = left;
    gauss_pos_ = 0;
  }
  if (gauss_buf_.size() < want) gauss_buf_.resize(want);
  rng_.fill_gaussian(gauss_buf_.data() + gauss_len_, want - gauss_len_);
  gauss_len_ = want;
}

void RingOscillator::reset(Picoseconds t0) {
  for (auto& q : toggles_) q.clear();
  std::fill(value_.begin(), value_.end(), static_cast<unsigned char>(1));
  running_ = true;
  now_ = t0;
  // ENABLE rises at t0: the NAND (stage 0) sees both inputs high and its
  // output falls one stage delay later. Draws go through take_gaussian():
  // a reset between batched advances must consume any pre-drawn block
  // values first to stay on the scalar draw sequence.
  pending_stage_ = 0;
  const double mult = supply_ ? supply_->multiplier_at(t0) : 1.0;
  flicker_state_ = noise_.flicker_corr * flicker_state_ +
                   flicker_coeff_ * take_gaussian();
  pending_time_ = t0 + stage_delays_[0] * mult +
                  white_sigma_ * take_gaussian() + flicker_state_;
}

void RingOscillator::advance_to(Picoseconds t, AdvanceKernel kernel) {
  if (!running_) {
    throw std::logic_error("RingOscillator::advance_to: call reset() first");
  }
  // Hoist loop-carried state into locals: the toggle push_back below may
  // write through pointers the compiler cannot prove distinct from *this,
  // which would force a reload of every member each iteration. The
  // arithmetic (and hence the random stream) is unchanged.
  const int nstages = stages();
  const double corr = noise_.flicker_corr;
  const double fcoeff = flicker_coeff_;
  const double wsigma = white_sigma_;
  const Picoseconds* sd = stage_delays_.data();
  std::vector<Picoseconds>* tg = toggles_.data();
  unsigned char* val = value_.data();
  double fs = flicker_state_;
  Picoseconds pt = pending_time_;
  int ps = pending_stage_;
  std::uint64_t trans = transitions_;
  // The supply's tone/walk state is likewise copied in and written back so
  // multiplier_at runs entirely on locals; nobody else queries the shared
  // supply while this loop runs, so the draw order it sees is unchanged.
  SupplyNoise supply_local = supply_ ? *supply_ : SupplyNoise{{}, 0};
  SupplyNoise* const sup = supply_ ? &supply_local : nullptr;

  // Strategy dispatch. Both loop bodies run the identical per-transition
  // arithmetic on the identical Gaussian stream, so which one executes is
  // purely a speed decision (measured on the bench microharness):
  //   * with a supply attached, the on-demand loop wins (~1.3x): each
  //     transition's tone_sin/walk evaluation is a long serial dependency
  //     chain through pt, and the out-of-order core executes the polar
  //     Gaussian math for free in its shadow — pre-drawing the block first
  //     serializes the two phases and forfeits that overlap;
  //   * without a supply the transition chain is short and the block
  //     pre-draw pipelines better (~1.1x).
  // kReference always takes the on-demand loop (it is the pinned scalar
  // implementation); kBatched picks by configuration.
  if (kernel == AdvanceKernel::kReference || sup != nullptr) {
    // On-demand loop: one transition at a time, each Gaussian drawn as
    // needed (block leftovers first — see take_gaussian()).
    common::Xoshiro256StarStar rng = rng_;
    const double* gb = gauss_buf_.data();
    std::size_t gpos = gauss_pos_;
    const std::size_t gend = gauss_len_;
    while (pt <= t) {
      tg[static_cast<std::size_t>(ps)].push_back(pt);
      val[static_cast<std::size_t>(ps)] ^= 1u;
      ++trans;

      // Launch the transition into the next stage (wrap without the integer
      // division a % would cost on this per-event path).
      int next = ps + 1;
      if (next == nstages) next = 0;
      const double mult = sup ? sup->multiplier_at(pt) : 1.0;
      fs = corr * fs +
           fcoeff * (gpos < gend ? gb[gpos++] : rng.next_gaussian());
      Picoseconds delay =
          sd[next] * mult +
          wsigma * (gpos < gend ? gb[gpos++] : rng.next_gaussian()) + fs;
      // Physical floor: a gate cannot have non-positive propagation delay.
      delay = std::max(delay, 0.05 * sd[next]);
      ps = next;
      pt += delay;
    }
    gauss_pos_ = gpos;
    rng_ = rng;
  } else {
    // Block pre-draw loop (no supply, so the delay multiplier is exactly
    // 1.0 and drops out): pre-draw the (flicker, white) jitter pairs for a
    // whole block of upcoming transitions with fill_gaussian — value-for-
    // value the same stream the on-demand loop draws — then run the
    // identical per-transition arithmetic against the contiguous block.
    // Unconsumed pairs persist in gauss_buf_ for the next kernel or reset.
    const Picoseconds mean_delay = mean_stage_delay();
    while (pt <= t) {
      // Transitions left in (pt, t], estimated from the mean traversal
      // time with headroom for jitter; clamped so one refill covers small
      // advances and huge ones stay cache-resident.
      const double est = (t - pt) / mean_delay + 4.0;
      const std::size_t block =
          2 * std::min<std::size_t>(
                  std::max<std::size_t>(static_cast<std::size_t>(est), 16),
                  4096);
      ensure_gaussians(block);
      const double* gb = gauss_buf_.data();
      std::size_t gpos = gauss_pos_;
      const std::size_t gend = gauss_len_;
      while (pt <= t && gpos + 2 <= gend) {
        tg[static_cast<std::size_t>(ps)].push_back(pt);
        val[static_cast<std::size_t>(ps)] ^= 1u;
        ++trans;

        int next = ps + 1;
        if (next == nstages) next = 0;
        fs = corr * fs + fcoeff * gb[gpos];
        Picoseconds delay = sd[next] + wsigma * gb[gpos + 1] + fs;
        gpos += 2;
        delay = std::max(delay, 0.05 * sd[next]);
        ps = next;
        pt += delay;
      }
      gauss_pos_ = gpos;
    }
  }
  if (supply_) *supply_ = supply_local;
  flicker_state_ = fs;
  pending_time_ = pt;
  pending_stage_ = ps;
  transitions_ = trans;
  now_ = t;
  prune_history();
}

void RingOscillator::prune_history() {
  // Lazy: retaining extra history is observably identical (every query
  // depends only on toggles at or after its time plus the count of later
  // toggles), so trimming is deferred until a queue is long enough for the
  // walk to be worth its cost. Restart-mode operation clears the queues at
  // every reset and typically never prunes.
  constexpr std::size_t kPruneThreshold = 64;
  bool any_long = false;
  for (const auto& q : toggles_) any_long = any_long || q.size() > kPruneThreshold;
  if (!any_long) return;
  const Picoseconds cutoff = now_ - history_window_;
  for (auto& q : toggles_) {
    // Keep one toggle before the window so value_at can resolve the level
    // at the window's left edge. Same retention as the old per-element
    // pop_front loop, as one contiguous erase.
    std::size_t drop = 0;
    while (q.size() - drop > 1 && q[drop + 1] < cutoff) ++drop;
    if (drop > 0) {
      q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(drop));
    }
  }
}

bool RingOscillator::value_at(int stage, Picoseconds t) const {
  if (stage < 0 || stage >= stages()) {
    throw std::out_of_range("RingOscillator::value_at: bad stage");
  }
  if (t > now_) {
    throw std::logic_error("RingOscillator::value_at: time not simulated yet");
  }
  if (t < now_ - history_window_) {
    throw std::logic_error(
        "RingOscillator::value_at: time before retained history window");
  }
  const auto& q = toggles_[static_cast<std::size_t>(stage)];
  // Current value was flipped by all retained toggles; undo those after t.
  const auto it = std::upper_bound(q.begin(), q.end(), t);
  const auto after_t = static_cast<std::size_t>(q.end() - it);
  bool v = value_[static_cast<std::size_t>(stage)] != 0;
  if (after_t % 2 == 1) v = !v;
  return v;
}

std::vector<Picoseconds> RingOscillator::edges_in(int stage, Picoseconds t0,
                                                  Picoseconds t1) const {
  if (stage < 0 || stage >= stages()) {
    throw std::out_of_range("RingOscillator::edges_in: bad stage");
  }
  if (t1 > now_) {
    throw std::logic_error("RingOscillator::edges_in: time not simulated yet");
  }
  const auto& q = toggles_[static_cast<std::size_t>(stage)];
  std::vector<Picoseconds> out;
  auto lo = std::lower_bound(q.begin(), q.end(), t0);
  auto hi = std::upper_bound(q.begin(), q.end(), t1);
  out.assign(lo, hi);
  return out;
}

}  // namespace trng::sim
