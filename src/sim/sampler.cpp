#include "sim/sampler.hpp"

#include <bit>
#include <stdexcept>

namespace trng::sim {

namespace {

std::vector<Picoseconds> stage_delays_of(const fpga::ElaboratedTrng& e) {
  return e.ro_stage_delay;
}

}  // namespace

SampleController::SampleController(const fpga::ElaboratedTrng& elaborated,
                                   const fpga::FlipFlopTimingSpec& ff_spec,
                                   const NoiseConfig& noise, std::uint64_t seed,
                                   SamplingMode mode,
                                   Picoseconds clock_period_ps)
    : noise_(noise),
      supply_(noise, seed),
      oscillator_(stage_delays_of(elaborated), elaborated.stage_white_sigma_ps,
                  noise, &supply_, seed ^ 0x05C111A70ULL),
      mode_(mode),
      schedule_(clock_period_ps) {
  if (elaborated.lines.size() != elaborated.ro_stage_delay.size()) {
    throw std::invalid_argument(
        "SampleController: need one delay line per RO stage");
  }
  lines_.reserve(elaborated.lines.size());
  std::uint64_t line_seed = seed ^ 0x11E5ULL;
  for (const auto& lt : elaborated.lines) {
    lines_.emplace_back(lt, ff_spec, line_seed++);
  }
  // PackedCapture assumes a rectangular capture (same m for every line).
  for (const auto& line : lines_) {
    if (line.taps() != lines_.front().taps()) {
      throw std::invalid_argument(
          "SampleController: all delay lines must have the same tap count");
    }
  }
}

CaptureResult SampleController::next_capture(Cycles accumulation_cycles) {
  if (accumulation_cycles == 0) {
    throw std::invalid_argument(
        "SampleController::next_capture: accumulation_cycles must be >= 1");
  }
  if (mode_ == SamplingMode::kRestart || !started_) {
    oscillator_.reset(schedule_.cursor_ps());
    started_ = true;
  }
  // begin_conversion returns the sample instant and advances the cursor to
  // the following clock edge (where the next conversion starts).
  const Picoseconds t_sample = schedule_.begin_conversion(accumulation_cycles);

  // Simulate past the sample instant far enough to cover the largest
  // positive clock skew plus the metastability aperture. The scalar capture
  // path runs the reference advance kernel; trajectories are bit-identical
  // to the batched kernel next_capture_into uses.
  oscillator_.advance_to(t_sample + 500.0, AdvanceKernel::kReference);

  CaptureResult result;
  result.sample_time_ps = t_sample;
  result.lines.reserve(lines_.size());
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    result.lines.push_back(
        lines_[i].capture(oscillator_, static_cast<int>(i), t_sample));
  }
  return result;
}

void SampleController::next_capture_into(Cycles accumulation_cycles,
                                         PackedCapture& out) {
  if (accumulation_cycles == 0) {
    throw std::invalid_argument(
        "SampleController::next_capture_into: accumulation_cycles must be >= 1");
  }
  if (mode_ == SamplingMode::kRestart || !started_) {
    oscillator_.reset(schedule_.cursor_ps());
    started_ = true;
  }
  const Picoseconds t_sample = schedule_.begin_conversion(accumulation_cycles);
  // Whole-block sim advance: the batched SoA kernel pre-draws the jitter
  // pairs for the full accumulation interval in one fill_gaussian block.
  oscillator_.advance_to(t_sample + 500.0, AdvanceKernel::kBatched);

  const int taps = lines_.empty() ? 0 : lines_.front().taps();
  const int wpl = (taps + 63) / 64;
  // Shape the capture only when it changes (i.e. on first use): capture_into
  // overwrites every word of every line, so steady-state batched generation
  // neither allocates nor zero-fills per capture.
  if (out.taps != taps || out.lines != static_cast<int>(lines_.size()) ||
      out.words_per_line != wpl) {
    out.taps = taps;
    out.lines = static_cast<int>(lines_.size());
    out.words_per_line = wpl;
    out.words.resize(static_cast<std::size_t>(out.lines) *
                     static_cast<std::size_t>(wpl));
  }
  out.sample_time_ps = t_sample;
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    lines_[i].capture_into(oscillator_, static_cast<int>(i), t_sample,
                           out.line(static_cast<int>(i)));
  }
}

std::uint64_t SampleController::metastable_events() const {
  std::uint64_t total = 0;
  for (const auto& line : lines_) total += line.metastable_events();
  return total;
}

SnapshotClass classify_packed(const PackedCapture& capture) {
  // Single fused pass per line: count_edges_packed and has_bubble_packed
  // share their shifted-neighbour words, and this runs once per generated
  // bit, so fusing them here spares two helper calls per line. The masks
  // and results are identical to the helpers'.
  int total_edges = 0;
  bool bubble = false;
  const int taps = capture.taps;
  if (taps > 1) {
    const std::size_t nwords = (static_cast<std::size_t>(taps) + 63) / 64;
    const std::size_t pairs = static_cast<std::size_t>(taps) - 1;
    const bool has_interior = taps >= 3;
    const std::size_t last =
        has_interior ? static_cast<std::size_t>(taps) - 2 : 0;
    for (int i = 0; i < capture.lines; ++i) {
      const std::uint64_t* words = capture.line(i);
      for (std::size_t w = 0; w < nwords; ++w) {
        const std::uint64_t v = words[w];
        const std::uint64_t prev63 = (w > 0) ? (words[w - 1] >> 63) : 0ULL;
        const std::uint64_t next0 =
            (w + 1 < nwords) ? (words[w + 1] & 1ULL) : 0ULL;
        const std::uint64_t right = (v >> 1) | (next0 << 63);
        // Bit b marks a transition between taps 64w+b and 64w+b+1.
        std::uint64_t x = v ^ right;
        const std::size_t base = w * 64;
        if (pairs < base + 64) {
          const std::size_t valid = pairs > base ? pairs - base : 0;
          x &= valid == 0 ? 0ULL : (~0ULL >> (64 - valid));
        }
        total_edges += std::popcount(x);
        if (has_interior && !bubble) {
          const std::uint64_t left = (v << 1) | prev63;
          const std::uint64_t b = (v ^ left) & (v ^ right);
          // Restrict to interior taps 1 .. taps-2.
          std::uint64_t mask = ~0ULL;
          if (base == 0) mask &= ~1ULL;
          if (last < base) {
            mask = 0;
          } else if (last - base < 63) {
            mask &= ~0ULL >> (63 - (last - base));
          }
          bubble = (b & mask) != 0;
        }
      }
    }
  }
  if (bubble) return SnapshotClass::kBubbles;
  if (total_edges == 0) return SnapshotClass::kNoEdge;
  if (total_edges == 1) return SnapshotClass::kRegular;
  return SnapshotClass::kDoubleEdge;
}

}  // namespace trng::sim
