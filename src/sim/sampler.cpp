#include "sim/sampler.hpp"

#include <stdexcept>

namespace trng::sim {

namespace {

std::vector<Picoseconds> stage_delays_of(const fpga::ElaboratedTrng& e) {
  return e.ro_stage_delay;
}

}  // namespace

SampleController::SampleController(const fpga::ElaboratedTrng& elaborated,
                                   const fpga::FlipFlopTimingSpec& ff_spec,
                                   const NoiseConfig& noise, std::uint64_t seed,
                                   SamplingMode mode,
                                   Picoseconds clock_period_ps)
    : noise_(noise),
      supply_(noise, seed),
      oscillator_(stage_delays_of(elaborated), elaborated.stage_white_sigma_ps,
                  noise, &supply_, seed ^ 0x05C111A70ULL),
      mode_(mode),
      clock_period_(clock_period_ps) {
  if (elaborated.lines.size() != elaborated.ro_stage_delay.size()) {
    throw std::invalid_argument(
        "SampleController: need one delay line per RO stage");
  }
  if (!(clock_period_ps > 0.0)) {
    throw std::invalid_argument("SampleController: bad clock period");
  }
  lines_.reserve(elaborated.lines.size());
  std::uint64_t line_seed = seed ^ 0x11E5ULL;
  for (const auto& lt : elaborated.lines) {
    lines_.emplace_back(lt, ff_spec, line_seed++);
  }
}

CaptureResult SampleController::next_capture(Cycles accumulation_cycles) {
  if (accumulation_cycles == 0) {
    throw std::invalid_argument(
        "SampleController::next_capture: accumulation_cycles must be >= 1");
  }
  const Picoseconds t_acc =
      static_cast<double>(accumulation_cycles) * clock_period_;

  if (mode_ == SamplingMode::kRestart || !started_) {
    oscillator_.reset(cursor_);
    started_ = true;
  }
  const Picoseconds t_sample = cursor_ + t_acc;

  // Simulate past the sample instant far enough to cover the largest
  // positive clock skew plus the metastability aperture.
  oscillator_.advance_to(t_sample + 500.0);

  CaptureResult result;
  result.sample_time_ps = t_sample;
  result.lines.reserve(lines_.size());
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    result.lines.push_back(
        lines_[i].capture(oscillator_, static_cast<int>(i), t_sample));
  }

  // The next conversion starts at the following clock edge.
  cursor_ = t_sample + clock_period_;
  return result;
}

std::uint64_t SampleController::metastable_events() const {
  std::uint64_t total = 0;
  for (const auto& line : lines_) total += line.metastable_events();
  return total;
}

}  // namespace trng::sim
