// Event-based timing simulation of the free-running ring oscillator.
//
// Topology (paper Section 3): one NAND gate (stage 0, inverting, gated by
// ENABLE) followed by n-1 non-inverting buffers; the last buffer output
// closes the loop. With ENABLE low every stage output rests at '1'; on
// ENABLE a single transition is launched and circulates forever, toggling
// each stage output once per half-period (half-period = sum of stage
// delays, ~n * d0).
//
// Every stage traversal adds:
//   * the stage's static elaborated delay (process variation included),
//   * a fresh white-noise Gaussian (the entropy-bearing jitter),
//   * the oscillator's AR(1) flicker state,
//   * the common-mode supply multiplier.
//
// The simulator keeps a bounded history of recent toggle times per stage so
// the TDC can reconstruct the waveform a delay-line-depth into the past.
// Per-stage state is struct-of-arrays: contiguous vectors of toggle times,
// one per stage, plus flat value/delay arrays — the layout the batched
// advance kernel streams through.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/noise.hpp"

namespace trng::sim {

/// Which advance_to kernel to run. Both kernels execute the identical
/// per-transition arithmetic on the identical Gaussian draw sequence
/// (fill_gaussian's draw-order contract), so they produce bit-identical
/// trajectories and may be interleaved freely on one oscillator:
///   * kReference — the original one-transition-at-a-time loop, drawing
///     each Gaussian on demand (the pinned scalar reference
///     implementation);
///   * kBatched   — the performance kernel: pre-draws whole blocks of
///     (flicker, white) jitter pairs with fill_gaussian and advances many
///     periods per refill when that is the faster strategy for the
///     configuration, and falls back to the on-demand loop when it is not
///     (see the dispatch comment in advance_to) — the choice is invisible
///     in the trajectory.
enum class AdvanceKernel { kReference, kBatched };

class RingOscillator {
 public:
  /// `stage_delays` come from Fabric elaboration (one entry per stage);
  /// `white_sigma_ps` is the per-traversal thermal jitter std-dev.
  /// `supply` may be nullptr (no global noise) or shared across oscillators.
  RingOscillator(std::vector<Picoseconds> stage_delays,
                 Picoseconds white_sigma_ps, const NoiseConfig& noise,
                 SupplyNoise* supply, std::uint64_t seed,
                 Picoseconds history_window_ps = 6000.0);

  int stages() const { return static_cast<int>(stage_delays_.size()); }
  Picoseconds mean_stage_delay() const;
  /// Noise-free half-period: sum of static stage delays.
  Picoseconds nominal_half_period() const;

  /// Restarts the oscillator: all outputs high, first transition launched
  /// from the NAND at `t0` (ENABLE rising edge). Clears history; flicker
  /// state persists across restarts (it is a property of the silicon).
  void reset(Picoseconds t0);

  /// Simulates all transitions with arrival time <= t. The kernel choice
  /// affects speed only: trajectories are bit-identical (see AdvanceKernel).
  void advance_to(Picoseconds t, AdvanceKernel kernel = AdvanceKernel::kBatched);

  /// Output value of `stage` at time `t`. Requires advance_to(>= t) first
  /// and t within the retained history window; throws std::logic_error
  /// otherwise.
  bool value_at(int stage, Picoseconds t) const;

  /// Toggle times of `stage` inside [t0, t1] (ascending). Requires
  /// t1 <= now(); a t0 older than the retained history window silently
  /// clips to the window (only retained toggles are returned).
  std::vector<Picoseconds> edges_in(int stage, Picoseconds t0,
                                    Picoseconds t1) const;

  /// Direct read access to `stage`'s retained toggle times (ascending,
  /// contiguous). Batched TDC captures flatten this once instead of
  /// binary-searching per flip-flop through value_at/edges_in. Inline (with
  /// the bounds check compiled into the caller): queried once per TDC line
  /// capture.
  const std::vector<Picoseconds>& toggle_history(int stage) const {
    if (stage < 0 || stage >= stages()) {
      throw std::out_of_range("RingOscillator::toggle_history: bad stage");
    }
    return toggles_[static_cast<std::size_t>(stage)];
  }

  /// Output value of `stage` at now() (after all retained toggles).
  /// Inline for the same reason as toggle_history.
  bool current_value(int stage) const {
    if (stage < 0 || stage >= stages()) {
      throw std::out_of_range("RingOscillator::current_value: bad stage");
    }
    return value_[static_cast<std::size_t>(stage)] != 0;
  }

  /// Total transitions simulated since construction (all stages).
  std::uint64_t transition_count() const { return transitions_; }

  /// Time up to which the oscillator has been simulated.
  Picoseconds now() const { return now_; }

 private:
  void prune_history();
  /// Next Gaussian in stream order: pre-drawn block values first, then the
  /// generator. Every Gaussian consumer inside the oscillator goes through
  /// this (or through the kernels' hoisted equivalent), which is what makes
  /// kernel interleaving bit-transparent.
  double take_gaussian();
  /// Compacts unconsumed pre-drawn values to the front of gauss_buf_ and
  /// tops the buffer up to `want` values with fill_gaussian.
  void ensure_gaussians(std::size_t want);

  std::vector<Picoseconds> stage_delays_;
  Picoseconds white_sigma_;
  /// sqrt(1 - corr^2) * flicker_sigma — the AR(1) innovation gain, hoisted
  /// out of the per-transition loop (bit-identical to recomputing it).
  double flicker_coeff_ = 0.0;
  NoiseConfig noise_;
  SupplyNoise* supply_;  // not owned; may be null
  common::Xoshiro256StarStar rng_;
  Picoseconds history_window_;

  // Dynamic state (struct-of-arrays: one contiguous ascending time array
  // per stage; vectors retain capacity across reset(), so restart-mode
  // operation performs no steady-state allocation).
  std::vector<std::vector<Picoseconds>> toggles_;  // per-stage toggle times
  // Current output values; byte-backed (not vector<bool>) so the
  // per-transition flip is a plain load/xor/store.
  std::vector<unsigned char> value_;
  int pending_stage_ = 0;          // stage whose output toggles next
  Picoseconds pending_time_ = 0.0; // when it toggles
  bool running_ = false;
  Picoseconds now_ = 0.0;
  double flicker_state_ = 0.0;
  std::uint64_t transitions_ = 0;
  // Pre-drawn Gaussian block (stream-order FIFO): values
  // [gauss_pos_, gauss_len_) are drawn-but-unconsumed and MUST be consumed
  // before rng_ is touched again, by whichever kernel (or reset()) runs
  // next. The vector is grow-only storage — gauss_len_, not size(), bounds
  // the valid values — so steady-state refills never resize (a resize
  // would zero-fill the block just before fill_gaussian overwrites it).
  std::vector<double> gauss_buf_;
  std::size_t gauss_pos_ = 0;
  std::size_t gauss_len_ = 0;
};

}  // namespace trng::sim
