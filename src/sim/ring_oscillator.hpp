// Event-based timing simulation of the free-running ring oscillator.
//
// Topology (paper Section 3): one NAND gate (stage 0, inverting, gated by
// ENABLE) followed by n-1 non-inverting buffers; the last buffer output
// closes the loop. With ENABLE low every stage output rests at '1'; on
// ENABLE a single transition is launched and circulates forever, toggling
// each stage output once per half-period (half-period = sum of stage
// delays, ~n * d0).
//
// Every stage traversal adds:
//   * the stage's static elaborated delay (process variation included),
//   * a fresh white-noise Gaussian (the entropy-bearing jitter),
//   * the oscillator's AR(1) flicker state,
//   * the common-mode supply multiplier.
//
// The simulator keeps a bounded history of recent toggle times per stage so
// the TDC can reconstruct the waveform a delay-line-depth into the past.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/noise.hpp"

namespace trng::sim {

class RingOscillator {
 public:
  /// `stage_delays` come from Fabric elaboration (one entry per stage);
  /// `white_sigma_ps` is the per-traversal thermal jitter std-dev.
  /// `supply` may be nullptr (no global noise) or shared across oscillators.
  RingOscillator(std::vector<Picoseconds> stage_delays,
                 Picoseconds white_sigma_ps, const NoiseConfig& noise,
                 SupplyNoise* supply, std::uint64_t seed,
                 Picoseconds history_window_ps = 6000.0);

  int stages() const { return static_cast<int>(stage_delays_.size()); }
  Picoseconds mean_stage_delay() const;
  /// Noise-free half-period: sum of static stage delays.
  Picoseconds nominal_half_period() const;

  /// Restarts the oscillator: all outputs high, first transition launched
  /// from the NAND at `t0` (ENABLE rising edge). Clears history; flicker
  /// state persists across restarts (it is a property of the silicon).
  void reset(Picoseconds t0);

  /// Simulates all transitions with arrival time <= t.
  void advance_to(Picoseconds t);

  /// Output value of `stage` at time `t`. Requires advance_to(>= t) first
  /// and t within the retained history window; throws std::logic_error
  /// otherwise.
  bool value_at(int stage, Picoseconds t) const;

  /// Toggle times of `stage` inside [t0, t1] (ascending). Requires
  /// t1 <= now(); a t0 older than the retained history window silently
  /// clips to the window (only retained toggles are returned).
  std::vector<Picoseconds> edges_in(int stage, Picoseconds t0,
                                    Picoseconds t1) const;

  /// Direct read access to `stage`'s retained toggle times (ascending).
  /// Batched TDC captures flatten this once instead of binary-searching
  /// per flip-flop through value_at/edges_in. Inline (with the bounds
  /// check compiled into the caller): queried once per TDC line capture.
  const std::deque<Picoseconds>& toggle_history(int stage) const {
    if (stage < 0 || stage >= stages()) {
      throw std::out_of_range("RingOscillator::toggle_history: bad stage");
    }
    return toggles_[static_cast<std::size_t>(stage)];
  }

  /// Output value of `stage` at now() (after all retained toggles).
  /// Inline for the same reason as toggle_history.
  bool current_value(int stage) const {
    if (stage < 0 || stage >= stages()) {
      throw std::out_of_range("RingOscillator::current_value: bad stage");
    }
    return value_[static_cast<std::size_t>(stage)] != 0;
  }

  /// Total transitions simulated since construction (all stages).
  std::uint64_t transition_count() const { return transitions_; }

  /// Time up to which the oscillator has been simulated.
  Picoseconds now() const { return now_; }

 private:
  void prune_history();

  std::vector<Picoseconds> stage_delays_;
  Picoseconds white_sigma_;
  /// sqrt(1 - corr^2) * flicker_sigma — the AR(1) innovation gain, hoisted
  /// out of the per-transition loop (bit-identical to recomputing it).
  double flicker_coeff_ = 0.0;
  NoiseConfig noise_;
  SupplyNoise* supply_;  // not owned; may be null
  common::Xoshiro256StarStar rng_;
  Picoseconds history_window_;

  // Dynamic state.
  std::vector<std::deque<Picoseconds>> toggles_;  // per-stage toggle times
  // Current output values; byte-backed (not vector<bool>) so the
  // per-transition flip is a plain load/xor/store.
  std::vector<unsigned char> value_;
  int pending_stage_ = 0;          // stage whose output toggles next
  Picoseconds pending_time_ = 0.0; // when it toggles
  bool running_ = false;
  Picoseconds now_ = 0.0;
  double flicker_state_ = 0.0;
  std::uint64_t transitions_ = 0;
};

}  // namespace trng::sim
