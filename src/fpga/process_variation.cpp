#include "fpga/process_variation.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace trng::fpga {

namespace {

/// Maps a 64-bit hash to an approximately standard-normal value by summing
/// four independent uniforms (Irwin–Hall, variance-corrected). Good enough
/// for delay variation in ~[-4, 4] sigma; exactly reproducible.
double hash_to_gaussian(std::uint64_t h) {
  common::SplitMix64 sm(h);
  double s = 0.0;
  for (int i = 0; i < 4; ++i) {
    s += static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  }
  // Sum of 4 U(0,1): mean 2, variance 4/12. Normalize to N(0,1).
  return (s - 2.0) / std::sqrt(4.0 / 12.0);
}

}  // namespace

ProcessVariationModel::ProcessVariationModel(std::uint64_t die_seed,
                                             double gradient_rel)
    : die_seed_(die_seed), gradient_rel_(gradient_rel) {}

double ProcessVariationModel::delay_multiplier(const DeviceGeometry& geom,
                                               SliceCoord c, int element_index,
                                               double sigma_rel) const {
  if (!geom.contains(c)) {
    throw std::out_of_range("ProcessVariationModel: slice off-device");
  }
  // Systematic component: a fixed tilt across the die whose direction is a
  // function of the die seed.
  common::SplitMix64 die_hash(die_seed_ ^ 0xD1E5EEDULL);
  const double angle = static_cast<double>(die_hash.next() >> 11) * 0x1.0p-53 *
                       6.283185307179586;
  const double cx = static_cast<double>(c.col) / static_cast<double>(geom.columns() - 1) - 0.5;
  const double cy = static_cast<double>(c.row) / static_cast<double>(geom.rows() - 1) - 0.5;
  const double systematic =
      gradient_rel_ * (cx * std::cos(angle) + cy * std::sin(angle));

  // Random per-element component, deterministic in (seed, site, element).
  const std::uint64_t key = die_seed_ ^
                            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.col)) << 40) ^
                            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.row)) << 16) ^
                            static_cast<std::uint64_t>(static_cast<std::uint32_t>(element_index));
  const double random = sigma_rel * hash_to_gaussian(key);

  // Lower-bounded so a deep-sigma draw can never produce a non-physical
  // (zero or negative) delay.
  const double mult = 1.0 + systematic + random;
  return mult > 0.05 ? mult : 0.05;
}

}  // namespace trng::fpga
