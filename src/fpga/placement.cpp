#include "fpga/placement.hpp"

#include <stdexcept>
#include <string>

namespace trng::fpga {

TrngFloorplan TrngFloorplan::canonical(const DeviceGeometry& geom, int n,
                                       int m, int base_col, int base_row) {
  if (n < 1) throw std::invalid_argument("canonical: need n >= 1 RO stages");
  if (m < 4 || m % 4 != 0) {
    throw std::invalid_argument(
        "canonical: m must be a positive multiple of 4 (CARRY4 granularity)");
  }
  if (base_row < 1) {
    throw std::invalid_argument(
        "canonical: base_row must leave a row below for the RO stage");
  }
  TrngFloorplan fp;
  const int carry4s = m / 4;
  for (int i = 0; i < n; ++i) {
    DelayLinePlacement line;
    line.col = base_col + 2 * i;  // consecutive carry-capable columns
    line.start_row = base_row;
    line.carry4_count = carry4s;
    fp.lines.push_back(line);
    fp.ro_stages.push_back(
        RoStagePlacement{SliceCoord{line.col, base_row - 1}, 0});
  }
  fp.validate(geom);
  return fp;
}

void TrngFloorplan::validate(const DeviceGeometry& geom) const {
  if (lines.empty()) {
    throw std::invalid_argument("TrngFloorplan: no delay lines");
  }
  if (ro_stages.size() != lines.size()) {
    throw std::invalid_argument(
        "TrngFloorplan: need exactly one RO stage per delay line");
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto& line = lines[i];
    if (line.carry4_count < 1) {
      throw std::invalid_argument("TrngFloorplan: empty carry chain");
    }
    for (int s = 0; s < line.carry4_count; ++s) {
      const SliceCoord c{line.col, line.start_row + s};
      if (!geom.contains(c)) {
        throw std::invalid_argument("TrngFloorplan: line " + std::to_string(i) +
                                    " runs off the device");
      }
      if (!geom.has_carry_chain(c)) {
        throw std::invalid_argument(
            "TrngFloorplan: line " + std::to_string(i) +
            " placed in a column without carry chains (odd column)");
      }
    }
    const auto& ro = ro_stages[i];
    if (!geom.contains(ro.slice)) {
      throw std::invalid_argument("TrngFloorplan: RO stage off-device");
    }
    if (ro.lut_index < 0 || ro.lut_index >= DeviceGeometry::kLutsPerSlice) {
      throw std::invalid_argument("TrngFloorplan: LUT index out of range");
    }
  }
}

bool TrngFloorplan::single_clock_region(const DeviceGeometry& geom) const {
  for (const auto& line : lines) {
    if (!geom.rows_in_single_region(line.start_row, line.carry4_count)) {
      return false;
    }
  }
  return true;
}

}  // namespace trng::fpga
