// Environmental operating conditions (temperature, supply voltage).
//
// The paper sizes m for "the worst-case conditions" because "the delay of
// the oscillator elements as well as the time-step of the conversion can
// vary due to the temperature or voltage variations" (Section 3). This
// model makes those variations explicit: delays stretch with temperature
// and shrink with over-voltage (first-order CMOS behaviour), and the
// thermal-noise sigma scales with sqrt(absolute temperature).
#pragma once

#include <cmath>
#include <stdexcept>

namespace trng::fpga {

struct OperatingPoint {
  double temperature_c = 25.0;  ///< junction temperature
  double vdd_v = 1.2;           ///< core supply (Spartan-6 nominal 1.2 V)

  /// Commercial-grade envelope used by the robustness ablations.
  static OperatingPoint nominal() { return {}; }
  static OperatingPoint hot_low_voltage() { return {85.0, 1.14}; }
  static OperatingPoint cold_high_voltage() { return {0.0, 1.26}; }
};

/// First-order environmental scaling coefficients.
struct EnvironmentalModel {
  /// Relative delay increase per degree C above 25 C (CMOS gate delay
  /// tempco on 45 nm-class fabric: ~0.1-0.15 %/C).
  double delay_tempco_per_c = 0.0012;

  /// Relative delay decrease per volt of over-voltage (alpha-power-law
  /// linearization around nominal).
  double delay_per_volt = -0.9;

  /// Delay multiplier at operating point `op` relative to nominal.
  double delay_multiplier(const OperatingPoint& op,
                          double nominal_vdd = 1.2) const {
    const double t = 1.0 + delay_tempco_per_c * (op.temperature_c - 25.0);
    const double v = 1.0 + delay_per_volt * (op.vdd_v - nominal_vdd);
    if (t <= 0.0 || v <= 0.0) {
      throw std::domain_error(
          "EnvironmentalModel: operating point outside model validity");
    }
    return t * v;
  }

  /// Thermal-noise sigma multiplier: sigma ~ sqrt(T_kelvin).
  double sigma_multiplier(const OperatingPoint& op) const {
    const double t_kelvin = op.temperature_c + 273.15;
    if (t_kelvin <= 0.0) {
      throw std::domain_error("EnvironmentalModel: below absolute zero");
    }
    return std::sqrt(t_kelvin / (25.0 + 273.15));
  }
};

}  // namespace trng::fpga
