#include "fpga/fabric.hpp"

#include <stdexcept>

namespace trng::fpga {

FabricSpec ideal_fabric_spec() {
  FabricSpec spec;
  spec.lut.process_sigma_rel = 0.0;
  spec.carry4.nominal_tap_delay_ps = constants::kNominalCarryBinPs;
  for (double& w : spec.carry4.tap_weight) w = 1.0;
  spec.carry4.process_sigma_rel = 0.0;
  spec.carry4.interslice_extra_ps = 0.0;
  spec.flip_flop.aperture_ps = 0.0;
  spec.flip_flop.static_offset_sigma_ps = 0.0;
  spec.flip_flop.dynamic_jitter_sigma_ps = 0.0;
  spec.clock_tree.skew_per_row_ps = 0.0;
  spec.clock_tree.skew_per_col_ps = 0.0;
  spec.clock_tree.region_offset_bound_ps = 0.0;
  spec.process_gradient_rel = 0.0;
  return spec;
}

Fabric::Fabric(DeviceGeometry geom, std::uint64_t die_seed, FabricSpec spec)
    : geom_(geom),
      die_seed_(die_seed),
      spec_(spec),
      variation_(die_seed, spec.process_gradient_rel),
      clock_tree_(geom, spec.clock_tree, die_seed) {}

Picoseconds Fabric::lut_delay(SliceCoord c, int lut_index) const {
  const double mult =
      variation_.delay_multiplier(geom_, c, lut_index, spec_.lut.process_sigma_rel);
  return spec_.lut.nominal_delay_ps * mult *
         spec_.environment.delay_multiplier(op_);
}

ElaboratedTrng Fabric::elaborate(const TrngFloorplan& floorplan,
                                 int downsample_k) const {
  floorplan.validate(geom_);
  if (downsample_k < 1) {
    throw std::invalid_argument("Fabric::elaborate: downsample_k must be >= 1");
  }

  ElaboratedTrng out;
  const double env_delay = spec_.environment.delay_multiplier(op_);
  out.stage_white_sigma_ps =
      spec_.lut.thermal_sigma_ps * spec_.environment.sigma_multiplier(op_);
  const int n = static_cast<int>(floorplan.lines.size());

  // Ring-oscillator stage delays.
  out.ro_stage_delay.reserve(static_cast<std::size_t>(n));
  for (const auto& stage : floorplan.ro_stages) {
    out.ro_stage_delay.push_back(lut_delay(stage.slice, stage.lut_index));
  }

  // Delay lines. Carry taps use element indices 8..11 (distinct from the
  // slice's LUT indices 0..3) in the variation model so LUT and carry
  // variation draws are independent.
  out.lines.reserve(static_cast<std::size_t>(n));
  for (const auto& line : floorplan.lines) {
    ElaboratedDelayLine el;
    const int m = line.taps();
    el.tap_delay.reserve(static_cast<std::size_t>(m));
    el.cumulative_delay.reserve(static_cast<std::size_t>(m));
    el.ff_clock_skew.reserve(static_cast<std::size_t>(m));

    Picoseconds cumulative = 0.0;
    for (int tap = 0; tap < m; ++tap) {
      const SliceCoord slice = line.slice_of_tap(tap);
      const int tap_in_slice = tap % 4;
      const double weight = spec_.carry4.tap_weight[tap_in_slice];
      const double mult = variation_.delay_multiplier(
          geom_, slice, 8 + tap_in_slice, spec_.carry4.process_sigma_rel);
      Picoseconds d = spec_.carry4.nominal_tap_delay_ps * weight * mult;
      // Crossing into a new slice goes through the CO[3]->CIN hand-off.
      if (tap > 0 && tap_in_slice == 0) {
        d += spec_.carry4.interslice_extra_ps;
      }
      d *= env_delay;  // temperature/voltage scale every delay element
      cumulative += d;
      el.tap_delay.push_back(d);
      el.cumulative_delay.push_back(cumulative);
      el.ff_clock_skew.push_back(clock_tree_.arrival_skew(slice));
    }
    out.lines.push_back(std::move(el));
  }

  // Resource accounting, calibrated against the paper's reported totals
  // (67 slices for k=1, 40 slices for k=4 with n=3, m=36):
  //   RO: one LUT per stage, one slice each (paper: "3 slices").
  //   Lines: one slice per CARRY4; the line's FFs live in those slices.
  //   Extractor: XOR fold + edge detector + priority encoder; dominated by
  //   the number of encoder inputs m/k. Estimate: ceil(m/k) + 1 slices.
  const int m = floorplan.lines.front().taps();
  const int carry_slices = n * floorplan.lines.front().carry4_count;
  const int encoder_bins = (m + downsample_k - 1) / downsample_k;
  const int extractor_slices = encoder_bins + 1;

  out.resources.slices = n + carry_slices + extractor_slices;
  out.resources.luts = n + DeviceGeometry::kLutsPerSlice * extractor_slices;
  out.resources.flip_flops = n * m + 2;  // TDC FFs + output/valid registers
  out.resources.carry4s = carry_slices;
  return out;
}

}  // namespace trng::fpga
