// Static process variation of the simulated die.
//
// Each physical element (a LUT at a site, a carry tap at a site) gets a
// fixed delay multiplier that is a deterministic function of
// (die seed, site, element index): a systematic across-die gradient plus an
// independent per-element lognormal-ish random component. Two fabrics built
// with the same seed are identical dies; different seeds are different
// devices — which is how the repository reproduces the paper's
// "some LUTs may be slower than average" observation (Section 5.2) and lets
// the m-sweep ablation explore process corners.
#pragma once

#include <cstdint>

#include "fpga/device.hpp"

namespace trng::fpga {

class ProcessVariationModel {
 public:
  /// `sigma_rel` scales the per-element random component;
  /// `gradient_rel` is the worst-case systematic delay tilt corner-to-corner.
  ProcessVariationModel(std::uint64_t die_seed, double gradient_rel = 0.04);

  std::uint64_t die_seed() const { return die_seed_; }

  /// Multiplier (~1.0) for element `element_index` (0 = LUT A, ... 3 = LUT D,
  /// or carry tap index) at slice `c` on a device of geometry `geom`.
  /// `sigma_rel` is the element class's random-variation std-dev.
  double delay_multiplier(const DeviceGeometry& geom, SliceCoord c,
                          int element_index, double sigma_rel) const;

 private:
  std::uint64_t die_seed_;
  double gradient_rel_;
};

}  // namespace trng::fpga
