#include "fpga/device.hpp"

namespace trng::fpga {

DeviceGeometry::DeviceGeometry(int columns, int rows, int rows_per_clock_region)
    : columns_(columns), rows_(rows), rows_per_region_(rows_per_clock_region) {
  if (columns <= 0 || rows <= 0 || rows_per_clock_region <= 0) {
    throw std::invalid_argument("DeviceGeometry: dimensions must be positive");
  }
}

bool DeviceGeometry::has_carry_chain(SliceCoord c) const {
  if (!contains(c)) {
    throw std::out_of_range("DeviceGeometry::has_carry_chain: off-device");
  }
  return (c.col % 2) == 0;
}

SliceKind DeviceGeometry::slice_kind(SliceCoord c) const {
  if (!contains(c)) {
    throw std::out_of_range("DeviceGeometry::slice_kind: off-device");
  }
  if (c.col % 2 != 0) return SliceKind::kSliceX;
  // Every fourth carry column is a SLICEM column, matching the roughly
  // 25%/25%/50% SLICEM/SLICEL/SLICEX split of real Spartan-6 parts.
  return (c.col % 8 == 0) ? SliceKind::kSliceM : SliceKind::kSliceL;
}

int DeviceGeometry::clock_region(SliceCoord c) const {
  if (!contains(c)) {
    throw std::out_of_range("DeviceGeometry::clock_region: off-device");
  }
  return c.row / rows_per_region_;
}

bool DeviceGeometry::rows_in_single_region(int row, int span) const {
  if (row < 0 || span <= 0 || row + span > rows_) return false;
  return (row / rows_per_region_) == ((row + span - 1) / rows_per_region_);
}

}  // namespace trng::fpga
