// Fabric: elaborates a TRNG floorplan on a concrete (seeded) die into the
// per-element timing numbers the timing simulator consumes:
//
//   * the static delay of each ring-oscillator stage (LUT + routing, with
//     process variation),
//   * the incremental and cumulative delay of every TDC tap (CARRY4 tap
//     weights, inter-slice hand-off, process variation),
//   * the clock arrival skew at every sampling flip-flop (clock-tree model),
//   * the occupied-resource report (Table 2 accounting).
//
// The same die seed always elaborates to the same timing — a Fabric is "a
// device on the bench".
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fpga/clock_tree.hpp"
#include "fpga/device.hpp"
#include "fpga/operating_point.hpp"
#include "fpga/placement.hpp"
#include "fpga/primitives.hpp"
#include "fpga/process_variation.hpp"

namespace trng::fpga {

/// All primitive/timing knobs of the simulated die in one place.
struct FabricSpec {
  LutTimingSpec lut;
  Carry4TimingSpec carry4;
  FlipFlopTimingSpec flip_flop;
  ClockTreeSpec clock_tree;
  EnvironmentalModel environment;
  double process_gradient_rel = 0.04;
};

/// A die with perfectly equidistant TDC bins and ideal flip-flops: no
/// CARRY4 structural DNL, no process variation, no clock skew, no FF
/// threshold offsets or metastability. This is exactly the world the
/// stochastic model's assumptions describe (Section 4.1, assumption 4),
/// so on this fabric the model's predictions must hold *exactly* — used by
/// the model-validation tests and the non-linearity ablation.
FabricSpec ideal_fabric_spec();

/// Concrete timing of one elaborated TDC line.
struct ElaboratedDelayLine {
  /// Incremental delay of tap j (signal travel time from tap j-1 to tap j;
  /// tap 0 is measured from the line input). Size m.
  std::vector<Picoseconds> tap_delay;

  /// Cumulative delay from the line input to tap j. Size m.
  std::vector<Picoseconds> cumulative_delay;

  /// Clock arrival skew at the FF sampling tap j. Size m.
  std::vector<Picoseconds> ff_clock_skew;

  int taps() const { return static_cast<int>(tap_delay.size()); }
  Picoseconds total_delay() const {
    return cumulative_delay.empty() ? 0.0 : cumulative_delay.back();
  }
};

/// Concrete timing of the whole TRNG datapath.
struct ElaboratedTrng {
  std::vector<Picoseconds> ro_stage_delay;  ///< size n
  std::vector<ElaboratedDelayLine> lines;   ///< size n
  ResourceReport resources;

  /// Per-traversal white (thermal) jitter std-dev of one stage on this die
  /// (copied from the fabric spec so the simulator needs no back-pointer).
  Picoseconds stage_white_sigma_ps = constants::kNominalJitterSigmaPs;

  Picoseconds ro_half_period() const {
    Picoseconds sum = 0.0;
    for (Picoseconds d : ro_stage_delay) sum += d;
    return sum;
  }
};

class Fabric {
 public:
  Fabric(DeviceGeometry geom, std::uint64_t die_seed, FabricSpec spec = {});

  const DeviceGeometry& geometry() const { return geom_; }
  const FabricSpec& spec() const { return spec_; }
  std::uint64_t die_seed() const { return die_seed_; }
  const ClockTreeModel& clock_tree() const { return clock_tree_; }
  const OperatingPoint& operating_point() const { return op_; }

  /// The same die at a different operating point: all delays scale with
  /// the environmental model, the thermal sigma with sqrt(T).
  Fabric at(const OperatingPoint& op) const {
    Fabric f = *this;
    f.op_ = op;
    return f;
  }

  /// Elaborates the floorplan. `downsample_k` only affects the extractor's
  /// resource estimate (fewer encoder bins), not the physical timing.
  /// Throws std::invalid_argument if the floorplan is invalid on this device.
  ElaboratedTrng elaborate(const TrngFloorplan& floorplan,
                           int downsample_k = 1) const;

  /// Static delay of one LUT stage at `c` on this die.
  Picoseconds lut_delay(SliceCoord c, int lut_index) const;

 private:
  DeviceGeometry geom_;
  std::uint64_t die_seed_;
  FabricSpec spec_;
  ProcessVariationModel variation_;
  ClockTreeModel clock_tree_;
  OperatingPoint op_;
};

}  // namespace trng::fpga
