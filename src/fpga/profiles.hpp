// Platform profiles — the paper's future work ("applying the presented
// methodology on different implementation platforms", Section 7).
//
// Each profile bundles a device geometry and fabric timing representative
// of an FPGA family. The numbers are first-order public-datasheet-scale
// figures (gate delay class, carry-mux delay class, clock-region height);
// they parameterize the same simulation and design flow, so the entire
// evaluation — platform measurement, model, design-space exploration,
// statistical validation — reruns unchanged per platform
// (see bench/ablation_platforms).
#pragma once

#include <string>
#include <vector>

#include "fpga/device.hpp"
#include "fpga/fabric.hpp"

namespace trng::fpga {

struct PlatformProfile {
  std::string name;
  DeviceGeometry geometry{64, 128, 16};
  FabricSpec spec;
  double f_clk_hz = 100.0e6;

  Fabric make_fabric(std::uint64_t die_seed) const {
    return Fabric(geometry, die_seed, spec);
  }
};

/// Spartan-6 (45 nm) — the paper's platform: d0 ~ 480 ps, t_step ~ 17 ps,
/// sigma ~ 2 ps, 16-row clock regions.
PlatformProfile spartan6_profile();

/// Artix-7-class 28 nm fabric: faster LUTs (~350 ps with routing), finer
/// carry taps (~9.5 ps average), taller clock regions (50 rows).
PlatformProfile artix7_profile();

/// Cyclone-IV-class 60 nm LE fabric: one carry bit per LE with a coarser
/// ~21 ps step and ~430 ps LE+routing delay.
PlatformProfile cyclone4_profile();

/// All built-in profiles (for sweeps).
std::vector<PlatformProfile> builtin_profiles();

}  // namespace trng::fpga
