// Clock-distribution skew model.
//
// The clock reaches different flip-flops at slightly different times. For a
// carry-chain TDC this skew adds to (or subtracts from) the carry delay
// between consecutive taps, which is the dominant source of bin-width
// non-linearity: Menninga et al. [6] traced Xilinx TDC DNL to the unbalanced
// clock tree, and the paper adopts their fix — constrain the chain to a
// single clock region (Section 5.2).
//
// Model: within a clock region the clock enters at a horizontal spine at the
// region's center row and propagates vertically, adding a per-row ramp.
// Consecutive rows inside one region therefore differ by a small constant;
// rows on opposite sides of a region boundary differ by a large jump
// (opposite ramp signs + re-buffering insertion offset).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "fpga/device.hpp"

namespace trng::fpga {

struct ClockTreeSpec {
  /// Incremental skew per row of vertical distance from the region spine.
  Picoseconds skew_per_row_ps = 2.5;

  /// Additional fixed insertion-delay offset of each region's re-buffered
  /// spine, randomized per region from the die seed within +/- this bound.
  Picoseconds region_offset_bound_ps = 25.0;

  /// Small per-column skew ramp (horizontal spine taper).
  Picoseconds skew_per_col_ps = 0.15;
};

class ClockTreeModel {
 public:
  ClockTreeModel(const DeviceGeometry& geom, ClockTreeSpec spec,
                 std::uint64_t die_seed);

  /// Clock arrival time at slice `c` relative to the ideal clock edge.
  Picoseconds arrival_skew(SliceCoord c) const;

  const ClockTreeSpec& spec() const { return spec_; }

 private:
  DeviceGeometry geom_;
  ClockTreeSpec spec_;
  std::uint64_t die_seed_;
};

}  // namespace trng::fpga
