#include "fpga/clock_tree.hpp"

#include <cmath>
#include <cstdlib>

#include "common/rng.hpp"

namespace trng::fpga {

ClockTreeModel::ClockTreeModel(const DeviceGeometry& geom, ClockTreeSpec spec,
                               std::uint64_t die_seed)
    : geom_(geom), spec_(spec), die_seed_(die_seed) {}

Picoseconds ClockTreeModel::arrival_skew(SliceCoord c) const {
  if (!geom_.contains(c)) {
    throw std::out_of_range("ClockTreeModel::arrival_skew: off-device");
  }
  const int region = geom_.clock_region(c);
  const int region_base = region * geom_.rows_per_clock_region();
  const int region_rows = geom_.rows_per_clock_region();
  const double spine_row = region_base + (region_rows - 1) / 2.0;

  // Vertical ramp away from the spine.
  const double vertical =
      std::abs(static_cast<double>(c.row) - spine_row) * spec_.skew_per_row_ps;

  // Horizontal taper along the spine.
  const double horizontal = static_cast<double>(c.col) * spec_.skew_per_col_ps;

  // Per-region insertion offset in [-bound, +bound], fixed per die.
  common::SplitMix64 sm(die_seed_ ^ (0xC10CULL << 32) ^
                        static_cast<std::uint64_t>(static_cast<std::uint32_t>(region)));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  const double region_offset = (2.0 * u - 1.0) * spec_.region_offset_bound_ps;

  return vertical + horizontal + region_offset;
}

}  // namespace trng::fpga
