// Spartan-6-like device geometry.
//
// The paper's implementation depends on three structural facts about the
// Spartan-6 fabric (Section 5):
//   1. Only half of the slices contain CARRY4 primitives, and those slices
//      sit in even-numbered columns. Long TDC chains are formed vertically,
//      one slice per row.
//   2. Clock regions span 16 rows; the clock-tree skew between rows (and
//      especially across a region boundary) is the dominant source of TDC
//      bin non-linearity (Menninga et al. [6]).
//   3. Each slice offers 4 LUTs and 8 storage elements, which bounds how the
//      design packs (4 TDC taps sampled by the 4 FFs of the carry slice).
//
// DeviceGeometry captures these facts; it owns no timing (see Fabric).
#pragma once

#include <cstddef>
#include <stdexcept>

namespace trng::fpga {

/// Kinds of slices on the simulated fabric.
enum class SliceKind {
  kSliceX,  ///< logic only, no carry chain (odd columns)
  kSliceL,  ///< carry-capable (even columns)
  kSliceM,  ///< carry-capable with distributed RAM (subset of even columns)
};

struct SliceCoord {
  int col = 0;
  int row = 0;

  friend bool operator==(const SliceCoord&, const SliceCoord&) = default;
};

class DeviceGeometry {
 public:
  /// Spartan-6 LX45-like default: 64 columns x 128 rows of slices.
  DeviceGeometry(int columns = 64, int rows = 128, int rows_per_clock_region = 16);

  int columns() const { return columns_; }
  int rows() const { return rows_; }
  int rows_per_clock_region() const { return rows_per_region_; }
  int clock_regions() const { return (rows_ + rows_per_region_ - 1) / rows_per_region_; }

  bool contains(SliceCoord c) const {
    return c.col >= 0 && c.col < columns_ && c.row >= 0 && c.row < rows_;
  }

  /// Carry chains exist only in even columns (paper Section 5:
  /// "these slices are located in even numbered columns").
  bool has_carry_chain(SliceCoord c) const;

  SliceKind slice_kind(SliceCoord c) const;

  /// Index of the clock region containing `c`; throws if out of bounds.
  int clock_region(SliceCoord c) const;

  /// True when [row, row+span) lies entirely inside one clock region — the
  /// placement constraint the paper uses to linearize the TDC.
  bool rows_in_single_region(int row, int span) const;

  /// Per-slice capacity constants (Spartan-6).
  static constexpr int kLutsPerSlice = 4;
  static constexpr int kFlipFlopsPerSlice = 8;
  static constexpr int kCarryTapsPerSlice = 4;  ///< one CARRY4 per carry slice

 private:
  int columns_;
  int rows_;
  int rows_per_region_;
};

}  // namespace trng::fpga
