// Floorplanning of the TRNG on the simulated fabric.
//
// The paper uses exactly two placement constraints (Section 5): the fast
// delay lines are vertical carry chains, and the ring-oscillator stages sit
// in the slices directly below their lines. TrngFloorplan reproduces that
// arrangement and validates it against the device rules (carry chains only
// in even columns, contiguity, optional single-clock-region constraint).
#pragma once

#include <vector>

#include "fpga/device.hpp"

namespace trng::fpga {

/// One vertical carry-chain TDC: `carry4_count` CARRY4 slices stacked in a
/// carry-capable column, giving 4 * carry4_count taps.
struct DelayLinePlacement {
  int col = 0;
  int start_row = 0;
  int carry4_count = 9;  ///< paper default: 9 CARRY4 = 36 taps

  int taps() const { return 4 * carry4_count; }
  SliceCoord slice_of_tap(int tap) const {
    return SliceCoord{col, start_row + tap / 4};
  }
};

/// One ring-oscillator stage occupies one LUT; the paper places one stage
/// per slice, directly below the corresponding delay line.
struct RoStagePlacement {
  SliceCoord slice;
  int lut_index = 0;  ///< which of the slice's 4 LUTs
};

/// Complete TRNG floorplan: n delay lines (one per RO stage) in adjacent
/// carry columns plus the RO stages below them.
struct TrngFloorplan {
  std::vector<DelayLinePlacement> lines;
  std::vector<RoStagePlacement> ro_stages;

  /// Builds the paper's canonical floorplan: line i in carry column
  /// `base_col + 2*i`, rows [base_row, base_row + carry4_count), RO stage i
  /// at (same column, base_row - 1).
  ///
  /// `n` = RO stages / delay lines, `m` = taps per line (must be a multiple
  /// of 4, Section 5.2). Throws std::invalid_argument on bad parameters.
  static TrngFloorplan canonical(const DeviceGeometry& geom, int n, int m,
                                 int base_col = 0, int base_row = 17);

  /// Validates against device rules. Throws std::invalid_argument with a
  /// description of the first violated rule.
  void validate(const DeviceGeometry& geom) const;

  /// True when every delay line lies inside a single clock region — the
  /// linearization constraint of Section 5.2.
  bool single_clock_region(const DeviceGeometry& geom) const;
};

/// Occupied-resource accounting for Table 2.
struct [[nodiscard]] ResourceReport {
  int slices = 0;
  int luts = 0;
  int flip_flops = 0;
  int carry4s = 0;
};

}  // namespace trng::fpga
