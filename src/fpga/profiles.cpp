#include "fpga/profiles.hpp"

namespace trng::fpga {

PlatformProfile spartan6_profile() {
  PlatformProfile p;
  p.name = "Spartan-6 (45nm)";
  // The library defaults ARE the Spartan-6 calibration.
  return p;
}

PlatformProfile artix7_profile() {
  PlatformProfile p;
  p.name = "Artix-7 (28nm)";
  p.geometry = DeviceGeometry(80, 150, 50);  // 7-series: 50-row regions
  p.spec.lut.nominal_delay_ps = 350.0;
  p.spec.lut.thermal_sigma_ps = 1.6;
  // Carry taps ~ (4 * 8.5 + 2) / 4 = 9 ps average.
  p.spec.carry4.nominal_tap_delay_ps = 8.5;
  p.spec.carry4.interslice_extra_ps = 2.0;
  p.spec.clock_tree.skew_per_row_ps = 1.5;
  p.spec.clock_tree.region_offset_bound_ps = 15.0;
  p.spec.flip_flop.aperture_ps = 7.0;
  p.spec.flip_flop.resolution_tau_ps = 1.8;
  p.spec.flip_flop.static_offset_sigma_ps = 1.4;
  p.spec.flip_flop.dynamic_jitter_sigma_ps = 0.6;
  return p;
}

PlatformProfile cyclone4_profile() {
  PlatformProfile p;
  p.name = "Cyclone-IV (60nm)";
  p.geometry = DeviceGeometry(60, 120, 30);
  p.spec.lut.nominal_delay_ps = 430.0;
  p.spec.lut.thermal_sigma_ps = 2.2;
  // One carry bit per LE: model as uniform taps, coarser step
  // (~(4 * 20 + 5)/4 = 21.25 ps average).
  p.spec.carry4.nominal_tap_delay_ps = 20.0;
  for (double& w : p.spec.carry4.tap_weight) w = 1.0;
  p.spec.carry4.interslice_extra_ps = 5.0;
  p.spec.carry4.process_sigma_rel = 0.05;
  p.spec.clock_tree.skew_per_row_ps = 3.0;
  p.spec.clock_tree.region_offset_bound_ps = 30.0;
  p.spec.flip_flop.aperture_ps = 12.0;
  p.spec.flip_flop.resolution_tau_ps = 3.0;
  return p;
}

std::vector<PlatformProfile> builtin_profiles() {
  return {spartan6_profile(), artix7_profile(), cyclone4_profile()};
}

}  // namespace trng::fpga
