// Timing specifications of the fabric primitives the design instantiates:
// LUTs (ring-oscillator stages), CARRY4 taps (TDC bins) and flip-flops
// (TDC samplers, including their metastability behaviour).
//
// These are *specs* — nominal values plus variability knobs. Concrete
// per-site delays are produced by ProcessVariationModel and assembled by
// Fabric.
#pragma once

#include "common/types.hpp"

namespace trng::fpga {

/// Timing of a LUT configured as inverter/buffer, including its local
/// routing. The paper's measured average is d0,LUT = 480 ps on Spartan-6.
struct LutTimingSpec {
  Picoseconds nominal_delay_ps = constants::kNominalLutDelayPs;

  /// Std-dev of the white (thermal) jitter added to *every* transition
  /// through the LUT. Paper: sigma_G,LUT ~= 2 ps.
  Picoseconds thermal_sigma_ps = constants::kNominalJitterSigmaPs;

  /// Relative std-dev of the static per-site process variation of the
  /// delay (device-to-device / site-to-site, fixed after elaboration).
  double process_sigma_rel = 0.05;
};

/// Timing of one CARRY4 primitive: four MUXCY taps. The taps are not
/// structurally identical — the paper cites the CARRY4's internal structure
/// as one source of TDC non-linearity — so each tap has its own nominal
/// weight. Weights average 1.0 so the mean tap delay equals
/// `nominal_tap_delay_ps` (t_step ~= 17 ps measured in the paper).
struct Carry4TimingSpec {
  /// In-slice MUXCY tap delay. Set to 16 ps so that, together with the
  /// inter-slice hand-off (4 ps extra on every fourth tap), the *average*
  /// bin width comes out at the paper's measured t_step = 17 ps:
  /// (4*16 + 4)/4 = 17.
  Picoseconds nominal_tap_delay_ps = 16.0;

  /// Structural per-tap weight (MUXCY position within the CARRY4).
  /// Real Xilinx carry TDCs show strong structural DNL with narrow and wide
  /// bins alternating inside the CARRY4 (Menninga et al.); the weights here
  /// give bins of ~12-20 ps around the 16 ps in-slice mean.
  double tap_weight[4] = {0.75, 1.25, 0.85, 1.15};

  /// Relative process variation per tap.
  double process_sigma_rel = 0.06;

  /// Extra delay of the inter-slice carry hand-off (CO[3] -> CIN of the
  /// slice above) relative to an in-slice tap.
  Picoseconds interslice_extra_ps = 4.0;
};

/// Flip-flop sampling behaviour. When the data input toggles within the
/// metastability aperture around the effective clock edge, the FF can go
/// metastable and resolve to a random value — the mechanism behind the
/// "bubbles" of Figure 4(c).
struct FlipFlopTimingSpec {
  /// Width of the aperture (centered on the effective sampling instant)
  /// within which capture is not deterministic.
  Picoseconds aperture_ps = 10.0;

  /// Exponential constant of the metastability-resolution probability:
  /// p(random) = exp(-|dt| / tau) for |dt| <= aperture/2.
  Picoseconds resolution_tau_ps = 2.5;

  /// Static per-FF input-threshold offset (std-dev): each flip-flop of a
  /// TDC effectively samples at its own fixed offset from the ideal
  /// instant. Together with the narrow CARRY4 taps this makes neighbouring
  /// observation instants occasionally non-monotonic — the physical origin
  /// of the "bubbles" of Figure 4(c).
  Picoseconds static_offset_sigma_ps = 2.0;

  /// Dynamic per-capture sampling jitter of each FF (std-dev).
  Picoseconds dynamic_jitter_sigma_ps = 0.8;
};

}  // namespace trng::fpga
