// SP 800-22 tests 2.1-2.4 and 2.13: frequency, block frequency, runs,
// longest run of ones, cumulative sums.
#include <cmath>
#include <vector>

#include "common/gaussian.hpp"
#include "common/special.hpp"
#include "stattests/sp800_22.hpp"

namespace trng::stat {

TestResult frequency_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "frequency";
  const std::size_t n = bits.size();
  if (n < 100) {
    r.applicable = false;
    r.note = "requires n >= 100";
    return r;
  }
  const double ones = static_cast<double>(bits.count_ones());
  const double s_n = 2.0 * ones - static_cast<double>(n);  // sum of +-1
  const double s_obs = std::fabs(s_n) / std::sqrt(static_cast<double>(n));
  r.p_values.push_back(std::erfc(s_obs / std::sqrt(2.0)));
  return r;
}

TestResult block_frequency_test(const common::BitStream& bits,
                                std::size_t block_len) {
  TestResult r;
  r.name = "block_frequency";
  const std::size_t n = bits.size();
  const std::size_t big_n = block_len == 0 ? 0 : n / block_len;
  if (n < 100 || big_n == 0) {
    r.applicable = false;
    r.note = "requires n >= 100 and at least one block";
    return r;
  }
  double chi2 = 0.0;
  for (std::size_t b = 0; b < big_n; ++b) {
    std::size_t ones = 0;
    for (std::size_t j = 0; j < block_len; ++j) {
      ones += bits[b * block_len + j] ? 1 : 0;
    }
    const double pi =
        static_cast<double>(ones) / static_cast<double>(block_len);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  r.p_values.push_back(
      common::igamc(static_cast<double>(big_n) / 2.0, chi2 / 2.0));
  return r;
}

TestResult runs_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "runs";
  const std::size_t n = bits.size();
  if (n < 100) {
    r.applicable = false;
    r.note = "requires n >= 100";
    return r;
  }
  const double pi = bits.ones_fraction();
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::fabs(pi - 0.5) >= tau) {
    // Frequency prerequisite failed: the spec assigns p = 0.
    r.p_values.push_back(0.0);
    r.note = "monobit prerequisite failed";
    return r;
  }
  std::size_t v_n = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (bits[k] != bits[k + 1]) ++v_n;
  }
  const double nn = static_cast<double>(n);
  const double num = std::fabs(static_cast<double>(v_n) - 2.0 * nn * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * nn) * pi * (1.0 - pi);
  r.p_values.push_back(std::erfc(num / den));
  return r;
}

TestResult longest_run_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "longest_run";
  const std::size_t n = bits.size();
  if (n < 128) {
    r.applicable = false;
    r.note = "requires n >= 128";
    return r;
  }
  std::size_t block_len;
  std::vector<unsigned> thresholds;  // category boundaries (inclusive low)
  std::vector<double> pi;
  if (n < 6272) {
    block_len = 8;
    thresholds = {1, 2, 3, 4};  // <=1, 2, 3, >=4
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
  } else if (n < 750000) {
    block_len = 128;
    thresholds = {4, 5, 6, 7, 8, 9};  // <=4 .. >=9
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
  } else {
    block_len = 10000;
    thresholds = {10, 11, 12, 13, 14, 15, 16};  // <=10 .. >=16
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
  }
  const std::size_t big_n = n / block_len;
  std::vector<std::size_t> v(pi.size(), 0);
  for (std::size_t b = 0; b < big_n; ++b) {
    unsigned longest = 0;
    unsigned run = 0;
    for (std::size_t j = 0; j < block_len; ++j) {
      if (bits[b * block_len + j]) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
    // Map the longest run to its category.
    std::size_t cat = 0;
    while (cat + 1 < thresholds.size() && longest > thresholds[cat]) ++cat;
    if (longest >= thresholds.back()) cat = thresholds.size() - 1;
    ++v[cat];
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const double expected = static_cast<double>(big_n) * pi[i];
    const double d = static_cast<double>(v[i]) - expected;
    chi2 += d * d / expected;
  }
  const double k = static_cast<double>(pi.size() - 1);
  r.p_values.push_back(common::igamc(k / 2.0, chi2 / 2.0));
  return r;
}

namespace {

/// Cumulative-sums p-value for maximum partial-sum excursion z over n bits.
double cusum_p_value(double z, double n) {
  const double sqrt_n = std::sqrt(n);
  double p = 1.0;
  const long k_lo1 = static_cast<long>(std::floor((-n / z + 1.0) / 4.0));
  const long k_hi1 = static_cast<long>(std::floor((n / z - 1.0) / 4.0));
  for (long k = k_lo1; k <= k_hi1; ++k) {
    const double kk = static_cast<double>(k);
    p -= common::normal_cdf((4.0 * kk + 1.0) * z / sqrt_n) -
         common::normal_cdf((4.0 * kk - 1.0) * z / sqrt_n);
  }
  const long k_lo2 = static_cast<long>(std::floor((-n / z - 3.0) / 4.0));
  const long k_hi2 = static_cast<long>(std::floor((n / z - 1.0) / 4.0));
  for (long k = k_lo2; k <= k_hi2; ++k) {
    const double kk = static_cast<double>(k);
    p += common::normal_cdf((4.0 * kk + 3.0) * z / sqrt_n) -
         common::normal_cdf((4.0 * kk + 1.0) * z / sqrt_n);
  }
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace

TestResult cumulative_sums_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "cumulative_sums";
  const std::size_t n = bits.size();
  if (n < 100) {
    r.applicable = false;
    r.note = "requires n >= 100";
    return r;
  }
  long s = 0;
  long max_fwd = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += bits[i] ? 1 : -1;
    max_fwd = std::max(max_fwd, std::labs(s));
  }
  long s_b = 0;
  long max_bwd = 0;
  for (std::size_t i = n; i-- > 0;) {
    s_b += bits[i] ? 1 : -1;
    max_bwd = std::max(max_bwd, std::labs(s_b));
  }
  const double nn = static_cast<double>(n);
  r.p_values.push_back(cusum_p_value(static_cast<double>(max_fwd), nn));
  r.p_values.push_back(cusum_p_value(static_cast<double>(max_bwd), nn));
  return r;
}

}  // namespace trng::stat
