// SP 800-22 tests 2.1-2.4 and 2.13: frequency, block frequency, runs,
// longest run of ones, cumulative sums — bit-serial reference kernels.
//
// These loops read one bit at a time on purpose: they are the reference
// implementations the word-parallel kernels (sp800_22_wordpar.cpp) are
// checked against. All statistic math lives in sp800_22_detail.cpp.
#include <algorithm>
#include <cstdlib>
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

TestResult frequency_test(const common::BitStream& bits, Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_frequency(n, gating)) return *gated;
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) ones += bits[i] ? 1 : 0;
  return detail::frequency_from_counts(n, ones);
}

TestResult block_frequency_test(const common::BitStream& bits,
                                std::size_t block_len, Gating gating) {
  const std::size_t n = bits.size();
  const std::size_t m =
      block_len == 0 ? detail::block_frequency_auto_m(n) : block_len;
  if (auto gated = detail::gate_block_frequency(n, m, gating)) return *gated;
  const std::size_t big_n = n / m;  // partial final block is discarded
  std::vector<std::size_t> ones_per_block(big_n, 0);
  for (std::size_t b = 0; b < big_n; ++b) {
    std::size_t ones = 0;
    for (std::size_t j = 0; j < m; ++j) ones += bits[b * m + j] ? 1 : 0;
    ones_per_block[b] = ones;
  }
  return detail::block_frequency_from_counts(m, ones_per_block);
}

TestResult runs_test(const common::BitStream& bits, Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_runs(n, gating)) return *gated;
  std::size_t ones = 0;
  for (std::size_t i = 0; i < n; ++i) ones += bits[i] ? 1 : 0;
  std::size_t transitions = 0;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (bits[k] != bits[k + 1]) ++transitions;
  }
  return detail::runs_from_counts(n, ones, transitions);
}

TestResult longest_run_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_longest_run(n)) return *gated;
  const auto regime = detail::longest_run_regime(n);
  const std::size_t block_len = regime->block_len;
  const std::size_t big_n = n / block_len;
  std::vector<unsigned> per_block(big_n, 0);
  for (std::size_t b = 0; b < big_n; ++b) {
    unsigned longest = 0;
    unsigned run = 0;
    for (std::size_t j = 0; j < block_len; ++j) {
      if (bits[b * block_len + j]) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
    per_block[b] = longest;
  }
  return detail::longest_run_from_counts(*regime, big_n, per_block);
}

TestResult cumulative_sums_test(const common::BitStream& bits, Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_cusum(n, gating)) return *gated;
  long s = 0;
  long max_fwd = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += bits[i] ? 1 : -1;
    max_fwd = std::max(max_fwd, std::labs(s));
  }
  long s_b = 0;
  long max_bwd = 0;
  for (std::size_t i = n; i-- > 0;) {
    s_b += bits[i] ? 1 : -1;
    max_bwd = std::max(max_bwd, std::labs(s_b));
  }
  return detail::cusum_from_extrema(n, max_fwd, max_bwd);
}

}  // namespace trng::stat
