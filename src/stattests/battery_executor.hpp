// Thread-pool scheduler for independent statistical tests.
//
// Level 2 of the parallel battery: each SP 800-22 test is an independent
// pure function of the (shared, read-only) bit sequence, so the battery can
// run them concurrently. The executor follows the src/service/ threading
// idioms: workers are plain std::threads that are always joined before
// run() returns (no detach), results are stored by job index so the output
// order is deterministic regardless of scheduling, and the only shared
// mutable state is one atomic work counter plus per-job slots.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "stattests/test_result.hpp"

namespace trng::stat {

class BatteryExecutor {
 public:
  using Job = std::function<TestResult()>;

  /// `threads` = pool size; 0 selects std::thread::hardware_concurrency()
  /// (at least 1).
  explicit BatteryExecutor(unsigned threads = 0);

  /// Runs all jobs and returns their results indexed exactly like `jobs`.
  /// Workers claim jobs via an atomic counter; every worker is joined
  /// before this returns, including on failure. If any job threw, the
  /// exception of the lowest-indexed failing job is rethrown after the
  /// join. With one job or a one-thread pool the jobs run inline on the
  /// calling thread.
  std::vector<TestResult> run(const std::vector<Job>& jobs) const;

  unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

}  // namespace trng::stat
