// SP 800-22 test 2.9: Maurer's "universal statistical" test.
#include <cmath>
#include <vector>

#include "stattests/sp800_22.hpp"

namespace trng::stat {

TestResult universal_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "universal";
  const std::size_t n = bits.size();

  // L selection table (SP 800-22 Section 2.9.4) and the corresponding
  // reference expected values / variances for random input.
  struct LRow {
    std::size_t min_n;
    unsigned L;
    double expected;
    double variance;
  };
  static constexpr LRow kRows[] = {
      {387840, 6, 5.2177052, 2.954},     {904960, 7, 6.1962507, 3.125},
      {2068480, 8, 7.1836656, 3.238},    {4654080, 9, 8.1764248, 3.311},
      {10342400, 10, 9.1723243, 3.356},  {22753280, 11, 10.170032, 3.384},
      {49643520, 12, 11.168765, 3.401},
  };
  const LRow* row = nullptr;
  for (const auto& candidate : kRows) {
    if (n >= candidate.min_n) row = &candidate;
  }
  if (row == nullptr) {
    r.applicable = false;
    r.note = "requires n >= 387840";
    return r;
  }
  const unsigned big_l = row->L;
  const std::size_t q = 10u * (1u << big_l);  // initialization blocks
  const std::size_t blocks = n / big_l;
  const std::size_t k = blocks - q;  // test blocks

  std::vector<std::size_t> last_seen(1u << big_l, 0);
  auto block_value = [&](std::size_t b) {
    std::size_t v = 0;
    for (unsigned j = 0; j < big_l; ++j) {
      v = (v << 1) | (bits[b * big_l + j] ? 1u : 0u);
    }
    return v;
  };
  for (std::size_t b = 0; b < q; ++b) last_seen[block_value(b)] = b + 1;

  double sum = 0.0;
  for (std::size_t b = q; b < blocks; ++b) {
    const std::size_t v = block_value(b);
    sum += std::log2(static_cast<double>(b + 1 - last_seen[v]));
    last_seen[v] = b + 1;
  }
  const double fn = sum / static_cast<double>(k);

  const double kk = static_cast<double>(k);
  const double c = 0.7 - 0.8 / static_cast<double>(big_l) +
                   (4.0 + 32.0 / static_cast<double>(big_l)) *
                       std::pow(kk, -3.0 / static_cast<double>(big_l)) / 15.0;
  const double sigma = c * std::sqrt(row->variance / kk);
  r.p_values.push_back(
      std::erfc(std::fabs(fn - row->expected) / (std::sqrt(2.0) * sigma)));
  return r;
}

}  // namespace trng::stat
