// SP 800-22 test 2.9: Maurer's "universal statistical" test — bit-serial
// reference kernel. The L-selection table and the fn -> p-value math live
// in sp800_22_detail.cpp.
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

namespace {

/// Accumulated log2 distance sum over the K test blocks (Section 2.9.4),
/// reading each L-bit block MSB-first one bit at a time.
double distance_log_sum(const common::BitStream& bits, unsigned big_l,
                        std::size_t q, std::size_t blocks) {
  std::vector<std::size_t> last_seen(std::size_t{1} << big_l, 0);
  auto block_value = [&](std::size_t b) {
    std::size_t v = 0;
    for (unsigned j = 0; j < big_l; ++j) {
      v = (v << 1) | (bits[b * big_l + j] ? 1u : 0u);
    }
    return v;
  };
  for (std::size_t b = 0; b < q; ++b) last_seen[block_value(b)] = b + 1;
  double sum = 0.0;
  for (std::size_t b = q; b < blocks; ++b) {
    const std::size_t v = block_value(b);
    sum += std::log2(static_cast<double>(b + 1 - last_seen[v]));
    last_seen[v] = b + 1;
  }
  return sum;
}

}  // namespace

TestResult universal_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_universal(n)) return *gated;
  const detail::UniversalRow* row = detail::universal_row(n);
  const unsigned big_l = row->big_l;
  const std::size_t q = std::size_t{10} << big_l;  // initialization blocks
  const std::size_t blocks = n / big_l;
  const std::size_t k = blocks - q;  // test blocks
  const double sum = distance_log_sum(bits, big_l, q, blocks);
  return detail::universal_from_sum(*row, sum, k);
}

UniversalStatistic universal_statistic(const common::BitStream& bits,
                                       unsigned big_l, std::size_t q,
                                       double expected, double variance) {
  if (big_l == 0 || big_l > 16) {
    throw std::invalid_argument("universal_statistic: L must be in [1, 16]");
  }
  const std::size_t blocks = bits.size() / big_l;
  if (blocks <= q) {
    throw std::invalid_argument(
        "universal_statistic: need more than Q complete blocks");
  }
  const std::size_t k = blocks - q;
  const double sum = distance_log_sum(bits, big_l, q, blocks);
  return detail::universal_statistic_from_sum(sum, k, big_l, expected,
                                              variance);
}

}  // namespace trng::stat
