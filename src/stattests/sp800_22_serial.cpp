// SP 800-22 tests 2.11 and 2.12: serial and approximate entropy — bit-serial
// reference kernels. Both use overlapping m-bit pattern counts with cyclic
// wrap-around; the psi^2 / phi / p-value math lives in sp800_22_detail.cpp.
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

namespace {

/// Counts of all overlapping m-bit patterns with cyclic extension, indexed
/// by the MSB-first pattern value. Returns empty vector for m == 0
/// (psi^2_0 = 0 by definition).
std::vector<std::size_t> pattern_counts(const common::BitStream& bits,
                                        unsigned m) {
  if (m == 0) return {};
  const std::size_t n = bits.size();
  std::vector<std::size_t> counts(1u << m, 0);
  std::uint32_t window = 0;
  const std::uint32_t mask = (1u << m) - 1u;
  // Pre-fill with the first m-1 bits.
  for (unsigned j = 0; j + 1 < m; ++j) {
    window = (window << 1) | (bits[j] ? 1u : 0u);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + m - 1) % n;  // cyclic extension
    window = ((window << 1) | (bits[next] ? 1u : 0u)) & mask;
    ++counts[window];
  }
  return counts;
}

double psi_squared(const common::BitStream& bits, unsigned m) {
  return detail::psi_squared_from_counts(bits.size(),
                                         pattern_counts(bits, m));
}

}  // namespace

TestResult serial_test(const common::BitStream& bits, unsigned m,
                       Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_serial(n, m, gating)) return *gated;
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  return detail::serial_from_psis(m, psi_m, psi_m1, psi_m2);
}

TestResult approximate_entropy_test(const common::BitStream& bits, unsigned m,
                                    Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_approximate_entropy(n, m, gating)) {
    return *gated;
  }
  const double phi_m = detail::phi_from_counts(n, pattern_counts(bits, m));
  const double phi_m1 =
      detail::phi_from_counts(n, pattern_counts(bits, m + 1));
  return detail::approximate_entropy_from_phis(n, m, phi_m, phi_m1);
}

}  // namespace trng::stat
