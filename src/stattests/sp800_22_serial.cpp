// SP 800-22 tests 2.11 and 2.12: serial and approximate entropy. Both use
// overlapping m-bit pattern counts with cyclic wrap-around.
#include <cmath>
#include <vector>

#include "common/special.hpp"
#include "stattests/sp800_22.hpp"

namespace trng::stat {

namespace {

/// Counts of all overlapping m-bit patterns with cyclic extension.
/// Returns empty vector for m == 0 (psi^2_0 = 0 by definition).
std::vector<std::size_t> pattern_counts(const common::BitStream& bits,
                                        unsigned m) {
  if (m == 0) return {};
  const std::size_t n = bits.size();
  std::vector<std::size_t> counts(1u << m, 0);
  std::uint32_t window = 0;
  const std::uint32_t mask = (1u << m) - 1u;
  // Pre-fill with the first m-1 bits.
  for (unsigned j = 0; j + 1 < m; ++j) {
    window = (window << 1) | (bits[j] ? 1u : 0u);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + m - 1) % n;  // cyclic extension
    window = ((window << 1) | (bits[next] ? 1u : 0u)) & mask;
    ++counts[window];
  }
  return counts;
}

double psi_squared(const common::BitStream& bits, unsigned m) {
  if (m == 0) return 0.0;
  const auto counts = pattern_counts(bits, m);
  const double n = static_cast<double>(bits.size());
  double sum = 0.0;
  for (std::size_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return std::exp2(static_cast<double>(m)) / n * sum - n;
}

}  // namespace

TestResult serial_test(const common::BitStream& bits, unsigned m) {
  TestResult r;
  r.name = "serial";
  const std::size_t n = bits.size();
  if (m < 2 || m > 24 ||
      static_cast<double>(m) >= std::log2(static_cast<double>(n)) - 2.0) {
    r.applicable = false;
    r.note = "requires 2 <= m < log2(n) - 2";
    return r;
  }
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  r.p_values.push_back(common::igamc(std::exp2(m - 2), d1 / 2.0));
  r.p_values.push_back(common::igamc(std::exp2(m - 3), d2 / 2.0));
  return r;
}

TestResult approximate_entropy_test(const common::BitStream& bits,
                                    unsigned m) {
  TestResult r;
  r.name = "approximate_entropy";
  const std::size_t n = bits.size();
  if (m < 1 || m > 22 ||
      static_cast<double>(m) >= std::log2(static_cast<double>(n)) - 5.0) {
    r.applicable = false;
    r.note = "requires 1 <= m < log2(n) - 5";
    return r;
  }
  const double nn = static_cast<double>(n);
  auto phi = [&](unsigned mm) {
    const auto counts = pattern_counts(bits, mm);
    double sum = 0.0;
    for (std::size_t c : counts) {
      if (c > 0) {
        const double pi = static_cast<double>(c) / nn;
        sum += pi * std::log(pi);
      }
    }
    return sum;
  };
  const double ap_en = phi(m) - phi(m + 1);
  const double chi2 = 2.0 * nn * (std::log(2.0) - ap_en);
  r.p_values.push_back(common::igamc(std::exp2(m - 1), chi2 / 2.0));
  return r;
}

}  // namespace trng::stat
