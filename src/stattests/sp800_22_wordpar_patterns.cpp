// Word-parallel kernels for the pattern-style SP 800-22 tests: serial,
// approximate entropy, universal, template matching, linear complexity.
// All window extraction goes through BitStream::word_at (packed LSB-first
// 64-bit reads at arbitrary bit offsets); see sp800_22_wordpar.hpp for the
// bit-identity contract.
#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <vector>

#include "stattests/sp800_22_detail.hpp"
#include "stattests/sp800_22_wordpar.hpp"

namespace trng::stat::wordpar {

namespace {

const std::array<std::uint8_t, 256>& bit_reverse_byte_lut() {
  static const std::array<std::uint8_t, 256> lut = [] {
    std::array<std::uint8_t, 256> t{};
    for (unsigned b = 0; b < 256; ++b) {
      unsigned r = 0;
      for (unsigned j = 0; j < 8; ++j) {
        if (b & (1u << j)) r |= 1u << (7 - j);
      }
      t[b] = static_cast<std::uint8_t>(r);
    }
    return t;
  }();
  return lut;
}

/// Reverses the low `m` bits of v (m <= 32).
std::uint32_t bit_reverse(std::uint32_t v, unsigned m) {
  const auto& lut = bit_reverse_byte_lut();
  const std::uint32_t r = (static_cast<std::uint32_t>(lut[v & 0xFF]) << 24) |
                          (static_cast<std::uint32_t>(lut[(v >> 8) & 0xFF]) << 16) |
                          (static_cast<std::uint32_t>(lut[(v >> 16) & 0xFF]) << 8) |
                          static_cast<std::uint32_t>(lut[(v >> 24) & 0xFF]);
  return r >> (32 - m);
}

/// Counts of all overlapping m-bit patterns with cyclic extension, indexed
/// MSB-first exactly like the scalar pattern_counts: windows are extracted
/// LSB-first in one word_at read each, tallied, then the histogram is
/// permuted by per-value bit reversal. The permutation is a bijection, so
/// the MSB-indexed counts — and therefore the summation order inside
/// psi_squared_from_counts / phi_from_counts — match the scalar kernel
/// exactly.
std::vector<std::size_t> pattern_counts_words(const common::BitStream& bits,
                                              unsigned m) {
  if (m == 0) return {};
  const std::size_t n = bits.size();
  const std::uint64_t mask = (1ULL << m) - 1;
  std::vector<std::size_t> counts_lsb(std::size_t{1} << m, 0);
  const std::size_t non_wrapping = n >= m ? n - m + 1 : 0;
  for (std::size_t i = 0; i < non_wrapping; ++i) {
    ++counts_lsb[bits.word_at(i) & mask];
  }
  for (std::size_t i = non_wrapping; i < n; ++i) {  // cyclic extension
    std::uint64_t v = 0;
    for (unsigned j = 0; j < m; ++j) {
      v |= static_cast<std::uint64_t>(bits[(i + j) % n] ? 1 : 0) << j;
    }
    ++counts_lsb[v];
  }
  std::vector<std::size_t> counts(counts_lsb.size());
  for (std::size_t v = 0; v < counts_lsb.size(); ++v) {
    counts[bit_reverse(static_cast<std::uint32_t>(v), m)] = counts_lsb[v];
  }
  return counts;
}

}  // namespace

TestResult serial_test(const common::BitStream& bits, unsigned m,
                       Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_serial(n, m, gating)) return *gated;
  const double psi_m =
      detail::psi_squared_from_counts(n, pattern_counts_words(bits, m));
  const double psi_m1 =
      detail::psi_squared_from_counts(n, pattern_counts_words(bits, m - 1));
  const double psi_m2 =
      detail::psi_squared_from_counts(n, pattern_counts_words(bits, m - 2));
  return detail::serial_from_psis(m, psi_m, psi_m1, psi_m2);
}

TestResult approximate_entropy_test(const common::BitStream& bits, unsigned m,
                                    Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_approximate_entropy(n, m, gating)) {
    return *gated;
  }
  const double phi_m =
      detail::phi_from_counts(n, pattern_counts_words(bits, m));
  const double phi_m1 =
      detail::phi_from_counts(n, pattern_counts_words(bits, m + 1));
  return detail::approximate_entropy_from_phis(n, m, phi_m, phi_m1);
}

TestResult universal_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_universal(n)) return *gated;
  const detail::UniversalRow* row = detail::universal_row(n);
  const unsigned big_l = row->big_l;
  const std::size_t q = std::size_t{10} << big_l;
  const std::size_t blocks = n / big_l;
  const std::size_t k = blocks - q;
  // Block values are read LSB-first here versus MSB-first in the scalar
  // kernel — a bit-reversal relabeling of the table index. The statistic
  // only depends on distances between equal block values, and relabeling
  // is a bijection, so every distance (and the order they are summed in)
  // is identical to the scalar path.
  const std::uint64_t mask = (1ULL << big_l) - 1;
  std::vector<std::size_t> last_seen(std::size_t{1} << big_l, 0);
  for (std::size_t b = 0; b < q; ++b) {
    last_seen[bits.word_at(b * big_l) & mask] = b + 1;
  }
  double sum = 0.0;
  for (std::size_t b = q; b < blocks; ++b) {
    const std::size_t v = bits.word_at(b * big_l) & mask;
    sum += std::log2(static_cast<double>(b + 1 - last_seen[v]));
    last_seen[v] = b + 1;
  }
  return detail::universal_from_sum(*row, sum, k);
}

TestResult non_overlapping_template_test(const common::BitStream& bits,
                                         unsigned tpl_len) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_non_overlapping_template(n, tpl_len)) {
    return *gated;
  }
  constexpr std::size_t kBlocks = 8;
  const std::size_t block_len = n / kBlocks;
  const auto templates = aperiodic_templates(tpl_len);
  std::vector<std::array<std::size_t, kBlocks>> w(templates.size());
  // Per chunk of 64 window positions: build the m shifted-stream words
  // S[j] (bit q of S[j] = stream bit base+q+j) once, then each template's
  // overlapping-match mask is an AND of S[j] or ~S[j] per template bit.
  // The scalar fill/reset loop takes overlapping matches greedily left to
  // right with the next accepted match >= m positions later, which is the
  // same selection the greedy scan over the match mask makes.
  std::vector<std::size_t> next_ok(templates.size());
  std::vector<std::size_t> count(templates.size());
  std::array<std::uint64_t, 16> s_words{};
  for (std::size_t b = 0; b < kBlocks; ++b) {
    const std::size_t base = b * block_len;
    const std::size_t npos = block_len - tpl_len + 1;
    std::fill(next_ok.begin(), next_ok.end(), 0);
    std::fill(count.begin(), count.end(), 0);
    for (std::size_t cbase = 0; cbase < npos; cbase += 64) {
      for (unsigned j = 0; j < tpl_len; ++j) {
        s_words[j] = bits.word_at(base + cbase + j);
      }
      const std::size_t valid = std::min<std::size_t>(64, npos - cbase);
      const std::uint64_t vmask =
          valid == 64 ? ~0ULL : ((1ULL << valid) - 1);
      for (std::size_t t = 0; t < templates.size(); ++t) {
        const std::uint32_t tpl = templates[t];
        std::uint64_t match = vmask;
        for (unsigned j = 0; j < tpl_len && match != 0; ++j) {
          // Window bit j must equal template bit m-1-j (MSB-first value).
          match &= ((tpl >> (tpl_len - 1 - j)) & 1u) ? s_words[j]
                                                     : ~s_words[j];
        }
        while (match != 0) {
          const unsigned bit = static_cast<unsigned>(std::countr_zero(match));
          match &= match - 1;
          const std::size_t q = cbase + bit;
          if (q >= next_ok[t]) {
            ++count[t];
            next_ok[t] = q + tpl_len;
          }
        }
      }
    }
    for (std::size_t t = 0; t < templates.size(); ++t) w[t][b] = count[t];
  }
  return detail::non_overlapping_template_from_counts(n, tpl_len, w);
}

TestResult overlapping_template_test(const common::BitStream& bits,
                                     unsigned tpl_len) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_overlapping_template(n, tpl_len)) {
    return *gated;
  }
  constexpr std::size_t kBlockLen = 1032;
  const std::size_t big_n = n / kBlockLen;
  std::array<std::size_t, 6> v{};
  for (std::size_t b = 0; b < big_n; ++b) {
    const std::size_t base = b * kBlockLen;
    std::size_t count = 0;
    // Window starts 0..1023 within the block: exactly 16 full words of
    // all-ones match mask (an AND across the 9 shifted streams).
    for (std::size_t c = 0; c < 16; ++c) {
      std::uint64_t a = ~0ULL;
      for (unsigned j = 0; j < tpl_len; ++j) {
        a &= bits.word_at(base + c * 64 + j);
      }
      count += static_cast<std::size_t>(std::popcount(a));
    }
    v[std::min<std::size_t>(count, 5)]++;
  }
  return detail::overlapping_template_from_counts(big_n, v);
}

std::size_t berlekamp_massey_words(const common::BitStream& bits,
                                   std::size_t begin, std::size_t len) {
  if (len == 0) return 0;
  const std::size_t nw = (len + 63) / 64;
  // Reversed block: srev bit x = block bit len-1-x, so the discrepancy's
  // s_{i-j} terms for one c-word are a contiguous LSB-first window of srev.
  std::vector<std::uint64_t> srev(nw + 1, 0);
  for (std::size_t x = 0; x < len; ++x) {
    if (bits[begin + len - 1 - x]) srev[x >> 6] |= 1ULL << (x & 63);
  }
  auto srev_word_at = [&srev](std::size_t pos) -> std::uint64_t {
    const std::size_t k = pos >> 6;
    const unsigned off = static_cast<unsigned>(pos & 63);
    const std::uint64_t lo = k < srev.size() ? srev[k] : 0;
    const std::uint64_t hi = k + 1 < srev.size() ? srev[k + 1] : 0;
    return (lo >> off) | ((hi << 1) << (63 - off));
  };

  std::vector<std::uint64_t> c(nw, 0), b(nw, 0), t;
  c[0] = b[0] = 1;
  std::size_t l = 0;
  std::size_t m_shift = 1;
  for (std::size_t i = 0; i < len; ++i) {
    // d = parity of sum_{j=0..l} c_j s_{i-j}; the j=0 term is s_i itself
    // since c_0 = 1. Mask the last c-word to degree l so stray higher bits
    // can never contribute (l <= i, so every s index stays in range).
    unsigned acc = 0;
    const std::size_t lwords = (l >> 6) + 1;
    for (std::size_t tw = 0; tw < lwords; ++tw) {
      std::uint64_t cw = c[tw];
      if (tw == lwords - 1) {
        cw &= ~0ULL >> (63 - static_cast<unsigned>(l & 63));
      }
      if (cw == 0) continue;
      acc ^= static_cast<unsigned>(
          std::popcount(cw & srev_word_at(len - 1 - i + (tw << 6))));
    }
    if ((acc & 1) == 0) {
      ++m_shift;
      continue;
    }
    t = c;
    // c ^= b << m_shift, truncated to len bits (the scalar loop only flips
    // c[j + m_shift] for j + m_shift < len).
    const std::size_t ws = m_shift >> 6;
    const unsigned bs = static_cast<unsigned>(m_shift & 63);
    for (std::size_t j = nw; j-- > ws;) {
      std::uint64_t v = b[j - ws] << bs;
      if (bs != 0 && j - ws > 0) v |= b[j - ws - 1] >> (64 - bs);
      c[j] ^= v;
    }
    const unsigned tail = static_cast<unsigned>(len & 63);
    if (tail != 0) c[nw - 1] &= ~0ULL >> (64 - tail);
    if (2 * l <= i) {
      l = i + 1 - l;
      b = t;
      m_shift = 1;
    } else {
      ++m_shift;
    }
  }
  return l;
}

TestResult linear_complexity_test(const common::BitStream& bits,
                                  std::size_t block_len) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_linear_complexity(n, block_len)) {
    return *gated;
  }
  const std::size_t big_n = n / block_len;
  std::vector<std::size_t> lengths(big_n, 0);
  for (std::size_t b = 0; b < big_n; ++b) {
    lengths[b] = berlekamp_massey_words(bits, b * block_len, block_len);
  }
  return detail::linear_complexity_from_lengths(block_len, lengths);
}

}  // namespace trng::stat::wordpar
