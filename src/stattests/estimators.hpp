// Empirical entropy estimators, used to cross-check the stochastic model's
// lower bound against simulated TRNG output (the model predicts H_RAW; the
// estimators measure it).
#pragma once

#include "common/bitstream.hpp"

namespace trng::stat {

/// Plug-in (maximum-likelihood) Shannon entropy per bit, estimated from
/// `block_len`-bit block frequencies: H = -(1/L) sum p log2 p. Biased low
/// for small samples; use >= 100 * 2^L bits. Throws std::invalid_argument
/// for block_len outside [1, 16] or insufficient data.
double shannon_entropy_estimate(const common::BitStream& bits,
                                unsigned block_len = 8);

/// Most-common-value min-entropy estimate per bit (SP 800-90B 6.3.1):
/// upper-confidence-bound the most likely `block_len`-bit value, then
/// H_min = -log2(p_ucb) / block_len.
double min_entropy_mcv(const common::BitStream& bits, unsigned block_len = 1);

/// First-order Markov min-entropy estimate per bit for binary sources
/// (SP 800-90B-style): bounds the most probable length-`chain_len` path of
/// the estimated transition matrix.
double min_entropy_markov(const common::BitStream& bits,
                          unsigned chain_len = 128);

/// Collision-based entropy estimate per bit: mean spacing between repeated
/// `block_len`-bit patterns maps to Renyi-2 (collision) entropy
/// H2 = -log2 sum p_i^2, a lower bound on Shannon entropy.
double collision_entropy_estimate(const common::BitStream& bits,
                                  unsigned block_len = 8);

/// Empirical bias |P(1) - 1/2| of the stream.
double bias_estimate(const common::BitStream& bits);

}  // namespace trng::stat
