#include "stattests/estimators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"

namespace trng::stat {

namespace {

std::vector<std::size_t> block_counts(const common::BitStream& bits,
                                      unsigned block_len) {
  if (block_len < 1 || block_len > 16) {
    throw std::invalid_argument("block_counts: block_len must be in [1, 16]");
  }
  const std::size_t blocks = bits.size() / block_len;
  if (blocks == 0) {
    throw std::invalid_argument("block_counts: sequence shorter than a block");
  }
  std::vector<std::size_t> counts(1u << block_len, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint32_t v = 0;
    for (unsigned j = 0; j < block_len; ++j) {
      v = (v << 1) | (bits[b * block_len + j] ? 1u : 0u);
    }
    ++counts[v];
  }
  return counts;
}

}  // namespace

double shannon_entropy_estimate(const common::BitStream& bits,
                                unsigned block_len) {
  const auto counts = block_counts(bits, block_len);
  const std::size_t blocks = bits.size() / block_len;
  if (blocks < 100 * counts.size()) {
    throw std::invalid_argument(
        "shannon_entropy_estimate: need >= 100 * 2^L blocks for a usable "
        "plug-in estimate");
  }
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c > 0) {
      const double p = static_cast<double>(c) / static_cast<double>(blocks);
      h -= p * std::log2(p);
    }
  }
  return h / static_cast<double>(block_len);
}

double min_entropy_mcv(const common::BitStream& bits, unsigned block_len) {
  const auto counts = block_counts(bits, block_len);
  const std::size_t blocks = bits.size() / block_len;
  const double n = static_cast<double>(blocks);
  const double p_hat =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) / n;
  // 99% upper confidence bound per SP 800-90B.
  const double p_ucb =
      std::min(1.0, p_hat + 2.576 * std::sqrt(p_hat * (1.0 - p_hat) / n));
  return -std::log2(p_ucb) / static_cast<double>(block_len);
}

double min_entropy_markov(const common::BitStream& bits, unsigned chain_len) {
  if (bits.size() < 1000) {
    throw std::invalid_argument("min_entropy_markov: need >= 1000 bits");
  }
  if (chain_len < 2) {
    throw std::invalid_argument("min_entropy_markov: chain_len >= 2");
  }
  // Estimate initial and transition probabilities.
  std::size_t c1 = bits.count_ones();
  const double n = static_cast<double>(bits.size());
  double p1 = static_cast<double>(c1) / n;
  p1 = std::clamp(p1, 1e-12, 1.0 - 1e-12);
  std::size_t trans[2][2] = {};
  for (std::size_t i = 0; i + 1 < bits.size(); ++i) {
    ++trans[bits[i] ? 1 : 0][bits[i + 1] ? 1 : 0];
  }
  double p[2][2];
  for (int a = 0; a < 2; ++a) {
    const double row = static_cast<double>(trans[a][0] + trans[a][1]);
    for (int b = 0; b < 2; ++b) {
      p[a][b] = row > 0 ? static_cast<double>(trans[a][b]) / row : 0.5;
      p[a][b] = std::clamp(p[a][b], 1e-12, 1.0 - 1e-12);
    }
  }
  // Most probable path of length chain_len via dynamic programming in the
  // log domain.
  double best[2] = {std::log2(1.0 - p1), std::log2(p1)};
  for (unsigned step = 1; step < chain_len; ++step) {
    const double next0 =
        std::max(best[0] + std::log2(p[0][0]), best[1] + std::log2(p[1][0]));
    const double next1 =
        std::max(best[0] + std::log2(p[0][1]), best[1] + std::log2(p[1][1]));
    best[0] = next0;
    best[1] = next1;
  }
  const double log_pmax = std::max(best[0], best[1]);
  return std::min(1.0, -log_pmax / static_cast<double>(chain_len));
}

double collision_entropy_estimate(const common::BitStream& bits,
                                  unsigned block_len) {
  const auto counts = block_counts(bits, block_len);
  const std::size_t blocks = bits.size() / block_len;
  if (blocks < 10 * counts.size()) {
    throw std::invalid_argument(
        "collision_entropy_estimate: need >= 10 * 2^L blocks");
  }
  const double n = static_cast<double>(blocks);
  // Unbiased estimator of sum p_i^2: sum c_i (c_i - 1) / (n (n - 1)).
  double s = 0.0;
  for (std::size_t c : counts) {
    s += static_cast<double>(c) * static_cast<double>(c > 0 ? c - 1 : 0);
  }
  const double p2 = s / (n * (n - 1.0));
  if (p2 <= 0.0) return static_cast<double>(block_len);
  return -std::log2(p2) / static_cast<double>(block_len);
}

double bias_estimate(const common::BitStream& bits) {
  return std::fabs(bits.ones_fraction() - 0.5);
}

}  // namespace trng::stat
