// Shared gates and statistic functions for the SP 800-22 suite. See the
// header for the bit-identity contract: every floating-point step of every
// test lives here, in one translation unit, so the scalar and word-parallel
// counting kernels cannot diverge in their p-values.
#include "stattests/sp800_22_detail.hpp"

#include <cmath>
#include <cstdlib>

#include "common/gaussian.hpp"
#include "common/special.hpp"

namespace trng::stat::detail {

namespace {

TestResult inapplicable(const char* name, const char* note) {
  TestResult r;
  r.name = name;
  r.applicable = false;
  r.note = note;
  return r;
}

}  // namespace

// ---- applicability gates -------------------------------------------------

std::optional<TestResult> gate_frequency(std::size_t n, Gating gating) {
  if (gating == Gating::kStrict && n < 100) {
    return inapplicable("frequency", "requires n >= 100");
  }
  if (n == 0) return inapplicable("frequency", "empty sequence");
  return std::nullopt;
}

std::optional<TestResult> gate_runs(std::size_t n, Gating gating) {
  if (gating == Gating::kStrict && n < 100) {
    return inapplicable("runs", "requires n >= 100");
  }
  if (n == 0) return inapplicable("runs", "empty sequence");
  return std::nullopt;
}

std::optional<TestResult> gate_cusum(std::size_t n, Gating gating) {
  if (gating == Gating::kStrict && n < 100) {
    return inapplicable("cumulative_sums", "requires n >= 100");
  }
  if (n == 0) return inapplicable("cumulative_sums", "empty sequence");
  return std::nullopt;
}

std::optional<TestResult> gate_excursions(std::size_t n, const char* name) {
  if (n < 10000) return inapplicable(name, "requires n >= 10^4");
  return std::nullopt;
}

std::optional<TestResult> gate_serial(std::size_t n, unsigned m,
                                      Gating gating) {
  if (gating == Gating::kStrict) {
    if (m < 2 || m > 24 ||
        static_cast<double>(m) >= std::log2(static_cast<double>(n)) - 2.0) {
      return inapplicable("serial", "requires 2 <= m < log2(n) - 2");
    }
  } else {
    if (m < 2 || m > 24) {
      return inapplicable("serial", "requires 2 <= m <= 24");
    }
    if (n < m) {
      return inapplicable("serial", "sequence shorter than pattern length");
    }
  }
  return std::nullopt;
}

std::optional<TestResult> gate_approximate_entropy(std::size_t n, unsigned m,
                                                   Gating gating) {
  if (gating == Gating::kStrict) {
    if (m < 1 || m > 22 ||
        static_cast<double>(m) >= std::log2(static_cast<double>(n)) - 5.0) {
      return inapplicable("approximate_entropy",
                          "requires 1 <= m < log2(n) - 5");
    }
  } else {
    if (m < 1 || m > 22) {
      return inapplicable("approximate_entropy", "requires 1 <= m <= 22");
    }
    if (n < m + 1) {
      return inapplicable("approximate_entropy",
                          "sequence shorter than pattern length");
    }
  }
  return std::nullopt;
}

std::size_t block_frequency_auto_m(std::size_t n) {
  // Smallest M with N = n / M < 100 is floor(n / 100) + 1; the max with 20
  // covers short sequences. Any M >= n / 100 + 1 > 0.01 n also satisfies
  // the M > 0.01 n recommendation.
  return std::max<std::size_t>(20, n / 100 + 1);
}

std::optional<TestResult> gate_block_frequency(std::size_t n, std::size_t m,
                                               Gating gating) {
  const std::size_t big_n = m == 0 ? 0 : n / m;
  if (big_n == 0) {
    return inapplicable("block_frequency", "requires at least one block");
  }
  if (gating == Gating::kStrict) {
    // Section 2.2.7: M >= 20, M > 0.01 n, N < 100 (and n >= 100).
    if (n < 100) return inapplicable("block_frequency", "requires n >= 100");
    if (m < 20 || 100 * m <= n || big_n >= 100) {
      return inapplicable(
          "block_frequency",
          "block length violates 2.2.7 (requires M >= 20, M > 0.01 n, N < 100)");
    }
  }
  return std::nullopt;
}

std::optional<LongestRunRegime> longest_run_regime(std::size_t n) {
  if (n < 128) return std::nullopt;
  LongestRunRegime regime;
  if (n < 6272) {
    regime.block_len = 8;
    regime.thresholds = {1, 2, 3, 4};  // <=1, 2, 3, >=4
    regime.pi = {0.2148, 0.3672, 0.2305, 0.1875};
  } else if (n < 750000) {
    regime.block_len = 128;
    regime.thresholds = {4, 5, 6, 7, 8, 9};  // <=4 .. >=9
    regime.pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
  } else {
    regime.block_len = 10000;
    regime.thresholds = {10, 11, 12, 13, 14, 15, 16};  // <=10 .. >=16
    regime.pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
  }
  return regime;
}

std::optional<TestResult> gate_longest_run(std::size_t n) {
  if (n < 128) return inapplicable("longest_run", "requires n >= 128");
  return std::nullopt;
}

const UniversalRow* universal_row(std::size_t n) {
  // L selection table (SP 800-22 Section 2.9.4) and the corresponding
  // reference expected values / variances for random input.
  static constexpr UniversalRow kRows[] = {
      {387840, 6, 5.2177052, 2.954},     {904960, 7, 6.1962507, 3.125},
      {2068480, 8, 7.1836656, 3.238},    {4654080, 9, 8.1764248, 3.311},
      {10342400, 10, 9.1723243, 3.356},  {22753280, 11, 10.170032, 3.384},
      {49643520, 12, 11.168765, 3.401},
  };
  const UniversalRow* row = nullptr;
  for (const auto& candidate : kRows) {
    if (n >= candidate.min_n) row = &candidate;
  }
  return row;
}

std::optional<TestResult> gate_universal(std::size_t n) {
  if (universal_row(n) == nullptr) {
    return inapplicable("universal", "requires n >= 387840");
  }
  return std::nullopt;
}

std::optional<TestResult> gate_rank(std::size_t n) {
  if (n / 1024 < 38) {
    return inapplicable("rank",
                        "requires at least 38 32x32 matrices (n >= 38912)");
  }
  return std::nullopt;
}

std::optional<TestResult> gate_dft(std::size_t n) {
  if (n < 1000) return inapplicable("dft", "requires n >= 1000");
  return std::nullopt;
}

std::optional<TestResult> gate_linear_complexity(std::size_t n,
                                                 std::size_t block_len) {
  if (block_len < 500 || block_len > 5000) {
    return inapplicable("linear_complexity", "spec requires 500 <= M <= 5000");
  }
  if (n / block_len < 200) {
    return inapplicable("linear_complexity", "requires at least 200 blocks");
  }
  return std::nullopt;
}

std::optional<TestResult> gate_non_overlapping_template(std::size_t n,
                                                        unsigned tpl_len) {
  const std::size_t block_len = n / 8;
  // The chi-square approximation needs a healthy per-block expectation
  // mu = (M - m + 1) / 2^m; require mu >= 20 per block.
  if (tpl_len < 2 || tpl_len > 16 ||
      block_len < (std::size_t{20} << tpl_len) + tpl_len) {
    return inapplicable("non_overlapping_template",
                        "sequence too short for stable per-block statistics");
  }
  return std::nullopt;
}

std::optional<TestResult> gate_overlapping_template(std::size_t n,
                                                    unsigned tpl_len) {
  if (tpl_len != 9 || n / 1032 < 100) {
    return inapplicable("overlapping_template", "requires m = 9 and n >= ~10^5");
  }
  return std::nullopt;
}

// ---- statistic functions -------------------------------------------------

TestResult frequency_from_counts(std::size_t n, std::size_t ones) {
  TestResult r;
  r.name = "frequency";
  const double s_n =
      2.0 * static_cast<double>(ones) - static_cast<double>(n);  // sum of +-1
  const double s_obs = std::fabs(s_n) / std::sqrt(static_cast<double>(n));
  r.p_values.push_back(std::erfc(s_obs / std::sqrt(2.0)));
  return r;
}

TestResult block_frequency_from_counts(
    std::size_t block_len, const std::vector<std::size_t>& ones_per_block) {
  TestResult r;
  r.name = "block_frequency";
  double chi2 = 0.0;
  for (std::size_t ones : ones_per_block) {
    const double pi =
        static_cast<double>(ones) / static_cast<double>(block_len);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_len);
  r.p_values.push_back(common::igamc(
      static_cast<double>(ones_per_block.size()) / 2.0, chi2 / 2.0));
  return r;
}

TestResult runs_from_counts(std::size_t n, std::size_t ones,
                            std::size_t transitions) {
  TestResult r;
  r.name = "runs";
  const double pi = static_cast<double>(ones) / static_cast<double>(n);
  const double tau = 2.0 / std::sqrt(static_cast<double>(n));
  if (std::fabs(pi - 0.5) >= tau) {
    // Frequency prerequisite failed: the spec assigns p = 0.
    r.p_values.push_back(0.0);
    r.note = "monobit prerequisite failed";
    return r;
  }
  const std::size_t v_n = transitions + 1;
  const double nn = static_cast<double>(n);
  const double num =
      std::fabs(static_cast<double>(v_n) - 2.0 * nn * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * nn) * pi * (1.0 - pi);
  r.p_values.push_back(std::erfc(num / den));
  return r;
}

TestResult longest_run_from_counts(const LongestRunRegime& regime,
                                   std::size_t big_n,
                                   const std::vector<unsigned>& per_block) {
  TestResult r;
  r.name = "longest_run";
  const auto& thresholds = regime.thresholds;
  std::vector<std::size_t> v(regime.pi.size(), 0);
  for (unsigned longest : per_block) {
    // Map the longest run to its category.
    std::size_t cat = 0;
    while (cat + 1 < thresholds.size() && longest > thresholds[cat]) ++cat;
    if (longest >= thresholds.back()) cat = thresholds.size() - 1;
    ++v[cat];
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < regime.pi.size(); ++i) {
    const double expected = static_cast<double>(big_n) * regime.pi[i];
    const double d = static_cast<double>(v[i]) - expected;
    chi2 += d * d / expected;
  }
  const double k = static_cast<double>(regime.pi.size() - 1);
  r.p_values.push_back(common::igamc(k / 2.0, chi2 / 2.0));
  return r;
}

namespace {

/// Cumulative-sums p-value for maximum partial-sum excursion z over n bits.
double cusum_p_value(double z, double n) {
  const double sqrt_n = std::sqrt(n);
  double p = 1.0;
  const long k_lo1 = static_cast<long>(std::floor((-n / z + 1.0) / 4.0));
  const long k_hi1 = static_cast<long>(std::floor((n / z - 1.0) / 4.0));
  for (long k = k_lo1; k <= k_hi1; ++k) {
    const double kk = static_cast<double>(k);
    p -= common::normal_cdf((4.0 * kk + 1.0) * z / sqrt_n) -
         common::normal_cdf((4.0 * kk - 1.0) * z / sqrt_n);
  }
  const long k_lo2 = static_cast<long>(std::floor((-n / z - 3.0) / 4.0));
  const long k_hi2 = static_cast<long>(std::floor((n / z - 1.0) / 4.0));
  for (long k = k_lo2; k <= k_hi2; ++k) {
    const double kk = static_cast<double>(k);
    p += common::normal_cdf((4.0 * kk + 3.0) * z / sqrt_n) -
         common::normal_cdf((4.0 * kk + 1.0) * z / sqrt_n);
  }
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace

TestResult cusum_from_extrema(std::size_t n, long z_fwd, long z_bwd) {
  TestResult r;
  r.name = "cumulative_sums";
  const double nn = static_cast<double>(n);
  r.p_values.push_back(cusum_p_value(static_cast<double>(z_fwd), nn));
  r.p_values.push_back(cusum_p_value(static_cast<double>(z_bwd), nn));
  return r;
}

TestResult excursions_from_counts(
    std::size_t cycles,
    const std::array<std::array<std::size_t, 6>, 8>& visits) {
  if (cycles < 500) {
    return inapplicable("random_excursions",
                        "fewer than 500 zero-crossing cycles");
  }
  TestResult r;
  r.name = "random_excursions";
  const double j = static_cast<double>(cycles);
  for (int s = 0; s < 8; ++s) {
    const int x = s < 4 ? s - 4 : s - 3;
    const double ax = std::abs(x);
    // Reference visit-count probabilities pi_k(x).
    double pi[6];
    pi[0] = 1.0 - 1.0 / (2.0 * ax);
    for (int k = 1; k <= 4; ++k) {
      pi[k] = 1.0 / (4.0 * ax * ax) * std::pow(1.0 - 1.0 / (2.0 * ax), k - 1);
    }
    pi[5] = 1.0 / (2.0 * ax) * std::pow(1.0 - 1.0 / (2.0 * ax), 4.0);

    double chi2 = 0.0;
    for (int k = 0; k < 6; ++k) {
      const double expected = j * pi[k];
      const double d =
          static_cast<double>(visits[static_cast<std::size_t>(s)]
                                    [static_cast<std::size_t>(k)]) -
          expected;
      chi2 += d * d / expected;
    }
    r.p_values.push_back(common::igamc(5.0 / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult excursions_variant_from_counts(
    std::size_t cycles, const std::array<std::size_t, 19>& total_visits) {
  if (cycles < 500) {
    return inapplicable("random_excursions_variant",
                        "fewer than 500 zero-crossing cycles");
  }
  TestResult r;
  r.name = "random_excursions_variant";
  const double j = static_cast<double>(cycles);
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    const double xi =
        static_cast<double>(total_visits[static_cast<std::size_t>(x + 9)]);
    const double denom = std::sqrt(2.0 * j * (4.0 * std::abs(x) - 2.0));
    r.p_values.push_back(std::erfc(std::fabs(xi - j) / denom));
  }
  return r;
}

double psi_squared_from_counts(std::size_t n,
                               const std::vector<std::size_t>& counts) {
  if (counts.empty()) return 0.0;  // psi^2_0 = 0 by definition
  const double nn = static_cast<double>(n);
  double sum = 0.0;
  for (std::size_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return static_cast<double>(counts.size()) / nn * sum - nn;
}

TestResult serial_from_psis(unsigned m, double psi_m, double psi_m1,
                            double psi_m2) {
  TestResult r;
  r.name = "serial";
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  // Signed exponents: for m == 2 the second degree of freedom is 2^-1.
  r.p_values.push_back(
      common::igamc(std::exp2(static_cast<int>(m) - 2), d1 / 2.0));
  r.p_values.push_back(
      common::igamc(std::exp2(static_cast<int>(m) - 3), d2 / 2.0));
  return r;
}

double phi_from_counts(std::size_t n, const std::vector<std::size_t>& counts) {
  const double nn = static_cast<double>(n);
  double sum = 0.0;
  for (std::size_t c : counts) {
    if (c > 0) {
      const double pi = static_cast<double>(c) / nn;
      sum += pi * std::log(pi);
    }
  }
  return sum;
}

TestResult approximate_entropy_from_phis(std::size_t n, unsigned m,
                                         double phi_m, double phi_m1) {
  TestResult r;
  r.name = "approximate_entropy";
  const double nn = static_cast<double>(n);
  const double ap_en = phi_m - phi_m1;
  const double chi2 = 2.0 * nn * (std::log(2.0) - ap_en);
  r.p_values.push_back(
      common::igamc(std::exp2(static_cast<int>(m) - 1), chi2 / 2.0));
  return r;
}

UniversalStatistic universal_statistic_from_sum(double sum, std::size_t k,
                                                unsigned big_l,
                                                double expected,
                                                double variance) {
  UniversalStatistic stat;
  stat.k = k;
  const double kk = static_cast<double>(k);
  stat.fn = sum / kk;
  const double c = 0.7 - 0.8 / static_cast<double>(big_l) +
                   (4.0 + 32.0 / static_cast<double>(big_l)) *
                       std::pow(kk, -3.0 / static_cast<double>(big_l)) / 15.0;
  const double sigma = c * std::sqrt(variance / kk);
  stat.p_value =
      std::erfc(std::fabs(stat.fn - expected) / (std::sqrt(2.0) * sigma));
  return stat;
}

TestResult universal_from_sum(const UniversalRow& row, double sum,
                              std::size_t k) {
  TestResult r;
  r.name = "universal";
  r.p_values.push_back(
      universal_statistic_from_sum(sum, k, row.big_l, row.expected,
                                   row.variance)
          .p_value);
  return r;
}

TestResult rank_from_counts(std::size_t big_n, std::size_t f_full,
                            std::size_t f_minus1) {
  TestResult r;
  r.name = "rank";
  // Reference category probabilities for 32x32 over GF(2): rank 32, 31,
  // <= 30 (SP 800-22 Section 3.5).
  constexpr double kPFull = 0.2888;
  constexpr double kPMinus1 = 0.5776;
  constexpr double kPRest = 0.1336;
  const double nn = static_cast<double>(big_n);
  const std::size_t f_rest = big_n - f_full - f_minus1;
  auto term = [nn](double observed, double p) {
    const double d = observed - nn * p;
    return d * d / (nn * p);
  };
  const double chi2 = term(static_cast<double>(f_full), kPFull) +
                      term(static_cast<double>(f_minus1), kPMinus1) +
                      term(static_cast<double>(f_rest), kPRest);
  // df = 2 => p = exp(-chi2 / 2).
  r.p_values.push_back(std::exp(-chi2 / 2.0));
  return r;
}

TestResult linear_complexity_from_lengths(
    std::size_t block_len, const std::vector<std::size_t>& lengths) {
  TestResult r;
  r.name = "linear_complexity";
  const double m = static_cast<double>(block_len);
  const double sign = (block_len % 2 == 0) ? 1.0 : -1.0;  // (-1)^M
  const double mu =
      m / 2.0 + (9.0 - sign) / 36.0 - (m / 3.0 + 2.0 / 9.0) / std::exp2(m);

  static constexpr double kPi[7] = {0.010417, 0.03125, 0.125, 0.5,
                                    0.25,     0.0625,  0.020833};
  std::vector<std::size_t> v(7, 0);
  for (std::size_t length : lengths) {
    const double l = static_cast<double>(length);
    const double t = sign * (l - mu) + 2.0 / 9.0;
    std::size_t cat;
    if (t <= -2.5) cat = 0;
    else if (t <= -1.5) cat = 1;
    else if (t <= -0.5) cat = 2;
    else if (t <= 0.5) cat = 3;
    else if (t <= 1.5) cat = 4;
    else if (t <= 2.5) cat = 5;
    else cat = 6;
    ++v[cat];
  }
  const double big_n = static_cast<double>(lengths.size());
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    const double expected = big_n * kPi[i];
    const double d = static_cast<double>(v[i]) - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(common::igamc(3.0, chi2 / 2.0));
  return r;
}

TestResult non_overlapping_template_from_counts(
    std::size_t n, unsigned tpl_len,
    const std::vector<std::array<std::size_t, 8>>& w) {
  TestResult r;
  r.name = "non_overlapping_template";
  const std::size_t block_len = n / 8;
  const double m = static_cast<double>(tpl_len);
  const double big_m = static_cast<double>(block_len);
  const double two_m = std::exp2(m);
  const double mu = (big_m - m + 1.0) / two_m;
  const double sigma2 =
      big_m * (1.0 / two_m - (2.0 * m - 1.0) / (two_m * two_m));
  for (const auto& per_block : w) {
    double chi2 = 0.0;
    for (std::size_t count : per_block) {
      const double d = static_cast<double>(count) - mu;
      chi2 += d * d / sigma2;
    }
    r.p_values.push_back(common::igamc(8.0 / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult overlapping_template_from_counts(
    std::size_t big_n, const std::array<std::size_t, 6>& v) {
  TestResult r;
  r.name = "overlapping_template";
  static constexpr double kPi[6] = {0.364091, 0.185659, 0.139381,
                                    0.100571, 0.070432, 0.139865};
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    const double expected = static_cast<double>(big_n) * kPi[i];
    const double d = static_cast<double>(v[i]) - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(common::igamc(5.0 / 2.0, chi2 / 2.0));
  return r;
}

}  // namespace trng::stat::detail
