// SP 800-22 tests 2.7 and 2.8: non-overlapping and overlapping template
// matching.
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/special.hpp"
#include "stattests/sp800_22.hpp"

namespace trng::stat {

std::vector<std::uint32_t> aperiodic_templates(unsigned m) {
  if (m == 0 || m > 20) {
    throw std::invalid_argument("aperiodic_templates: m must be in [1, 20]");
  }
  std::vector<std::uint32_t> out;
  const std::uint32_t count = 1u << m;
  for (std::uint32_t b = 0; b < count; ++b) {
    bool aperiodic = true;
    // b (MSB-first template of length m) must not match any proper shift of
    // itself: for shift s, the first m-s bits must differ somewhere from
    // the last m-s bits.
    for (unsigned s = 1; s < m && aperiodic; ++s) {
      const std::uint32_t mask = (1u << (m - s)) - 1u;
      if (((b >> s) & mask) == (b & mask)) aperiodic = false;
    }
    if (aperiodic) out.push_back(b);
  }
  return out;
}

TestResult non_overlapping_template_test(const common::BitStream& bits,
                                         unsigned tpl_len) {
  TestResult r;
  r.name = "non_overlapping_template";
  const std::size_t n = bits.size();
  constexpr std::size_t kBlocks = 8;  // N
  const std::size_t block_len = n / kBlocks;
  // The chi-square approximation needs a healthy per-block expectation
  // mu = (M - m + 1) / 2^m; require mu >= 20 per block.
  if (tpl_len < 2 || tpl_len > 16 ||
      block_len < (std::size_t{20} << tpl_len) + tpl_len) {
    r.applicable = false;
    r.note = "sequence too short for stable per-block statistics";
    return r;
  }
  const double m = static_cast<double>(tpl_len);
  const double big_m = static_cast<double>(block_len);
  const double two_m = std::exp2(m);
  const double mu = (big_m - m + 1.0) / two_m;
  const double sigma2 =
      big_m * (1.0 / two_m - (2.0 * m - 1.0) / (two_m * two_m));

  const auto templates = aperiodic_templates(tpl_len);
  const std::uint32_t window_mask = (1u << tpl_len) - 1u;

  // Count per-template, per-block occurrences in one pass per block: slide
  // a tpl_len-bit window; a match consumes the window (non-overlapping).
  for (std::uint32_t tpl : templates) {
    double chi2 = 0.0;
    for (std::size_t b = 0; b < kBlocks; ++b) {
      std::size_t w = 0;
      std::size_t pos = b * block_len;
      const std::size_t end = pos + block_len;
      std::uint32_t window = 0;
      unsigned fill = 0;
      while (pos < end) {
        window = ((window << 1) | (bits[pos] ? 1u : 0u)) & window_mask;
        ++pos;
        if (fill + 1 < tpl_len) {
          ++fill;
          continue;
        }
        if (window == tpl) {
          ++w;
          window = 0;
          fill = 0;  // restart after a match (non-overlapping)
        }
      }
      const double d = static_cast<double>(w) - mu;
      chi2 += d * d / sigma2;
    }
    r.p_values.push_back(
        common::igamc(static_cast<double>(kBlocks) / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult overlapping_template_test(const common::BitStream& bits,
                                     unsigned tpl_len) {
  TestResult r;
  r.name = "overlapping_template";
  const std::size_t n = bits.size();
  // Reference parameterization: m = 9, M = 1032, lambda = 2 (the pi table
  // below is exact for these values; other m are rejected as inapplicable).
  constexpr std::size_t kBlockLen = 1032;
  const std::size_t big_n = n / kBlockLen;
  if (tpl_len != 9 || big_n < 100) {
    r.applicable = false;
    r.note = "requires m = 9 and n >= ~10^5";
    return r;
  }
  static constexpr double kPi[6] = {0.364091, 0.185659, 0.139381,
                                    0.100571, 0.070432, 0.139865};
  std::vector<std::size_t> v(6, 0);
  for (std::size_t b = 0; b < big_n; ++b) {
    std::size_t count = 0;
    unsigned run = 0;
    for (std::size_t j = 0; j < kBlockLen; ++j) {
      if (bits[b * kBlockLen + j]) {
        ++run;
        if (run >= tpl_len) ++count;  // overlapping all-ones matches
      } else {
        run = 0;
      }
    }
    v[std::min<std::size_t>(count, 5)]++;
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    const double expected = static_cast<double>(big_n) * kPi[i];
    const double d = static_cast<double>(v[i]) - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(common::igamc(5.0 / 2.0, chi2 / 2.0));
  return r;
}

}  // namespace trng::stat
