// SP 800-22 tests 2.7 and 2.8: non-overlapping and overlapping template
// matching — bit-serial reference kernels. The mu/sigma^2 and chi-square
// math lives in sp800_22_detail.cpp.
#include <algorithm>
#include <array>
#include <stdexcept>
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

std::vector<std::uint32_t> aperiodic_templates(unsigned m) {
  if (m == 0 || m > 20) {
    throw std::invalid_argument("aperiodic_templates: m must be in [1, 20]");
  }
  std::vector<std::uint32_t> out;
  const std::uint32_t count = 1u << m;
  for (std::uint32_t b = 0; b < count; ++b) {
    bool aperiodic = true;
    // b (MSB-first template of length m) must not match any proper shift of
    // itself: for shift s, the first m-s bits must differ somewhere from
    // the last m-s bits.
    for (unsigned s = 1; s < m && aperiodic; ++s) {
      const std::uint32_t mask = (1u << (m - s)) - 1u;
      if (((b >> s) & mask) == (b & mask)) aperiodic = false;
    }
    if (aperiodic) out.push_back(b);
  }
  return out;
}

TestResult non_overlapping_template_test(const common::BitStream& bits,
                                         unsigned tpl_len) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_non_overlapping_template(n, tpl_len)) {
    return *gated;
  }
  constexpr std::size_t kBlocks = 8;  // N
  const std::size_t block_len = n / kBlocks;
  const auto templates = aperiodic_templates(tpl_len);
  const std::uint32_t window_mask = (1u << tpl_len) - 1u;

  // Count per-template, per-block occurrences in one pass per block: slide
  // a tpl_len-bit window; a match consumes the window (non-overlapping).
  std::vector<std::array<std::size_t, kBlocks>> w(templates.size());
  for (std::size_t t = 0; t < templates.size(); ++t) {
    const std::uint32_t tpl = templates[t];
    for (std::size_t b = 0; b < kBlocks; ++b) {
      std::size_t count = 0;
      std::size_t pos = b * block_len;
      const std::size_t end = pos + block_len;
      std::uint32_t window = 0;
      unsigned fill = 0;
      while (pos < end) {
        window = ((window << 1) | (bits[pos] ? 1u : 0u)) & window_mask;
        ++pos;
        if (fill + 1 < tpl_len) {
          ++fill;
          continue;
        }
        if (window == tpl) {
          ++count;
          window = 0;
          fill = 0;  // restart after a match (non-overlapping)
        }
      }
      w[t][b] = count;
    }
  }
  return detail::non_overlapping_template_from_counts(n, tpl_len, w);
}

TestResult overlapping_template_test(const common::BitStream& bits,
                                     unsigned tpl_len) {
  const std::size_t n = bits.size();
  // Reference parameterization: m = 9, M = 1032, lambda = 2 (the pi table
  // in the detail layer is exact for these values; other m are rejected as
  // inapplicable).
  if (auto gated = detail::gate_overlapping_template(n, tpl_len)) {
    return *gated;
  }
  constexpr std::size_t kBlockLen = 1032;
  const std::size_t big_n = n / kBlockLen;
  std::array<std::size_t, 6> v{};
  for (std::size_t b = 0; b < big_n; ++b) {
    std::size_t count = 0;
    unsigned run = 0;
    for (std::size_t j = 0; j < kBlockLen; ++j) {
      if (bits[b * kBlockLen + j]) {
        ++run;
        if (run >= tpl_len) ++count;  // overlapping all-ones matches
      } else {
        run = 0;
      }
    }
    v[std::min<std::size_t>(count, 5)]++;
  }
  return detail::overlapping_template_from_counts(big_n, v);
}

}  // namespace trng::stat
