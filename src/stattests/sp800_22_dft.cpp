// SP 800-22 test 2.6: discrete Fourier transform (spectral) test.
//
// Deviation from the reference implementation: the transform length is the
// largest power of two <= n (iterative radix-2 FFT) instead of an arbitrary-
// length DFT; trailing bits beyond the power-of-two boundary are ignored.
// The statistic is computed for the truncated length, so the test remains
// exact — it just examines slightly fewer bits.
#include <cmath>
#include <complex>
#include <vector>

#include "stattests/sp800_22.hpp"

namespace trng::stat {

namespace {

void fft_in_place(std::vector<std::complex<double>>& a) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * 3.14159265358979323846 / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

TestResult dft_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "dft";
  if (bits.size() < 1000) {
    r.applicable = false;
    r.note = "requires n >= 1000";
    return r;
  }
  // Largest power of two <= size.
  std::size_t n = 1;
  while (n * 2 <= bits.size()) n *= 2;

  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::complex<double>(bits[i] ? 1.0 : -1.0, 0.0);
  }
  fft_in_place(x);

  const double threshold =
      std::sqrt(std::log(1.0 / 0.05) * static_cast<double>(n));
  const std::size_t half = n / 2;
  std::size_t below = 0;
  for (std::size_t j = 0; j < half; ++j) {
    if (std::abs(x[j]) < threshold) ++below;
  }
  const double n0 = 0.95 * static_cast<double>(half);
  const double n1 = static_cast<double>(below);
  const double d =
      (n1 - n0) /
      std::sqrt(static_cast<double>(n) * 0.95 * 0.05 / 4.0);
  r.p_values.push_back(std::erfc(std::fabs(d) / std::sqrt(2.0)));
  return r;
}

}  // namespace trng::stat
