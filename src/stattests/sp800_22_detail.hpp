// Shared statistic layer of the SP 800-22 implementation.
//
// Every test is split into two halves:
//
//   1. a *counting kernel* that reduces the bit sequence to small integer
//      summaries (ones counts, transition counts, per-block longest runs,
//      pattern histograms, ...). Two interchangeable kernel families exist:
//      the bit-serial reference loops in sp800_22_*.cpp and the word-
//      parallel kernels in sp800_22_wordpar*.cpp;
//
//   2. the *statistic functions* declared here, which map those integer
//      summaries to chi-square / erfc / igamc p-values.
//
// The statistic functions are deliberately defined out-of-line in one
// translation unit (sp800_22_detail.cpp): both kernel families execute the
// same machine code on the same integers, which makes the word-parallel
// engine bit-identical to the scalar reference by construction — equal
// counts imply equal doubles, not merely close ones.
//
// Everything in stat::detail is an internal contract between the kernel
// files; it is not part of the public battery API.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/test_result.hpp"

namespace trng::stat::detail {

// ---- applicability gates -------------------------------------------------
//
// Each gate returns the fully-formed inapplicable TestResult when the input
// does not meet the test's prerequisites (so both kernel families report
// byte-identical notes), or nullopt when the test should run.

std::optional<TestResult> gate_frequency(std::size_t n, Gating gating);
std::optional<TestResult> gate_runs(std::size_t n, Gating gating);
std::optional<TestResult> gate_cusum(std::size_t n, Gating gating);
std::optional<TestResult> gate_excursions(std::size_t n, const char* name);
std::optional<TestResult> gate_serial(std::size_t n, unsigned m,
                                      Gating gating);
std::optional<TestResult> gate_approximate_entropy(std::size_t n, unsigned m,
                                                   Gating gating);

/// Auto-selected block-frequency M for block_len == 0: the smallest M with
/// N = n / M < 100 (and at least 20), which also satisfies M > 0.01 n.
std::size_t block_frequency_auto_m(std::size_t n);
/// Gate for an already-resolved M (Section 2.2.7: M >= 20, M > 0.01 n,
/// N < 100; kSpecExample only requires one complete block).
std::optional<TestResult> gate_block_frequency(std::size_t n, std::size_t m,
                                               Gating gating);

struct LongestRunRegime {
  std::size_t block_len = 0;
  std::vector<unsigned> thresholds;  ///< category boundaries (inclusive low)
  std::vector<double> pi;
};
/// Regime table of Section 2.4.4 keyed on n; nullopt when n < 128 (the
/// inapplicable TestResult is produced by gate_longest_run).
std::optional<LongestRunRegime> longest_run_regime(std::size_t n);
std::optional<TestResult> gate_longest_run(std::size_t n);

struct UniversalRow {
  std::size_t min_n = 0;
  unsigned big_l = 0;
  double expected = 0.0;
  double variance = 0.0;
};
/// Section 2.9.4 L-selection row for n, or nullptr when n < 387840.
const UniversalRow* universal_row(std::size_t n);
std::optional<TestResult> gate_universal(std::size_t n);

std::optional<TestResult> gate_rank(std::size_t n);
std::optional<TestResult> gate_dft(std::size_t n);
std::optional<TestResult> gate_linear_complexity(std::size_t n,
                                                 std::size_t block_len);
std::optional<TestResult> gate_non_overlapping_template(std::size_t n,
                                                        unsigned tpl_len);
std::optional<TestResult> gate_overlapping_template(std::size_t n,
                                                    unsigned tpl_len);

// ---- statistic functions (integer counts -> TestResult) ------------------

TestResult frequency_from_counts(std::size_t n, std::size_t ones);

TestResult block_frequency_from_counts(
    std::size_t block_len, const std::vector<std::size_t>& ones_per_block);

/// v_n = transitions + 1 per Section 2.3.4.
TestResult runs_from_counts(std::size_t n, std::size_t ones,
                            std::size_t transitions);

TestResult longest_run_from_counts(const LongestRunRegime& regime,
                                   std::size_t big_n,
                                   const std::vector<unsigned>& per_block);

/// z_fwd / z_bwd are the maximum absolute partial sums of the +-1 walk.
TestResult cusum_from_extrema(std::size_t n, long z_fwd, long z_bwd);

/// visits[s][k]: cycles visiting state s (-4..-1,1..4 -> index 0..7)
/// exactly k times, k capped at 5.
TestResult excursions_from_counts(
    std::size_t cycles, const std::array<std::array<std::size_t, 6>, 8>& visits);

/// total_visits[x + 9] for states x in -9..9 (index 9 unused).
TestResult excursions_variant_from_counts(
    std::size_t cycles, const std::array<std::size_t, 19>& total_visits);

/// psi^2_m from the 2^m overlapping-pattern histogram (Section 2.11.4);
/// 0.0 for m == 0 (empty histogram).
double psi_squared_from_counts(std::size_t n,
                               const std::vector<std::size_t>& counts);
TestResult serial_from_psis(unsigned m, double psi_m, double psi_m1,
                            double psi_m2);

/// phi_m = sum pi log pi over the same histogram (Section 2.12.4).
double phi_from_counts(std::size_t n, const std::vector<std::size_t>& counts);
TestResult approximate_entropy_from_phis(std::size_t n, unsigned m,
                                         double phi_m, double phi_m1);

/// `sum` is the accumulated log2 distance sum over the K test blocks.
TestResult universal_from_sum(const UniversalRow& row, double sum,
                              std::size_t k);
UniversalStatistic universal_statistic_from_sum(double sum, std::size_t k,
                                                unsigned big_l,
                                                double expected,
                                                double variance);

TestResult rank_from_counts(std::size_t big_n, std::size_t f_full,
                            std::size_t f_minus1);

TestResult linear_complexity_from_lengths(
    std::size_t block_len, const std::vector<std::size_t>& lengths);

/// w[t][b]: non-overlapping occurrence count of template t in block b
/// (templates in aperiodic_templates(tpl_len) order, 8 blocks).
TestResult non_overlapping_template_from_counts(
    std::size_t n, unsigned tpl_len,
    const std::vector<std::array<std::size_t, 8>>& w);

/// v[k]: number of 1032-bit blocks containing k (capped at 5) overlapping
/// all-ones matches.
TestResult overlapping_template_from_counts(
    std::size_t big_n, const std::array<std::size_t, 6>& v);

}  // namespace trng::stat::detail
