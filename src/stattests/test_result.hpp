// Result record shared by all statistical tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace trng::stat {

/// Outcome of one statistical test on one sequence. Tests that internally
/// evaluate several sub-statistics (serial, cusum, templates, excursions)
/// report one p-value each in `p_values`.
struct [[nodiscard]] TestResult {
  std::string name;
  std::vector<double> p_values;

  /// False when the input did not meet the test's applicability
  /// prerequisites (too short, too few excursion cycles, ...). An
  /// inapplicable test neither passes nor fails a battery.
  bool applicable = true;

  /// Optional human-readable note (why inapplicable, key statistics).
  std::string note;

  /// Single-p convenience.
  double p() const { return p_values.empty() ? 0.0 : p_values.front(); }

  /// Pass criterion at significance `alpha`. For multi-p tests the expected
  /// number of alpha-level exceedances is allowed (binomial mean + 3 sigma),
  /// matching NIST's proportion-of-passes assessment for template-style
  /// test families.
  bool passed(double alpha = 0.01) const;
};

}  // namespace trng::stat
