#include "stattests/sp800_90b.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "stattests/estimators.hpp"

namespace trng::stat::sp800_90b {

namespace {

constexpr double kZ99 = 2.5758293035489004;  // 99% two-sided normal quantile

double clamp_entropy(double h) { return std::min(1.0, std::max(0.0, h)); }

}  // namespace

double most_common_value_estimate(const common::BitStream& bits) {
  return min_entropy_mcv(bits, 1);
}

double collision_estimate(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (n < 3000) {
    throw std::invalid_argument("collision_estimate: need >= 3000 bits");
  }
  // Walk the sequence in collision windows: starting fresh, a binary
  // repeat occurs after 2 samples (x0 == x1) or is forced after 3.
  common::RunningStats t_stats;
  std::size_t i = 0;
  while (i + 3 <= n) {
    if (bits[i] == bits[i + 1]) {
      t_stats.add(2.0);
      i += 2;
    } else {
      t_stats.add(3.0);
      i += 3;
    }
  }
  if (t_stats.count() < 100) {
    throw std::invalid_argument("collision_estimate: too few collisions");
  }
  // E[T] = 3 - (p^2 + q^2); lower-confidence-bound the mean, solve for p.
  const double mean_lcb =
      t_stats.mean() - kZ99 * t_stats.stddev() /
                           std::sqrt(static_cast<double>(t_stats.count()));
  const double c = 3.0 - mean_lcb;  // p^2 + q^2, upper bound
  if (c >= 1.0) return 0.0;         // fully deterministic
  if (c <= 0.5) return 1.0;         // at/under the fair-coin floor
  const double p = 0.5 * (1.0 + std::sqrt(2.0 * c - 1.0));
  return clamp_entropy(-std::log2(p));
}

double markov_estimate(const common::BitStream& bits) {
  return min_entropy_markov(bits, 128);
}

double t_tuple_estimate(const common::BitStream& bits, unsigned cutoff) {
  const std::size_t n = bits.size();
  if (n < 1000 || cutoff < 2) {
    throw std::invalid_argument("t_tuple_estimate: bad arguments");
  }
  double p_max = 0.0;
  for (unsigned t = 1; t <= 24; ++t) {
    if (n < t) break;
    // Count overlapping t-bit tuples.
    std::vector<std::uint32_t> counts(1u << t, 0);
    std::uint32_t window = 0;
    const std::uint32_t mask = (t >= 32) ? 0xffffffffu : ((1u << t) - 1u);
    for (std::size_t i = 0; i < n; ++i) {
      window = ((window << 1) | (bits[i] ? 1u : 0u)) & mask;
      if (i + 1 >= t) ++counts[window];
    }
    const std::uint32_t max_count =
        *std::max_element(counts.begin(), counts.end());
    if (max_count < cutoff) break;  // t too long to be statistically sound
    const double total = static_cast<double>(n - t + 1);
    const double p_tuple = static_cast<double>(max_count) / total;
    // Per-sample probability bound from the tuple frequency.
    const double p_ucb =
        p_tuple + kZ99 * std::sqrt(p_tuple * (1.0 - p_tuple) / total);
    p_max = std::max(p_max, std::pow(std::min(1.0, p_ucb),
                                     1.0 / static_cast<double>(t)));
  }
  if (p_max <= 0.0) return 1.0;
  return clamp_entropy(-std::log2(p_max));
}

double lrs_estimate(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (n < 1000) {
    throw std::invalid_argument("lrs_estimate: need >= 1000 bits");
  }
  // Find, for window lengths up to 64, the collision proportion of
  // overlapping windows: P_w = sum_i C(c_i, 2) / C(N, 2). The estimate uses
  // the largest w with at least one repeated substring.
  double p_max = 0.0;
  const unsigned w_cap = static_cast<unsigned>(std::min<std::size_t>(64, n / 2));
  for (unsigned w = 8; w <= w_cap; w *= 2) {
    std::unordered_map<std::uint64_t, std::uint32_t> counts;
    counts.reserve(n);
    std::uint64_t window = 0;
    const std::uint64_t mask =
        (w >= 64) ? ~0ULL : ((1ULL << w) - 1ULL);
    bool any_repeat = false;
    for (std::size_t i = 0; i < n; ++i) {
      window = ((window << 1) | (bits[i] ? 1ULL : 0ULL)) & mask;
      if (i + 1 >= w) {
        const auto c = ++counts[window];
        if (c >= 2) any_repeat = true;
      }
    }
    if (!any_repeat) break;
    const double total = static_cast<double>(n - w + 1);
    double pairs = 0.0;
    for (const auto& [key, c] : counts) {
      (void)key;
      pairs += 0.5 * static_cast<double>(c) * static_cast<double>(c - 1);
    }
    const double all_pairs = 0.5 * total * (total - 1.0);
    const double p_col = pairs / all_pairs;  // P(two windows equal)
    // Per-sample bound: P_col ~ p_samplewise^w summed over... use the
    // 90B relation P_max = P_col^(1/w).
    p_max = std::max(p_max, std::pow(p_col, 1.0 / static_cast<double>(w)));
  }
  if (p_max <= 0.0) return 1.0;
  return clamp_entropy(-std::log2(p_max));
}

double non_iid_min_entropy(const common::BitStream& bits) {
  if (bits.size() < 10000) {
    throw std::invalid_argument("non_iid_min_entropy: need >= 10000 bits");
  }
  double h = most_common_value_estimate(bits);
  h = std::min(h, collision_estimate(bits));
  h = std::min(h, markov_estimate(bits));
  h = std::min(h, t_tuple_estimate(bits));
  h = std::min(h, lrs_estimate(bits));
  return h;
}

}  // namespace trng::stat::sp800_90b
