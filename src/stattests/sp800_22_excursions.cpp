// SP 800-22 tests 2.14 and 2.15: random excursions and random excursions
// variant — bit-serial reference kernels. The chi-square / erfc math lives
// in sp800_22_detail.cpp.
#include <algorithm>
#include <array>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

TestResult random_excursions_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_excursions(n, "random_excursions")) {
    return *gated;
  }

  // Walk the partial sums; a cycle is a zero-to-zero excursion.
  // visits[state+4][k] = number of cycles visiting `state` exactly k times
  // (k capped at 5). States: -4..-1, 1..4.
  std::array<std::array<std::size_t, 6>, 8> visits{};
  std::array<std::size_t, 8> cycle_visits{};
  std::size_t cycles = 0;

  auto close_cycle = [&]() {
    for (std::size_t s = 0; s < 8; ++s) {
      const std::size_t k = std::min<std::size_t>(cycle_visits[s], 5);
      ++visits[s][k];
      cycle_visits[s] = 0;
    }
    ++cycles;
  };

  long walk = 0;
  for (std::size_t i = 0; i < n; ++i) {
    walk += bits[i] ? 1 : -1;
    if (walk == 0) {
      close_cycle();
    } else if (walk >= -4 && walk <= 4) {
      const int idx = walk < 0 ? static_cast<int>(walk) + 4
                               : static_cast<int>(walk) + 3;
      ++cycle_visits[static_cast<std::size_t>(idx)];
    }
  }
  if (walk != 0) close_cycle();  // final partial cycle counts per the spec

  return detail::excursions_from_counts(cycles, visits);
}

TestResult random_excursions_variant_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_excursions(n, "random_excursions_variant")) {
    return *gated;
  }
  std::array<std::size_t, 19> total_visits{};  // states -9..9 (index x+9)
  std::size_t cycles = 0;
  long walk = 0;
  for (std::size_t i = 0; i < n; ++i) {
    walk += bits[i] ? 1 : -1;
    if (walk == 0) {
      ++cycles;
    } else if (walk >= -9 && walk <= 9) {
      ++total_visits[static_cast<std::size_t>(walk + 9)];
    }
  }
  if (walk != 0) ++cycles;
  return detail::excursions_variant_from_counts(cycles, total_visits);
}

}  // namespace trng::stat
