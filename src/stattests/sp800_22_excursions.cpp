// SP 800-22 tests 2.14 and 2.15: random excursions and random excursions
// variant.
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/special.hpp"
#include "stattests/sp800_22.hpp"

namespace trng::stat {

TestResult random_excursions_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "random_excursions";
  const std::size_t n = bits.size();
  if (n < 10000) {
    r.applicable = false;
    r.note = "requires n >= 10^4";
    return r;
  }

  // Walk the partial sums; a cycle is a zero-to-zero excursion.
  // visits[state+4][k] = number of cycles visiting `state` exactly k times
  // (k capped at 5). States: -4..-1, 1..4.
  std::size_t visits[8][6] = {};
  std::size_t cycle_visits[8] = {};
  std::size_t cycles = 0;

  auto close_cycle = [&]() {
    for (int s = 0; s < 8; ++s) {
      const std::size_t k = std::min<std::size_t>(cycle_visits[s], 5);
      ++visits[s][k];
      cycle_visits[s] = 0;
    }
    ++cycles;
  };

  long walk = 0;
  for (std::size_t i = 0; i < n; ++i) {
    walk += bits[i] ? 1 : -1;
    if (walk == 0) {
      close_cycle();
    } else if (walk >= -4 && walk <= 4) {
      const int idx = walk < 0 ? static_cast<int>(walk) + 4
                               : static_cast<int>(walk) + 3;
      ++cycle_visits[idx];
    }
  }
  if (walk != 0) close_cycle();  // final partial cycle counts per the spec

  const double j = static_cast<double>(cycles);
  if (cycles < 500) {
    r.applicable = false;
    r.note = "fewer than 500 zero-crossing cycles";
    return r;
  }

  for (int s = 0; s < 8; ++s) {
    const int x = s < 4 ? s - 4 : s - 3;
    const double ax = std::abs(x);
    // Reference visit-count probabilities pi_k(x).
    double pi[6];
    pi[0] = 1.0 - 1.0 / (2.0 * ax);
    for (int k = 1; k <= 4; ++k) {
      pi[k] = 1.0 / (4.0 * ax * ax) *
              std::pow(1.0 - 1.0 / (2.0 * ax), k - 1);
    }
    pi[5] = 1.0 / (2.0 * ax) * std::pow(1.0 - 1.0 / (2.0 * ax), 4.0);

    double chi2 = 0.0;
    for (int k = 0; k < 6; ++k) {
      const double expected = j * pi[k];
      const double d = static_cast<double>(visits[s][k]) - expected;
      chi2 += d * d / expected;
    }
    r.p_values.push_back(common::igamc(5.0 / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult random_excursions_variant_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "random_excursions_variant";
  const std::size_t n = bits.size();
  if (n < 10000) {
    r.applicable = false;
    r.note = "requires n >= 10^4";
    return r;
  }
  std::size_t total_visits[19] = {};  // states -9..9 (index x+9)
  std::size_t cycles = 0;
  long walk = 0;
  for (std::size_t i = 0; i < n; ++i) {
    walk += bits[i] ? 1 : -1;
    if (walk == 0) {
      ++cycles;
    } else if (walk >= -9 && walk <= 9) {
      ++total_visits[walk + 9];
    }
  }
  if (walk != 0) ++cycles;
  if (cycles < 500) {
    r.applicable = false;
    r.note = "fewer than 500 zero-crossing cycles";
    return r;
  }
  const double j = static_cast<double>(cycles);
  for (int x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    const double xi = static_cast<double>(total_visits[x + 9]);
    const double denom =
        std::sqrt(2.0 * j * (4.0 * std::abs(x) - 2.0));
    r.p_values.push_back(std::erfc(std::fabs(xi - j) / denom));
  }
  return r;
}

}  // namespace trng::stat
