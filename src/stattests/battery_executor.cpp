#include "stattests/battery_executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace trng::stat {

BatteryExecutor::BatteryExecutor(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    // trng-lint: allow(TL007) -- pool sizing only; the workers themselves are created in run() below and always joined
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

std::vector<TestResult> BatteryExecutor::run(
    const std::vector<Job>& jobs) const {
  std::vector<TestResult> results(jobs.size());
  if (jobs.empty()) return results;
  const unsigned nthreads = static_cast<unsigned>(
      std::min<std::size_t>(threads_, jobs.size()));
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = jobs[i]();
    return results;
  }

  std::vector<std::exception_ptr> errors(jobs.size());
  // Work-claim ticket: relaxed is enough because each index is claimed
  // exactly once and the result slots are disjoint per index.
  // trng-analyzer: atomic(counter)
  std::atomic<std::size_t> next{0};
  auto worker = [&jobs, &results, &errors, &next]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = jobs[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  {
    // trng-lint: allow(TL007) -- battery workers mirror the service-layer discipline: stack-owned handles, no detach, joined unconditionally below
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace trng::stat
