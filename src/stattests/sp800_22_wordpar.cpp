// Word-parallel kernels for the counting-style SP 800-22 tests: frequency,
// block frequency, runs, longest run, cumulative sums, random excursions
// (+ variant), rank. See sp800_22_wordpar.hpp for the bit-identity
// contract; every kernel here reduces the stream to the same integers the
// scalar reference produces and hands them to sp800_22_detail.cpp.
#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <vector>

#include "common/units.hpp"
#include "stattests/sp800_22_detail.hpp"
#include "stattests/sp800_22_wordpar.hpp"

namespace trng::stat::wordpar {

namespace {

/// Byte `k` of the packed stream (bits 8k .. 8k+7, LSB-first).
unsigned byte_at(const std::vector<std::uint64_t>& words, std::size_t k) {
  return static_cast<unsigned>((words[k >> 3] >> ((k & 7) * 8)) & 0xFF);
}

}  // namespace

TestResult frequency_test(const common::BitStream& bits, Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_frequency(n, gating)) return *gated;
  return detail::frequency_from_counts(n, bits.count_ones());
}

TestResult block_frequency_test(const common::BitStream& bits,
                                std::size_t block_len, Gating gating) {
  const std::size_t n = bits.size();
  const std::size_t m =
      block_len == 0 ? detail::block_frequency_auto_m(n) : block_len;
  if (auto gated = detail::gate_block_frequency(n, m, gating)) return *gated;
  const std::size_t big_n = n / m;
  std::vector<std::size_t> ones_per_block(big_n, 0);
  for (std::size_t b = 0; b < big_n; ++b) {
    ones_per_block[b] = bits.count_ones(b * m, m);
  }
  return detail::block_frequency_from_counts(m, ones_per_block);
}

TestResult runs_test(const common::BitStream& bits, Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_runs(n, gating)) return *gated;
  const std::size_t ones = bits.count_ones();
  const auto& w = bits.words();
  std::size_t transitions = 0;
  if (n >= 2) {
    const std::size_t last_pair = n - 2;  // last k with a (k, k+1) pair
    for (std::size_t i = 0; i < w.size(); ++i) {
      const std::size_t base = i << 6;
      if (base > last_pair) break;
      // Bit j of x marks an intra-word transition between bits j and j+1;
      // bit 63 of x pairs across the word boundary and is handled below.
      const std::uint64_t x = w[i] ^ (w[i] >> 1);
      const std::size_t hi = std::min<std::size_t>(62, last_pair - base);
      transitions += static_cast<std::size_t>(
          std::popcount(x & (~0ULL >> (63 - hi))));
      if (base + 63 <= last_pair) {
        transitions += ((w[i] >> 63) ^ w[i + 1]) & 1ULL;
      }
    }
  }
  return detail::runs_from_counts(n, ones, transitions);
}

namespace {

/// Longest run of ones per byte value (blocks of M = 8 are byte-aligned;
/// run lengths are invariant under the LSB/MSB bit-order reversal).
const std::array<std::uint8_t, 256>& longest_run_byte_lut() {
  static const std::array<std::uint8_t, 256> lut = [] {
    std::array<std::uint8_t, 256> t{};
    for (unsigned b = 0; b < 256; ++b) {
      unsigned best = 0;
      unsigned run = 0;
      for (unsigned j = 0; j < 8; ++j) {
        if (b & (1u << j)) {
          ++run;
          best = std::max(best, run);
        } else {
          run = 0;
        }
      }
      t[b] = static_cast<std::uint8_t>(best);
    }
    return t;
  }();
  return lut;
}

/// Longest run of ones in [start, start + len), chunked 64 bits at a time:
/// combine the carry run with the chunk's leading ones, take the in-chunk
/// maximum via the y &= y << 1 reduction, carry out the trailing ones.
unsigned longest_run_ones(const common::BitStream& bits, std::size_t start,
                          std::size_t len) {
  unsigned longest = 0;
  unsigned run = 0;
  std::size_t off = 0;
  while (off < len) {
    const unsigned valid =
        static_cast<unsigned>(std::min<std::size_t>(64, len - off));
    const std::uint64_t full =
        valid == 64 ? ~0ULL : ((1ULL << valid) - 1);
    const std::uint64_t v = bits.word_at(start + off) & full;
    if (v == full) {
      run += valid;
      longest = std::max(longest, run);
    } else {
      const unsigned lead = static_cast<unsigned>(std::countr_one(v));
      longest = std::max(longest, run + lead);
      std::uint64_t y = v;
      unsigned in_chunk = 0;
      while (y) {
        y &= y << 1;
        ++in_chunk;
      }
      longest = std::max(longest, in_chunk);
      run = static_cast<unsigned>(std::countl_one(v << (64 - valid)));
    }
    off += valid;
  }
  return longest;
}

}  // namespace

TestResult longest_run_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_longest_run(n)) return *gated;
  const auto regime = detail::longest_run_regime(n);
  const std::size_t block_len = regime->block_len;
  const std::size_t big_n = n / block_len;
  std::vector<unsigned> per_block(big_n, 0);
  if (block_len == 8) {
    const auto& lut = longest_run_byte_lut();
    const auto& w = bits.words();
    for (std::size_t b = 0; b < big_n; ++b) per_block[b] = lut[byte_at(w, b)];
  } else {
    for (std::size_t b = 0; b < big_n; ++b) {
      per_block[b] = longest_run_ones(bits, b * block_len, block_len);
    }
  }
  return detail::longest_run_from_counts(*regime, big_n, per_block);
}

namespace {

/// Per-byte walk summaries for the cumulative-sums test: net +-1 delta and
/// the max/min partial sums over the byte's 8 steps, for both bit orders
/// (forward = bit 0 first, reverse = bit 7 first).
struct CusumLut {
  std::array<std::int8_t, 256> delta;
  std::array<std::int8_t, 256> maxp;
  std::array<std::int8_t, 256> minp;
  std::array<std::int8_t, 256> maxp_rev;
  std::array<std::int8_t, 256> minp_rev;
};

const CusumLut& cusum_lut() {
  static const CusumLut lut = [] {
    CusumLut t{};
    for (unsigned b = 0; b < 256; ++b) {
      int s = 0, mx = -8, mn = 8;
      for (unsigned j = 0; j < 8; ++j) {
        s += (b & (1u << j)) ? 1 : -1;
        mx = std::max(mx, s);
        mn = std::min(mn, s);
      }
      t.delta[b] = static_cast<std::int8_t>(s);
      t.maxp[b] = static_cast<std::int8_t>(mx);
      t.minp[b] = static_cast<std::int8_t>(mn);
      s = 0;
      mx = -8;
      mn = 8;
      for (unsigned j = 8; j-- > 0;) {
        s += (b & (1u << j)) ? 1 : -1;
        mx = std::max(mx, s);
        mn = std::min(mn, s);
      }
      t.maxp_rev[b] = static_cast<std::int8_t>(mx);
      t.minp_rev[b] = static_cast<std::int8_t>(mn);
    }
    return t;
  }();
  return lut;
}

}  // namespace

TestResult cumulative_sums_test(const common::BitStream& bits, Gating gating) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_cusum(n, gating)) return *gated;
  const auto& lut = cusum_lut();
  const auto& w = bits.words();
  const std::size_t nbytes = n >> 3;

  long s = 0;
  long z_fwd = 0;
  for (std::size_t k = 0; k < nbytes; ++k) {
    const unsigned byte = byte_at(w, k);
    z_fwd = std::max(z_fwd, s + lut.maxp[byte]);
    z_fwd = std::max(z_fwd, -(s + lut.minp[byte]));
    s += lut.delta[byte];
  }
  for (std::size_t i = nbytes * 8; i < n; ++i) {
    s += bits[i] ? 1 : -1;
    z_fwd = std::max(z_fwd, std::labs(s));
  }

  long s_b = 0;
  long z_bwd = 0;
  for (std::size_t i = n; i-- > nbytes * 8;) {
    s_b += bits[i] ? 1 : -1;
    z_bwd = std::max(z_bwd, std::labs(s_b));
  }
  for (std::size_t k = nbytes; k-- > 0;) {
    const unsigned byte = byte_at(w, k);
    z_bwd = std::max(z_bwd, s_b + lut.maxp_rev[byte]);
    z_bwd = std::max(z_bwd, -(s_b + lut.minp_rev[byte]));
    s_b += lut.delta[byte];
  }
  return detail::cusum_from_extrema(n, z_fwd, z_bwd);
}

TestResult random_excursions_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_excursions(n, "random_excursions")) {
    return *gated;
  }
  std::array<std::array<std::size_t, 6>, 8> visits{};
  std::array<std::size_t, 8> cycle_visits{};
  std::size_t cycles = 0;
  auto close_cycle = [&]() {
    for (std::size_t s = 0; s < 8; ++s) {
      const std::size_t k = std::min<std::size_t>(cycle_visits[s], 5);
      ++visits[s][k];
      cycle_visits[s] = 0;
    }
    ++cycles;
  };
  long walk = 0;
  auto step = [&](bool bit) {
    walk += bit ? 1 : -1;
    if (walk == 0) {
      close_cycle();
    } else if (walk >= -4 && walk <= 4) {
      const int idx = walk < 0 ? static_cast<int>(walk) + 4
                               : static_cast<int>(walk) + 3;
      ++cycle_visits[static_cast<std::size_t>(idx)];
    }
  };
  const auto& w = bits.words();
  const std::size_t full_words = n >> 6;
  for (std::size_t i = 0; i < full_words; ++i) {
    if (walk > 68 || walk < -68) {
      // Every partial sum across this word stays outside [-4, 4]: no state
      // visits, no zero crossings. Apply the net delta and skip the bits.
      walk += 2 * static_cast<long>(std::popcount(w[i])) - 64;
      continue;
    }
    const std::uint64_t v = w[i];
    for (unsigned j = 0; j < 64; ++j) step((v >> j) & 1ULL);
  }
  const std::size_t tail_start =
      common::words_to_bits(common::Words{full_words}).count();
  for (std::size_t i = tail_start; i < n; ++i) step(bits[i]);
  if (walk != 0) close_cycle();  // final partial cycle counts per the spec
  return detail::excursions_from_counts(cycles, visits);
}

TestResult random_excursions_variant_test(const common::BitStream& bits) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_excursions(n, "random_excursions_variant")) {
    return *gated;
  }
  std::array<std::size_t, 19> total_visits{};
  std::size_t cycles = 0;
  long walk = 0;
  auto step = [&](bool bit) {
    walk += bit ? 1 : -1;
    if (walk == 0) {
      ++cycles;
    } else if (walk >= -9 && walk <= 9) {
      ++total_visits[static_cast<std::size_t>(walk + 9)];
    }
  };
  const auto& w = bits.words();
  const std::size_t full_words = n >> 6;
  for (std::size_t i = 0; i < full_words; ++i) {
    if (walk > 73 || walk < -73) {
      // Partial sums stay outside [-9, 9] for the whole word.
      walk += 2 * static_cast<long>(std::popcount(w[i])) - 64;
      continue;
    }
    const std::uint64_t v = w[i];
    for (unsigned j = 0; j < 64; ++j) step((v >> j) & 1ULL);
  }
  const std::size_t tail_start =
      common::words_to_bits(common::Words{full_words}).count();
  for (std::size_t i = tail_start; i < n; ++i) step(bits[i]);
  if (walk != 0) ++cycles;
  return detail::excursions_variant_from_counts(cycles, total_visits);
}

int gf2_rank_rowechelon(const std::uint64_t* rows, int nrows) {
  // Pivot rows indexed by leading (highest set) bit position. Inserting a
  // row costs one XOR per already-found pivot above its leading bit —
  // against the reference kernel's per-column pivot search plus full-matrix
  // sweep, this touches each row only until it dies or lands. The echelon
  // basis spans the same row space, so the rank (all the chi-square math
  // consumes) is identical to stat::gf2_rank's.
  std::uint64_t pivot[64] = {};
  int rank = 0;
  for (int r = 0; r < nrows; ++r) {
    std::uint64_t row = rows[r];
    while (row != 0) {
      const int lead = 63 - std::countl_zero(row);
      if (pivot[lead] == 0) {
        pivot[lead] = row;
        ++rank;
        break;
      }
      row ^= pivot[lead];
    }
  }
  return rank;
}

TestResult rank_test(const common::BitStream& bits) {
  if (auto gated = detail::gate_rank(bits.size())) return *gated;
  constexpr std::size_t kM = 32;
  constexpr std::size_t kBitsPerMatrix = kM * kM;
  const std::size_t big_n = bits.size() / kBitsPerMatrix;
  std::size_t f_full = 0, f_minus1 = 0;
  std::uint64_t rows[kM];
  for (std::size_t m = 0; m < big_n; ++m) {
    for (std::size_t i = 0; i < kM; ++i) {
      // The scalar kernel builds row |= 1 << j from bits[... + j]: exactly
      // the LSB-first 32-bit window at the row's offset.
      rows[i] = bits.word_at(m * kBitsPerMatrix + i * kM) & 0xFFFFFFFFULL;
    }
    const int rank = gf2_rank_rowechelon(rows, static_cast<int>(kM));
    if (rank == static_cast<int>(kM)) {
      ++f_full;
    } else if (rank == static_cast<int>(kM) - 1) {
      ++f_minus1;
    }
  }
  return detail::rank_from_counts(big_n, f_full, f_minus1);
}

TestResult dft_test(const common::BitStream& bits) {
  return stat::dft_test(bits);
}

}  // namespace trng::stat::wordpar
