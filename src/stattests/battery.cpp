#include "stattests/battery.hpp"

#include <stdexcept>
#include <utility>

#include "stattests/battery_executor.hpp"
#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_wordpar.hpp"

namespace trng::stat {

bool BatteryReport::all_passed(double alpha) const {
  // A report with zero applicable tests must not count as passing: the
  // loop below is vacuously true on it, which historically let callers
  // accept sequences too short to be tested.
  bool any_applicable = false;
  for (const auto& r : results) {
    if (!r.applicable) continue;
    any_applicable = true;
    if (!r.passed(alpha)) return false;
  }
  return any_applicable;
}

std::size_t BatteryReport::failed_count(double alpha) const {
  std::size_t fails = 0;
  for (const auto& r : results) {
    if (r.applicable && !r.passed(alpha)) ++fails;
  }
  return fails;
}

std::size_t BatteryReport::applicable_count() const {
  std::size_t n = 0;
  for (const auto& r : results) {
    if (r.applicable) ++n;
  }
  return n;
}

TestBattery::TestBattery(Options options) : options_(options) {
  if (!(options_.alpha > 0.0) || options_.alpha >= 1.0) {
    throw std::invalid_argument("TestBattery: alpha must be in (0, 1)");
  }
}

BatteryReport TestBattery::run(const common::BitStream& bits) const {
  // Fixed test order; the executor stores results by job index, so the
  // report layout is identical across engines and thread schedules.
  std::vector<BatteryExecutor::Job> jobs;
  jobs.reserve(options_.include_slow ? 15 : 9);
  if (options_.engine == Engine::kScalar) {
    jobs.push_back([&bits] { return frequency_test(bits); });
    jobs.push_back([&bits] { return block_frequency_test(bits); });
    jobs.push_back([&bits] { return runs_test(bits); });
    jobs.push_back([&bits] { return longest_run_test(bits); });
    jobs.push_back([&bits] { return cumulative_sums_test(bits); });
    jobs.push_back([&bits] { return serial_test(bits); });
    jobs.push_back([&bits] { return approximate_entropy_test(bits); });
    jobs.push_back([&bits] { return random_excursions_test(bits); });
    jobs.push_back([&bits] { return random_excursions_variant_test(bits); });
    if (options_.include_slow) {
      jobs.push_back([&bits] { return rank_test(bits); });
      jobs.push_back([&bits] { return dft_test(bits); });
      jobs.push_back([&bits] { return non_overlapping_template_test(bits); });
      jobs.push_back([&bits] { return overlapping_template_test(bits); });
      jobs.push_back([&bits] { return universal_test(bits); });
      jobs.push_back([&bits] { return linear_complexity_test(bits); });
    }
  } else {
    jobs.push_back([&bits] { return wordpar::frequency_test(bits); });
    jobs.push_back([&bits] { return wordpar::block_frequency_test(bits); });
    jobs.push_back([&bits] { return wordpar::runs_test(bits); });
    jobs.push_back([&bits] { return wordpar::longest_run_test(bits); });
    jobs.push_back([&bits] { return wordpar::cumulative_sums_test(bits); });
    jobs.push_back([&bits] { return wordpar::serial_test(bits); });
    jobs.push_back(
        [&bits] { return wordpar::approximate_entropy_test(bits); });
    jobs.push_back([&bits] { return wordpar::random_excursions_test(bits); });
    jobs.push_back(
        [&bits] { return wordpar::random_excursions_variant_test(bits); });
    if (options_.include_slow) {
      jobs.push_back([&bits] { return wordpar::rank_test(bits); });
      jobs.push_back([&bits] { return wordpar::dft_test(bits); });
      jobs.push_back(
          [&bits] { return wordpar::non_overlapping_template_test(bits); });
      jobs.push_back(
          [&bits] { return wordpar::overlapping_template_test(bits); });
      jobs.push_back([&bits] { return wordpar::universal_test(bits); });
      jobs.push_back(
          [&bits] { return wordpar::linear_complexity_test(bits); });
    }
  }

  BatteryReport report;
  if (options_.engine == Engine::kThreaded) {
    const BatteryExecutor executor(options_.threads);
    report.results = executor.run(jobs);
  } else {
    report.results.reserve(jobs.size());
    for (const auto& job : jobs) report.results.push_back(job());
  }
  return report;
}

BatteryReport TestBattery::run(core::BitSource& source,
                               common::Bits nbits) const {
  return run(source.generate(nbits));
}

std::optional<unsigned> TestBattery::min_passing_np(const RawSource& source,
                                                    common::Bits test_bits,
                                                    unsigned max_np) const {
  if (!source || test_bits < common::Bits{20000} || max_np == 0) {
    throw std::invalid_argument("min_passing_np: bad arguments");
  }
  for (unsigned np = 1; np <= max_np; ++np) {
    const common::BitStream raw = source(test_bits * np);
    const BatteryReport report = run(raw.xor_fold(np));
    // Vacuous reports (zero applicable tests — e.g. a source that returned
    // far fewer bits than requested) never qualify: all_passed() rejects
    // them, and the explicit check documents the intent here.
    if (report.applicable_count() == 0) continue;
    if (report.all_passed(options_.alpha)) return np;
  }
  return std::nullopt;
}

std::optional<unsigned> TestBattery::min_passing_np(core::BitSource& source,
                                                    common::Bits test_bits,
                                                    unsigned max_np) const {
  if (test_bits < common::Bits{20000} || max_np == 0) {
    throw std::invalid_argument("min_passing_np: bad arguments");
  }
  for (unsigned np = 1; np <= max_np; ++np) {
    const common::BitStream raw = source.generate(test_bits * np);
    const BatteryReport report = run(raw.xor_fold(np));
    if (report.applicable_count() == 0) continue;
    if (report.all_passed(options_.alpha)) return np;
  }
  return std::nullopt;
}

}  // namespace trng::stat
