#include "stattests/battery.hpp"

#include <stdexcept>

#include "stattests/sp800_22.hpp"

namespace trng::stat {

bool BatteryReport::all_passed(double alpha) const {
  for (const auto& r : results) {
    if (r.applicable && !r.passed(alpha)) return false;
  }
  return true;
}

std::size_t BatteryReport::failed_count(double alpha) const {
  std::size_t fails = 0;
  for (const auto& r : results) {
    if (r.applicable && !r.passed(alpha)) ++fails;
  }
  return fails;
}

std::size_t BatteryReport::applicable_count() const {
  std::size_t n = 0;
  for (const auto& r : results) {
    if (r.applicable) ++n;
  }
  return n;
}

TestBattery::TestBattery(Options options) : options_(options) {
  if (!(options_.alpha > 0.0) || options_.alpha >= 1.0) {
    throw std::invalid_argument("TestBattery: alpha must be in (0, 1)");
  }
}

BatteryReport TestBattery::run(const common::BitStream& bits) const {
  BatteryReport report;
  report.results.push_back(frequency_test(bits));
  report.results.push_back(block_frequency_test(bits));
  report.results.push_back(runs_test(bits));
  report.results.push_back(longest_run_test(bits));
  report.results.push_back(cumulative_sums_test(bits));
  report.results.push_back(serial_test(bits));
  report.results.push_back(approximate_entropy_test(bits));
  report.results.push_back(random_excursions_test(bits));
  report.results.push_back(random_excursions_variant_test(bits));
  if (options_.include_slow) {
    report.results.push_back(rank_test(bits));
    report.results.push_back(dft_test(bits));
    report.results.push_back(non_overlapping_template_test(bits));
    report.results.push_back(overlapping_template_test(bits));
    report.results.push_back(universal_test(bits));
    report.results.push_back(linear_complexity_test(bits));
  }
  return report;
}

BatteryReport TestBattery::run(core::BitSource& source,
                               std::size_t nbits) const {
  return run(source.generate(nbits));
}

std::optional<unsigned> TestBattery::min_passing_np(const RawSource& source,
                                                    std::size_t test_bits,
                                                    unsigned max_np) const {
  if (!source || test_bits < 20000 || max_np == 0) {
    throw std::invalid_argument("min_passing_np: bad arguments");
  }
  for (unsigned np = 1; np <= max_np; ++np) {
    const common::BitStream raw = source(test_bits * np);
    const BatteryReport report = run(raw.xor_fold(np));
    if (report.all_passed(options_.alpha)) return np;
  }
  return std::nullopt;
}

std::optional<unsigned> TestBattery::min_passing_np(core::BitSource& source,
                                                    std::size_t test_bits,
                                                    unsigned max_np) const {
  if (test_bits < 20000 || max_np == 0) {
    throw std::invalid_argument("min_passing_np: bad arguments");
  }
  for (unsigned np = 1; np <= max_np; ++np) {
    const common::BitStream raw = source.generate(test_bits * np);
    const BatteryReport report = run(raw.xor_fold(np));
    if (report.all_passed(options_.alpha)) return np;
  }
  return std::nullopt;
}

}  // namespace trng::stat
