// NIST SP 800-90B min-entropy estimators for binary (1-bit-per-sample)
// noise sources — the assessment a modern certification of this TRNG would
// require on top of the AIS-31 flow. Implemented from the specification
// ("Recommendation for the Entropy Sources Used for Random Bit
// Generation", Section 6.3), specialized to the binary alphabet.
//
// All estimators return min-entropy per bit, with the specification's
// 99%-confidence adjustments where defined. The non-IID assessment is the
// minimum over the individual estimators.
#pragma once

#include "common/bitstream.hpp"

namespace trng::stat::sp800_90b {

/// 6.3.1 Most-common-value estimate.
double most_common_value_estimate(const common::BitStream& bits);

/// 6.3.2 Collision estimate (binary specialization: the mean spacing of
/// repeats determines p^2 + q^2). Requires >= 3000 bits.
double collision_estimate(const common::BitStream& bits);

/// 6.3.3 Markov estimate (first-order, 128-step most probable path).
double markov_estimate(const common::BitStream& bits);

/// 6.3.5 t-tuple estimate: frequencies of the most common tuple of each
/// length up to the largest length still occurring >= `cutoff` times.
double t_tuple_estimate(const common::BitStream& bits, unsigned cutoff = 35);

/// 6.3.6 Longest-repeated-substring estimate (window lengths capped at 64
/// bits; ample for any realistic binary source).
double lrs_estimate(const common::BitStream& bits);

/// The full non-IID assessment: min over all estimators above.
/// Requires >= 10000 bits (throws std::invalid_argument otherwise).
double non_iid_min_entropy(const common::BitStream& bits);

}  // namespace trng::stat::sp800_90b
