// AIS-31 (Killmann & Schindler, "A proposal for: Functionality classes for
// random number generators") statistical tests — the evaluation framework
// the paper designs for (Section 2).
//
// Procedure A tests implemented for binary sequences:
//   T0 disjointness, T1 monobit, T2 poker, T3 runs, T4 long run
//   (the FIPS 140-1 quartet), T5 autocorrelation, and
//   T8 Coron's entropy estimator (the P2/"K4" entropy requirement).
// T6/T7 apply to multi-bit internal random numbers and are out of scope for
// a 1-bit-per-sample generator.
//
// These are threshold tests (pass/fail against tabulated bounds), not
// p-value tests, so they return a dedicated result type.
#pragma once

#include <string>

#include "common/bitstream.hpp"

namespace trng::stat::ais31 {

struct [[nodiscard]] Ais31Result {
  std::string name;
  bool applicable = true;
  bool passed = false;
  double statistic = 0.0;
  std::string note;
};

/// T0: the first 65536 non-overlapping 48-bit words must be pairwise
/// distinct. Requires 65536 * 48 bits.
Ais31Result t0_disjointness(const common::BitStream& bits);

/// T1: ones count of 20000 bits in (9654, 10346).
Ais31Result t1_monobit(const common::BitStream& bits);

/// T2: poker test on 20000 bits (4-bit blocks), 1.03 < X < 57.4.
Ais31Result t2_poker(const common::BitStream& bits);

/// T3: run-length distribution of 20000 bits within tabulated bounds.
Ais31Result t3_runs(const common::BitStream& bits);

/// T4: no run of length >= 34 within 20000 bits.
Ais31Result t4_long_run(const common::BitStream& bits);

/// T5: autocorrelation. Phase 1 finds the worst shift tau in [1, 5000] on
/// the first 10000 bits; phase 2 tests that tau on the next 10000 bits
/// against 2326 < Z < 2674. Requires 20000 bits.
Ais31Result t5_autocorrelation(const common::BitStream& bits);

/// T6: uniform-distribution test on the raw binary signal (AIS-31
/// procedure B, specialized to 1-bit samples): |p_hat(1) - 1/2| < 0.025
/// over 100000 bits.
Ais31Result t6_uniform_distribution(const common::BitStream& bits);

/// T7: comparative test for multinomial distributions (homogeneity of the
/// two transition distributions P(.|0) and P(.|1)): two-sample chi-square
/// over 100000 transitions, threshold 15.13 (chi^2_1 at alpha = 1e-4).
Ais31Result t7_homogeneity(const common::BitStream& bits);

/// T8: Coron's entropy estimator on 8-bit words, Q = 2560 initialization
/// and K = 256000 test words (needs (Q+K)*8 bits); passes when the
/// statistic exceeds 7.976 (AIS-31 K4/P2 bound).
Ais31Result t8_entropy(const common::BitStream& bits, unsigned word_len = 8,
                       std::size_t q = 2560, std::size_t k = 256000);

/// Runs T0-T5 and T8 and returns the conjunction of the applicable tests.
bool procedure_a(const common::BitStream& bits);

/// AIS-31 procedure B for a binary raw signal: T6, T7, T8.
bool procedure_b(const common::BitStream& bits);

}  // namespace trng::stat::ais31
