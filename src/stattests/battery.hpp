// Battery runner: all fifteen SP 800-22 tests on one sequence, plus the
// paper's n_NIST search — the minimal XOR compression rate such that the
// compressed output passes every applicable test (Table 1's n_NIST column).
//
// The battery is a two-level parallel engine. Level 1 selects the counting
// kernels: the bit-serial reference (sp800_22.hpp) or the word-parallel
// kernels (sp800_22_wordpar.hpp), which are bit-identical by construction.
// Level 2 optionally schedules the independent tests across a
// BatteryExecutor thread pool. Every engine produces the same report.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bitstream.hpp"
#include "common/units.hpp"
#include "core/bit_source.hpp"
#include "stattests/test_result.hpp"

namespace trng::stat {

struct [[nodiscard]] BatteryReport {
  std::vector<TestResult> results;

  /// True when at least one test was applicable and no applicable test
  /// failed. A report where nothing ran (e.g. the sequence was too short
  /// for every test) is NOT a pass — vacuous reports used to count as
  /// passing, which let min_passing_np accept an n_p whose folded stream
  /// was too short to be tested at all.
  bool all_passed(double alpha = 0.01) const;
  std::size_t failed_count(double alpha = 0.01) const;
  std::size_t applicable_count() const;
};

class TestBattery {
 public:
  /// Kernel family / scheduling choice. All engines return bit-identical
  /// reports (same p-value doubles); see sp800_22_wordpar.hpp.
  enum class Engine {
    kScalar,        ///< bit-serial reference kernels, run sequentially
    kWordParallel,  ///< word-parallel kernels, run sequentially
    kThreaded,      ///< word-parallel kernels across a BatteryExecutor pool
  };

  struct Options {
    double alpha = 0.01;
    /// Include the heavyweight tests (DFT, linear complexity, universal,
    /// templates). Disable for fast smoke runs.
    bool include_slow = true;
    Engine engine = Engine::kThreaded;
    /// Thread-pool size for Engine::kThreaded; 0 = hardware concurrency.
    unsigned threads = 0;
  };

  TestBattery() : TestBattery(Options{}) {}
  explicit TestBattery(Options options);

  /// Runs every test on `bits`. Tests whose prerequisites `bits` does not
  /// meet are reported with applicable = false. Results are always in the
  /// same fixed test order, independent of engine and thread scheduling.
  BatteryReport run(const common::BitStream& bits) const;

  /// Draws `nbits` bits from `source` via the batched BitSource contract
  /// and runs every test on them.
  BatteryReport run(core::BitSource& source, common::Bits nbits) const;

  /// Streaming source of raw bits: invoked with a bit count, returns that
  /// many fresh raw bits from the generator under test. Legacy adapter —
  /// new code should pass a core::BitSource directly.
  using RawSource = std::function<common::BitStream(common::Bits)>;

  /// The paper's n_NIST: smallest np in [1, max_np] such that the XOR-
  /// compressed output passes all applicable tests. Each candidate np
  /// consumes test_bits * np fresh raw bits. Returns nullopt when even
  /// max_np fails (Table 1 reports this as "> max_np"). A candidate whose
  /// folded stream is too short for any test (a source returning fewer
  /// bits than requested) is rejected, never accepted vacuously.
  std::optional<unsigned> min_passing_np(const RawSource& source,
                                         common::Bits test_bits,
                                         unsigned max_np = 16) const;

  /// BitSource form of the n_NIST search: raw bits are drawn batched from
  /// `source` (which must produce RAW, pre-compression bits).
  std::optional<unsigned> min_passing_np(core::BitSource& source,
                                         common::Bits test_bits,
                                         unsigned max_np = 16) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace trng::stat
