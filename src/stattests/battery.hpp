// Battery runner: all fifteen SP 800-22 tests on one sequence, plus the
// paper's n_NIST search — the minimal XOR compression rate such that the
// compressed output passes every applicable test (Table 1's n_NIST column).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bitstream.hpp"
#include "core/bit_source.hpp"
#include "stattests/test_result.hpp"

namespace trng::stat {

struct [[nodiscard]] BatteryReport {
  std::vector<TestResult> results;

  bool all_passed(double alpha = 0.01) const;
  std::size_t failed_count(double alpha = 0.01) const;
  std::size_t applicable_count() const;
};

class TestBattery {
 public:
  struct Options {
    double alpha = 0.01;
    /// Include the heavyweight tests (DFT, linear complexity, universal,
    /// templates). Disable for fast smoke runs.
    bool include_slow = true;
  };

  TestBattery() : TestBattery(Options{}) {}
  explicit TestBattery(Options options);

  /// Runs every test on `bits`. Tests whose prerequisites `bits` does not
  /// meet are reported with applicable = false.
  BatteryReport run(const common::BitStream& bits) const;

  /// Draws `nbits` bits from `source` via the batched BitSource contract
  /// and runs every test on them.
  BatteryReport run(core::BitSource& source, std::size_t nbits) const;

  /// Streaming source of raw bits: invoked with a bit count, returns that
  /// many fresh raw bits from the generator under test. Legacy adapter —
  /// new code should pass a core::BitSource directly.
  using RawSource = std::function<common::BitStream(std::size_t)>;

  /// The paper's n_NIST: smallest np in [1, max_np] such that the XOR-
  /// compressed output passes all applicable tests. Each candidate np
  /// consumes test_bits * np fresh raw bits. Returns nullopt when even
  /// max_np fails (Table 1 reports this as "> max_np").
  std::optional<unsigned> min_passing_np(const RawSource& source,
                                         std::size_t test_bits,
                                         unsigned max_np = 16) const;

  /// BitSource form of the n_NIST search: raw bits are drawn batched from
  /// `source` (which must produce RAW, pre-compression bits).
  std::optional<unsigned> min_passing_np(core::BitSource& source,
                                         std::size_t test_bits,
                                         unsigned max_np = 16) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace trng::stat
