// NIST SP 800-22 statistical test suite, implemented from the specification
// (Rukhin et al., "A Statistical Test Suite for Random and Pseudorandom
// Number Generators for Cryptographic Applications", rev. 1a).
//
// All fifteen tests are provided. Every function takes the bit sequence and
// returns a TestResult whose p_values follow the reference definitions;
// tests whose applicability prerequisites are not met (sequence too short,
// too few excursion cycles) return applicable = false rather than a
// fabricated p-value.
#pragma once

#include "common/bitstream.hpp"
#include "stattests/test_result.hpp"

namespace trng::stat {

/// Applicability-gating policy. kStrict (the production default) enforces
/// the specification's recommended minimum lengths and parameter ranges;
/// out-of-range inputs are reported applicable = false. kSpecExample
/// bypasses the *recommended* minimums only — the statistic itself is
/// computed identically — so the short worked examples of SP 800-22
/// Sections 2.x.4/2.x.8 (n = 10..100 bits) can be replayed as known-answer
/// tests against the published p-values.
enum class Gating { kStrict, kSpecExample };

/// 2.1 Frequency (monobit) test. Requires n >= 100 under kStrict.
TestResult frequency_test(const common::BitStream& bits,
                          Gating gating = Gating::kStrict);

/// 2.2 Frequency test within a block; `block_len` = M. block_len == 0
/// auto-selects M per the Section 2.2.7 recommendations (M >= 20,
/// M > 0.01 n, N < 100). Under kStrict an explicit out-of-range M is
/// reported inapplicable with a note; kSpecExample accepts any M >= 1
/// with at least one complete block (the Section 2.2.8 worked example
/// uses M = 10 on n = 100, which violates the recommendations).
TestResult block_frequency_test(const common::BitStream& bits,
                                std::size_t block_len = 0,
                                Gating gating = Gating::kStrict);

/// 2.3 Runs test. Requires n >= 100 under kStrict.
TestResult runs_test(const common::BitStream& bits,
                     Gating gating = Gating::kStrict);

/// 2.4 Longest run of ones in a block. Chooses M in {8, 128, 10^4} from n;
/// requires n >= 128.
TestResult longest_run_test(const common::BitStream& bits);

/// 2.5 Binary matrix rank test (32x32). Requires n >= 38 * 1024.
TestResult rank_test(const common::BitStream& bits);

/// 2.6 Discrete Fourier transform (spectral) test. Requires n >= 1000.
TestResult dft_test(const common::BitStream& bits);

/// 2.7 Non-overlapping template matching, all aperiodic templates of length
/// `tpl_len` (default 9, the NIST default), 8 blocks. One p-value per
/// template. Requires n >= 8 * tpl_len * 8.
TestResult non_overlapping_template_test(const common::BitStream& bits,
                                         unsigned tpl_len = 9);

/// 2.8 Overlapping template matching (all-ones template of length
/// `tpl_len`, default 9). Requires n >= 10^6 for the reference pi values.
TestResult overlapping_template_test(const common::BitStream& bits,
                                     unsigned tpl_len = 9);

/// 2.9 Maurer's universal statistical test. L and Q are chosen from n per
/// the specification table; requires n >= 387840 (L = 6).
TestResult universal_test(const common::BitStream& bits);

/// Core of test 2.9 with explicit parameters: blocks of `big_l` bits,
/// `q` initialization blocks, expected value / variance for random input
/// supplied by the caller (the Section 2.9.4 worked example uses L = 2,
/// Q = 4 — far below the production table, hence this ungated entry point
/// for known-answer tests). Returns fn, K and the p-value.
struct [[nodiscard]] UniversalStatistic {
  double fn = 0.0;
  std::size_t k = 0;  ///< number of test blocks
  double p_value = 0.0;
};
UniversalStatistic universal_statistic(const common::BitStream& bits,
                                       unsigned big_l, std::size_t q,
                                       double expected, double variance);

/// 2.10 Linear complexity test (Berlekamp–Massey over GF(2)),
/// block length M = 500. Requires n >= 10^6 per the spec (we accept
/// n >= 200 * 500 and mark shorter inputs inapplicable).
TestResult linear_complexity_test(const common::BitStream& bits,
                                  std::size_t block_len = 500);

/// 2.11 Serial test, pattern length m (default 16 per the spec example for
/// n = 10^6; m must satisfy m < log2(n) - 2 under kStrict). Two p-values.
TestResult serial_test(const common::BitStream& bits, unsigned m = 16,
                       Gating gating = Gating::kStrict);

/// 2.12 Approximate entropy test, pattern length m (default 10;
/// m < log2(n) - 5 required under kStrict).
TestResult approximate_entropy_test(const common::BitStream& bits,
                                    unsigned m = 10,
                                    Gating gating = Gating::kStrict);

/// 2.13 Cumulative sums test, forward and backward. Two p-values.
/// Requires n >= 100 under kStrict.
TestResult cumulative_sums_test(const common::BitStream& bits,
                                Gating gating = Gating::kStrict);

/// 2.14 Random excursions test (states -4..-1, 1..4, 8 p-values).
/// Inapplicable when the number of zero-crossing cycles J < 500.
TestResult random_excursions_test(const common::BitStream& bits);

/// 2.15 Random excursions variant test (states -9..-1, 1..9, 18 p-values).
/// Inapplicable when J < 500.
TestResult random_excursions_variant_test(const common::BitStream& bits);

/// Berlekamp–Massey: linear complexity of a bit block (helper, exposed for
/// unit testing).
std::size_t berlekamp_massey(const std::vector<bool>& block);

/// Rank of a square GF(2) matrix given as row bitmasks (helper, exposed for
/// unit testing). Each row uses the low `dim` bits.
int gf2_rank(std::vector<std::uint64_t> rows, int dim);

/// All aperiodic templates of length m (helper; a template is aperiodic if
/// no proper shift of it matches itself — the template set of test 2.7).
std::vector<std::uint32_t> aperiodic_templates(unsigned m);

}  // namespace trng::stat
