// Word-parallel SP 800-22 kernels.
//
// Every function here mirrors the signature and semantics of its scalar
// counterpart in sp800_22.hpp but counts over BitStream::words() instead of
// reading one bit at a time: popcount for frequency/block-frequency,
// `w ^ (w >> 1)` transition masks for runs, byte lookup tables and chunk
// combining for longest-run/cumulative-sums, skip-ahead walks for the
// excursions tests, packed L-bit window extraction (BitStream::word_at) for
// serial/approximate-entropy/universal/templates, and a word-packed
// Berlekamp–Massey for linear complexity.
//
// Contract: for any input the returned TestResult is bit-identical to the
// scalar version — same p-value doubles, same applicable flag, same note.
// The kernels only produce integer counts; the floating-point statistic is
// computed by the shared functions in sp800_22_detail.cpp, so equality of
// counts implies equality of p-values. The equivalence suite
// (tests/test_battery_equivalence.cpp) checks this for every registered
// source; lint rule TL008 requires the same for any kernel added later.
#pragma once

#include "common/bitstream.hpp"
#include "stattests/sp800_22.hpp"
#include "stattests/test_result.hpp"

namespace trng::stat::wordpar {

TestResult frequency_test(const common::BitStream& bits,
                          Gating gating = Gating::kStrict);
TestResult block_frequency_test(const common::BitStream& bits,
                                std::size_t block_len = 0,
                                Gating gating = Gating::kStrict);
TestResult runs_test(const common::BitStream& bits,
                     Gating gating = Gating::kStrict);
TestResult longest_run_test(const common::BitStream& bits);
TestResult rank_test(const common::BitStream& bits);
/// The DFT has no word-parallel form (the FFT dominates, already O(n log n)
/// on doubles); this forwards to the scalar test.
TestResult dft_test(const common::BitStream& bits);
TestResult non_overlapping_template_test(const common::BitStream& bits,
                                         unsigned tpl_len = 9);
TestResult overlapping_template_test(const common::BitStream& bits,
                                     unsigned tpl_len = 9);
TestResult universal_test(const common::BitStream& bits);
TestResult linear_complexity_test(const common::BitStream& bits,
                                  std::size_t block_len = 500);
TestResult serial_test(const common::BitStream& bits, unsigned m = 16,
                       Gating gating = Gating::kStrict);
TestResult approximate_entropy_test(const common::BitStream& bits,
                                    unsigned m = 10,
                                    Gating gating = Gating::kStrict);
TestResult cumulative_sums_test(const common::BitStream& bits,
                                Gating gating = Gating::kStrict);
TestResult random_excursions_test(const common::BitStream& bits);
TestResult random_excursions_variant_test(const common::BitStream& bits);

/// Word-packed Berlekamp–Massey over bits [begin, begin + len): linear
/// complexity of the block, identical to stat::berlekamp_massey on the same
/// bits (helper, exposed for unit testing).
std::size_t berlekamp_massey_words(const common::BitStream& bits,
                                   std::size_t begin, std::size_t len);

/// Bitsliced GF(2) rank of `nrows` packed matrix rows (row r's column j at
/// rows[r] bit j, as the rank test packs them): pivot-insertion row echelon
/// — each row is reduced against the pivots found so far, one whole-row XOR
/// per leading bit, with no column-major search loops. Returns the same
/// rank as stat::gf2_rank on the same rows (helper, exposed for the
/// equivalence suite).
int gf2_rank_rowechelon(const std::uint64_t* rows, int nrows);

}  // namespace trng::stat::wordpar
