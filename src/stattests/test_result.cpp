#include "stattests/test_result.hpp"

#include <cmath>

namespace trng::stat {

bool TestResult::passed(double alpha) const {
  if (!applicable) return true;  // no evidence against randomness
  if (p_values.empty()) return false;
  if (p_values.size() == 1) return p_values.front() >= alpha;

  // Multi-p family (templates, excursions, serial, cusum): allow the
  // binomially-expected number of alpha exceedances plus three sigma,
  // mirroring NIST's proportion-of-passes assessment.
  const double c = static_cast<double>(p_values.size());
  const double allowed =
      c * alpha + 3.0 * std::sqrt(c * alpha * (1.0 - alpha));
  std::size_t fails = 0;
  for (double p : p_values) {
    if (p < alpha) ++fails;
  }
  return static_cast<double>(fails) <= allowed;
}

}  // namespace trng::stat
