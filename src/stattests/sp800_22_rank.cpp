// SP 800-22 test 2.5: binary matrix rank.
#include <cmath>
#include <cstdint>
#include <vector>

#include "stattests/sp800_22.hpp"

namespace trng::stat {

int gf2_rank(std::vector<std::uint64_t> rows, int dim) {
  int rank = 0;
  for (int col = dim - 1; col >= 0 && rank < static_cast<int>(rows.size());
       --col) {
    const std::uint64_t mask = 1ULL << col;
    // Find a pivot row with this column set.
    int pivot = -1;
    for (int i = rank; i < static_cast<int>(rows.size()); ++i) {
      if (rows[static_cast<std::size_t>(i)] & mask) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[static_cast<std::size_t>(rank)],
              rows[static_cast<std::size_t>(pivot)]);
    for (int i = 0; i < static_cast<int>(rows.size()); ++i) {
      if (i != rank && (rows[static_cast<std::size_t>(i)] & mask)) {
        rows[static_cast<std::size_t>(i)] ^=
            rows[static_cast<std::size_t>(rank)];
      }
    }
    ++rank;
  }
  return rank;
}

TestResult rank_test(const common::BitStream& bits) {
  TestResult r;
  r.name = "rank";
  constexpr std::size_t kM = 32;  // square matrix dimension
  constexpr std::size_t kBitsPerMatrix = kM * kM;
  const std::size_t big_n = bits.size() / kBitsPerMatrix;
  if (big_n < 38) {
    r.applicable = false;
    r.note = "requires at least 38 32x32 matrices (n >= 38912)";
    return r;
  }

  // Reference category probabilities for 32x32 over GF(2): rank 32, 31,
  // <= 30 (SP 800-22 Section 3.5).
  constexpr double kPFull = 0.2888;
  constexpr double kPMinus1 = 0.5776;
  constexpr double kPRest = 0.1336;

  std::size_t f_full = 0, f_minus1 = 0;
  std::vector<std::uint64_t> rows(kM);
  for (std::size_t m = 0; m < big_n; ++m) {
    for (std::size_t i = 0; i < kM; ++i) {
      std::uint64_t row = 0;
      for (std::size_t j = 0; j < kM; ++j) {
        if (bits[m * kBitsPerMatrix + i * kM + j]) row |= 1ULL << j;
      }
      rows[i] = row;
    }
    const int rank = gf2_rank(rows, static_cast<int>(kM));
    if (rank == static_cast<int>(kM)) {
      ++f_full;
    } else if (rank == static_cast<int>(kM) - 1) {
      ++f_minus1;
    }
  }
  const double nn = static_cast<double>(big_n);
  const std::size_t f_rest = big_n - f_full - f_minus1;
  auto term = [nn](double observed, double p) {
    const double d = observed - nn * p;
    return d * d / (nn * p);
  };
  const double chi2 = term(static_cast<double>(f_full), kPFull) +
                      term(static_cast<double>(f_minus1), kPMinus1) +
                      term(static_cast<double>(f_rest), kPRest);
  // df = 2 => p = exp(-chi2 / 2).
  r.p_values.push_back(std::exp(-chi2 / 2.0));
  return r;
}

}  // namespace trng::stat
