// SP 800-22 test 2.5: binary matrix rank — bit-serial reference kernel.
// The category chi-square math lives in sp800_22_detail.cpp.
#include <cstdint>
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

int gf2_rank(std::vector<std::uint64_t> rows, int dim) {
  int rank = 0;
  for (int col = dim - 1; col >= 0 && rank < static_cast<int>(rows.size());
       --col) {
    const std::uint64_t mask = 1ULL << col;
    // Find a pivot row with this column set.
    int pivot = -1;
    for (int i = rank; i < static_cast<int>(rows.size()); ++i) {
      if (rows[static_cast<std::size_t>(i)] & mask) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[static_cast<std::size_t>(rank)],
              rows[static_cast<std::size_t>(pivot)]);
    for (int i = 0; i < static_cast<int>(rows.size()); ++i) {
      if (i != rank && (rows[static_cast<std::size_t>(i)] & mask)) {
        rows[static_cast<std::size_t>(i)] ^=
            rows[static_cast<std::size_t>(rank)];
      }
    }
    ++rank;
  }
  return rank;
}

TestResult rank_test(const common::BitStream& bits) {
  if (auto gated = detail::gate_rank(bits.size())) return *gated;
  constexpr std::size_t kM = 32;  // square matrix dimension
  constexpr std::size_t kBitsPerMatrix = kM * kM;
  const std::size_t big_n = bits.size() / kBitsPerMatrix;

  std::size_t f_full = 0, f_minus1 = 0;
  std::vector<std::uint64_t> rows(kM);
  for (std::size_t m = 0; m < big_n; ++m) {
    for (std::size_t i = 0; i < kM; ++i) {
      std::uint64_t row = 0;
      for (std::size_t j = 0; j < kM; ++j) {
        if (bits[m * kBitsPerMatrix + i * kM + j]) row |= 1ULL << j;
      }
      rows[i] = row;
    }
    const int rank = gf2_rank(rows, static_cast<int>(kM));
    if (rank == static_cast<int>(kM)) {
      ++f_full;
    } else if (rank == static_cast<int>(kM) - 1) {
      ++f_minus1;
    }
  }
  return detail::rank_from_counts(big_n, f_full, f_minus1);
}

}  // namespace trng::stat
