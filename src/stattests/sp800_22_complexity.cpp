// SP 800-22 test 2.10: linear complexity (Berlekamp–Massey over GF(2)) —
// bit-serial reference kernel. The mu / T / chi-square math lives in
// sp800_22_detail.cpp.
#include <vector>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_detail.hpp"

namespace trng::stat {

std::size_t berlekamp_massey(const std::vector<bool>& block) {
  const std::size_t n = block.size();
  std::vector<bool> c(n, false), b(n, false);
  c[0] = b[0] = true;
  std::size_t l = 0;
  std::size_t m_shift = 1;  // n - m in the classic formulation

  for (std::size_t i = 0; i < n; ++i) {
    // Discrepancy d = s_i + sum_{j=1..L} c_j * s_{i-j}.
    bool d = block[i];
    for (std::size_t j = 1; j <= l; ++j) {
      if (c[j] && block[i - j]) d = !d;
    }
    if (!d) {
      ++m_shift;
      continue;
    }
    const std::vector<bool> t = c;
    for (std::size_t j = 0; j + m_shift < n; ++j) {
      if (b[j]) c[j + m_shift] = !c[j + m_shift];
    }
    if (2 * l <= i) {
      l = i + 1 - l;
      b = t;
      m_shift = 1;
    } else {
      ++m_shift;
    }
  }
  return l;
}

TestResult linear_complexity_test(const common::BitStream& bits,
                                  std::size_t block_len) {
  const std::size_t n = bits.size();
  if (auto gated = detail::gate_linear_complexity(n, block_len)) {
    return *gated;
  }
  const std::size_t big_n = n / block_len;
  std::vector<std::size_t> lengths(big_n, 0);
  std::vector<bool> block(block_len);
  for (std::size_t b = 0; b < big_n; ++b) {
    for (std::size_t j = 0; j < block_len; ++j) {
      block[j] = bits[b * block_len + j];
    }
    lengths[b] = berlekamp_massey(block);
  }
  return detail::linear_complexity_from_lengths(block_len, lengths);
}

}  // namespace trng::stat
