// SP 800-22 test 2.10: linear complexity (Berlekamp–Massey over GF(2)).
#include <cmath>
#include <vector>

#include "common/special.hpp"
#include "stattests/sp800_22.hpp"

namespace trng::stat {

std::size_t berlekamp_massey(const std::vector<bool>& block) {
  const std::size_t n = block.size();
  std::vector<bool> c(n, false), b(n, false);
  c[0] = b[0] = true;
  std::size_t l = 0;
  std::size_t m_shift = 1;  // n - m in the classic formulation

  for (std::size_t i = 0; i < n; ++i) {
    // Discrepancy d = s_i + sum_{j=1..L} c_j * s_{i-j}.
    bool d = block[i];
    for (std::size_t j = 1; j <= l; ++j) {
      if (c[j] && block[i - j]) d = !d;
    }
    if (!d) {
      ++m_shift;
      continue;
    }
    const std::vector<bool> t = c;
    for (std::size_t j = 0; j + m_shift < n; ++j) {
      if (b[j]) c[j + m_shift] = !c[j + m_shift];
    }
    if (2 * l <= i) {
      l = i + 1 - l;
      b = t;
      m_shift = 1;
    } else {
      ++m_shift;
    }
  }
  return l;
}

TestResult linear_complexity_test(const common::BitStream& bits,
                                  std::size_t block_len) {
  TestResult r;
  r.name = "linear_complexity";
  const std::size_t n = bits.size();
  if (block_len < 500 || block_len > 5000) {
    r.applicable = false;
    r.note = "spec requires 500 <= M <= 5000";
    return r;
  }
  const std::size_t big_n = n / block_len;
  if (big_n < 200) {
    r.applicable = false;
    r.note = "requires at least 200 blocks";
    return r;
  }

  const double m = static_cast<double>(block_len);
  const double sign = (block_len % 2 == 0) ? 1.0 : -1.0;  // (-1)^M
  const double mu = m / 2.0 + (9.0 - sign) / 36.0 -
                    (m / 3.0 + 2.0 / 9.0) / std::exp2(m);

  static constexpr double kPi[7] = {0.010417, 0.03125, 0.125, 0.5,
                                    0.25, 0.0625, 0.020833};
  std::vector<std::size_t> v(7, 0);
  std::vector<bool> block(block_len);
  for (std::size_t b = 0; b < big_n; ++b) {
    for (std::size_t j = 0; j < block_len; ++j) {
      block[j] = bits[b * block_len + j];
    }
    const double l = static_cast<double>(berlekamp_massey(block));
    const double t = sign * (l - mu) + 2.0 / 9.0;
    std::size_t cat;
    if (t <= -2.5) cat = 0;
    else if (t <= -1.5) cat = 1;
    else if (t <= -0.5) cat = 2;
    else if (t <= 0.5) cat = 3;
    else if (t <= 1.5) cat = 4;
    else if (t <= 2.5) cat = 5;
    else cat = 6;
    ++v[cat];
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 7; ++i) {
    const double expected = static_cast<double>(big_n) * kPi[i];
    const double d = static_cast<double>(v[i]) - expected;
    chi2 += d * d / expected;
  }
  r.p_values.push_back(common::igamc(3.0, chi2 / 2.0));
  return r;
}

}  // namespace trng::stat
