#include "stattests/ais31.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace trng::stat::ais31 {

Ais31Result t0_disjointness(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T0_disjointness";
  constexpr std::size_t kWords = 65536;
  constexpr unsigned kWordBits = 48;
  if (bits.size() < kWords * kWordBits) {
    r.applicable = false;
    r.note = "requires 65536 x 48 bits";
    return r;
  }
  std::vector<std::uint64_t> words;
  words.reserve(kWords);
  for (std::size_t w = 0; w < kWords; ++w) {
    std::uint64_t v = 0;
    for (unsigned j = 0; j < kWordBits; ++j) {
      v = (v << 1) | (bits[w * kWordBits + j] ? 1u : 0u);
    }
    words.push_back(v);
  }
  std::sort(words.begin(), words.end());
  r.passed = std::adjacent_find(words.begin(), words.end()) == words.end();
  r.statistic = static_cast<double>(kWords);
  return r;
}

Ais31Result t1_monobit(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T1_monobit";
  constexpr std::size_t kN = 20000;
  if (bits.size() < kN) {
    r.applicable = false;
    r.note = "requires 20000 bits";
    return r;
  }
  std::size_t ones = 0;
  for (std::size_t i = 0; i < kN; ++i) ones += bits[i] ? 1 : 0;
  r.statistic = static_cast<double>(ones);
  r.passed = ones > 9654 && ones < 10346;
  return r;
}

Ais31Result t2_poker(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T2_poker";
  constexpr std::size_t kN = 20000;
  if (bits.size() < kN) {
    r.applicable = false;
    r.note = "requires 20000 bits";
    return r;
  }
  std::size_t f[16] = {};
  for (std::size_t b = 0; b < kN / 4; ++b) {
    unsigned v = 0;
    for (unsigned j = 0; j < 4; ++j) {
      v = (v << 1) | (bits[b * 4 + j] ? 1u : 0u);
    }
    ++f[v];
  }
  double sum = 0.0;
  for (std::size_t v = 0; v < 16; ++v) {
    sum += static_cast<double>(f[v]) * static_cast<double>(f[v]);
  }
  const double x = 16.0 / 5000.0 * sum - 5000.0;
  r.statistic = x;
  r.passed = x > 1.03 && x < 57.4;
  return r;
}

Ais31Result t3_runs(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T3_runs";
  constexpr std::size_t kN = 20000;
  if (bits.size() < kN) {
    r.applicable = false;
    r.note = "requires 20000 bits";
    return r;
  }
  // runs[value][len], len capped at 6 ("6 or longer").
  std::size_t runs[2][7] = {};
  std::size_t run_len = 1;
  for (std::size_t i = 1; i <= kN; ++i) {
    if (i < kN && bits[i] == bits[i - 1]) {
      ++run_len;
    } else {
      const std::size_t len = std::min<std::size_t>(run_len, 6);
      ++runs[bits[i - 1] ? 1 : 0][len];
      run_len = 1;
    }
  }
  static constexpr std::size_t kLo[7] = {0, 2267, 1079, 502, 223, 90, 90};
  static constexpr std::size_t kHi[7] = {0, 2733, 1421, 748, 402, 223, 223};
  r.passed = true;
  for (int v = 0; v < 2; ++v) {
    for (std::size_t len = 1; len <= 6; ++len) {
      if (runs[v][len] < kLo[len] || runs[v][len] > kHi[len]) {
        r.passed = false;
      }
    }
  }
  return r;
}

Ais31Result t4_long_run(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T4_long_run";
  constexpr std::size_t kN = 20000;
  if (bits.size() < kN) {
    r.applicable = false;
    r.note = "requires 20000 bits";
    return r;
  }
  std::size_t run = 1;
  std::size_t longest = 1;
  for (std::size_t i = 1; i < kN; ++i) {
    run = (bits[i] == bits[i - 1]) ? run + 1 : 1;
    longest = std::max(longest, run);
  }
  r.statistic = static_cast<double>(longest);
  r.passed = longest < 34;
  return r;
}

Ais31Result t5_autocorrelation(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T5_autocorrelation";
  constexpr std::size_t kHalf = 10000;
  if (bits.size() < 2 * kHalf) {
    r.applicable = false;
    r.note = "requires 20000 bits";
    return r;
  }
  // Phase 1: the shift with the worst deviation on the first 10000 bits.
  std::size_t worst_tau = 1;
  double worst_dev = -1.0;
  for (std::size_t tau = 1; tau <= kHalf / 2; ++tau) {
    std::size_t z = 0;
    for (std::size_t i = 0; i < kHalf / 2; ++i) {
      z += (bits[i] != bits[i + tau]) ? 1 : 0;
    }
    const double dev = std::fabs(static_cast<double>(z) - 2500.0);
    if (dev > worst_dev) {
      worst_dev = dev;
      worst_tau = tau;
    }
  }
  // Phase 2: test that shift on the second 10000 bits.
  std::size_t z = 0;
  for (std::size_t i = kHalf; i < kHalf + kHalf / 2; ++i) {
    z += (bits[i] != bits[i + worst_tau]) ? 1 : 0;
  }
  r.statistic = static_cast<double>(z);
  r.note = "tau = " + std::to_string(worst_tau);
  r.passed = z > 2326 && z < 2674;
  return r;
}

Ais31Result t6_uniform_distribution(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T6_uniform_distribution";
  constexpr std::size_t kN = 100000;
  if (bits.size() < kN) {
    r.applicable = false;
    r.note = "requires 100000 bits";
    return r;
  }
  std::size_t ones = 0;
  for (std::size_t i = 0; i < kN; ++i) ones += bits[i] ? 1 : 0;
  const double p1 = static_cast<double>(ones) / static_cast<double>(kN);
  r.statistic = p1;
  r.passed = std::fabs(p1 - 0.5) < 0.025;
  return r;
}

Ais31Result t7_homogeneity(const common::BitStream& bits) {
  Ais31Result r;
  r.name = "T7_homogeneity";
  constexpr std::size_t kN = 100000;
  if (bits.size() < kN + 1) {
    r.applicable = false;
    r.note = "requires 100001 bits";
    return r;
  }
  // Two-sample chi-square: do transitions out of state 0 and state 1 have
  // the same distribution of next bit?
  double c[2][2] = {};
  for (std::size_t i = 0; i < kN; ++i) {
    c[bits[i] ? 1 : 0][bits[i + 1] ? 1 : 0] += 1.0;
  }
  const double row0 = c[0][0] + c[0][1];
  const double row1 = c[1][0] + c[1][1];
  if (row0 < 100.0 || row1 < 100.0) {
    r.applicable = false;
    r.note = "one state almost never occurs";
    return r;
  }
  double chi2 = 0.0;
  for (int b = 0; b < 2; ++b) {
    const double col = c[0][b] + c[1][b];
    const double e0 = row0 * col / (row0 + row1);
    const double e1 = row1 * col / (row0 + row1);
    if (e0 > 0.0) chi2 += (c[0][b] - e0) * (c[0][b] - e0) / e0;
    if (e1 > 0.0) chi2 += (c[1][b] - e1) * (c[1][b] - e1) / e1;
  }
  r.statistic = chi2;
  r.passed = chi2 < 15.13;  // chi^2, 1 dof, alpha = 1e-4
  return r;
}

Ais31Result t8_entropy(const common::BitStream& bits, unsigned word_len,
                       std::size_t q, std::size_t k) {
  Ais31Result r;
  r.name = "T8_entropy";
  if (word_len < 1 || word_len > 16 || q < (1u << word_len)) {
    r.applicable = false;
    r.note = "bad parameters";
    return r;
  }
  if (bits.size() < (q + k) * word_len) {
    r.applicable = false;
    r.note = "requires (Q+K)*L bits";
    return r;
  }
  // Coron's estimator: g(i) = (1/ln 2) * sum_{j=1}^{i-1} 1/j, applied to
  // the distance since the previous occurrence of each word.
  std::vector<double> g((q + k) + 1, 0.0);
  double harmonic = 0.0;
  g[1] = 0.0;
  for (std::size_t i = 2; i < g.size(); ++i) {
    harmonic += 1.0 / static_cast<double>(i - 1);
    g[i] = harmonic / std::log(2.0);
  }

  std::vector<std::size_t> last(1u << word_len, 0);
  auto word_at = [&](std::size_t idx) {
    std::uint32_t v = 0;
    for (unsigned j = 0; j < word_len; ++j) {
      v = (v << 1) | (bits[idx * word_len + j] ? 1u : 0u);
    }
    return v;
  };
  for (std::size_t i = 0; i < q; ++i) last[word_at(i)] = i + 1;
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = q; i < q + k; ++i) {
    const std::uint32_t w = word_at(i);
    if (last[w] != 0) {
      sum += g[i + 1 - last[w]];
      ++used;
    } else {
      sum += g[i + 1];  // never seen: distance to sequence start
      ++used;
    }
    last[w] = i + 1;
  }
  r.statistic = sum / static_cast<double>(used);
  // AIS-31 bound for L = 8: f > 7.976 corresponds to > 0.997 entropy/bit.
  const double bound = word_len == 8 ? 7.976 : 0.997 * word_len;
  r.passed = r.statistic > bound;
  return r;
}

bool procedure_b(const common::BitStream& bits) {
  const Ais31Result results[] = {t6_uniform_distribution(bits),
                                 t7_homogeneity(bits), t8_entropy(bits)};
  for (const auto& r : results) {
    if (r.applicable && !r.passed) return false;
  }
  return true;
}

bool procedure_a(const common::BitStream& bits) {
  const Ais31Result results[] = {
      t0_disjointness(bits), t1_monobit(bits), t2_poker(bits),
      t3_runs(bits),         t4_long_run(bits), t5_autocorrelation(bits),
      t8_entropy(bits)};
  for (const auto& r : results) {
    if (r.applicable && !r.passed) return false;
  }
  return true;
}

}  // namespace trng::stat::ais31
