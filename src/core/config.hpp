// Design- and platform-parameter records (paper Sections 2 and 4.4).
//
// The paper's evaluation flow separates:
//   * platform parameters — physical properties of the die, obtained by
//     measurement: d0,LUT (average LUT delay), t_step (TDC bin width),
//     sigma_LUT (thermal jitter per traversal);
//   * design parameters — chosen by the designer using the stochastic
//     model: n (RO stages), m (TDC taps), k (down-sampling), f_CLK,
//     N_A / t_A (accumulation), n_p (XOR post-processing rate).
#pragma once

#include <stdexcept>

#include "common/types.hpp"
#include "sim/sampler.hpp"

namespace trng::core {

/// Physical parameters of the implementation platform (Section 5.1 values
/// as defaults — the ones measured on the paper's Spartan-6).
struct PlatformParams {
  Picoseconds d0_lut_ps = constants::kNominalLutDelayPs;      ///< d0,LUT
  Picoseconds t_step_ps = constants::kNominalCarryBinPs;      ///< t_step
  Picoseconds sigma_lut_ps = constants::kNominalJitterSigmaPs;///< sigma_LUT
  double f_clk_hz = constants::kSystemClockHz;

  /// Validates physical plausibility; throws std::invalid_argument.
  void validate() const {
    if (!(d0_lut_ps > 0) || !(t_step_ps > 0) || !(sigma_lut_ps > 0) ||
        !(f_clk_hz > 0)) {
      throw std::invalid_argument("PlatformParams: all values must be > 0");
    }
  }
};

/// Designer-chosen parameters of one TRNG instance.
struct DesignParams {
  int n = 3;   ///< ring-oscillator stages (paper: 3)
  int m = 36;  ///< TDC taps per line, multiple of 4 (paper: 36)
  int k = 1;   ///< down-sampling factor (paper: 1 or 4)

  /// N_A: accumulation time in system-clock cycles; t_A = N_A * T_clk.
  Cycles accumulation_cycles = 1;

  /// XOR post-processing compression rate n_p (1 = raw output).
  unsigned np = 1;

  sim::SamplingMode mode = sim::SamplingMode::kRestart;

  Picoseconds accumulation_time_ps(double f_clk_hz) const {
    return static_cast<double>(accumulation_cycles) * 1.0e12 / f_clk_hz;
  }

  /// Throws std::invalid_argument if the combination is not implementable.
  void validate() const {
    if (n < 1) throw std::invalid_argument("DesignParams: n must be >= 1");
    if (m < 4 || m % 4 != 0) {
      throw std::invalid_argument(
          "DesignParams: m must be a positive multiple of 4");
    }
    if (k < 1 || k > m) {
      throw std::invalid_argument("DesignParams: k must be in [1, m]");
    }
    if (accumulation_cycles == 0) {
      throw std::invalid_argument(
          "DesignParams: accumulation_cycles must be >= 1");
    }
    if (np == 0) throw std::invalid_argument("DesignParams: np must be >= 1");
  }
};

}  // namespace trng::core
