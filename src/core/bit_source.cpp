#include "core/bit_source.hpp"

#include <vector>

namespace trng::core {

common::BitStream BitSource::generate(common::Bits count) {
  common::BitStream bits;
  if (count.is_zero()) return bits;
  // One batched fill, then a word-level append: no per-bit push_back.
  std::vector<std::uint64_t> buf(common::bits_to_words(count).count(), 0);
  generate_into(buf.data(), count);
  bits.append_words(buf.data(), count.count());
  return bits;
}

}  // namespace trng::core
