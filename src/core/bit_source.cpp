#include "core/bit_source.hpp"

#include <vector>

namespace trng::core {

common::BitStream BitSource::generate(std::size_t count) {
  common::BitStream bits;
  if (count == 0) return bits;
  // One batched fill, then a word-level append: no per-bit push_back.
  std::vector<std::uint64_t> buf((count + 63) / 64, 0);
  generate_into(buf.data(), count);
  bits.append_words(buf.data(), count);
  return bits;
}

}  // namespace trng::core
