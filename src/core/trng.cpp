#include "core/trng.hpp"

#include <algorithm>
#include <string>

namespace trng::core {

namespace {

fpga::ElaboratedTrng elaborate_canonical(const fpga::Fabric& fabric,
                                         const DesignParams& params,
                                         int base_col, int base_row) {
  params.validate();
  const auto floorplan = fpga::TrngFloorplan::canonical(
      fabric.geometry(), params.n, params.m, base_col, base_row);
  return fabric.elaborate(floorplan, params.k);
}

}  // namespace

CarryChainTrng::CarryChainTrng(const fpga::Fabric& fabric, DesignParams params,
                               std::uint64_t seed,
                               const sim::NoiseConfig& noise, int base_col,
                               int base_row)
    : params_(params),
      elaborated_(elaborate_canonical(fabric, params, base_col, base_row)),
      sampler_(elaborated_, fabric.spec().flip_flop, noise, seed, params.mode,
               1.0e12 / constants::kSystemClockHz),
      extractor_(params.m, params.k) {}

bool CarryChainTrng::next_raw_bit() {
  const sim::CaptureResult capture =
      sampler_.next_capture(params_.accumulation_cycles);
  ++diagnostics_.captures;

  // Phenomenology accounting (Figure 4 classes).
  const sim::SnapshotClass cls = sim::classify_snapshots(capture.lines);
  switch (cls) {
    case sim::SnapshotClass::kDoubleEdge: ++diagnostics_.double_edges; break;
    case sim::SnapshotClass::kBubbles: ++diagnostics_.bubbles; break;
    case sim::SnapshotClass::kNoEdge: break;  // counted below via extractor
    case sim::SnapshotClass::kRegular: break;
  }

  const ExtractionResult r = extractor_.extract(capture.lines);
  if (!r.edge_found) {
    ++diagnostics_.missed_edges;
    return false;
  }
  return r.bit;
}

void CarryChainTrng::generate_into(std::uint64_t* words, common::Bits nbits) {
  std::fill_n(words, common::bits_to_words(nbits).count(), std::uint64_t{0});
  // Accumulate diagnostics in locals and fold them in once after the loop:
  // `words` may alias *this as far as the compiler knows, so member
  // increments inside the loop would each cost a load/store pair.
  const std::size_t n = nbits.count();
  std::uint64_t double_edges = 0, bubbles = 0, missed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sampler_.next_capture_into(params_.accumulation_cycles, scratch_);

    const sim::SnapshotClass cls = sim::classify_packed(scratch_);
    switch (cls) {
      case sim::SnapshotClass::kDoubleEdge: ++double_edges; break;
      case sim::SnapshotClass::kBubbles: ++bubbles; break;
      case sim::SnapshotClass::kNoEdge: break;  // counted below via extractor
      case sim::SnapshotClass::kRegular: break;
    }

    const ExtractionResult r = extractor_.extract_packed(scratch_);
    if (!r.edge_found) {
      ++missed;
      continue;  // the bit stays 0, as in next_raw_bit()
    }
    words[i >> 6] |= static_cast<std::uint64_t>(r.bit) << (i & 63);
  }
  diagnostics_.captures += n;
  diagnostics_.double_edges += double_edges;
  diagnostics_.bubbles += bubbles;
  diagnostics_.missed_edges += missed;
}

common::BitStream CarryChainTrng::generate_raw(common::Bits count) {
  return BitSource::generate(count);
}

common::BitStream CarryChainTrng::generate(common::Bits count) {
  if (count.is_zero()) return common::BitStream{};
  // count * np raw bits through the batched path, XOR-folded np -> 1: the
  // same stream XorPostProcessor::feed produces bit by bit.
  return BitSource::generate(count * params_.np).xor_fold(params_.np);
}

SourceInfo CarryChainTrng::info() const {
  SourceInfo si;
  si.name = "This work (k=" + std::to_string(params_.k) + ")";
  si.platform = "Spartan 6 (sim)";
  si.resources = std::to_string(elaborated_.resources.slices) + " slices";
  si.throughput_bps = raw_throughput_bps();
  return si;
}

double CarryChainTrng::raw_throughput_bps() const {
  return sampler_.schedule().raw_throughput_bps(params_.accumulation_cycles);
}

double CarryChainTrng::throughput_bps() const {
  return raw_throughput_bps() / static_cast<double>(params_.np);
}

}  // namespace trng::core
