#include "core/trng.hpp"

namespace trng::core {

namespace {

fpga::ElaboratedTrng elaborate_canonical(const fpga::Fabric& fabric,
                                         const DesignParams& params,
                                         int base_col, int base_row) {
  params.validate();
  const auto floorplan = fpga::TrngFloorplan::canonical(
      fabric.geometry(), params.n, params.m, base_col, base_row);
  return fabric.elaborate(floorplan, params.k);
}

}  // namespace

CarryChainTrng::CarryChainTrng(const fpga::Fabric& fabric, DesignParams params,
                               std::uint64_t seed,
                               const sim::NoiseConfig& noise, int base_col,
                               int base_row)
    : params_(params),
      elaborated_(elaborate_canonical(fabric, params, base_col, base_row)),
      sampler_(elaborated_, fabric.spec().flip_flop, noise, seed, params.mode,
               1.0e12 / constants::kSystemClockHz),
      extractor_(params.m, params.k) {}

bool CarryChainTrng::next_raw_bit() {
  const sim::CaptureResult capture =
      sampler_.next_capture(params_.accumulation_cycles);
  ++diagnostics_.captures;

  // Phenomenology accounting (Figure 4 classes).
  const sim::SnapshotClass cls = sim::classify_snapshots(capture.lines);
  switch (cls) {
    case sim::SnapshotClass::kDoubleEdge: ++diagnostics_.double_edges; break;
    case sim::SnapshotClass::kBubbles: ++diagnostics_.bubbles; break;
    case sim::SnapshotClass::kNoEdge: break;  // counted below via extractor
    case sim::SnapshotClass::kRegular: break;
  }

  const ExtractionResult r = extractor_.extract(capture.lines);
  if (!r.edge_found) {
    ++diagnostics_.missed_edges;
    return false;
  }
  return r.bit;
}

common::BitStream CarryChainTrng::generate_raw(std::size_t count) {
  common::BitStream bits;
  bits.reserve(count);
  for (std::size_t i = 0; i < count; ++i) bits.push_back(next_raw_bit());
  return bits;
}

common::BitStream CarryChainTrng::generate(std::size_t count) {
  XorPostProcessor pp(params_.np);
  common::BitStream bits;
  bits.reserve(count);
  while (bits.size() < count) {
    bool out;
    if (pp.feed(next_raw_bit(), out)) bits.push_back(out);
  }
  return bits;
}

double CarryChainTrng::raw_throughput_bps() const {
  return constants::kSystemClockHz /
         static_cast<double>(params_.accumulation_cycles);
}

double CarryChainTrng::throughput_bps() const {
  return raw_throughput_bps() / static_cast<double>(params_.np);
}

}  // namespace trng::core
