// CarryChainTrng: the paper's TRNG, end to end, on a simulated die.
//
//   ring oscillator (entropy source)
//     -> carry-chain TDC lines (digitization)
//     -> entropy extractor (XOR fold, first-edge priority encode, LSB)
//     -> optional XOR post-processing
//
// One raw bit is produced every N_A system-clock cycles, so raw throughput
// is f_CLK / N_A and post-processed throughput f_CLK / (N_A * n_p) — the
// accounting behind Table 1's throughput column.
#pragma once

#include <cstdint>

#include "common/bitstream.hpp"
#include "core/bit_source.hpp"
#include "core/config.hpp"
#include "core/extractor.hpp"
#include "core/postprocess.hpp"
#include "fpga/fabric.hpp"
#include "sim/sampler.hpp"

namespace trng::core {

/// The BitSource facet emits RAW (pre-post-processing) bits: next_bit() is
/// next_raw_bit() and generate_into() is the batched raw path. The
/// post-processed stream stays available as generate() (which name-hides
/// BitSource::generate — it consumes count * np raw bits), or, for
/// polymorphic consumers, by wrapping the TRNG in XorCompressedSource.
class CarryChainTrng : public BitSource {
 public:
  /// Places the canonical floorplan (Section 5) on `fabric`, elaborates it
  /// and builds the datapath. `noise` defaults to the full noise taxonomy;
  /// use sim::NoiseConfig::white_only() for the model's idealized world.
  /// Throws std::invalid_argument for invalid parameters/floorplans.
  CarryChainTrng(const fpga::Fabric& fabric, DesignParams params,
                 std::uint64_t seed,
                 const sim::NoiseConfig& noise = sim::NoiseConfig{},
                 int base_col = 0, int base_row = 17);

  /// Generates one raw (pre-post-processing) bit.
  /// A capture whose snapshots contain no edge (possible for too-small m)
  /// yields 0 and is counted in diagnostics().missed_edges.
  bool next_raw_bit();

  /// BitSource: one raw bit (scalar reference path).
  bool next_bit() override { return next_raw_bit(); }

  /// BitSource: `nbits` raw bits via the fused packed capture -> packed
  /// classify -> packed extract pipeline. Bit-identical to calling
  /// next_raw_bit() nbits times from the same generator state (the RNG
  /// draw order is preserved), but without per-capture allocations.
  void generate_into(std::uint64_t* words, common::Bits nbits) override;

  /// BitSource: identity + the paper's headline raw-rate figures.
  SourceInfo info() const override;

  /// Generates `count` raw bits (batched path).
  common::BitStream generate_raw(common::Bits count);

  /// Generates `count` post-processed bits (consumes count * np raw bits).
  common::BitStream generate(common::Bits count);

  /// Raw bit rate f_CLK / N_A in bits/s.
  double raw_throughput_bps() const;

  /// Post-processed bit rate f_CLK / (N_A * n_p) in bits/s.
  double throughput_bps() const;

  const DesignParams& params() const { return params_; }
  const fpga::ResourceReport& resources() const {
    return elaborated_.resources;
  }
  const fpga::ElaboratedTrng& elaborated() const { return elaborated_; }

  struct Diagnostics {
    std::uint64_t captures = 0;
    std::uint64_t missed_edges = 0;   ///< no edge in any line (Sec. 5.2)
    std::uint64_t double_edges = 0;   ///< Fig. 4b events
    std::uint64_t bubbles = 0;        ///< Fig. 4c events
  };
  const Diagnostics& diagnostics() const { return diagnostics_; }

  /// Metastable FF captures so far (from the delay-line simulators).
  std::uint64_t metastable_events() const {
    return sampler_.metastable_events();
  }

 private:
  DesignParams params_;
  fpga::ElaboratedTrng elaborated_;
  sim::SampleController sampler_;
  EntropyExtractor extractor_;
  Diagnostics diagnostics_;
  sim::PackedCapture scratch_;  ///< reused by generate_into
};

}  // namespace trng::core
