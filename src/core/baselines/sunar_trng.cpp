#include "core/baselines/sunar_trng.hpp"

#include <cmath>
#include <stdexcept>

namespace trng::core::baselines {

SunarSchellekensTrng::SunarSchellekensTrng(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.rings < 1 || params_.stages_per_ring < 1 ||
      !(params_.d0_ps > 0.0) || !(params_.sample_rate_hz > 0.0) ||
      params_.code_out == 0 || params_.code_in % params_.code_out != 0) {
    throw std::invalid_argument("SunarSchellekensTrng: invalid parameters");
  }
  sample_period_ps_ = 1.0e12 / params_.sample_rate_hz;
  phase_.resize(static_cast<std::size_t>(params_.rings));
  half_period_.resize(static_cast<std::size_t>(params_.rings));
  sig_step_.resize(static_cast<std::size_t>(params_.rings));
  for (int i = 0; i < params_.rings; ++i) {
    // Process variation de-tunes the rings a few percent; identical rings
    // would phase-lock in the XOR and kill the design, so the spread is
    // essential (and present in real fabric).
    const double spread = 1.0 + 0.03 * rng_.next_gaussian();
    half_period_[static_cast<std::size_t>(i)] =
        static_cast<double>(params_.stages_per_ring) * params_.d0_ps *
        std::max(spread, 0.5);
    phase_[static_cast<std::size_t>(i)] = rng_.next_double() * 2.0;
    // Traversals per sample period; the accumulated-jitter scale (Eq. 1 per
    // ring: variance grows with the number of traversals) is fixed per
    // ring, so fold sigma * sqrt(traversals) once here.
    const double traversals =
        sample_period_ps_ / (half_period_[static_cast<std::size_t>(i)] /
                             static_cast<double>(params_.stages_per_ring));
    sig_step_[static_cast<std::size_t>(i)] =
        params_.sigma_ps * std::sqrt(traversals);
  }
}

bool SunarSchellekensTrng::next_raw_sample() {
  bool acc = false;
  for (std::size_t i = 0; i < phase_.size(); ++i) {
    // Advance the ring by one sample period: the phase (in half-periods)
    // grows by dt/half_period plus accumulated white jitter.
    const double jitter_ps = sig_step_[i] * rng_.next_gaussian();
    phase_[i] += (sample_period_ps_ + jitter_ps) / half_period_[i];
    // Square wave: value = parity of completed half-periods.
    const auto halves = static_cast<long long>(std::floor(phase_[i]));
    acc = acc != ((halves % 2) != 0);
  }
  return acc;
}

bool SunarSchellekensTrng::next_bit() {
  if (out_pos_ < out_buffer_.size()) return out_buffer_[out_pos_++];
  // Refill: collect code_in raw samples, compress to code_out parity bits
  // over disjoint groups.
  out_buffer_.assign(params_.code_out, false);
  const unsigned group = params_.code_in / params_.code_out;
  for (unsigned o = 0; o < params_.code_out; ++o) {
    bool parity = false;
    for (unsigned g = 0; g < group; ++g) parity = parity != next_raw_sample();
    out_buffer_[o] = parity;
  }
  out_pos_ = 0;
  return out_buffer_[out_pos_++];
}

void SunarSchellekensTrng::refill_out_buffer_batched() {
  out_buffer_.assign(params_.code_out, false);
  const unsigned group = params_.code_in / params_.code_out;
  const std::size_t rings = phase_.size();
  gauss_scratch_.resize(rings);
  // Hoisted SoA lane state: one contiguous pass per sample over all rings.
  double* phase = phase_.data();
  const double* half = half_period_.data();
  const double* sig = sig_step_.data();
  double* gs = gauss_scratch_.data();
  const double period = sample_period_ps_;
  for (unsigned o = 0; o < params_.code_out; ++o) {
    unsigned parity = 0;
    for (unsigned g = 0; g < group; ++g) {
      // One block draw per sample: ring i consumes value i, the order the
      // scalar loop draws in.
      rng_.fill_gaussian(gs, rings);
      unsigned acc = 0;
      for (std::size_t i = 0; i < rings; ++i) {
        const double jitter_ps = sig[i] * gs[i];
        phase[i] += (period + jitter_ps) / half[i];
        const auto halves = static_cast<long long>(std::floor(phase[i]));
        acc ^= static_cast<unsigned>((halves % 2) != 0);
      }
      parity ^= acc;
    }
    out_buffer_[o] = parity != 0;
  }
  out_pos_ = 0;
}

void SunarSchellekensTrng::generate_into(std::uint64_t* words,
                                         common::Bits nbits) {
  // Same stream as nbits next_bit() calls: drain the pending resilient-
  // function buffer first, then refill through the batched lane kernel.
  // Word packing mirrors BaselineTrng::generate_into (register-accumulated,
  // tail bits zero).
  const std::size_t n = nbits.count();
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (out_pos_ == out_buffer_.size()) refill_out_buffer_batched();
    word |= static_cast<std::uint64_t>(out_buffer_[out_pos_++]) << (i & 63);
    if ((i & 63) == 63) {
      words[i >> 6] = word;
      word = 0;
    }
  }
  if (common::bit_offset(nbits) != 0) {
    words[common::word_index(nbits).count()] = word;
  }
}

BaselineInfo SunarSchellekensTrng::info() const {
  BaselineInfo bi;
  bi.name = "[8] Schellekens et al. (Sunar construction)";
  bi.platform = "Virtex 2 pro";
  bi.resources = "565 slices";
  bi.throughput_bps = params_.sample_rate_hz *
                      static_cast<double>(params_.code_out) /
                      static_cast<double>(params_.code_in);
  return bi;
}

}  // namespace trng::core::baselines
