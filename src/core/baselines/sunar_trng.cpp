#include "core/baselines/sunar_trng.hpp"

#include <cmath>
#include <stdexcept>

namespace trng::core::baselines {

SunarSchellekensTrng::SunarSchellekensTrng(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.rings < 1 || params_.stages_per_ring < 1 ||
      !(params_.d0_ps > 0.0) || !(params_.sample_rate_hz > 0.0) ||
      params_.code_out == 0 || params_.code_in % params_.code_out != 0) {
    throw std::invalid_argument("SunarSchellekensTrng: invalid parameters");
  }
  sample_period_ps_ = 1.0e12 / params_.sample_rate_hz;
  phase_.resize(static_cast<std::size_t>(params_.rings));
  half_period_.resize(static_cast<std::size_t>(params_.rings));
  for (int i = 0; i < params_.rings; ++i) {
    // Process variation de-tunes the rings a few percent; identical rings
    // would phase-lock in the XOR and kill the design, so the spread is
    // essential (and present in real fabric).
    const double spread = 1.0 + 0.03 * rng_.next_gaussian();
    half_period_[static_cast<std::size_t>(i)] =
        static_cast<double>(params_.stages_per_ring) * params_.d0_ps *
        std::max(spread, 0.5);
    phase_[static_cast<std::size_t>(i)] = rng_.next_double() * 2.0;
  }
}

bool SunarSchellekensTrng::next_raw_sample() {
  bool acc = false;
  for (std::size_t i = 0; i < phase_.size(); ++i) {
    // Advance the ring by one sample period: the phase (in half-periods)
    // grows by dt/half_period plus accumulated white jitter (Eq. 1 per
    // ring: variance grows with the number of traversals).
    const double traversals =
        sample_period_ps_ / (half_period_[i] /
                             static_cast<double>(params_.stages_per_ring));
    const double jitter_ps =
        params_.sigma_ps * std::sqrt(traversals) * rng_.next_gaussian();
    phase_[i] += (sample_period_ps_ + jitter_ps) / half_period_[i];
    // Square wave: value = parity of completed half-periods.
    const auto halves = static_cast<long long>(std::floor(phase_[i]));
    acc = acc != ((halves % 2) != 0);
  }
  return acc;
}

bool SunarSchellekensTrng::next_bit() {
  if (out_pos_ < out_buffer_.size()) return out_buffer_[out_pos_++];
  // Refill: collect code_in raw samples, compress to code_out parity bits
  // over disjoint groups.
  out_buffer_.assign(params_.code_out, false);
  const unsigned group = params_.code_in / params_.code_out;
  for (unsigned o = 0; o < params_.code_out; ++o) {
    bool parity = false;
    for (unsigned g = 0; g < group; ++g) parity = parity != next_raw_sample();
    out_buffer_[o] = parity;
  }
  out_pos_ = 0;
  return out_buffer_[out_pos_++];
}

BaselineInfo SunarSchellekensTrng::info() const {
  BaselineInfo bi;
  bi.name = "[8] Schellekens et al. (Sunar construction)";
  bi.platform = "Virtex 2 pro";
  bi.resources = "565 slices";
  bi.throughput_bps = params_.sample_rate_hz *
                      static_cast<double>(params_.code_out) /
                      static_cast<double>(params_.code_in);
  return bi;
}

}  // namespace trng::core::baselines
