#include "core/baselines/str_trng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trng::core::baselines {

SelfTimedRingTrng::SelfTimedRingTrng(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.stages < 2 || !(params_.ring_period_ps > 0.0) ||
      !(params_.sample_rate_hz > 0.0) || !(params_.stage_jitter_ps >= 0.0)) {
    throw std::invalid_argument("SelfTimedRingTrng: invalid parameters");
  }
  const double sample_period_ps = 1.0e12 / params_.sample_rate_hz;
  // Jitter accumulated over one sample period, scaled from the per-ring-
  // period figure (variance linear in elapsed time — same accumulation law
  // as Eq. 1).
  sigma_per_sample_ = params_.stage_jitter_ps *
                      std::sqrt(sample_period_ps / params_.ring_period_ps);
  phase_ps_ = rng_.next_double() * params_.ring_period_ps;
  // The ring period is incommensurate with the sample clock; the residual
  // phase advance per sample sweeps the bins deterministically.
  drift_ps_ = std::fmod(sample_period_ps, params_.ring_period_ps);
  resolution_ps_ = params_.ring_period_ps / static_cast<double>(params_.stages);
}

bool SelfTimedRingTrng::next_bit() {
  phase_ps_ += drift_ps_ + sigma_per_sample_ * rng_.next_gaussian();
  phase_ps_ = std::fmod(phase_ps_, params_.ring_period_ps);
  if (phase_ps_ < 0.0) phase_ps_ += params_.ring_period_ps;
  const auto bin =
      static_cast<long long>(std::floor(phase_ps_ / resolution_ps_));
  return (bin % 2) != 0;
}

void SelfTimedRingTrng::generate_into(std::uint64_t* words,
                                      common::Bits nbits) {
  // Per-call setup hoisted once; the walk state and RNG run on locals and
  // are written back after the loop. The update is the scalar next_bit()
  // body on pre-drawn Gaussian blocks — same draws, same arithmetic.
  const std::size_t n = nbits.count();
  const double period = params_.ring_period_ps;
  const double drift = drift_ps_;
  const double sigma = sigma_per_sample_;
  const double delta = resolution_ps_;
  double phase = phase_ps_;
  common::Xoshiro256StarStar rng = rng_;
  double gauss[256];
  std::uint64_t word = 0;
  for (std::size_t done = 0; done < n;) {
    const std::size_t chunk = std::min<std::size_t>(n - done, 256);
    rng.fill_gaussian(gauss, chunk);
    for (std::size_t c = 0; c < chunk; ++c) {
      phase += drift + sigma * gauss[c];
      phase = std::fmod(phase, period);
      if (phase < 0.0) phase += period;
      const auto bin = static_cast<long long>(std::floor(phase / delta));
      const std::size_t i = done + c;
      word |= static_cast<std::uint64_t>((bin % 2) != 0) << (i & 63);
      if ((i & 63) == 63) {
        words[i >> 6] = word;
        word = 0;
      }
    }
    done += chunk;
  }
  if (common::bit_offset(nbits) != 0) {
    words[common::word_index(nbits).count()] = word;
  }
  phase_ps_ = phase;
  rng_ = rng;
}

BaselineInfo SelfTimedRingTrng::info() const {
  BaselineInfo bi;
  bi.name = "[1] Cherkaoui et al. (self-timed ring)";
  bi.platform = params_.platform;
  bi.resources = ">511 LUTs";
  bi.throughput_bps = params_.sample_rate_hz;
  return bi;
}

}  // namespace trng::core::baselines
