#include "core/baselines/str_trng.hpp"

#include <cmath>
#include <stdexcept>

namespace trng::core::baselines {

SelfTimedRingTrng::SelfTimedRingTrng(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.stages < 2 || !(params_.ring_period_ps > 0.0) ||
      !(params_.sample_rate_hz > 0.0) || !(params_.stage_jitter_ps >= 0.0)) {
    throw std::invalid_argument("SelfTimedRingTrng: invalid parameters");
  }
  const double sample_period_ps = 1.0e12 / params_.sample_rate_hz;
  // Jitter accumulated over one sample period, scaled from the per-ring-
  // period figure (variance linear in elapsed time — same accumulation law
  // as Eq. 1).
  sigma_per_sample_ = params_.stage_jitter_ps *
                      std::sqrt(sample_period_ps / params_.ring_period_ps);
  phase_ps_ = rng_.next_double() * params_.ring_period_ps;
  // The ring period is incommensurate with the sample clock; the residual
  // phase advance per sample sweeps the bins deterministically.
  drift_ps_ = std::fmod(sample_period_ps, params_.ring_period_ps);
}

Picoseconds SelfTimedRingTrng::phase_resolution_ps() const {
  return params_.ring_period_ps / static_cast<double>(params_.stages);
}

bool SelfTimedRingTrng::next_bit() {
  phase_ps_ += drift_ps_ + sigma_per_sample_ * rng_.next_gaussian();
  phase_ps_ = std::fmod(phase_ps_, params_.ring_period_ps);
  if (phase_ps_ < 0.0) phase_ps_ += params_.ring_period_ps;
  const double delta = phase_resolution_ps();
  const auto bin = static_cast<long long>(std::floor(phase_ps_ / delta));
  return (bin % 2) != 0;
}

BaselineInfo SelfTimedRingTrng::info() const {
  BaselineInfo bi;
  bi.name = "[1] Cherkaoui et al. (self-timed ring)";
  bi.platform = params_.platform;
  bi.resources = ">511 LUTs";
  bi.throughput_bps = params_.sample_rate_hz;
  return bi;
}

}  // namespace trng::core::baselines
