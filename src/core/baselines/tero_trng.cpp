#include "core/baselines/tero_trng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trng::core::baselines {

TeroTrng::TeroTrng(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (!(params_.mean_count > 1.0) || !(params_.rel_sigma > 0.0) ||
      !(params_.trigger_rate_hz > 0.0)) {
    throw std::invalid_argument("TeroTrng: invalid parameters");
  }
  // Fixed per design; hoisted so the per-trigger paths do not re-log.
  log_mean_ = std::log(params_.mean_count);
}

bool TeroTrng::next_bit() {
  // Multiplicative decay of the TERO asymmetry => lognormal count.
  const double count =
      std::exp(log_mean_ + params_.rel_sigma * rng_.next_gaussian());
  last_count_ = static_cast<long long>(std::llround(count));
  if (last_count_ < 1) last_count_ = 1;
  return (last_count_ % 2) != 0;
}

void TeroTrng::generate_into(std::uint64_t* words, common::Bits nbits) {
  // The scalar trigger model on pre-drawn Gaussian blocks; RNG and the
  // running count live in locals and are written back after the loop.
  const std::size_t n = nbits.count();
  const double log_mean = log_mean_;
  const double rel_sigma = params_.rel_sigma;
  common::Xoshiro256StarStar rng = rng_;
  long long last = last_count_;
  double gauss[256];
  std::uint64_t word = 0;
  for (std::size_t done = 0; done < n;) {
    const std::size_t chunk = std::min<std::size_t>(n - done, 256);
    rng.fill_gaussian(gauss, chunk);
    for (std::size_t c = 0; c < chunk; ++c) {
      const double count = std::exp(log_mean + rel_sigma * gauss[c]);
      last = static_cast<long long>(std::llround(count));
      if (last < 1) last = 1;
      const std::size_t i = done + c;
      word |= static_cast<std::uint64_t>((last % 2) != 0) << (i & 63);
      if ((i & 63) == 63) {
        words[i >> 6] = word;
        word = 0;
      }
    }
    done += chunk;
  }
  if (common::bit_offset(nbits) != 0) {
    words[common::word_index(nbits).count()] = word;
  }
  rng_ = rng;
  last_count_ = last;
}

BaselineInfo TeroTrng::info() const {
  BaselineInfo bi;
  bi.name = "[11] Varchola & Drutarovsky (TERO)";
  bi.platform = "Spartan 3E";
  bi.resources = "not reported";
  bi.throughput_bps = params_.trigger_rate_hz;
  return bi;
}

}  // namespace trng::core::baselines
