#include "core/baselines/tero_trng.hpp"

#include <cmath>
#include <stdexcept>

namespace trng::core::baselines {

TeroTrng::TeroTrng(Params params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (!(params_.mean_count > 1.0) || !(params_.rel_sigma > 0.0) ||
      !(params_.trigger_rate_hz > 0.0)) {
    throw std::invalid_argument("TeroTrng: invalid parameters");
  }
}

bool TeroTrng::next_bit() {
  // Multiplicative decay of the TERO asymmetry => lognormal count.
  const double log_mean = std::log(params_.mean_count);
  const double count =
      std::exp(log_mean + params_.rel_sigma * rng_.next_gaussian());
  last_count_ = static_cast<long long>(std::llround(count));
  if (last_count_ < 1) last_count_ = 1;
  return (last_count_ % 2) != 0;
}

BaselineInfo TeroTrng::info() const {
  BaselineInfo bi;
  bi.name = "[11] Varchola & Drutarovsky (TERO)";
  bi.platform = "Spartan 3E";
  bi.resources = "not reported";
  bi.throughput_bps = params_.trigger_rate_hz;
  return bi;
}

}  // namespace trng::core::baselines
