// Self-timed-ring TRNG of Cherkaoui/Fischer/Fesquet/Aubert [1]
// ("A very high speed true random number generator with entropy
// assessment", CHES 2013):
//
//   * an L = 511 stage self-timed (asynchronous, Muller-gate) ring holding
//     many tokens whose events are evenly spaced Delta = T / L apart —
//     effectively a multi-phase clock with phase resolution far below a
//     gate delay,
//   * one system-clock flip-flop samples a ring phase; because the phase
//     grid is so fine, a fresh sample falls in a new Delta-bin every time
//     and the per-sample entropy is high without long accumulation,
//   * published throughput: 133 Mb/s (Cyclone 3) / 100 Mb/s (Virtex 5),
//     resources > 511 LUTs for the ring alone.
//
// Behavioural model: the sampled phase offset performs a Gaussian random
// walk between samples (jitter accumulated over one sample period), plus a
// small incommensurate drift (ring period is never an exact multiple of the
// sample period); the output bit is the parity of the Delta-bin containing
// the phase — the same "alternating bins" digitization as the paper's TDC,
// with Delta playing the role of t_step.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/baselines/baseline.hpp"

namespace trng::core::baselines {

class SelfTimedRingTrng : public BaselineTrng {
 public:
  struct Params {
    int stages = 511;                 ///< L
    /// T (~400 MHz event train). Deliberately incommensurate with the
    /// 10 ns sample period so the sampled phase sweeps the bins (a real
    /// STR's period never divides the system clock exactly).
    Picoseconds ring_period_ps = 2497.3;
    Picoseconds stage_jitter_ps = 2.5;    ///< event-train jitter per period
    double sample_rate_hz = 100.0e6;      ///< Virtex-5 figure
    /// Reported platform for info(); Table 2 lists both the Virtex-5 and
    /// the (faster) Cyclone-3 implementations of the same design.
    std::string platform = "Virtex 5";
  };

  SelfTimedRingTrng(Params params, std::uint64_t seed);
  explicit SelfTimedRingTrng(std::uint64_t seed)
      : SelfTimedRingTrng(Params{}, seed) {}

  bool next_bit() override;

  /// Batched path: block Gaussian fills feed the same phase-walk update as
  /// next_bit() with the per-call setup (bin width, period, RNG state)
  /// hoisted out of the bit loop. Bit-identical to the scalar path.
  void generate_into(std::uint64_t* words, common::Bits nbits) override;

  BaselineInfo info() const override;

  /// Phase-bin width Delta = T / L in ps (fixed per design; hoisted to a
  /// member at construction so the sampling loops do not re-divide).
  Picoseconds phase_resolution_ps() const { return resolution_ps_; }

 private:
  Params params_;
  common::Xoshiro256StarStar rng_;
  double phase_ps_ = 0.0;      ///< sampled phase offset within the period
  double drift_ps_ = 0.0;      ///< deterministic incommensurate drift/sample
  double sigma_per_sample_ = 0.0;
  double resolution_ps_ = 0.0; ///< Delta = T / L
};

}  // namespace trng::core::baselines
