// TERO (Transient Effect Ring Oscillator) TRNG of Varchola & Drutarovsky
// [11] ("New High Entropy Element for FPGA Based True Random Number
// Generators", CHES 2010):
//
//   * a bistable loop is kicked into temporary oscillation by each trigger
//     pulse; it oscillates for a *random* number of cycles before settling
//     into a stable state (jitter accumulates multiplicatively in the decay
//     of the duty-cycle asymmetry),
//   * a counter counts the oscillations; the counter LSB is the random bit,
//   * published throughput: 250 kb/s on Spartan-3E (resources not
//     reported).
//
// Behavioural model: the oscillation count for each trigger is drawn from a
// lognormal-ish distribution (Gaussian in the log domain matches the
// multiplicative decay of the TERO asymmetry) around a mean count; the bit
// is the count's parity. Mean count and relative sigma default to values in
// the range reported by Varchola & Drutarovsky (mean ~ 100s of cycles,
// enough spread to cover many parities).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/baselines/baseline.hpp"

namespace trng::core::baselines {

class TeroTrng : public BaselineTrng {
 public:
  struct Params {
    double mean_count = 220.0;   ///< mean oscillation cycles per trigger
    double rel_sigma = 0.045;    ///< relative sigma of the count
    double trigger_rate_hz = 250.0e3;
  };

  TeroTrng(Params params, std::uint64_t seed);
  explicit TeroTrng(std::uint64_t seed) : TeroTrng(Params{}, seed) {}

  bool next_bit() override;

  /// Batched path: the scalar count model on pre-drawn Gaussian blocks,
  /// with log(mean_count) and the RNG state hoisted out of the bit loop.
  /// Bit-identical to next_bit() (including last_count()).
  void generate_into(std::uint64_t* words, common::Bits nbits) override;

  BaselineInfo info() const override;

  /// The raw oscillation count of the most recent trigger (diagnostics).
  long long last_count() const { return last_count_; }

 private:
  Params params_;
  common::Xoshiro256StarStar rng_;
  double log_mean_ = 0.0;  ///< log(mean_count), fixed per design
  long long last_count_ = 0;
};

}  // namespace trng::core::baselines
