// Multi-ring-oscillator TRNG of Sunar/Martin/Stinson [9] as implemented on
// FPGA by Schellekens/Preneel/Verbauwhede [8] ("FPGA vendor agnostic true
// random number generator", FPL 2006):
//
//   * 110 free-running 3-stage ring oscillators,
//   * all outputs XORed together and sampled at f_s = 40 MHz,
//   * resilient-function post-processing compressing 256 -> 16 bits,
//     giving 40 MHz * 16/256 = 2.5 Mb/s.
//
// Behavioural model: each ring's phase performs a Gaussian random walk
// (white jitter per traversal, Eq. 1 applies per ring); the sampled bit is
// the XOR of the rings' square-wave values. The published resilient function
// is a [256, 16, 113] code; we substitute a [256, 16] XOR-fold (each output
// bit the parity of a disjoint 16-bit group), which preserves the
// compression rate and linearity but not the full minimum distance — noted
// as a deviation since Table 2 only uses resources and throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/baselines/baseline.hpp"

namespace trng::core::baselines {

class SunarSchellekensTrng : public BaselineTrng {
 public:
  struct Params {
    int rings = 110;
    int stages_per_ring = 3;
    Picoseconds d0_ps = 480.0;     ///< per-stage delay
    Picoseconds sigma_ps = 2.0;    ///< per-traversal white jitter
    double sample_rate_hz = 40.0e6;
    unsigned code_in = 256;        ///< resilient-function input width
    unsigned code_out = 16;        ///< resilient-function output width
  };

  SunarSchellekensTrng(Params params, std::uint64_t seed);
  SunarSchellekensTrng(std::uint64_t seed)
      : SunarSchellekensTrng(Params{}, seed) {}

  bool next_bit() override;

  /// Batched path: refills the resilient-function buffer with the SoA lane
  /// kernel — per sample, one fill_gaussian block of `rings` draws feeds a
  /// flat loop over the per-ring phase/half-period/jitter-scale arrays
  /// (the rings are the parallel lanes). Bit-identical to next_bit(): the
  /// Gaussian stream, the per-ring arithmetic and the fold order are the
  /// scalar path's exactly.
  void generate_into(std::uint64_t* words, common::Bits nbits) override;

  BaselineInfo info() const override;

  /// One pre-post-processing sample (XOR of all rings at the sample clock).
  /// Scalar reference: draws each ring's Gaussian on demand.
  bool next_raw_sample();

 private:
  void refill_out_buffer_batched();

  Params params_;
  common::Xoshiro256StarStar rng_;
  std::vector<double> phase_;        ///< per-ring phase in half-periods
  std::vector<double> half_period_;  ///< per-ring half-period (ps)
  /// Per-ring accumulated-jitter scale sigma * sqrt(traversals per sample),
  /// hoisted out of the per-sample loop (bit-identical: the scalar path
  /// multiplied left-to-right, so the pre-folded product is the same).
  std::vector<double> sig_step_;
  std::vector<double> gauss_scratch_;  ///< one fill_gaussian block per sample
  double sample_period_ps_;
  std::vector<bool> out_buffer_;
  std::size_t out_pos_ = 0;
};

}  // namespace trng::core::baselines
