// Common reporting interface for the related-work TRNGs of Table 2.
//
// The baselines are behavioural simulations: they reproduce each design's
// bit-generation mechanism (where the entropy comes from and at what rate)
// plus its published resource/throughput figures, which is what Table 2
// compares. They are NOT gate-accurate reimplementations of third-party
// netlists; deviations are noted per class.
#pragma once

#include <string>

#include "common/bitstream.hpp"

namespace trng::core::baselines {

struct BaselineInfo {
  std::string work;        ///< citation tag, e.g. "[8] Schellekens et al."
  std::string platform;    ///< FPGA family of the published implementation
  std::string resources;   ///< as reported in Table 2
  double throughput_bps = 0.0;
};

class BaselineTrng {
 public:
  virtual ~BaselineTrng() = default;

  virtual bool next_bit() = 0;
  virtual BaselineInfo info() const = 0;

  common::BitStream generate(std::size_t count) {
    common::BitStream bits;
    bits.reserve(count);
    for (std::size_t i = 0; i < count; ++i) bits.push_back(next_bit());
    return bits;
  }
};

}  // namespace trng::core::baselines
