// Common reporting interface for the related-work TRNGs of Table 2.
//
// The baselines are behavioural simulations: they reproduce each design's
// bit-generation mechanism (where the entropy comes from and at what rate)
// plus its published resource/throughput figures, which is what Table 2
// compares. They are NOT gate-accurate reimplementations of third-party
// netlists; deviations are noted per class.
#pragma once

#include <cstdint>

#include "common/bitstream.hpp"
#include "core/bit_source.hpp"

namespace trng::core::baselines {

/// The old per-baseline info struct is now the repo-wide SourceInfo (its
/// `work` citation tag became `name`); the alias keeps old spellings alive.
using BaselineInfo = SourceInfo;

/// Related-work baselines are inherently scalar mechanisms (one trigger /
/// one sample clock edge per bit), so next_bit() stays their primary
/// virtual and the batched contract packs it into words here — callers
/// still get the word-level interface and a BitStream without per-bit
/// push_back.
class BaselineTrng : public BitSource {
 public:
  bool next_bit() override = 0;

  void generate_into(std::uint64_t* words, common::Bits nbits) override {
    // Accumulate each word in a register and store it once: per-bit |= into
    // `words` would read-modify-write memory the compiler cannot keep in a
    // register across the virtual next_bit() call. Bits at or above `nbits`
    // in the final word stay zero.
    // The pack is branchless because the bit is ~50/50 by design — a
    // conditional OR would mispredict every other call.
    const std::size_t n = nbits.count();
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < n; ++i) {
      word |= static_cast<std::uint64_t>(next_bit()) << (i & 63);
      if ((i & 63) == 63) {
        words[i >> 6] = word;
        word = 0;
      }
    }
    if (common::bit_offset(nbits) != 0) {
      words[common::word_index(nbits).count()] = word;
    }
  }
};

}  // namespace trng::core::baselines
