#include "core/extractor.hpp"

#include <stdexcept>

namespace trng::core {

EntropyExtractor::EntropyExtractor(int m, int k) : m_(m), k_(k) {
  if (m < 2) {
    throw std::invalid_argument("EntropyExtractor: need m >= 2 taps");
  }
  if (k < 1 || k > m) {
    throw std::invalid_argument("EntropyExtractor: k must be in [1, m]");
  }
}

std::vector<bool> EntropyExtractor::xor_fold(
    const std::vector<sim::LineSnapshot>& lines) const {
  if (lines.empty()) {
    throw std::invalid_argument("EntropyExtractor: no line snapshots");
  }
  std::vector<bool> v(static_cast<std::size_t>(m_), false);
  for (const auto& line : lines) {
    if (static_cast<int>(line.size()) != m_) {
      throw std::invalid_argument(
          "EntropyExtractor: snapshot width != configured m");
    }
    for (int j = 0; j < m_; ++j) {
      v[static_cast<std::size_t>(j)] =
          v[static_cast<std::size_t>(j)] != line[static_cast<std::size_t>(j)];
    }
  }
  return v;
}

ExtractionResult EntropyExtractor::extract(
    const std::vector<sim::LineSnapshot>& lines) const {
  const std::vector<bool> v = xor_fold(lines);

  // Priority-encode the first transition of the folded vector.
  ExtractionResult r;
  for (int j = 0; j + 1 < m_; ++j) {
    if (v[static_cast<std::size_t>(j)] != v[static_cast<std::size_t>(j + 1)]) {
      r.edge_found = true;
      r.edge_position = j;
      const int binned = j / k_;
      r.bit = (binned & 1) != 0;
      break;
    }
  }
  return r;
}

}  // namespace trng::core
