#include "core/extractor.hpp"

#include <bit>
#include <stdexcept>

namespace trng::core {

EntropyExtractor::EntropyExtractor(int m, int k) : m_(m), k_(k) {
  if (m < 2) {
    throw std::invalid_argument("EntropyExtractor: need m >= 2 taps");
  }
  if (k < 1 || k > m) {
    throw std::invalid_argument("EntropyExtractor: k must be in [1, m]");
  }
}

std::vector<bool> EntropyExtractor::xor_fold(
    const std::vector<sim::LineSnapshot>& lines) const {
  if (lines.empty()) {
    throw std::invalid_argument("EntropyExtractor: no line snapshots");
  }
  std::vector<bool> v(static_cast<std::size_t>(m_), false);
  for (const auto& line : lines) {
    if (static_cast<int>(line.size()) != m_) {
      throw std::invalid_argument(
          "EntropyExtractor: snapshot width != configured m");
    }
    for (int j = 0; j < m_; ++j) {
      v[static_cast<std::size_t>(j)] =
          v[static_cast<std::size_t>(j)] != line[static_cast<std::size_t>(j)];
    }
  }
  return v;
}

ExtractionResult EntropyExtractor::extract(
    const std::vector<sim::LineSnapshot>& lines) const {
  const std::vector<bool> v = xor_fold(lines);

  // Priority-encode the first transition of the folded vector.
  ExtractionResult r;
  for (int j = 0; j + 1 < m_; ++j) {
    if (v[static_cast<std::size_t>(j)] != v[static_cast<std::size_t>(j + 1)]) {
      r.edge_found = true;
      r.edge_position = j;
      const int binned = j / k_;
      r.bit = (binned & 1) != 0;
      break;
    }
  }
  return r;
}

ExtractionResult EntropyExtractor::extract_packed(
    const sim::PackedCapture& capture) const {
  if (capture.lines < 1) {
    throw std::invalid_argument("EntropyExtractor: no line snapshots");
  }
  if (capture.taps != m_) {
    throw std::invalid_argument(
        "EntropyExtractor: snapshot width != configured m");
  }
  ExtractionResult r;
  const std::size_t nwords = static_cast<std::size_t>(capture.words_per_line);
  // Lazily XOR-fold one word of all lines at a time: the first edge is
  // almost always in the first word, so later words are rarely touched.
  auto folded_word = [&](std::size_t w) {
    std::uint64_t x = 0;
    for (int i = 0; i < capture.lines; ++i) x ^= capture.line(i)[w];
    return x;
  };
  std::uint64_t cur = folded_word(0);
  for (std::size_t w = 0; w < nwords; ++w) {
    const std::uint64_t next = (w + 1 < nwords) ? folded_word(w + 1) : 0;
    // Bit b of `e` marks a transition between taps 64w+b and 64w+b+1.
    std::uint64_t e = cur ^ ((cur >> 1) | ((next & 1ULL) << 63));
    // Keep only valid edge positions j with j + 1 < m.
    const std::size_t base = w * 64;
    const std::size_t pairs = static_cast<std::size_t>(m_) - 1;
    if (pairs < base + 64) {
      const std::size_t valid = pairs > base ? pairs - base : 0;
      e &= valid == 0 ? 0ULL : (~0ULL >> (64 - valid));
    }
    if (e != 0) {
      const int j = static_cast<int>(base) + std::countr_zero(e);
      r.edge_found = true;
      r.edge_position = j;
      const int binned = j / k_;
      r.bit = (binned & 1) != 0;
      return r;
    }
    cur = next;
  }
  return r;
}

}  // namespace trng::core
