// The paper's entropy extractor (Figure 5).
//
// Input: the n line snapshots C[i][j] captured by the TDCs. Processing:
//   1. bit-wise XOR of all lines into one m-bit vector v,
//   2. edge detection: e[j] = v[j] XOR v[j+1],
//   3. priority encoding of the FIRST edge (lowest tap index = most recent
//      signal history). Taking the first edge both implements the
//      "decode the first edge, ignore the second" rule for double edges
//      (Fig. 4b) and filters bubbles *behind* the first edge (Fig. 4c),
//   4. optional down-sampling by k (merge k neighbouring bins: position /= k),
//   5. output = LSB of the (down-sampled) edge position, i.e. neighbouring
//      bins decode to alternating bits.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/delay_line.hpp"
#include "sim/sampler.hpp"

namespace trng::core {

struct [[nodiscard]] ExtractionResult {
  bool bit = false;        ///< output bit (valid only when edge_found)
  bool edge_found = false; ///< false = missed edge (m too small, Sec. 5.2)
  int edge_position = -1;  ///< first-edge tap index before down-sampling
};

class EntropyExtractor {
 public:
  /// `m` = taps per line; `k` = down-sampling factor (1 = none).
  /// Throws std::invalid_argument for m < 2 or k outside [1, m].
  EntropyExtractor(int m, int k = 1);

  /// Extracts one bit from the snapshots of all n lines. Each snapshot must
  /// have exactly m bits; throws std::invalid_argument otherwise.
  ExtractionResult extract(
      const std::vector<sim::LineSnapshot>& lines) const;

  /// extract() on a packed capture: XOR-folds the lines word by word and
  /// priority-encodes the first edge via countr_zero — no per-bit loop and
  /// no intermediate vector<bool>. Produces identical results to the
  /// scalar extract() on the equivalent snapshots. Throws
  /// std::invalid_argument when the capture is empty or its tap count
  /// differs from the configured m.
  ExtractionResult extract_packed(const sim::PackedCapture& capture) const;

  /// The XOR-folded m-bit vector (step 1) — exposed for tests and the
  /// Figure 4 bench.
  std::vector<bool> xor_fold(
      const std::vector<sim::LineSnapshot>& lines) const;

  int m() const { return m_; }
  int k() const { return k_; }

 private:
  int m_;
  int k_;
};

}  // namespace trng::core
