// Embedded online health tests — the paper's stated future work
// ("developing embedded tests for on-the-fly evaluation", Section 7),
// implemented in the style of NIST SP 800-90B Section 4.4 plus a
// total-failure monitor specific to this architecture.
//
//   * RepetitionCountTest — catches a source stuck at one value;
//   * AdaptiveProportionTest — catches large bias within a window;
//   * TotalFailureTest — architecture-specific: a dead oscillator produces
//     captures with NO edge in any delay line, which the extractor reports;
//     consecutive missed edges beyond a cutoff raise the alarm.
//
// All tests are streaming, O(1) state per bit — implementable in a handful
// of slices, as an embedded test must be.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bitstream.hpp"
#include "common/units.hpp"

namespace trng::core {

/// SP 800-90B 4.4.1. Cutoff C = 1 + ceil(-log2(alpha) / H) for an assessed
/// entropy H per bit and false-positive rate alpha.
class RepetitionCountTest {
 public:
  /// Throws std::invalid_argument unless h_per_bit is in (0, 1] and
  /// alpha_log2 > 0 (alpha = 2^-alpha_log2).
  RepetitionCountTest(double h_per_bit, double alpha_log2 = 20.0);

  /// Feeds one bit; returns true when the alarm fires (the run is then
  /// reset so monitoring can continue).
  bool feed(bool bit);

  /// Feeds `nbits` packed bits (BitSource::generate_into layout); returns
  /// the number of alarms fired within the block. Equivalent to feeding
  /// each bit in order.
  std::uint64_t feed_block(const std::uint64_t* words, common::Bits nbits);

  /// Returns the monitor to its just-constructed state (run and alarm
  /// counters cleared). Used when the monitored source is replaced — e.g.
  /// the service layer's reseed-and-probation re-admission after a
  /// quarantine — so stale run state cannot leak across sources.
  void reset();

  unsigned cutoff() const { return cutoff_; }
  std::uint64_t alarms() const { return alarms_; }

 private:
  unsigned cutoff_;
  bool last_ = false;
  unsigned run_ = 0;
  std::uint64_t alarms_ = 0;
};

/// SP 800-90B 4.4.2 for binary sources: counts occurrences of the first bit
/// of each window within that window; alarm when the count exceeds a cutoff
/// chosen from a normal approximation of the binomial tail at rate alpha.
class AdaptiveProportionTest {
 public:
  AdaptiveProportionTest(double h_per_bit, unsigned window = 1024,
                         double alpha_log2 = 20.0);

  bool feed(bool bit);

  /// Block form of feed(); returns the number of alarms in the block.
  std::uint64_t feed_block(const std::uint64_t* words, common::Bits nbits);

  /// Returns to the just-constructed state (window and alarms cleared).
  void reset();

  unsigned cutoff() const { return cutoff_; }
  unsigned window() const { return window_; }
  std::uint64_t alarms() const { return alarms_; }

 private:
  unsigned window_;
  unsigned cutoff_;
  unsigned pos_ = 0;
  unsigned count_ = 0;
  bool reference_ = false;
  std::uint64_t alarms_ = 0;
};

/// Architecture-specific total-failure monitor: consecutive captures whose
/// delay lines contain no edge mean the oscillator stopped.
class TotalFailureTest {
 public:
  explicit TotalFailureTest(unsigned consecutive_miss_cutoff = 4);

  /// Feeds the extractor's edge_found flag for one capture.
  bool feed(bool edge_found);

  /// Returns to the just-constructed state (miss run and alarms cleared).
  void reset();

  std::uint64_t alarms() const { return alarms_; }

 private:
  unsigned cutoff_;
  unsigned misses_ = 0;
  std::uint64_t alarms_ = 0;
};

/// Aggregate monitor: wires all three tests to the raw bit / capture stream.
class OnlineHealthMonitor {
 public:
  explicit OnlineHealthMonitor(double h_per_bit, double alpha_log2 = 20.0);

  /// Feeds one capture outcome. Returns true when any test alarmed.
  bool feed(bool bit, bool edge_found);

  /// Feeds a packed block of already-extracted bits (the BitSource layer's
  /// native unit). Each bit counts as a successful capture (edge_found =
  /// true) for the total-failure monitor — a BitSource hands out decoded
  /// bits, so missed-edge info is only available via the per-capture
  /// feed(). Returns the number of bits whose feed() returned an alarm.
  std::uint64_t feed_block(const std::uint64_t* words, common::Bits nbits);

  /// Convenience overload over a BitStream.
  std::uint64_t feed_block(const common::BitStream& bits);

  /// Resets all three tests to their just-constructed state (alarm
  /// counters included). The service layer calls this when a quarantined
  /// producer is reseeded: the replacement source starts with a clean
  /// monitor, and probation counts its alarms from zero.
  void reset();

  std::uint64_t total_alarms() const;
  const RepetitionCountTest& repetition() const { return rep_; }
  const AdaptiveProportionTest& proportion() const { return prop_; }
  const TotalFailureTest& total_failure() const { return fail_; }

 private:
  RepetitionCountTest rep_;
  AdaptiveProportionTest prop_;
  TotalFailureTest fail_;
};

}  // namespace trng::core
