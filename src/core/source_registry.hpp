// Factory registry of the repository's canonical bit sources.
//
// Table 2's bench, the examples and the design-space tools used to
// hard-code one concrete generator type per row; the registry replaces
// those switches with data: every entry constructs a ready-to-run
// BitSource (post-processing decorators already applied) from a seed, so
// consumers iterate sources uniformly through the BitSource interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bit_source.hpp"
#include "fpga/fabric.hpp"

namespace trng::core {

struct SourceFactory {
  std::string id;           ///< stable machine id, e.g. "carry-k1"
  std::string description;  ///< one-line human description
  std::function<std::unique_ptr<BitSource>(std::uint64_t seed)> make;
};

/// The canonical line-up: the paper's TRNG at its two Table-1/Table-2
/// operating points (k=1 and k=4, XOR post-processing applied), the
/// elementary RO baseline of Section 5.3, and the three related-work
/// designs of Table 2 (the self-timed ring at both its published operating
/// points). Factories capture `fabric` by pointer — it must outlive every
/// source they create.
std::vector<SourceFactory> canonical_sources(const fpga::Fabric& fabric);

/// Constructs the registry source `id` on a freshly elaborated die
/// (`die_seed`) with noise-stream seed `stream_seed` — the building block
/// for multi-instance deployments: each entropy-pool producer runs its own
/// physical die, exactly like a board carrying N independent FPGAs. The
/// returned source is self-contained: no source type retains a reference
/// to the Fabric (all elaborated timing is copied at construction), so the
/// die is elaborated locally and discarded. Throws std::invalid_argument
/// for an unknown id.
std::unique_ptr<BitSource> make_die_seeded_source(const std::string& id,
                                                  std::uint64_t die_seed,
                                                  std::uint64_t stream_seed);

}  // namespace trng::core
