// Elementary ring-oscillator TRNG — the comparison baseline of Section 5.3.
//
// A free-running oscillator is sampled directly by a system-clock flip-flop:
// the jitter accumulation process is identical to the carry-chain TRNG's,
// but the sampling resolution is the oscillator half-period itself (in the
// best case one LUT delay, t_step,RO = d0,LUT), so reaching the same entropy
// bound takes (d0/t_step)^2 ~ 797x more accumulation time (Eq. 8).
//
// Two implementations are provided:
//   * kEventDriven — full timing simulation (one-stage RingOscillator),
//     used to validate the analytic path;
//   * kAnalytic — closed-form sampling of the accumulated-jitter Gaussian;
//     equivalent in distribution and fast enough for the multi-microsecond
//     accumulation times the elementary TRNG needs.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bitstream.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/bit_source.hpp"
#include "sim/accumulation.hpp"
#include "sim/ring_oscillator.hpp"

namespace trng::core {

class ElementaryTrng : public BitSource {
 public:
  enum class Mode { kEventDriven, kAnalytic };

  /// `d0_ps` — oscillator half-period (one LUT in the best case);
  /// `sigma_ps` — white jitter per LUT traversal;
  /// `accumulation_cycles` — N_A at f_clk = 100 MHz.
  ElementaryTrng(Picoseconds d0_ps, Picoseconds sigma_ps,
                 Cycles accumulation_cycles, std::uint64_t seed,
                 Mode mode = Mode::kAnalytic);

  bool next_bit() override;

  /// BitSource: `nbits` bits. In analytic mode the closed-form kernel runs
  /// word-packed (same RNG draws, bit-identical to next_bit()); in
  /// event-driven mode each bit still runs the timing simulation.
  void generate_into(std::uint64_t* words, common::Bits nbits) override;

  /// BitSource: identity + Section 5.3's comparison figures.
  SourceInfo info() const override;

  /// sigma_acc(t_A) = sigma * sqrt(t_A / d0) (Eq. 1).
  Picoseconds accumulated_sigma_ps() const;

  double throughput_bps() const;
  Picoseconds accumulation_time_ps() const {
    return schedule_.accumulation_time_ps(cycles_);
  }

 private:
  Picoseconds d0_;
  Picoseconds sigma_;
  Cycles cycles_;
  Mode mode_;
  sim::AccumulationSchedule schedule_;
  common::Xoshiro256StarStar rng_;
  std::unique_ptr<sim::RingOscillator> osc_;  // event-driven mode only
};

}  // namespace trng::core
