#include "core/elementary.hpp"

#include <cmath>
#include <stdexcept>

namespace trng::core {

ElementaryTrng::ElementaryTrng(Picoseconds d0_ps, Picoseconds sigma_ps,
                               Cycles accumulation_cycles, std::uint64_t seed,
                               Mode mode)
    : d0_(d0_ps),
      sigma_(sigma_ps),
      cycles_(accumulation_cycles),
      t_acc_(static_cast<double>(accumulation_cycles) *
             constants::kSystemClockPeriodPs),
      mode_(mode),
      rng_(seed) {
  if (!(d0_ps > 0.0) || !(sigma_ps >= 0.0) || accumulation_cycles == 0) {
    throw std::invalid_argument("ElementaryTrng: invalid parameters");
  }
  if (mode_ == Mode::kEventDriven) {
    osc_ = std::make_unique<sim::RingOscillator>(
        std::vector<Picoseconds>{d0_}, sigma_, sim::NoiseConfig::white_only(),
        nullptr, seed ^ 0xE1EULL);
  }
}

Picoseconds ElementaryTrng::accumulated_sigma_ps() const {
  return sigma_ * std::sqrt(t_acc_ / d0_);
}

double ElementaryTrng::throughput_bps() const {
  return constants::kSystemClockHz / static_cast<double>(cycles_);
}

bool ElementaryTrng::next_bit() {
  if (mode_ == Mode::kEventDriven) {
    osc_->reset(cursor_);
    const Picoseconds t_sample = cursor_ + t_acc_;
    osc_->advance_to(t_sample + 1.0);
    const bool bit = osc_->value_at(0, t_sample);
    cursor_ = t_sample + constants::kSystemClockPeriodPs;
    return bit;
  }
  // Analytic mode: from reset all-high, the one-stage ring toggles at
  // d0, 2*d0, ... so the noise-free value at t is
  // (floor(t / d0) even). Accumulated white jitter shifts the effective
  // sampling phase by N(0, sigma_acc^2).
  const Picoseconds jitter = accumulated_sigma_ps() * rng_.next_gaussian();
  const double phase = (t_acc_ - jitter) / d0_;
  const auto toggles = static_cast<long long>(std::floor(std::max(phase, 0.0)));
  return (toggles % 2) == 0;
}

common::BitStream ElementaryTrng::generate(std::size_t count) {
  common::BitStream bits;
  bits.reserve(count);
  for (std::size_t i = 0; i < count; ++i) bits.push_back(next_bit());
  return bits;
}

}  // namespace trng::core
