#include "core/elementary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trng::core {

ElementaryTrng::ElementaryTrng(Picoseconds d0_ps, Picoseconds sigma_ps,
                               Cycles accumulation_cycles, std::uint64_t seed,
                               Mode mode)
    : d0_(d0_ps),
      sigma_(sigma_ps),
      cycles_(accumulation_cycles),
      mode_(mode),
      schedule_(constants::kSystemClockPeriodPs),
      rng_(seed) {
  if (!(d0_ps > 0.0) || !(sigma_ps >= 0.0) || accumulation_cycles == 0) {
    throw std::invalid_argument("ElementaryTrng: invalid parameters");
  }
  if (mode_ == Mode::kEventDriven) {
    osc_ = std::make_unique<sim::RingOscillator>(
        std::vector<Picoseconds>{d0_}, sigma_, sim::NoiseConfig::white_only(),
        nullptr, seed ^ 0xE1EULL);
  }
}

Picoseconds ElementaryTrng::accumulated_sigma_ps() const {
  return sigma_ * std::sqrt(accumulation_time_ps() / d0_);
}

double ElementaryTrng::throughput_bps() const {
  return schedule_.raw_throughput_bps(cycles_);
}

bool ElementaryTrng::next_bit() {
  if (mode_ == Mode::kEventDriven) {
    osc_->reset(schedule_.cursor_ps());
    const Picoseconds t_sample = schedule_.begin_conversion(cycles_);
    osc_->advance_to(t_sample + 1.0);
    return osc_->value_at(0, t_sample);
  }
  // Analytic mode: from reset all-high, the one-stage ring toggles at
  // d0, 2*d0, ... so the noise-free value at t is
  // (floor(t / d0) even). Accumulated white jitter shifts the effective
  // sampling phase by N(0, sigma_acc^2).
  const Picoseconds jitter = accumulated_sigma_ps() * rng_.next_gaussian();
  const double phase = (accumulation_time_ps() - jitter) / d0_;
  const auto toggles = static_cast<long long>(std::floor(std::max(phase, 0.0)));
  return (toggles % 2) == 0;
}

void ElementaryTrng::generate_into(std::uint64_t* words, common::Bits nbits) {
  // Both branches accumulate each output word in a register and store it
  // once (per-bit |= into `words` would read-modify-write memory every
  // bit); bits at or above `nbits` in the final word stay zero.
  // The packs below are branchless (bool shifted into place): the bit is
  // ~50/50 by design, so a conditional OR would mispredict constantly.
  const std::size_t n = nbits.count();
  std::uint64_t word = 0;
  if (mode_ == Mode::kEventDriven) {
    for (std::size_t i = 0; i < n; ++i) {
      word |= static_cast<std::uint64_t>(next_bit()) << (i & 63);
      if ((i & 63) == 63) {
        words[i >> 6] = word;
        word = 0;
      }
    }
    if (common::bit_offset(nbits) != 0) {
      words[common::word_index(nbits).count()] = word;
    }
    return;
  }
  // Analytic kernel, word-packed, on pre-drawn Gaussian blocks. sigma_acc
  // and t_acc are pure functions of the construction parameters, the RNG
  // runs on a local copy written back after the loop, and fill_gaussian
  // consumes the stream in scalar order, so hoisting and blocking change
  // no draw — the packed bits equal nbits next_bit() calls exactly.
  const Picoseconds sigma_acc = accumulated_sigma_ps();
  const Picoseconds t_acc = accumulation_time_ps();
  const Picoseconds d0 = d0_;
  common::Xoshiro256StarStar rng = rng_;
  double gauss[256];
  for (std::size_t done = 0; done < n;) {
    const std::size_t chunk = std::min<std::size_t>(n - done, 256);
    rng.fill_gaussian(gauss, chunk);
    for (std::size_t c = 0; c < chunk; ++c) {
      const Picoseconds jitter = sigma_acc * gauss[c];
      const double phase = (t_acc - jitter) / d0;
      const auto toggles =
          static_cast<long long>(std::floor(std::max(phase, 0.0)));
      const std::size_t i = done + c;
      word |= static_cast<std::uint64_t>((toggles & 1) == 0) << (i & 63);
      if ((i & 63) == 63) {
        words[i >> 6] = word;
        word = 0;
      }
    }
    done += chunk;
  }
  if (common::bit_offset(nbits) != 0) {
    words[common::word_index(nbits).count()] = word;
  }
  rng_ = rng;
}

SourceInfo ElementaryTrng::info() const {
  SourceInfo si;
  si.name = "Elementary RO TRNG";
  si.platform = "Spartan 6 (sim)";
  si.resources = "1 RO + 1 FF";
  si.throughput_bps = throughput_bps();
  return si;
}

}  // namespace trng::core
