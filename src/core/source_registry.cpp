#include "core/source_registry.hpp"

#include <stdexcept>

#include "core/baselines/str_trng.hpp"
#include "core/baselines/sunar_trng.hpp"
#include "core/baselines/tero_trng.hpp"
#include "core/elementary.hpp"
#include "core/postprocess.hpp"
#include "core/trng.hpp"

namespace trng::core {

std::vector<SourceFactory> canonical_sources(const fpga::Fabric& fabric) {
  const fpga::Fabric* fab = &fabric;
  std::vector<SourceFactory> registry;

  registry.push_back(
      {"sunar",
       "[8] Schellekens et al.: 110 XORed ring oscillators, resilient code",
       [](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         return std::make_unique<baselines::SunarSchellekensTrng>(seed);
       }});

  registry.push_back(
      {"str-cyclone",
       "[1] Cherkaoui et al. self-timed ring, Cyclone-3 figures (133 Mb/s)",
       [](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         // Faster sample clock leaves less jitter accumulation per sample,
         // compensated by the Cyclone ring's larger per-period jitter.
         return std::make_unique<baselines::SelfTimedRingTrng>(
             baselines::SelfTimedRingTrng::Params{511, 2497.3, 4.5, 133.0e6,
                                                  "Cyclone 3"},
             seed);
       }});

  registry.push_back(
      {"str-virtex",
       "[1] Cherkaoui et al. self-timed ring, Virtex-5 figures (100 Mb/s)",
       [](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         return std::make_unique<baselines::SelfTimedRingTrng>(seed);
       }});

  registry.push_back(
      {"tero",
       "[11] Varchola & Drutarovsky transient-effect RO, count parity",
       [](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         return std::make_unique<baselines::TeroTrng>(seed);
       }});

  registry.push_back(
      {"carry-k1",
       "This work, k=1: t_A = 10 ns, XOR np=7 (Table 1's 14.3 Mb/s point)",
       [fab](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         DesignParams p;  // paper defaults: n=3, m=36, k=1, N_A=1
         p.np = 7;
         auto trng = std::make_unique<CarryChainTrng>(*fab, p, seed);
         return std::make_unique<XorCompressedSource>(std::move(trng), 7);
       }});

  registry.push_back(
      {"carry-k4",
       "This work, k=4: t_A = 200 ns, XOR np=9 (see EXPERIMENTS.md on np)",
       [fab](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         DesignParams p;
         p.k = 4;
         p.accumulation_cycles = 20;  // t_A = 200 ns
         p.np = 9;  // our die's measured n_NIST for this row (paper die: 6)
         auto trng = std::make_unique<CarryChainTrng>(*fab, p, seed);
         return std::make_unique<XorCompressedSource>(std::move(trng), 9);
       }});

  registry.push_back(
      {"elementary",
       "Elementary RO TRNG (Section 5.3): direct sampling, t_A = 8 us",
       [](std::uint64_t seed) -> std::unique_ptr<BitSource> {
         return std::make_unique<ElementaryTrng>(
             /*d0_ps=*/480.0, /*sigma_ps=*/2.0, /*accumulation_cycles=*/800,
             seed);
       }});

  return registry;
}

std::unique_ptr<BitSource> make_die_seeded_source(const std::string& id,
                                                  std::uint64_t die_seed,
                                                  std::uint64_t stream_seed) {
  const fpga::Fabric fabric(fpga::DeviceGeometry{}, die_seed);
  for (const auto& factory : canonical_sources(fabric)) {
    if (factory.id == id) return factory.make(stream_seed);
  }
  throw std::invalid_argument("make_die_seeded_source: unknown source id '" +
                              id + "'");
}

}  // namespace trng::core
