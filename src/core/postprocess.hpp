// Post-processing (paper Section 4.5).
//
// XOR post-processing folds n_p consecutive raw bits into one output bit,
// trading throughput (divided by n_p) for entropy-per-bit. The bias after
// compression follows the piling-up lemma: b_pp = 2^(n_p - 1) * b^(n_p)
// (Eq. 7). Von Neumann debiasing is included as an extension (perfectly
// unbiased output for i.i.d. input at an irregular, input-dependent rate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitstream.hpp"
#include "core/bit_source.hpp"

namespace trng::core {

/// Streaming XOR compressor: feed raw bits, collect compressed bits.
class XorPostProcessor {
 public:
  /// `np` >= 1; np == 1 passes bits through unchanged.
  explicit XorPostProcessor(unsigned np);

  /// Feeds one raw bit; returns true when an output bit completed, in which
  /// case `out` receives it.
  bool feed(bool raw, bool& out);

  /// Compresses a whole stream (drops a trailing partial group).
  common::BitStream process(const common::BitStream& raw) const;

  unsigned np() const { return np_; }

 private:
  unsigned np_;
  unsigned fill_ = 0;
  bool acc_ = false;
};

/// BitSource decorator applying XOR compression to ANY source: each output
/// bit is the XOR of np consecutive bits pulled (batched) from the inner
/// source. This is how polymorphic consumers (registry, battery, health
/// chain) get a post-processed stream without knowing the concrete
/// generator: source -> XorCompressedSource -> health -> battery.
class XorCompressedSource : public BitSource {
 public:
  /// Non-owning: `source` must outlive the decorator. np >= 1.
  XorCompressedSource(BitSource& source, unsigned np);

  /// Owning variant for factory registries. Throws on null source / np == 0.
  XorCompressedSource(std::unique_ptr<BitSource> source, unsigned np);

  void generate_into(std::uint64_t* words, common::Bits nbits) override;

  /// Scalar reference path: folds np scalar next_bit() pulls from the inner
  /// source. Without this override the BitSource default would route one-
  /// bit requests through the inner generate_into — i.e. the batched
  /// pipeline — so "scalar" consumers of a wrapped source would never
  /// exercise the inner source's bit-at-a-time reference implementation.
  /// Emits the same stream as generate_into (each output bit XORs the same
  /// np consecutive raw bits, and scalar ≡ batched holds for the inner
  /// source).
  bool next_bit() override;

  /// Inner source's info with the name suffixed " + XOR np=<np>" and the
  /// throughput divided by np (the rate-for-entropy trade of Eq. 7).
  SourceInfo info() const override;

  unsigned np() const { return np_; }

 private:
  std::unique_ptr<BitSource> owned_;  ///< null in the non-owning case
  BitSource* source_;
  unsigned np_;
  std::vector<std::uint64_t> raw_buf_;
};

/// Von Neumann debiaser: consumes bit pairs, emits 0 for "01", 1 for "10",
/// nothing for "00"/"11".
class VonNeumannPostProcessor {
 public:
  bool feed(bool raw, bool& out);
  common::BitStream process(const common::BitStream& raw) const;

  /// Expected output/input ratio for i.i.d. input with ones-probability p:
  /// p(1-p) outputs per input bit.
  static double expected_rate(double p);

 private:
  bool have_first_ = false;
  bool first_ = false;
};

}  // namespace trng::core
