#include "core/health.hpp"

#include <cmath>
#include <stdexcept>

#include "common/gaussian.hpp"

namespace trng::core {

RepetitionCountTest::RepetitionCountTest(double h_per_bit, double alpha_log2) {
  if (!(h_per_bit > 0.0) || h_per_bit > 1.0 || !(alpha_log2 > 0.0)) {
    throw std::invalid_argument("RepetitionCountTest: bad parameters");
  }
  cutoff_ = 1 + static_cast<unsigned>(std::ceil(alpha_log2 / h_per_bit));
}

bool RepetitionCountTest::feed(bool bit) {
  if (run_ == 0 || bit != last_) {
    last_ = bit;
    run_ = 1;
    return false;
  }
  if (++run_ >= cutoff_) {
    ++alarms_;
    run_ = 0;
    return true;
  }
  return false;
}

std::uint64_t RepetitionCountTest::feed_block(const std::uint64_t* words,
                                              common::Bits nbits) {
  std::uint64_t block_alarms = 0;
  for (std::size_t i = 0, n = nbits.count(); i < n; ++i) {
    if (feed(((words[i >> 6] >> (i & 63)) & 1ULL) != 0)) ++block_alarms;
  }
  return block_alarms;
}

void RepetitionCountTest::reset() {
  last_ = false;
  run_ = 0;
  alarms_ = 0;
}

AdaptiveProportionTest::AdaptiveProportionTest(double h_per_bit,
                                               unsigned window,
                                               double alpha_log2)
    : window_(window) {
  if (!(h_per_bit > 0.0) || h_per_bit > 1.0 || window < 16 ||
      !(alpha_log2 > 0.0)) {
    throw std::invalid_argument("AdaptiveProportionTest: bad parameters");
  }
  // For a binary source with min-entropy H, the most likely value has
  // probability p = 2^-H. Cutoff = binomial(window, p) upper quantile at
  // 1 - alpha, via the normal approximation with continuity correction.
  const double p = std::exp2(-h_per_bit);
  const double alpha = std::exp2(-alpha_log2);
  const double mu = static_cast<double>(window) * p;
  const double sd = std::sqrt(static_cast<double>(window) * p * (1.0 - p));
  const double q = common::normal_quantile(1.0 - alpha);
  double cutoff = std::ceil(mu + q * sd + 0.5);
  cutoff = std::min(cutoff, static_cast<double>(window));
  cutoff_ = static_cast<unsigned>(cutoff);
}

bool AdaptiveProportionTest::feed(bool bit) {
  if (pos_ == 0) {
    reference_ = bit;
    count_ = 1;
    pos_ = 1;
    return false;
  }
  if (bit == reference_) ++count_;
  if (++pos_ < window_) {
    if (count_ > cutoff_) {
      // Alarm as soon as the cutoff is exceeded; restart the window.
      ++alarms_;
      pos_ = 0;
      return true;
    }
    return false;
  }
  const bool alarm = count_ > cutoff_;
  if (alarm) ++alarms_;
  pos_ = 0;
  return alarm;
}

std::uint64_t AdaptiveProportionTest::feed_block(const std::uint64_t* words,
                                                 common::Bits nbits) {
  std::uint64_t block_alarms = 0;
  for (std::size_t i = 0, n = nbits.count(); i < n; ++i) {
    if (feed(((words[i >> 6] >> (i & 63)) & 1ULL) != 0)) ++block_alarms;
  }
  return block_alarms;
}

void AdaptiveProportionTest::reset() {
  pos_ = 0;
  count_ = 0;
  reference_ = false;
  alarms_ = 0;
}

TotalFailureTest::TotalFailureTest(unsigned consecutive_miss_cutoff)
    : cutoff_(consecutive_miss_cutoff) {
  if (cutoff_ == 0) {
    throw std::invalid_argument("TotalFailureTest: cutoff must be >= 1");
  }
}

void TotalFailureTest::reset() {
  misses_ = 0;
  alarms_ = 0;
}

bool TotalFailureTest::feed(bool edge_found) {
  if (edge_found) {
    misses_ = 0;
    return false;
  }
  if (++misses_ >= cutoff_) {
    ++alarms_;
    misses_ = 0;
    return true;
  }
  return false;
}

OnlineHealthMonitor::OnlineHealthMonitor(double h_per_bit, double alpha_log2)
    : rep_(h_per_bit, alpha_log2), prop_(h_per_bit, 1024, alpha_log2), fail_() {}

bool OnlineHealthMonitor::feed(bool bit, bool edge_found) {
  // Evaluate all tests (no short-circuit) so every counter stays live.
  const bool a = rep_.feed(bit);
  const bool b = prop_.feed(bit);
  const bool c = fail_.feed(edge_found);
  return a || b || c;
}

std::uint64_t OnlineHealthMonitor::feed_block(const std::uint64_t* words,
                                              common::Bits nbits) {
  std::uint64_t block_alarms = 0;
  for (std::size_t i = 0, n = nbits.count(); i < n; ++i) {
    if (feed(((words[i >> 6] >> (i & 63)) & 1ULL) != 0,
             /*edge_found=*/true)) {
      ++block_alarms;
    }
  }
  return block_alarms;
}

std::uint64_t OnlineHealthMonitor::feed_block(const common::BitStream& bits) {
  return feed_block(bits.words().data(), common::Bits{bits.size()});
}

void OnlineHealthMonitor::reset() {
  rep_.reset();
  prop_.reset();
  fail_.reset();
}

std::uint64_t OnlineHealthMonitor::total_alarms() const {
  return rep_.alarms() + prop_.alarms() + fail_.alarms();
}

}  // namespace trng::core
