// Batched bit-generation interface unifying every generator family.
//
// The repository grows five independent bit producers (the carry-chain
// TRNG, the elementary RO TRNG and three related-work baselines); every
// consumer — SP 800-22 battery, SP 800-90B health monitors, bench tables,
// examples — talks to them through this one abstraction. The contract is
// stream-oriented: implementations fill packed 64-bit words (LSB-first,
// the same layout as common::BitStream) so hot paths amortize virtual
// dispatch and avoid per-bit container growth; `next_bit` and `generate`
// are derived conveniences.
//
// Decorators (core::XorCompressedSource) and the factory registry
// (core/source_registry.hpp) compose on top of this interface, giving the
// canonical chain: source -> XOR post-process -> health tests -> battery.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/bitstream.hpp"
#include "common/units.hpp"

namespace trng::core {

/// Identity and headline figures of a bit source, used by comparison
/// tables and reports. Subsumes the old BaselineInfo (whose `work` field
/// is now `name`): the paper's own design and the related-work baselines
/// share one schema.
struct SourceInfo {
  std::string name;        ///< design / citation, e.g. "This work (k=1)"
  std::string platform;    ///< target device, e.g. "Spartan 6 (sim)"
  std::string resources;   ///< area figure as reported, e.g. "67 slices"
  double throughput_bps = 0.0;  ///< nominal output rate in bits/s
};

/// Abstract batched random-bit source.
class BitSource {
 public:
  virtual ~BitSource() = default;

  /// Fills `nbits` bits into `words`, packed LSB-first (bit i lands at
  /// words[i >> 6] bit (i & 63)). `words` must hold at least
  /// bits_to_words(nbits) words; bits above `nbits` in the final word are
  /// zeroed. This is the primary contract — implement it batched. The
  /// count is strongly typed (common::Bits): a word count cannot be
  /// passed here without an explicit, visible conversion.
  virtual void generate_into(std::uint64_t* words, common::Bits nbits) = 0;

  /// Identity and headline throughput/resource figures.
  virtual SourceInfo info() const = 0;

  /// Scalar convenience; derived from generate_into by default. Scalar
  /// generators may override it as their primary path instead.
  virtual bool next_bit() {
    std::uint64_t w = 0;
    generate_into(&w, common::Bits{1});
    return (w & 1ULL) != 0;
  }

  /// Generates `count` bits into a BitStream via the batched path.
  /// Non-virtual on purpose: it is pure plumbing over generate_into, and
  /// generators with a different container-level convention (e.g. the
  /// carry-chain TRNG's post-processed generate()) hide it by name rather
  /// than override it.
  common::BitStream generate(common::Bits count);
};

}  // namespace trng::core
