#include "core/postprocess.hpp"

#include <stdexcept>
#include <string>

namespace trng::core {

XorPostProcessor::XorPostProcessor(unsigned np) : np_(np) {
  if (np == 0) {
    throw std::invalid_argument("XorPostProcessor: np must be >= 1");
  }
}

bool XorPostProcessor::feed(bool raw, bool& out) {
  acc_ = acc_ != raw;
  if (++fill_ == np_) {
    out = acc_;
    acc_ = false;
    fill_ = 0;
    return true;
  }
  return false;
}

common::BitStream XorPostProcessor::process(const common::BitStream& raw) const {
  return raw.xor_fold(np_);
}

XorCompressedSource::XorCompressedSource(BitSource& source, unsigned np)
    : source_(&source), np_(np) {
  if (np == 0) {
    throw std::invalid_argument("XorCompressedSource: np must be >= 1");
  }
}

XorCompressedSource::XorCompressedSource(std::unique_ptr<BitSource> source,
                                         unsigned np)
    : owned_(std::move(source)), source_(owned_.get()), np_(np) {
  if (source_ == nullptr) {
    throw std::invalid_argument("XorCompressedSource: null source");
  }
  if (np == 0) {
    throw std::invalid_argument("XorCompressedSource: np must be >= 1");
  }
}

void XorCompressedSource::generate_into(std::uint64_t* words,
                                        common::Bits nbits) {
  const std::size_t out_words = common::bits_to_words(nbits).count();
  for (std::size_t w = 0; w < out_words; ++w) words[w] = 0;
  if (nbits.is_zero()) return;
  const common::Bits raw_bits = nbits * np_;
  raw_buf_.assign(common::bits_to_words(raw_bits).count(), 0);
  source_->generate_into(raw_buf_.data(), raw_bits);
  // Fold each group of np consecutive raw bits into one output bit.
  const std::size_t n = nbits.count();
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    unsigned acc = 0;
    for (unsigned j = 0; j < np_; ++j, ++r) {
      acc ^= static_cast<unsigned>((raw_buf_[r >> 6] >> (r & 63)) & 1ULL);
    }
    words[i >> 6] |= static_cast<std::uint64_t>(acc) << (i & 63);
  }
}

bool XorCompressedSource::next_bit() {
  bool acc = false;
  for (unsigned j = 0; j < np_; ++j) acc = acc != source_->next_bit();
  return acc;
}

SourceInfo XorCompressedSource::info() const {
  SourceInfo si = source_->info();
  si.name += " + XOR np=" + std::to_string(np_);
  si.throughput_bps /= static_cast<double>(np_);
  return si;
}

bool VonNeumannPostProcessor::feed(bool raw, bool& out) {
  if (!have_first_) {
    first_ = raw;
    have_first_ = true;
    return false;
  }
  have_first_ = false;
  if (first_ == raw) return false;  // 00 / 11 discarded
  out = first_;                     // "10" -> 1, "01" -> 0
  return true;
}

common::BitStream VonNeumannPostProcessor::process(
    const common::BitStream& raw) const {
  VonNeumannPostProcessor vn;  // fresh state; `this` stays untouched (const)
  common::BitStream out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bool bit;
    // trng-lint: allow(TL006) -- von Neumann rejection's output length is data-dependent, so there is no packed-word batch to append
    if (vn.feed(raw[i], bit)) out.push_back(bit);
  }
  return out;
}

double VonNeumannPostProcessor::expected_rate(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("VonNeumann::expected_rate: p outside [0, 1]");
  }
  return p * (1.0 - p);
}

}  // namespace trng::core
