#include "core/postprocess.hpp"

#include <stdexcept>

namespace trng::core {

XorPostProcessor::XorPostProcessor(unsigned np) : np_(np) {
  if (np == 0) {
    throw std::invalid_argument("XorPostProcessor: np must be >= 1");
  }
}

bool XorPostProcessor::feed(bool raw, bool& out) {
  acc_ = acc_ != raw;
  if (++fill_ == np_) {
    out = acc_;
    acc_ = false;
    fill_ = 0;
    return true;
  }
  return false;
}

common::BitStream XorPostProcessor::process(const common::BitStream& raw) const {
  return raw.xor_fold(np_);
}

bool VonNeumannPostProcessor::feed(bool raw, bool& out) {
  if (!have_first_) {
    first_ = raw;
    have_first_ = true;
    return false;
  }
  have_first_ = false;
  if (first_ == raw) return false;  // 00 / 11 discarded
  out = first_;                     // "10" -> 1, "01" -> 0
  return true;
}

common::BitStream VonNeumannPostProcessor::process(
    const common::BitStream& raw) const {
  VonNeumannPostProcessor vn;  // fresh state; `this` stays untouched (const)
  common::BitStream out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bool bit;
    if (vn.feed(raw[i], bit)) out.push_back(bit);
  }
  return out;
}

double VonNeumannPostProcessor::expected_rate(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("VonNeumann::expected_rate: p outside [0, 1]");
  }
  return p * (1.0 - p);
}

}  // namespace trng::core
