#include "service/producer.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "service/clock.hpp"

namespace trng::service {

void ProducerConfig::validate() const {
  if (block_bits.is_zero() || common::bit_offset(block_bits) != 0) {
    throw std::invalid_argument(
        "ProducerConfig: block_bits must be a positive multiple of 64");
  }
  if (!(h_per_bit > 0.0) || h_per_bit > 1.0) {
    throw std::invalid_argument(
        "ProducerConfig: h_per_bit must be in (0, 1]");
  }
  if (!(alpha_log2 > 0.0)) {
    throw std::invalid_argument("ProducerConfig: alpha_log2 must be > 0");
  }
  if (pace_bits_per_s < 0.0) {
    throw std::invalid_argument(
        "ProducerConfig: pace_bits_per_s must be >= 0");
  }
  quarantine.validate();
}

Producer::Producer(std::size_t index, SourceFactory make,
                   std::uint64_t stream_seed, const ProducerConfig& config,
                   WordRing& ring, ProducerCounters& counters)
    : index_(index),
      make_(std::move(make)),
      config_(config),
      ring_(ring),
      counters_(counters),
      seed_stream_(stream_seed),
      monitor_(config.h_per_bit, config.alpha_log2),
      policy_(config.quarantine),
      block_(common::bits_to_words(config.block_bits).count()) {
  config_.validate();
  if (!make_) {
    throw std::invalid_argument("Producer: null source factory");
  }
  if (ring_.capacity() < common::Words{block_.size()}) {
    throw std::invalid_argument(
        "Producer: ring capacity must hold at least one block");
  }
  source_ = make_(index_, next_epoch_seed());
  if (source_ == nullptr) {
    throw std::invalid_argument("Producer: factory returned null source");
  }
}

Producer::~Producer() { stop_and_join(); }

std::uint64_t Producer::next_epoch_seed() { return seed_stream_.next(); }

void Producer::reseed() {
  source_ = make_(index_, next_epoch_seed());
  if (source_ == nullptr) {
    throw std::invalid_argument("Producer: factory returned null source");
  }
  monitor_.reset();
  counters_.reseeds.fetch_add(1, std::memory_order_relaxed);
}

bool Producer::step() {
  const common::Bits nbits = config_.block_bits;
  const common::Words nwords{block_.size()};
  source_->generate_into(block_.data(), nbits);

  const std::uint64_t alarms_before = monitor_.total_alarms();
  monitor_.feed_block(block_.data(), nbits);
  const std::uint64_t block_alarms = monitor_.total_alarms() - alarms_before;
  counters_.health_alarms.fetch_add(block_alarms, std::memory_order_relaxed);

  const AdmitState before = policy_.state();
  const BlockDecision decision = policy_.on_block(block_alarms);
  const AdmitState after = policy_.state();
  counters_.state.store(static_cast<int>(after), std::memory_order_relaxed);
  if (before != AdmitState::kQuarantined &&
      after == AdmitState::kQuarantined) {
    counters_.quarantines.fetch_add(1, std::memory_order_relaxed);
  }
  if (before == AdmitState::kProbation && after == AdmitState::kHealthy) {
    counters_.readmissions.fetch_add(1, std::memory_order_relaxed);
  }

  switch (decision) {
    case BlockDecision::kAdmit: {
      std::uint64_t stall = 0;
      const common::Words pushed = ring_.push(block_.data(), nwords, &stall);
      counters_.stall_ns.fetch_add(stall, std::memory_order_relaxed);
      counters_.words_produced.fetch_add(pushed.count(),
                                         std::memory_order_relaxed);
      counters_.blocks_admitted.fetch_add(1, std::memory_order_relaxed);
      const common::Words occupancy = ring_.size();
      counters_.ring_words.store(occupancy.count(), std::memory_order_relaxed);
      counters_.ring_occupancy_pct.record(occupancy.count() * 100 /
                                          ring_.capacity().count());
      if (on_admitted_ && !pushed.is_zero()) on_admitted_();
      if (pushed < nwords) return false;  // ring closed mid-push
      break;
    }
    case BlockDecision::kDiscard:
      counters_.words_discarded.fetch_add(nwords.count(),
                                          std::memory_order_relaxed);
      counters_.blocks_rejected.fetch_add(1, std::memory_order_relaxed);
      break;
    case BlockDecision::kDiscardAndReseed:
      counters_.words_discarded.fetch_add(nwords.count(),
                                          std::memory_order_relaxed);
      counters_.blocks_rejected.fetch_add(1, std::memory_order_relaxed);
      reseed();
      break;
  }
  return !ring_.closed();
}

void Producer::pace_wait(std::uint64_t deadline_ns) {
  std::unique_lock<std::mutex> lk(stop_mu_);
  stop_cv_.wait_for(
      lk,
      std::chrono::nanoseconds(deadline_ns > monotonic_ns()
                                   ? deadline_ns - monotonic_ns()
                                   : 0),
      [&] { return stop_requested_; });
}

void Producer::run() {
  const bool paced = config_.pace_bits_per_s > 0.0;
  const auto block_period_ns =
      paced ? static_cast<std::uint64_t>(
                  1e9 * static_cast<double>(config_.block_bits.count()) /
                  config_.pace_bits_per_s)
            : 0;
  std::uint64_t deadline_ns = monotonic_ns();
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(stop_mu_);
      if (stop_requested_) return;
    }
    if (!step()) return;
    if (paced) {
      deadline_ns += block_period_ns;
      const std::uint64_t now = monotonic_ns();
      if (deadline_ns <= now) {
        deadline_ns = now;  // behind schedule: don't accumulate debt
        continue;
      }
      pace_wait(deadline_ns);
    }
  }
}

void Producer::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void Producer::stop_and_join() {
  {
    std::lock_guard<std::mutex> lk(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace trng::service
