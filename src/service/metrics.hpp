// Observability for the entropy-pool service layer.
//
// Every counter is a relaxed atomic: metrics are monotonic event tallies
// (words produced/drawn, health trips, quarantine transitions) plus a few
// gauges (ring occupancy, admission state), and a snapshot never needs to
// be a consistent cross-counter cut — it is a monitoring dump, not a
// ledger. Histograms use fixed upper-bound buckets with atomic counts.
//
// snapshot_json() renders the whole structure as a single JSON object so
// the service daemon, the examples and any external scraper share one
// schema ("trng.service.metrics.v1").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace trng::service {

/// Fixed-bound histogram with atomic bucket counts. Bucket i counts values
/// <= bounds[i] (and greater than bounds[i-1]); one overflow bucket counts
/// values above the last bound.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  /// Throws std::invalid_argument otherwise.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value);

  /// Number of buckets including the overflow bucket.
  std::size_t buckets() const { return bounds_.size() + 1; }

  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t count(std::size_t i) const;

  std::uint64_t total() const;

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Renders as {"bounds": [...], "counts": [...]} (counts has one extra
  /// trailing entry: the overflow bucket).
  std::string to_json() const;

 private:
  std::vector<std::uint64_t> bounds_;
  // trng-analyzer: atomic(counter)
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

/// Admission state of one producer, mirrored into its metrics as a gauge
/// so snapshots can report the quarantine state machine's position.
enum class AdmitState : int { kHealthy = 0, kQuarantined = 1, kProbation = 2 };

const char* admit_state_name(AdmitState state);

/// Per-producer counters. Written by the owning producer thread (and the
/// pool's draw path for words_drawn); read by snapshot_json at any time.
struct ProducerCounters {
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> words_produced{0};   ///< admitted into the ring
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> words_discarded{0};  ///< quarantine/probation
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> words_drawn{0};      ///< drawn from the ring
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> blocks_admitted{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> blocks_rejected{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> health_alarms{0};    ///< bit-level alarm count
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> quarantines{0};      ///< healthy -> quarantined
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> reseeds{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> readmissions{0};     ///< probation -> healthy
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> stall_ns{0};         ///< blocked on a full ring
  // trng-analyzer: atomic(gauge)
  std::atomic<std::uint64_t> ring_words{0};       ///< occupancy gauge
  // trng-analyzer: atomic(gauge)
  std::atomic<int> state{static_cast<int>(AdmitState::kHealthy)};
  /// Ring occupancy (percent of capacity) sampled after every push.
  Histogram ring_occupancy_pct{{10, 25, 50, 75, 90, 100}};
};

/// Counters for the whole pool plus one ProducerCounters per source.
class Metrics {
 public:
  /// One slot per producer; labels are set by the pool once the sources
  /// exist (set_label) and are immutable afterwards.
  explicit Metrics(std::size_t producers);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  std::size_t producers() const { return sources_.size(); }
  ProducerCounters& producer(std::size_t i) { return sources_[i]; }
  const ProducerCounters& producer(std::size_t i) const { return sources_[i]; }

  /// Must only be called before any other thread reads the metrics (the
  /// pool does it during construction).
  void set_label(std::size_t i, std::string label);
  const std::string& label(std::size_t i) const { return labels_[i]; }

  // Pool-level draw-path counters.
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> draws{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> words_drawn{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> draw_wait_ns{0};  ///< blocked, all rings empty
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> nonblocking_shortfall_words{0};
  /// Per-draw blocking wait, microseconds.
  Histogram draw_wait_us{{1, 10, 100, 1000, 10000, 100000, 1000000}};

  /// One JSON object covering the pool and every producer.
  std::string snapshot_json() const;

 private:
  std::vector<std::string> labels_;
  std::vector<ProducerCounters> sources_;
};

}  // namespace trng::service
