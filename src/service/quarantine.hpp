// Health-gated admission policy: the quarantine state machine.
//
// Every producer screens each generated block through the embedded online
// health tests (core::OnlineHealthMonitor) before its words reach the
// ring. This policy decides what the screening outcome means:
//
//               alarms >= threshold
//   HEALTHY ───────────────────────────► QUARANTINED   (trip: discard the
//      ▲                                     │          block, reseed the
//      │                                     │ cooldown_blocks discarded
//      │                                     ▼
//      │   probation_blocks clean        PROBATION
//      └──────────────────────────────────── │
//                 (re-admit)                 │ any alarmed block
//                                            ▼
//                                        QUARANTINED   (trip again, reseed)
//
// The machine is pure, single-threaded state driven by per-block alarm
// counts, so failover behaviour is exactly reproducible under a seeded
// generator: which block trips, how many blocks are discarded, and when
// re-admission happens are all deterministic functions of the bit stream.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "service/metrics.hpp"

namespace trng::service {

struct QuarantineConfig {
  /// Bit-level health alarms within one block that trip quarantine.
  std::uint64_t alarm_threshold = 1;

  /// Blocks discarded immediately after a trip, before probation begins —
  /// the reseeded source's settling time. Alarms during cooldown re-trip.
  std::uint64_t cooldown_blocks = 1;

  /// Consecutive clean blocks (still discarded) required to re-admit.
  std::uint64_t probation_blocks = 4;

  void validate() const {
    if (alarm_threshold == 0) {
      throw std::invalid_argument(
          "QuarantineConfig: alarm_threshold must be >= 1");
    }
    if (probation_blocks == 0) {
      throw std::invalid_argument(
          "QuarantineConfig: probation_blocks must be >= 1");
    }
  }
};

/// What the producer must do with the block it just screened.
enum class BlockDecision {
  kAdmit,            ///< push the block's words into the ring
  kDiscard,          ///< drop the block (quarantine cooldown / probation)
  kDiscardAndReseed  ///< drop the block, replace the source, reset health
};

class QuarantinePolicy {
 public:
  explicit QuarantinePolicy(QuarantineConfig config);

  /// Feeds the health outcome of one screened block and advances the state
  /// machine. Deterministic: the same alarm sequence always produces the
  /// same decisions and transitions.
  [[nodiscard]] BlockDecision on_block(std::uint64_t alarms);

  AdmitState state() const { return state_; }

  /// healthy/probation -> quarantined transitions so far.
  std::uint64_t trips() const { return trips_; }

  /// probation -> healthy transitions so far.
  std::uint64_t readmissions() const { return readmissions_; }

  const QuarantineConfig& config() const { return config_; }

 private:
  QuarantineConfig config_;
  AdmitState state_ = AdmitState::kHealthy;
  std::uint64_t cooldown_left_ = 0;
  std::uint64_t clean_blocks_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace trng::service
