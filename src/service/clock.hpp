// Monotonic wall-clock access for the service layer.
//
// The repository-wide determinism rule (trng_lint TL001) bans wall-clock
// reads in library code because simulation results must be reproducible
// from their seeds. The service layer is the one deliberate exception: it
// schedules real threads and reports real stall/wait times, and none of
// that feeds back into any simulated physics or entropy estimate — the
// random *bits* flowing through the pool remain a pure function of the
// seeds. All service-layer clock reads funnel through this single helper
// so the exception stays auditable in one place.
#pragma once

#include <chrono>
#include <cstdint>

namespace trng::service {

/// Monotonic nanoseconds since an arbitrary process-local epoch. Only ever
/// used for durations (stall/wait accounting, pacing deadlines).
inline std::uint64_t monotonic_ns() {
  // trng-lint: allow(TL001) -- service-layer thread scheduling/metrics need wall time; no simulation or entropy state derives from this clock
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace trng::service
