#include "service/ring_buffer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "service/clock.hpp"

namespace trng::service {

WordRing::WordRing(common::Words capacity) : buf_(capacity.count()) {
  if (capacity.is_zero()) {
    throw std::invalid_argument("WordRing: capacity must be >= 1 word");
  }
}

common::Words WordRing::push(const std::uint64_t* words, common::Words n,
                             std::uint64_t* stall_ns) {
  const std::size_t want = n.count();
  std::size_t pushed = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (pushed < want) {
    if (count_ == buf_.size()) {
      if (closed_) break;
      const std::uint64_t t0 = monotonic_ns();
      space_cv_.wait(lk, [&] { return count_ < buf_.size() || closed_; });
      if (stall_ns != nullptr) *stall_ns += monotonic_ns() - t0;
      continue;
    }
    if (closed_) break;
    // Copy into the free region, at most up to the physical wrap point.
    const std::size_t tail = (head_ + count_) % buf_.size();
    const std::size_t contiguous =
        std::min(buf_.size() - tail, buf_.size() - count_);
    const std::size_t take = std::min(contiguous, want - pushed);
    std::memcpy(buf_.data() + tail, words + pushed,
                take * sizeof(std::uint64_t));
    count_ += take;
    pushed += take;
  }
  return common::Words{pushed};
}

common::Words WordRing::pop_some(std::uint64_t* out, common::Words n) {
  const std::size_t want = n.count();
  std::size_t popped = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    while (popped < want && count_ > 0) {
      const std::size_t contiguous = std::min(buf_.size() - head_, count_);
      const std::size_t take = std::min(contiguous, want - popped);
      std::memcpy(out + popped, buf_.data() + head_,
                  take * sizeof(std::uint64_t));
      head_ = (head_ + take) % buf_.size();
      count_ -= take;
      popped += take;
    }
  }
  if (popped > 0) space_cv_.notify_all();
  return common::Words{popped};
}

common::Words WordRing::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return common::Words{count_};
}

void WordRing::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  space_cv_.notify_all();
}

bool WordRing::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

}  // namespace trng::service
