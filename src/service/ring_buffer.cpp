#include "service/ring_buffer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "service/clock.hpp"

namespace trng::service {

WordRing::WordRing(common::Words capacity) : buf_(capacity.count()) {
  if (capacity.is_zero()) {
    throw std::invalid_argument("WordRing: capacity must be >= 1 word");
  }
}

common::Words WordRing::try_push(const std::uint64_t* words, common::Words n) {
  const std::size_t cap = buf_.size();
  const std::size_t want = n.count();
  std::uint64_t tail = tail_.load(std::memory_order_acquire);
  std::size_t pushed = 0;
  while (pushed < want) {
    if (closed_.load(std::memory_order_acquire)) break;
    std::size_t free_words = cap - static_cast<std::size_t>(tail - head_seen_);
    if (free_words == 0) {
      // Cached view is full: refresh the snapshot from the shared index
      // (the only cross-cache-line read on this path) and re-check.
      head_seen_ = head_.load(std::memory_order_acquire);
      free_words = cap - static_cast<std::size_t>(tail - head_seen_);
      if (free_words == 0) break;
    }
    const std::size_t take = std::min(free_words, want - pushed);
    // Copy in at most two contiguous runs: up to the physical wrap point,
    // then from slot 0.
    const std::size_t slot = static_cast<std::size_t>(tail % cap);
    const std::size_t first = std::min(take, cap - slot);
    std::memcpy(buf_.data() + slot, words + pushed,
                first * sizeof(std::uint64_t));
    std::memcpy(buf_.data(), words + pushed + first,
                (take - first) * sizeof(std::uint64_t));
    tail += take;
    // Publish: orders the word writes above before any consumer that
    // acquires this index reads them.
    tail_.store(tail, std::memory_order_release);
    pushed += take;
  }
  return common::Words{pushed};
}

common::Words WordRing::push(const std::uint64_t* words, common::Words n,
                             std::uint64_t* stall_ns) {
  const std::size_t cap = buf_.size();  // fixed at construction
  const std::size_t want = n.count();
  std::size_t pushed = try_push(words, n).count();
  while (pushed < want && !closed_.load(std::memory_order_acquire)) {
    const std::uint64_t t0 = monotonic_ns();
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Predicate overload: every wakeup re-checks the state this wait is
      // about — free space (head_ + capacity > tail_) or the close latch —
      // so a pusher can neither sleep through a close() nor hold a stale
      // full-ring view. pop_some's empty critical section on mu_ before
      // its notify makes the head_ advance visible to a waiter that
      // evaluated this predicate just before the pop landed.
      space_cv_.wait(lk, [&] {
        return closed_.load(std::memory_order_acquire) ||
               head_.load(std::memory_order_acquire) + cap >
                   tail_.load(std::memory_order_acquire);
      });
    }
    if (stall_ns != nullptr) *stall_ns += monotonic_ns() - t0;
    pushed += try_push(words + pushed, common::Words{want - pushed}).count();
  }
  return common::Words{pushed};
}

common::Words WordRing::pop_some(std::uint64_t* out, common::Words n) {
  const std::size_t cap = buf_.size();
  const std::size_t want = n.count();
  std::uint64_t head = head_.load(std::memory_order_acquire);
  std::size_t popped = 0;
  while (popped < want) {
    std::size_t avail = static_cast<std::size_t>(tail_seen_ - head);
    if (avail == 0) {
      // Cached view is empty: refresh the snapshot from the shared index
      // (the only cross-cache-line read on this path) and re-check.
      tail_seen_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_seen_ - head);
      if (avail == 0) break;
    }
    const std::size_t take = std::min(avail, want - popped);
    const std::size_t slot = static_cast<std::size_t>(head % cap);
    const std::size_t first = std::min(take, cap - slot);
    std::memcpy(out + popped, buf_.data() + slot,
                first * sizeof(std::uint64_t));
    std::memcpy(out + popped + first, buf_.data(),
                (take - first) * sizeof(std::uint64_t));
    head += take;
    // Recycle: orders the word reads above before the producer (which
    // acquires this index) overwrites the freed slots.
    head_.store(head, std::memory_order_release);
    popped += take;
  }
  if (popped > 0) {
    // Lossless producer wakeup. A pusher that saw the ring full either
    // (a) enters wait() before this thread takes mu_ — then the notify
    // below reaches it, or (b) takes mu_ first — then its predicate
    // re-evaluation is ordered after this thread's head_ store by the
    // mutex hand-off and observes the freed space. An unlocked notify
    // alone would leave a window between the pusher's predicate check and
    // its sleep where this advance could be missed.
    { std::lock_guard<std::mutex> lk(mu_); }
    space_cv_.notify_all();
  }
  return common::Words{popped};
}

common::Words WordRing::size() const {
  // Head first: tail_ read second can only be newer, so the difference is
  // a valid (possibly slightly stale) occupancy and never underflows.
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  return common::Words{tail >= head ? static_cast<std::size_t>(tail - head)
                                    : 0};
}

void WordRing::close() {
  closed_.store(true, std::memory_order_release);
  // Empty critical section: same lossless-wakeup argument as pop_some —
  // a pusher is either already in wait() (notified below) or re-checks
  // its predicate after this mutex hand-off and sees the latch.
  { std::lock_guard<std::mutex> lk(mu_); }
  space_cv_.notify_all();
}

bool WordRing::closed() const {
  return closed_.load(std::memory_order_acquire);
}

}  // namespace trng::service
