// EntropyPool: the concurrent serving layer over the BitSource substrate.
//
//   producer 0: die-seeded source ──► health gate ──► ring 0 ─┐
//   producer 1: die-seeded source ──► health gate ──► ring 1 ─┼─► sharded
//   ...                                                       │   draw()
//   producer N: die-seeded source ──► health gate ──► ring N ─┘
//
// Each producer owns an independent source (its own simulated die), runs
// the batched generate_into path in blocks, screens every block through
// the embedded online health tests, and only admitted blocks reach its
// ring. A producer whose block trips the health gate is quarantined: its
// output is discarded, its source deterministically reseeded, and it must
// serve a clean probation before being re-admitted — the pool meanwhile
// keeps serving from the surviving producers. Backpressure is symmetric:
// full rings stall producers (push blocks), empty rings stall consumers
// (draw blocks), and both stalls are metered.
//
// Determinism guarantee: with a fixed seed and producers == 1, the drawn
// word stream is bit-identical to the underlying source's generate_into
// stream for as long as no block is rejected (a healthy source under the
// configured gate). Multi-producer draws interleave rings in round-robin
// shard order, so per-producer substreams remain deterministic while the
// interleaving depends on thread timing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/metrics.hpp"
#include "service/producer.hpp"
#include "service/ring_buffer.hpp"

namespace trng::service {

struct PoolConfig {
  std::size_t producers = 1;

  /// Per-producer ring capacity; must hold at least one block
  /// (bits_to_words(producer.block_bits)).
  common::Words ring_capacity_words{1 << 12};

  ProducerConfig producer;

  /// Stream seed of producer i is stream_seed_base + i; each seed heads an
  /// independent SplitMix64 reseed-epoch stream (see Producer).
  std::uint64_t stream_seed_base = 1;

  void validate() const;
};

class EntropyPool {
 public:
  /// Constructs all producers (and their epoch-0 sources) synchronously;
  /// no threads run until start(). Throws std::invalid_argument on a bad
  /// config or factory.
  EntropyPool(SourceFactory make, PoolConfig config);

  /// Stops and joins everything.
  ~EntropyPool();

  EntropyPool(const EntropyPool&) = delete;
  EntropyPool& operator=(const EntropyPool&) = delete;

  /// Spawns the producer threads. Idempotent.
  void start();

  /// Closes the rings and joins the producers. Buffered words remain
  /// drawable (draw drains them, then returns short). Idempotent.
  void stop();

  /// Blocking draw: fills `words` with `nwords` packed words, taking them
  /// from the producer rings in round-robin shard order. Returns the
  /// number of words delivered — less than `nwords` only once the pool is
  /// stopped and drained. Thread-safe (any number of consumers).
  common::Words draw(std::uint64_t* words, common::Words nwords);

  /// Non-blocking draw: delivers whatever is buffered right now, up to
  /// `nwords`; returns the number of words delivered.
  common::Words draw_nonblocking(std::uint64_t* words, common::Words nwords);

  /// Blocking draw confined to producer `shard`'s ring: delivers up to
  /// `nwords` words from that ring only, waiting at most `timeout_ns` for
  /// them to arrive. Returns the number delivered — short on timeout or
  /// once the pool is stopped and the ring drained. This is how the
  /// server tier's per-shard DRBGs reseed: a quarantined producer starves
  /// only its own shard's reseeds instead of the whole pool. Thread-safe.
  /// Throws std::out_of_range on a bad shard index.
  common::Words draw_from_shard(std::size_t shard, std::uint64_t* words,
                                common::Words nwords,
                                std::uint64_t timeout_ns);

  std::size_t producers() const { return producers_.size(); }

  /// Admission state of producer i (snapshot of the quarantine gauge).
  AdmitState producer_state(std::size_t i) const;

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Direct access for deterministic single-threaded tests (drive
  /// Producer::step() by hand). Must not be mixed with start().
  Producer& producer(std::size_t i) { return *producers_[i]; }
  WordRing& ring(std::size_t i) { return *rings_[i]; }

 private:
  /// Sweeps the shards from a rotating start index and delivers whatever
  /// is buffered, up to `nwords`. Two passes: a striped, non-blocking pass
  /// that try-locks each shard's consumer stripe and steals from the next
  /// shard when one is busy, then — only if nothing was delivered and a
  /// stripe was skipped busy — a patient pass with blocking stripe locks,
  /// so a caller whose wait predicate saw a nonempty ring cannot spin
  /// against a stripe another consumer is mid-pop on.
  common::Words drain_rings(std::uint64_t* words, common::Words nwords);

  /// Pops up to `nwords` from ring `i` into `out` and updates that
  /// producer's drawn/occupancy counters. Caller holds stripe_mu_[i]
  /// (WordRing's pop side is single-consumer).
  common::Words pop_shard_locked(std::size_t i, std::uint64_t* out,
                                 common::Words nwords);

  /// True when any producer ring has buffered words. Used as the condvar
  /// wait predicate in draw(): together with `stopped_` it re-checks the
  /// shared state the wait is about, so a notification can never be
  /// consumed without the state change that prompted it being observed.
  bool any_ring_nonempty() const;

  PoolConfig config_;
  Metrics metrics_;
  std::vector<std::unique_ptr<WordRing>> rings_;
  std::vector<std::unique_ptr<Producer>> producers_;

  /// One consumer stripe lock per ring: WordRing's lock-free pop side is
  /// single-consumer, so the pool serializes poppers per shard here
  /// instead of inside the ring. Lock order: data_mu_ before any stripe,
  /// never the reverse; at most one stripe held at a time.
  // trng-analyzer: lock-order(data_mu_, stripe_mu_)
  std::vector<std::unique_ptr<std::mutex>> stripe_mu_;

  /// Round-robin fairness hint only: which ring a draw sweeps first.
  /// Losing an increment shifts the start shard, nothing more.
  // trng-analyzer: atomic(counter)
  std::atomic<std::size_t> shard_cursor_{0};
  /// One-way latches. exchange() (seq_cst) makes start/stop idempotent;
  /// the draw path observes stopped_ with acquire loads so everything
  /// stop() did before the latch flipped is visible to the drainer.
  // trng-analyzer: atomic(flag)
  std::atomic<bool> started_{false};
  // trng-analyzer: atomic(flag)
  std::atomic<bool> stopped_{false};

  /// Consumers wait here when every ring is empty; producers notify after
  /// each admitted push (see draw() for the lost-wakeup argument).
  std::mutex data_mu_;
  std::condition_variable data_cv_;
};

}  // namespace trng::service
