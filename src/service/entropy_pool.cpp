#include "service/entropy_pool.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "service/clock.hpp"

namespace trng::service {

void PoolConfig::validate() const {
  if (producers == 0) {
    throw std::invalid_argument("PoolConfig: producers must be >= 1");
  }
  if (ring_capacity_words < common::bits_to_words(producer.block_bits)) {
    throw std::invalid_argument(
        "PoolConfig: ring_capacity_words must hold at least one block");
  }
  producer.validate();
}

EntropyPool::EntropyPool(SourceFactory make, PoolConfig config)
    : config_(std::move(config)), metrics_(config_.producers) {
  config_.validate();
  rings_.reserve(config_.producers);
  producers_.reserve(config_.producers);
  stripe_mu_.reserve(config_.producers);
  for (std::size_t i = 0; i < config_.producers; ++i) {
    rings_.push_back(std::make_unique<WordRing>(config_.ring_capacity_words));
    stripe_mu_.push_back(std::make_unique<std::mutex>());
    producers_.push_back(std::make_unique<Producer>(
        i, make, config_.stream_seed_base + i, config_.producer, *rings_[i],
        metrics_.producer(i)));
    metrics_.set_label(i, producers_[i]->source_info().name);
    producers_[i]->set_admit_callback([this] {
      // Empty critical section: pairs with the consumer's drain-then-wait
      // under data_mu_ so a push between its drain and its wait cannot be
      // missed (the notify is ordered after the consumer releases the
      // mutex by entering the wait).
      { std::lock_guard<std::mutex> lk(data_mu_); }
      data_cv_.notify_all();
    });
  }
}

EntropyPool::~EntropyPool() { stop(); }

void EntropyPool::start() {
  if (started_.exchange(true)) return;
  for (auto& producer : producers_) producer->start();
}

void EntropyPool::stop() {
  if (stopped_.exchange(true)) return;
  for (auto& ring : rings_) ring->close();  // unblocks pushers
  for (auto& producer : producers_) producer->stop_and_join();
  {
    std::lock_guard<std::mutex> lk(data_mu_);
  }
  data_cv_.notify_all();  // unblocks consumers; rings now only drain
}

bool EntropyPool::any_ring_nonempty() const {
  for (const auto& ring : rings_) {
    if (!ring->size().is_zero()) return true;
  }
  return false;
}

common::Words EntropyPool::pop_shard_locked(std::size_t i, std::uint64_t* out,
                                            common::Words nwords) {
  const common::Words got = rings_[i]->pop_some(out, nwords);
  if (!got.is_zero()) {
    metrics_.producer(i).words_drawn.fetch_add(got.count(),
                                               std::memory_order_relaxed);
    metrics_.producer(i).ring_words.store(rings_[i]->size().count(),
                                          std::memory_order_relaxed);
  }
  return got;
}

common::Words EntropyPool::drain_rings(std::uint64_t* words,
                                       common::Words nwords) {
  const std::size_t want = nwords.count();
  const std::size_t n = rings_.size();
  const std::size_t start =
      shard_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
  std::size_t delivered = 0;
  // Pass 1 — striped, work-stealing: sweep from a rotating start shard,
  // try-locking each shard's consumer stripe. A busy stripe means another
  // consumer is mid-pop on that ring, so steal from the next shard instead
  // of convoying behind it. Keep sweeping while any shard yields words;
  // stop after one full empty-handed sweep.
  bool skipped_busy = false;
  bool progressed = true;
  while (delivered < want && progressed) {
    progressed = false;
    skipped_busy = false;
    for (std::size_t k = 0; k < n && delivered < want; ++k) {
      const std::size_t i = (start + k) % n;
      std::unique_lock<std::mutex> stripe(*stripe_mu_[i], std::try_to_lock);
      if (!stripe.owns_lock()) {
        skipped_busy = true;
        continue;
      }
      const common::Words got = pop_shard_locked(
          i, words + delivered, common::Words{want - delivered});
      if (!got.is_zero()) {
        progressed = true;
        delivered += got.count();
      }
    }
  }
  // Pass 2 — patient: only when pass 1 delivered nothing because every
  // word in sight sat behind a busy stripe. Blocking on the stripe (pops
  // never block, so the hold is bounded) guarantees a caller whose wait
  // predicate saw a nonempty ring makes progress instead of spinning
  // drain→wait→drain against a stripe another consumer holds.
  if (delivered == 0 && skipped_busy) {
    for (std::size_t k = 0; k < n && delivered < want; ++k) {
      const std::size_t i = (start + k) % n;
      std::unique_lock<std::mutex> stripe(*stripe_mu_[i]);
      delivered +=
          pop_shard_locked(i, words + delivered, common::Words{want - delivered})
              .count();
    }
  }
  return common::Words{delivered};
}

common::Words EntropyPool::draw(std::uint64_t* words, common::Words nwords) {
  metrics_.draws.fetch_add(1, std::memory_order_relaxed);
  common::Words delivered = drain_rings(words, nwords);
  std::uint64_t waited_ns = 0;
  while (delivered < nwords) {
    std::unique_lock<std::mutex> lk(data_mu_);
    // Re-check under the producers' notify mutex: a push that raced the
    // drain above is visible here, and one that lands after this drain
    // will block on data_mu_ until this thread is inside wait().
    const common::Words got =
        drain_rings(words + delivered.count(), nwords - delivered);
    delivered += got;
    if (delivered >= nwords) break;
    if (stopped_.load(std::memory_order_acquire)) {
      // Stopped and drained empty-handed: deliver short.
      if (got.is_zero()) break;
      continue;
    }
    const std::uint64_t t0 = monotonic_ns();
    // Predicate overload: every wakeup (notified or spurious) re-checks
    // the shared state this wait is about — ring occupancy and the
    // stopped flag — under data_mu_, so a consumer can neither sleep
    // through a close() nor stay asleep holding a stale empty-rings view.
    data_cv_.wait(lk, [this] {
      return stopped_.load(std::memory_order_acquire) || any_ring_nonempty();
    });
    waited_ns += monotonic_ns() - t0;
  }
  if (waited_ns > 0) {
    metrics_.draw_wait_ns.fetch_add(waited_ns, std::memory_order_relaxed);
  }
  metrics_.draw_wait_us.record(waited_ns / 1000);
  metrics_.words_drawn.fetch_add(delivered.count(),
                                 std::memory_order_relaxed);
  return delivered;
}

common::Words EntropyPool::draw_nonblocking(std::uint64_t* words,
                                            common::Words nwords) {
  metrics_.draws.fetch_add(1, std::memory_order_relaxed);
  const common::Words delivered = drain_rings(words, nwords);
  metrics_.words_drawn.fetch_add(delivered.count(),
                                 std::memory_order_relaxed);
  if (delivered < nwords) {
    metrics_.nonblocking_shortfall_words.fetch_add(
        (nwords - delivered).count(), std::memory_order_relaxed);
  }
  return delivered;
}

common::Words EntropyPool::draw_from_shard(std::size_t shard,
                                           std::uint64_t* words,
                                           common::Words nwords,
                                           std::uint64_t timeout_ns) {
  if (shard >= rings_.size()) {
    throw std::out_of_range("EntropyPool: shard index out of range");
  }
  metrics_.draws.fetch_add(1, std::memory_order_relaxed);
  WordRing& ring = *rings_[shard];
  const std::uint64_t start_ns = monotonic_ns();
  // Saturating add: a near-max timeout must not wrap into the past.
  const std::uint64_t deadline = (timeout_ns > ~std::uint64_t{0} - start_ns)
                                     ? ~std::uint64_t{0}
                                     : start_ns + timeout_ns;
  common::Words delivered{0};
  std::uint64_t waited_ns = 0;
  const auto pop = [&]() {
    // The stripe serializes this pop against concurrent drain_rings sweeps
    // (WordRing's pop side is single-consumer). Held only across the pop,
    // never across the wait below — a sleeping reseed must not convoy the
    // pool's drain path. Lock order data_mu_ → stripe holds here too.
    std::unique_lock<std::mutex> stripe(*stripe_mu_[shard]);
    const common::Words got =
        pop_shard_locked(shard, words + delivered.count(), nwords - delivered);
    delivered += got;
    return got;
  };
  pop();
  while (delivered < nwords) {
    std::unique_lock<std::mutex> lk(data_mu_);
    // Same drain-under-the-notify-mutex argument as draw(): a push that
    // raced the unlocked pop above is re-checked here.
    const common::Words got = pop();
    if (delivered >= nwords) break;
    if (stopped_.load(std::memory_order_acquire)) {
      if (got.is_zero()) break;
      continue;
    }
    const std::uint64_t now = monotonic_ns();
    if (now >= deadline) break;
    // Predicate overload (see draw() for the lost-wakeup argument),
    // bounded by the caller's deadline so a quarantined producer's empty
    // ring cannot block a conditioner reseed forever.
    data_cv_.wait_for(lk, std::chrono::nanoseconds(deadline - now), [&] {
      return stopped_.load(std::memory_order_acquire) ||
             !ring.size().is_zero();
    });
    waited_ns += monotonic_ns() - now;
  }
  if (waited_ns > 0) {
    metrics_.draw_wait_ns.fetch_add(waited_ns, std::memory_order_relaxed);
  }
  metrics_.draw_wait_us.record(waited_ns / 1000);
  metrics_.words_drawn.fetch_add(delivered.count(),
                                 std::memory_order_relaxed);
  return delivered;
}

AdmitState EntropyPool::producer_state(std::size_t i) const {
  return static_cast<AdmitState>(
      metrics_.producer(i).state.load(std::memory_order_relaxed));
}

}  // namespace trng::service
