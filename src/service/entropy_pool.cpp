#include "service/entropy_pool.hpp"

#include <stdexcept>
#include <utility>

#include "service/clock.hpp"

namespace trng::service {

void PoolConfig::validate() const {
  if (producers == 0) {
    throw std::invalid_argument("PoolConfig: producers must be >= 1");
  }
  if (ring_capacity_words < producer.block_bits / 64) {
    throw std::invalid_argument(
        "PoolConfig: ring_capacity_words must hold at least one block");
  }
  producer.validate();
}

EntropyPool::EntropyPool(SourceFactory make, PoolConfig config)
    : config_(std::move(config)), metrics_(config_.producers) {
  config_.validate();
  rings_.reserve(config_.producers);
  producers_.reserve(config_.producers);
  for (std::size_t i = 0; i < config_.producers; ++i) {
    rings_.push_back(std::make_unique<WordRing>(config_.ring_capacity_words));
    producers_.push_back(std::make_unique<Producer>(
        i, make, config_.stream_seed_base + i, config_.producer, *rings_[i],
        metrics_.producer(i)));
    metrics_.set_label(i, producers_[i]->source_info().name);
    producers_[i]->set_admit_callback([this] {
      // Empty critical section: pairs with the consumer's drain-then-wait
      // under data_mu_ so a push between its drain and its wait cannot be
      // missed (the notify is ordered after the consumer releases the
      // mutex by entering the wait).
      { std::lock_guard<std::mutex> lk(data_mu_); }
      data_cv_.notify_all();
    });
  }
}

EntropyPool::~EntropyPool() { stop(); }

void EntropyPool::start() {
  if (started_.exchange(true)) return;
  for (auto& producer : producers_) producer->start();
}

void EntropyPool::stop() {
  if (stopped_.exchange(true)) return;
  for (auto& ring : rings_) ring->close();  // unblocks pushers
  for (auto& producer : producers_) producer->stop_and_join();
  {
    std::lock_guard<std::mutex> lk(data_mu_);
  }
  data_cv_.notify_all();  // unblocks consumers; rings now only drain
}

std::size_t EntropyPool::drain_rings(std::uint64_t* words,
                                     std::size_t nwords) {
  const std::size_t n = rings_.size();
  const std::size_t start =
      shard_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
  std::size_t delivered = 0;
  // Keep sweeping the shards while any of them yields words; stop only
  // after one full empty-handed sweep.
  bool progressed = true;
  while (delivered < nwords && progressed) {
    progressed = false;
    for (std::size_t k = 0; k < n && delivered < nwords; ++k) {
      const std::size_t i = (start + k) % n;
      const std::size_t got =
          rings_[i]->pop_some(words + delivered, nwords - delivered);
      if (got > 0) {
        progressed = true;
        delivered += got;
        metrics_.producer(i).words_drawn.fetch_add(
            got, std::memory_order_relaxed);
        metrics_.producer(i).ring_words.store(rings_[i]->size(),
                                              std::memory_order_relaxed);
      }
    }
  }
  return delivered;
}

std::size_t EntropyPool::draw(std::uint64_t* words, std::size_t nwords) {
  metrics_.draws.fetch_add(1, std::memory_order_relaxed);
  std::size_t delivered = drain_rings(words, nwords);
  std::uint64_t waited_ns = 0;
  while (delivered < nwords) {
    std::unique_lock<std::mutex> lk(data_mu_);
    // Re-check under the producers' notify mutex: a push that raced the
    // drain above is visible here, and one that lands after this drain
    // will block on data_mu_ until this thread is inside wait().
    const std::size_t got =
        drain_rings(words + delivered, nwords - delivered);
    delivered += got;
    if (delivered >= nwords) break;
    if (stopped_.load(std::memory_order_acquire)) {
      // Stopped and drained empty-handed: deliver short.
      if (got == 0) break;
      continue;
    }
    const std::uint64_t t0 = monotonic_ns();
    data_cv_.wait(lk);
    waited_ns += monotonic_ns() - t0;
  }
  if (waited_ns > 0) {
    metrics_.draw_wait_ns.fetch_add(waited_ns, std::memory_order_relaxed);
  }
  metrics_.draw_wait_us.record(waited_ns / 1000);
  metrics_.words_drawn.fetch_add(delivered, std::memory_order_relaxed);
  return delivered;
}

std::size_t EntropyPool::draw_nonblocking(std::uint64_t* words,
                                          std::size_t nwords) {
  metrics_.draws.fetch_add(1, std::memory_order_relaxed);
  const std::size_t delivered = drain_rings(words, nwords);
  metrics_.words_drawn.fetch_add(delivered, std::memory_order_relaxed);
  if (delivered < nwords) {
    metrics_.nonblocking_shortfall_words.fetch_add(
        nwords - delivered, std::memory_order_relaxed);
  }
  return delivered;
}

AdmitState EntropyPool::producer_state(std::size_t i) const {
  return static_cast<AdmitState>(
      metrics_.producer(i).state.load(std::memory_order_relaxed));
}

}  // namespace trng::service
