#include "service/quarantine.hpp"

namespace trng::service {

QuarantinePolicy::QuarantinePolicy(QuarantineConfig config)
    : config_(config) {
  config_.validate();
}

BlockDecision QuarantinePolicy::on_block(std::uint64_t alarms) {
  const bool tripped = alarms >= config_.alarm_threshold;
  switch (state_) {
    case AdmitState::kHealthy:
      if (!tripped) return BlockDecision::kAdmit;
      ++trips_;
      state_ = AdmitState::kQuarantined;
      cooldown_left_ = config_.cooldown_blocks;
      return BlockDecision::kDiscardAndReseed;

    case AdmitState::kQuarantined:
      // The block was produced by the freshly reseeded source. An alarm
      // here means the replacement is bad too (the fault is environmental,
      // e.g. an ongoing injection attack): reseed again and restart the
      // cooldown.
      if (tripped) {
        ++trips_;
        cooldown_left_ = config_.cooldown_blocks;
        return BlockDecision::kDiscardAndReseed;
      }
      if (cooldown_left_ > 0) --cooldown_left_;
      if (cooldown_left_ == 0) {
        state_ = AdmitState::kProbation;
        clean_blocks_ = 0;
      }
      return BlockDecision::kDiscard;

    case AdmitState::kProbation:
      if (tripped) {
        ++trips_;
        state_ = AdmitState::kQuarantined;
        cooldown_left_ = config_.cooldown_blocks;
        return BlockDecision::kDiscardAndReseed;
      }
      if (++clean_blocks_ >= config_.probation_blocks) {
        state_ = AdmitState::kHealthy;
        ++readmissions_;
      }
      // Probation output is never served: the block that completes
      // probation is still discarded; admission resumes with the next one.
      return BlockDecision::kDiscard;
  }
  return BlockDecision::kDiscard;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace trng::service
