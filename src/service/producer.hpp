// One entropy-pool producer: an independent, die-seeded BitSource driven
// through the batched generate_into path, health-screened block by block,
// and admitted into a per-producer ring buffer.
//
// The block pipeline (step()) is deliberately a plain synchronous function
// so tests can drive the full generate -> screen -> quarantine -> admit
// path deterministically without threads; start() merely runs step() in a
// loop on an owned, always-joined thread (trng_lint TL007 confines raw
// std::thread to this layer).
//
// Reseed determinism: producer `i` derives its per-epoch source seeds from
// one SplitMix64 stream seeded with its stream seed, so the k-th reseed of
// producer i always builds the same source, independent of thread timing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/bit_source.hpp"
#include "core/health.hpp"
#include "service/metrics.hpp"
#include "service/quarantine.hpp"
#include "service/ring_buffer.hpp"

namespace trng::service {

/// Builds producer `index`'s source for seed `seed`. Called once at pool
/// construction and again on every reseed (with a fresh deterministic
/// seed), always from the producer's own thread after start().
using SourceFactory =
    std::function<std::unique_ptr<core::BitSource>(std::size_t index,
                                                   std::uint64_t seed)>;

struct ProducerConfig {
  /// Bits generated and screened per pipeline step; multiple of 64.
  common::Bits block_bits{4096};

  /// Assessed per-bit min-entropy handed to the online health monitor.
  double h_per_bit = 0.95;

  /// Health-test false-positive rate: alpha = 2^-alpha_log2.
  double alpha_log2 = 20.0;

  QuarantineConfig quarantine;

  /// Emulated hardware rate per producer in bits/s; 0 disables pacing and
  /// the producer runs as fast as the simulation allows. Pacing models a
  /// hardware-bound source (the FPGA produces at its clocked rate no
  /// matter how many instances run), which is what makes service-layer
  /// scaling measurable on machines where the CPU-bound simulator
  /// saturates cores first.
  double pace_bits_per_s = 0.0;

  void validate() const;
};

class Producer {
 public:
  /// `ring` and `counters` must outlive the producer. Constructs the
  /// epoch-0 source immediately (so labels/info are available before any
  /// thread starts). Throws std::invalid_argument on bad config.
  Producer(std::size_t index, SourceFactory make, std::uint64_t stream_seed,
           const ProducerConfig& config, WordRing& ring,
           ProducerCounters& counters);

  ~Producer();

  Producer(const Producer&) = delete;
  Producer& operator=(const Producer&) = delete;

  /// Runs one block through generate -> health screen -> quarantine ->
  /// ring admission. Returns false when the ring is closed (shutdown).
  /// Thread-compatible, not thread-safe: either the owned thread (after
  /// start()) or the test harness calls it, never both.
  bool step();

  /// Installs a callback invoked after every admitted push (the pool uses
  /// it to wake consumers blocked on empty rings). Must be set before
  /// start(); may be empty.
  void set_admit_callback(std::function<void()> on_admitted) {
    on_admitted_ = std::move(on_admitted);
  }

  /// Spawns the worker thread (loops step() with optional pacing).
  void start();

  /// Asks the worker to stop after its current block and joins it. Safe to
  /// call without start() and more than once. The ring must be closed (or
  /// drained) by the caller first if the worker may be blocked pushing.
  void stop_and_join();

  /// Identity of the current source (stable across reseeds in everything
  /// but the seed).
  core::SourceInfo source_info() const { return source_->info(); }

  AdmitState state() const { return policy_.state(); }
  const QuarantinePolicy& policy() const { return policy_; }
  std::size_t index() const { return index_; }

 private:
  void run();
  void reseed();
  std::uint64_t next_epoch_seed();
  void pace_wait(std::uint64_t deadline_ns);

  std::size_t index_;
  SourceFactory make_;
  ProducerConfig config_;
  WordRing& ring_;
  ProducerCounters& counters_;
  common::SplitMix64 seed_stream_;
  std::unique_ptr<core::BitSource> source_;
  core::OnlineHealthMonitor monitor_;
  QuarantinePolicy policy_;
  std::vector<std::uint64_t> block_;
  std::function<void()> on_admitted_;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  // Declared locking contract (SA005): written by start/stop_and_join,
  // read by the worker's loop and the pace-wait predicate — always
  // under stop_mu_, which is also what makes the stop_cv_ handshake
  // lossless.
  // trng-analyzer: guards(stop_requested_, stop_mu_)
  bool stop_requested_ = false;
};

}  // namespace trng::service
