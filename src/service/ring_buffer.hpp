// Bounded FIFO ring of packed 64-bit words — one per pool producer.
//
// The ring is the hand-off point between a producer thread (health-gated
// blocks of generator output) and the pool's consumer side. Push blocks
// while the ring is full (backpressure: the producer stalls rather than
// dropping or overwriting entropy that consumers have not drawn yet);
// pop never blocks — the pool's draw() handles cross-ring waiting so a
// single slow ring cannot stall a consumer that other rings could serve.
//
// Word granularity matches BitSource::generate_into: producers push whole
// admitted blocks (a multiple of 64 bits), consumers draw packed words.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace trng::service {

class WordRing {
 public:
  /// Capacity in 64-bit words; must be >= 1.
  /// Throws std::invalid_argument otherwise.
  explicit WordRing(std::size_t capacity_words);

  WordRing(const WordRing&) = delete;
  WordRing& operator=(const WordRing&) = delete;

  /// Enqueues `n` words, blocking while the ring is full. Returns the
  /// number of words actually enqueued — less than `n` only when the ring
  /// is closed mid-push (pool shutdown). If `stall_ns` is non-null it is
  /// incremented by the time spent blocked waiting for space.
  std::size_t push(const std::uint64_t* words, std::size_t n,
                   std::uint64_t* stall_ns);

  /// Dequeues up to `n` words into `out` without blocking; returns the
  /// number of words delivered (0 when empty).
  std::size_t pop_some(std::uint64_t* out, std::size_t n);

  /// Words currently buffered.
  std::size_t size() const;

  std::size_t capacity() const { return buf_.size(); }

  /// Marks the ring closed and wakes any blocked pusher. Buffered words
  /// remain drawable; further pushes return immediately.
  void close();

  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable space_cv_;
  std::vector<std::uint64_t> buf_;
  std::size_t head_ = 0;   ///< index of the oldest buffered word
  std::size_t count_ = 0;  ///< buffered words
  bool closed_ = false;
};

}  // namespace trng::service
