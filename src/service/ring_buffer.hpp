// Bounded lock-free SPSC FIFO ring of packed 64-bit words — one per pool
// producer.
//
// The ring is the hand-off point between a producer thread (health-gated
// blocks of generator output) and the pool's consumer side. The fast path
// is lock-free: free-running 64-bit producer/consumer indices published
// with release stores and read with acquire loads, so a batched push and a
// batched pop can proceed concurrently without ever touching a mutex.
// Blocking push (backpressure: the producer stalls rather than dropping or
// overwriting entropy that consumers have not drawn yet) is a thin condvar
// wrapper over the lock-free try_push core; pop never blocks — the pool's
// draw() handles cross-ring waiting so a single slow ring cannot stall a
// consumer that other rings could serve.
//
// Memory-order argument (the SA006 `index-producer`/`index-consumer` roles
// force every operation below to spell its order explicitly):
//
//   producer            writes buf_[tail_ % cap .. +take)      (plain)
//                       tail_.store(tail + take, release)      (publish)
//   consumer            tail_.load(acquire)                    (observe)
//                       reads  buf_[head_ % cap .. +take)      (plain)
//                       head_.store(head + take, release)      (recycle)
//   producer            head_.load(acquire)                    (observe)
//
// The release/acquire pair on tail_ orders the producer's word writes
// before the consumer's reads; the pair on head_ orders the consumer's
// reads before the producer overwrites the recycled slots. Indices are
// free-running (never wrap modulo capacity), so occupancy is simply
// tail - head and capacity need not be a power of two. Each index lives on
// its own cache line next to the owning side's *snapshot* of the opposite
// index (head_seen_ / tail_seen_), which is refreshed only when the cached
// view shows no room/data — the common case touches one shared line, not
// two.
//
// Word granularity matches BitSource::generate_into: producers push whole
// admitted blocks (a multiple of 64 bits), consumers draw packed words.
// Every count at this interface is strongly typed (common::Words): a bit
// count cannot reach the ring without an explicit bits_to_words().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.hpp"

namespace trng::service {

class WordRing {
 public:
  /// Capacity in 64-bit words; must be >= 1.
  /// Throws std::invalid_argument otherwise.
  explicit WordRing(common::Words capacity);

  WordRing(const WordRing&) = delete;
  WordRing& operator=(const WordRing&) = delete;

  /// Enqueues `n` words, blocking while the ring is full. Returns the
  /// number of words actually enqueued — less than `n` only when the ring
  /// is closed mid-push (pool shutdown). If `stall_ns` is non-null it is
  /// incremented by the time spent blocked waiting for space.
  /// Single producer: at most one thread may push at a time.
  common::Words push(const std::uint64_t* words, common::Words n,
                     std::uint64_t* stall_ns);

  /// Lock-free core of push: enqueues up to `n` words without blocking;
  /// returns the number enqueued — short when the ring fills or is closed.
  /// Single producer: at most one thread may push at a time.
  common::Words try_push(const std::uint64_t* words, common::Words n);

  /// Dequeues up to `n` words into `out` without blocking; returns the
  /// number of words delivered (zero when empty).
  /// Single consumer: at most one thread may pop at a time (the pool
  /// serializes poppers per ring with a consumer stripe lock).
  common::Words pop_some(std::uint64_t* out, common::Words n);

  /// Words currently buffered (racy snapshot; never negative).
  common::Words size() const;

  common::Words capacity() const { return common::Words{buf_.size()}; }

  /// Marks the ring closed and wakes any blocked pusher. Buffered words
  /// remain drawable; further pushes return immediately.
  void close();

  bool closed() const;

 private:
  std::vector<std::uint64_t> buf_;

  // ---- producer cache line ----
  // Free-running count of words ever enqueued; slot = tail_ % capacity.
  // Written only by the producer (release), read by the consumer
  // (acquire). head_seen_ is the producer's private snapshot of head_,
  // refreshed from the shared index only when the cached view shows a
  // full ring.
  // trng-analyzer: atomic(index-producer)
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_seen_ = 0;  ///< producer-confined snapshot of head_

  // ---- consumer cache line ----
  // Free-running count of words ever dequeued; slot = head_ % capacity.
  // Written only by the (current) consumer (release), read by the
  // producer (acquire). tail_seen_ is the consumer's snapshot of tail_,
  // refreshed only when the cached view shows an empty ring. Consumer
  // identity may change between pops (the pool's stripe lock hands the
  // role across threads); the lock's ordering carries tail_seen_ across.
  // trng-analyzer: atomic(index-consumer)
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_seen_ = 0;  ///< consumer-confined snapshot of tail_

  // ---- close latch + blocking-push plumbing (cold path) ----
  // trng-analyzer: atomic(flag)
  alignas(64) std::atomic<bool> closed_{false};
  std::mutex mu_;
  std::condition_variable space_cv_;
};

}  // namespace trng::service
