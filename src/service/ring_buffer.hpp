// Bounded FIFO ring of packed 64-bit words — one per pool producer.
//
// The ring is the hand-off point between a producer thread (health-gated
// blocks of generator output) and the pool's consumer side. Push blocks
// while the ring is full (backpressure: the producer stalls rather than
// dropping or overwriting entropy that consumers have not drawn yet);
// pop never blocks — the pool's draw() handles cross-ring waiting so a
// single slow ring cannot stall a consumer that other rings could serve.
//
// Word granularity matches BitSource::generate_into: producers push whole
// admitted blocks (a multiple of 64 bits), consumers draw packed words.
// Every count at this interface is strongly typed (common::Words): a bit
// count cannot reach the ring without an explicit bits_to_words().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/units.hpp"

namespace trng::service {

class WordRing {
 public:
  /// Capacity in 64-bit words; must be >= 1.
  /// Throws std::invalid_argument otherwise.
  explicit WordRing(common::Words capacity);

  WordRing(const WordRing&) = delete;
  WordRing& operator=(const WordRing&) = delete;

  /// Enqueues `n` words, blocking while the ring is full. Returns the
  /// number of words actually enqueued — less than `n` only when the ring
  /// is closed mid-push (pool shutdown). If `stall_ns` is non-null it is
  /// incremented by the time spent blocked waiting for space.
  common::Words push(const std::uint64_t* words, common::Words n,
                     std::uint64_t* stall_ns);

  /// Dequeues up to `n` words into `out` without blocking; returns the
  /// number of words delivered (zero when empty).
  common::Words pop_some(std::uint64_t* out, common::Words n);

  /// Words currently buffered.
  common::Words size() const;

  common::Words capacity() const { return common::Words{buf_.size()}; }

  /// Marks the ring closed and wakes any blocked pusher. Buffered words
  /// remain drawable; further pushes return immediately.
  void close();

  bool closed() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable space_cv_;
  std::vector<std::uint64_t> buf_;
  // Declared locking contract (SA005): the FIFO cursors and the closed
  // latch are only coherent as a set, so every access takes mu_. buf_
  // itself is deliberately outside the contract — its *size* is fixed
  // at construction and capacity() reads it lock-free.
  // trng-analyzer: guards(head_, mu_)
  // trng-analyzer: guards(count_, mu_)
  // trng-analyzer: guards(closed_, mu_)
  std::size_t head_ = 0;   ///< index of the oldest buffered word
  std::size_t count_ = 0;  ///< buffered words
  bool closed_ = false;
};

}  // namespace trng::service
