#include "service/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace trng::service {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool trailing_comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  append_u64(out, v);
  if (trailing_comma) out += ", ";
}

/// Escapes the characters that can plausibly appear in a source label.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    } else {
      out += ' ';
    }
  }
  out += '"';
}

}  // namespace

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty() ||
      !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be non-empty and strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(std::uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count(std::size_t i) const {
  return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) sum += count(i);
  return sum;
}

std::string Histogram::to_json() const {
  std::string out = "{\"bounds\": [";
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (i > 0) out += ", ";
    append_u64(out, bounds_[i]);
  }
  out += "], \"counts\": [";
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    if (i > 0) out += ", ";
    append_u64(out, count(i));
  }
  out += "]}";
  return out;
}

const char* admit_state_name(AdmitState state) {
  switch (state) {
    case AdmitState::kHealthy:
      return "healthy";
    case AdmitState::kQuarantined:
      return "quarantined";
    case AdmitState::kProbation:
      return "probation";
  }
  return "unknown";
}

Metrics::Metrics(std::size_t producers)
    : labels_(producers), sources_(producers) {
  for (std::size_t i = 0; i < producers; ++i) {
    labels_[i] = "producer-" + std::to_string(i);
  }
}

void Metrics::set_label(std::size_t i, std::string label) {
  labels_[i] = std::move(label);
}

std::string Metrics::snapshot_json() const {
  std::string out;
  out.reserve(512 + 512 * sources_.size());
  out += "{\"schema\": \"trng.service.metrics.v1\", \"pool\": {";
  append_kv(out, "draws", draws.load(std::memory_order_relaxed));
  append_kv(out, "words_drawn", words_drawn.load(std::memory_order_relaxed));
  append_kv(out, "draw_wait_ns",
            draw_wait_ns.load(std::memory_order_relaxed));
  append_kv(out, "nonblocking_shortfall_words",
            nonblocking_shortfall_words.load(std::memory_order_relaxed));
  out += "\"draw_wait_us_histogram\": ";
  out += draw_wait_us.to_json();
  out += "}, \"producers\": [";
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    const ProducerCounters& c = sources_[i];
    if (i > 0) out += ", ";
    out += "{\"label\": ";
    append_json_string(out, labels_[i]);
    out += ", \"state\": \"";
    out += admit_state_name(
        static_cast<AdmitState>(c.state.load(std::memory_order_relaxed)));
    out += "\", ";
    append_kv(out, "words_produced",
              c.words_produced.load(std::memory_order_relaxed));
    append_kv(out, "words_discarded",
              c.words_discarded.load(std::memory_order_relaxed));
    append_kv(out, "words_drawn",
              c.words_drawn.load(std::memory_order_relaxed));
    append_kv(out, "blocks_admitted",
              c.blocks_admitted.load(std::memory_order_relaxed));
    append_kv(out, "blocks_rejected",
              c.blocks_rejected.load(std::memory_order_relaxed));
    append_kv(out, "health_alarms",
              c.health_alarms.load(std::memory_order_relaxed));
    append_kv(out, "quarantines",
              c.quarantines.load(std::memory_order_relaxed));
    append_kv(out, "reseeds", c.reseeds.load(std::memory_order_relaxed));
    append_kv(out, "readmissions",
              c.readmissions.load(std::memory_order_relaxed));
    append_kv(out, "stall_ns", c.stall_ns.load(std::memory_order_relaxed));
    append_kv(out, "ring_words",
              c.ring_words.load(std::memory_order_relaxed));
    out += "\"ring_occupancy_pct_histogram\": ";
    out += c.ring_occupancy_pct.to_json();
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace trng::service
