#include "model/platform_measurement.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/stats.hpp"
#include "core/extractor.hpp"
#include "sim/delay_line.hpp"
#include "sim/ring_oscillator.hpp"
#include "sim/sampler.hpp"

namespace trng::model {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// First-edge position of a single-line snapshot, or -1 when edge-free.
int first_edge_position(const sim::LineSnapshot& snapshot) {
  for (std::size_t j = 0; j + 1 < snapshot.size(); ++j) {
    if (snapshot[j] != snapshot[j + 1]) return static_cast<int>(j);
  }
  return -1;
}

}  // namespace

PlatformMeasurement::PlatformMeasurement(const fpga::Fabric& fabric,
                                         std::uint64_t seed)
    : fabric_(fabric), seed_(seed) {}

Picoseconds PlatformMeasurement::measure_lut_delay(
    int ro_stages, Picoseconds duration_ps) const {
  if (ro_stages < 1 || !(duration_ps > 0.0)) {
    throw std::invalid_argument("measure_lut_delay: bad arguments");
  }
  // Any ring oscillator works: the circulating edge performs one stage
  // traversal (= one counted transition) every d0 on average, regardless
  // of n, so d0 = window / transitions.
  std::vector<Picoseconds> delays;
  for (int s = 0; s < ro_stages; ++s) {
    delays.push_back(
        fabric_.lut_delay(fpga::SliceCoord{0, 16 + s}, s % 4));
  }
  sim::NoiseConfig noise;  // full taxonomy: a real measurement sees it all
  sim::SupplyNoise supply(noise, seed_ ^ 0xD0ULL);
  sim::RingOscillator osc(delays, fabric_.spec().lut.thermal_sigma_ps, noise,
                          &supply, seed_ ^ 0xD01ULL);
  osc.reset(0.0);
  osc.advance_to(duration_ps);
  if (osc.transition_count() == 0) {
    throw std::runtime_error("measure_lut_delay: oscillator did not run");
  }
  return duration_ps / static_cast<double>(osc.transition_count());
}

Picoseconds PlatformMeasurement::measure_t_step(int line_carry4s,
                                                int captures) const {
  if (line_carry4s < 2 || captures < 1) {
    throw std::invalid_argument("measure_t_step: bad arguments");
  }
  // Single-LUT oscillator (half-period = d0) captured in a long chain: the
  // chain must span more than one half-period so consecutive edges appear
  // in the same snapshot.
  fpga::TrngFloorplan fp;
  fp.lines.push_back(fpga::DelayLinePlacement{0, 17, line_carry4s});
  fp.ro_stages.push_back(fpga::RoStagePlacement{fpga::SliceCoord{0, 16}, 0});
  const auto elaborated = fabric_.elaborate(fp);

  // Half-period of this specific oscillator via transition counting.
  sim::NoiseConfig noise;
  sim::SupplyNoise supply(noise, seed_ ^ 0x7E9ULL);
  sim::RingOscillator osc(elaborated.ro_stage_delay,
                          elaborated.stage_white_sigma_ps, noise, &supply,
                          seed_ ^ 0x7E91ULL);
  osc.reset(0.0);
  const Picoseconds count_window = 1.0e6;
  osc.advance_to(count_window);
  const Picoseconds half_period =
      count_window / static_cast<double>(osc.transition_count());

  if (elaborated.lines[0].total_delay() < 1.5 * half_period) {
    throw std::invalid_argument(
        "measure_t_step: chain shorter than 1.5 half-periods; increase "
        "line_carry4s");
  }

  // Capture snapshots and average the tap distance between consecutive
  // edges. Spacings of one or two taps are metastability bubbles, not
  // half-periods; anything below a quarter of the expected spacing is
  // discarded.
  sim::TappedDelayLineSim line(elaborated.lines[0], fabric_.spec().flip_flop,
                               seed_ ^ 0x7E92ULL);
  common::RunningStats spacing;
  Picoseconds t = count_window;
  const double min_spacing =
      0.25 * half_period / fabric_.spec().carry4.nominal_tap_delay_ps;
  for (int c = 0; c < captures; ++c) {
    t += 3.0 * half_period + 13.7;  // stride avoids phase-locking to HP
    osc.advance_to(t + 500.0);
    const auto snap = line.capture(osc, 0, t);
    int prev = -1;
    for (std::size_t j = 0; j + 1 < snap.size(); ++j) {
      if (snap[j] != snap[j + 1]) {
        if (prev >= 0) {
          const double d = static_cast<double>(static_cast<int>(j) - prev);
          if (d >= min_spacing) spacing.add(d);
        }
        prev = static_cast<int>(j);
      }
    }
  }
  if (spacing.count() < 10) {
    throw std::runtime_error("measure_t_step: too few edge pairs captured");
  }
  return half_period / spacing.mean();
}

Picoseconds PlatformMeasurement::measure_jitter_sigma(
    int reps, Picoseconds t_acc_ps) const {
  if (reps < 10 || !(t_acc_ps > 0.0)) {
    throw std::invalid_argument("measure_jitter_sigma: bad arguments");
  }
  const int kStages = 3;
  // Chain depth must exceed one half-period (~3 * 480 ps) so an edge is
  // always captured: 22 CARRY4 = 88 taps ~= 1.5 kps.
  const int kCarry4s = 22;

  fpga::TrngFloorplan fp;
  fp.lines.push_back(fpga::DelayLinePlacement{0, 17, kCarry4s});
  fp.lines.push_back(fpga::DelayLinePlacement{2, 17, kCarry4s});
  fp.ro_stages.push_back(fpga::RoStagePlacement{fpga::SliceCoord{0, 16}, 0});
  fp.ro_stages.push_back(fpga::RoStagePlacement{fpga::SliceCoord{2, 16}, 0});
  const auto elaborated = fabric_.elaborate(fp);

  // Two *adjacent, nominally identical* oscillators sharing the global
  // supply noise (that is the point of the differential method).
  auto stage_delays = [&](int col) {
    std::vector<Picoseconds> d;
    for (int s = 0; s < kStages; ++s) {
      d.push_back(fabric_.lut_delay(fpga::SliceCoord{col, 14 + s}, s));
    }
    return d;
  };
  sim::NoiseConfig noise;  // full taxonomy incl. supply + flicker
  sim::SupplyNoise supply(noise, seed_ ^ 0x51ULL);
  sim::RingOscillator osc_a(stage_delays(0), fabric_.spec().lut.thermal_sigma_ps,
                            noise, &supply, seed_ ^ 0x51AULL);
  sim::RingOscillator osc_b(stage_delays(2), fabric_.spec().lut.thermal_sigma_ps,
                            noise, &supply, seed_ ^ 0x51BULL);
  sim::TappedDelayLineSim line_a(elaborated.lines[0], fabric_.spec().flip_flop,
                                 seed_ ^ 0x51CULL);
  sim::TappedDelayLineSim line_b(elaborated.lines[1], fabric_.spec().flip_flop,
                                 seed_ ^ 0x51DULL);

  const Picoseconds half_period_a = osc_a.nominal_half_period();
  const Picoseconds half_period_b = osc_b.nominal_half_period();
  const Picoseconds half_period = 0.5 * (half_period_a + half_period_b);

  // Collect the edge-age difference per repetition; the deterministic part
  // (mismatch between the two oscillators) is removed by the statistics,
  // wrap-around by circular averaging.
  std::vector<double> diffs;
  diffs.reserve(static_cast<std::size_t>(reps));
  Picoseconds t0 = 0.0;
  for (int r = 0; r < reps; ++r) {
    osc_a.reset(t0);
    osc_b.reset(t0);
    const Picoseconds ts = t0 + t_acc_ps;
    osc_a.advance_to(ts + 500.0);
    osc_b.advance_to(ts + 500.0);
    const auto snap_a = line_a.capture(osc_a, kStages - 1, ts);
    const auto snap_b = line_b.capture(osc_b, kStages - 1, ts);
    const int pa = first_edge_position(snap_a);
    const int pb = first_edge_position(snap_b);
    if (pa >= 0 && pb >= 0) {
      const double age_a =
          elaborated.lines[0].cumulative_delay[static_cast<std::size_t>(pa)];
      const double age_b =
          elaborated.lines[1].cumulative_delay[static_cast<std::size_t>(pb)];
      diffs.push_back(age_a - age_b);
    }
    t0 = ts + constants::kSystemClockPeriodPs;
  }
  if (diffs.size() < 10) {
    throw std::runtime_error("measure_jitter_sigma: too few captures");
  }

  // Circular mean over the half-period torus, then wrapped deviations.
  double sx = 0.0, sy = 0.0;
  for (double d : diffs) {
    sx += std::cos(kTwoPi * d / half_period);
    sy += std::sin(kTwoPi * d / half_period);
  }
  const double center = std::atan2(sy, sx) / kTwoPi * half_period;
  common::RunningStats dev;
  for (double d : diffs) {
    double w = std::fmod(d - center, half_period);
    if (w > half_period / 2.0) w -= half_period;
    if (w < -half_period / 2.0) w += half_period;
    dev.add(w);
  }

  // std(diff) = sqrt(2) * sigma_acc; invert Eq. 1 with the measured d0.
  const Picoseconds d0 = half_period / static_cast<double>(kStages);
  const double sigma_acc_meas = dev.stddev() / std::sqrt(2.0);
  return sigma_acc_meas * std::sqrt(d0 / t_acc_ps);
}

core::PlatformParams PlatformMeasurement::measure_all() const {
  core::PlatformParams p;
  p.d0_lut_ps = measure_lut_delay();
  p.t_step_ps = measure_t_step();
  p.sigma_lut_ps = measure_jitter_sigma();
  p.f_clk_hz = constants::kSystemClockHz;
  return p;
}

}  // namespace trng::model
