// Platform-parameter measurement procedures (paper Section 5.1), executed
// against the *simulated* fabric exactly the way the paper runs them against
// silicon:
//
//   * d0,LUT  — implement a ring oscillator and count transitions within a
//     fixed time window: d0 = window / transitions.
//   * t_step  — capture a slow oscillator in a long carry chain and count
//     TDC taps per oscillator half-period: t_step = half_period / taps.
//   * sigma_LUT — the differential dual-oscillator method: two identical
//     ring oscillators placed side by side are enabled for ~20 ns and both
//     captured in carry-chain TDCs; the spread of the *difference* of their
//     edge positions over many repetitions isolates the white jitter
//     (common-mode supply noise cancels; the short window keeps flicker
//     negligible): sigma_LUT = std(diff)/sqrt(2) * sqrt(d0 / t_acc).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "fpga/fabric.hpp"

namespace trng::model {

class PlatformMeasurement {
 public:
  /// Measurements run on `fabric` (kept by reference; must outlive this).
  /// `seed` drives the noise realizations of the measurement runs.
  PlatformMeasurement(const fpga::Fabric& fabric, std::uint64_t seed);

  /// d0,LUT via transition counting. `ro_stages` is the test oscillator
  /// length, `duration_ps` the counting window (default 1 us, short enough
  /// to keep flicker out of the average per the paper's guidance).
  Picoseconds measure_lut_delay(int ro_stages = 3,
                                Picoseconds duration_ps = 1.0e6) const;

  /// t_step via taps-per-half-period in a long carry chain fed by a
  /// single-LUT oscillator. `line_carry4s` sets the chain length (must give
  /// the chain more depth than one half-period); `captures` snapshots are
  /// averaged.
  Picoseconds measure_t_step(int line_carry4s = 32, int captures = 256) const;

  /// sigma_LUT via the differential dual-oscillator method: `reps`
  /// repetitions of `t_acc_ps` accumulation (paper: 1000 reps of 20 ns).
  Picoseconds measure_jitter_sigma(int reps = 1000,
                                   Picoseconds t_acc_ps = 20000.0) const;

  /// Runs all three procedures and packages the result for the model.
  core::PlatformParams measure_all() const;

 private:
  const fpga::Fabric& fabric_;
  std::uint64_t seed_;
};

}  // namespace trng::model
