#include "model/design_space.hpp"

#include <stdexcept>

namespace trng::model {

DesignSpaceExplorer::DesignSpaceExplorer(const StochasticModel& model)
    : model_(model) {}

DesignPoint DesignSpaceExplorer::evaluate(int k, Cycles accumulation_cycles,
                                          unsigned np) const {
  DesignPoint p;
  p.k = k;
  p.accumulation_cycles = accumulation_cycles;
  p.np = np;
  p.t_a_ps = static_cast<double>(accumulation_cycles) * 1.0e12 /
             model_.platform().f_clk_hz;
  p.h_raw = model_.entropy_lower_bound(p.t_a_ps, k);
  p.bias_raw = model_.worst_case_bias(p.t_a_ps, k);
  p.h_post = model_.entropy_after_postprocessing(p.t_a_ps, k, np);
  p.throughput_bps = model_.throughput_bps(accumulation_cycles, np);
  return p;
}

std::vector<DesignPoint> DesignSpaceExplorer::sweep(
    const std::vector<int>& ks, const std::vector<Cycles>& cycles,
    const std::vector<unsigned>& nps) const {
  std::vector<DesignPoint> out;
  out.reserve(ks.size() * cycles.size() * nps.size());
  for (int k : ks) {
    for (Cycles c : cycles) {
      for (unsigned np : nps) out.push_back(evaluate(k, c, np));
    }
  }
  return out;
}

Cycles DesignSpaceExplorer::min_accumulation_cycles(int k, double target_h,
                                                    Cycles max_cycles) const {
  if (!(target_h > 0.0) || target_h > 1.0) {
    throw std::invalid_argument("min_accumulation_cycles: target_h in (0,1]");
  }
  // Entropy is monotone in t_A (more accumulated jitter can only help), so
  // galloping + binary search is exact.
  const double t_clk_ps = 1.0e12 / model_.platform().f_clk_hz;
  auto h_at = [&](Cycles c) {
    return model_.entropy_lower_bound(static_cast<double>(c) * t_clk_ps, k);
  };
  Cycles hi = 1;
  while (h_at(hi) < target_h) {
    if (hi >= max_cycles) {
      throw std::runtime_error(
          "min_accumulation_cycles: target entropy unreachable");
    }
    hi *= 2;
  }
  Cycles lo = hi / 2;  // h(lo) < target (or lo == 0)
  while (hi - lo > 1) {
    const Cycles mid = lo + (hi - lo) / 2;
    (h_at(mid) >= target_h ? hi : lo) = mid;
  }
  return hi;
}

Picoseconds DesignSpaceExplorer::min_accumulation_time_ps(
    int k, double target_h, Picoseconds tolerance_ps) const {
  if (!(target_h > 0.0) || target_h > 1.0) {
    throw std::invalid_argument("min_accumulation_time_ps: target_h in (0,1]");
  }
  auto h_at = [&](Picoseconds t) { return model_.entropy_lower_bound(t, k); };
  Picoseconds hi = 1.0;
  while (h_at(hi) < target_h) {
    hi *= 2.0;
    if (hi > 1.0e15) {
      throw std::runtime_error(
          "min_accumulation_time_ps: target entropy unreachable");
    }
  }
  Picoseconds lo = 0.0;
  while (hi - lo > tolerance_ps) {
    const Picoseconds mid = 0.5 * (lo + hi);
    (h_at(mid) >= target_h ? hi : lo) = mid;
  }
  return hi;
}

unsigned DesignSpaceExplorer::min_np(int k, Cycles accumulation_cycles,
                                     double target_h, unsigned max_np) const {
  if (!(target_h > 0.0) || target_h > 1.0) {
    throw std::invalid_argument("min_np: target_h in (0,1]");
  }
  const double t_a_ps = static_cast<double>(accumulation_cycles) * 1.0e12 /
                        model_.platform().f_clk_hz;
  for (unsigned np = 1; np <= max_np; ++np) {
    if (model_.entropy_after_postprocessing(t_a_ps, k, np) >= target_h) {
      return np;
    }
  }
  throw std::runtime_error("min_np: target entropy unreachable within max_np");
}

}  // namespace trng::model
