#include "model/stochastic_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>
#include <stdexcept>

#include "common/gaussian.hpp"
#include "common/stats.hpp"

namespace trng::model {

StochasticModel::StochasticModel(core::PlatformParams platform)
    : platform_(platform) {
  platform_.validate();
}

Picoseconds StochasticModel::sigma_acc(Picoseconds t_a_ps) const {
  if (!(t_a_ps >= 0.0)) {
    throw std::invalid_argument("StochasticModel::sigma_acc: t_A < 0");
  }
  return platform_.sigma_lut_ps * std::sqrt(t_a_ps / platform_.d0_lut_ps);
}

double StochasticModel::p_one(Picoseconds tau_ps, Picoseconds sigma_ps,
                              int k) const {
  if (k < 1) throw std::invalid_argument("StochasticModel::p_one: k < 1");
  const double t = static_cast<double>(k) * platform_.t_step_ps;

  if (sigma_ps <= 0.0) {
    // Deterministic limit: the edge lands exactly at its mean; '1' iff the
    // mean is inside a '1'-bin (centers at even multiples of t, period 2t).
    const double y = std::fabs(std::fmod(tau_ps, 2.0 * t));
    return (y < t / 2.0 || y > 2.0 * t - t / 2.0) ? 1.0 : 0.0;
  }

  // The Gaussian mass beyond ~8.5 sigma is < 1e-17, below double resolution
  // of the sum; truncate the bin index accordingly.
  const auto i_max =
      static_cast<long>(std::ceil((std::fabs(tau_ps) + 8.5 * sigma_ps) /
                                  (2.0 * t))) + 1;
  common::KahanSum sum;
  for (long i = -i_max; i <= i_max; ++i) {
    const double center = 2.0 * static_cast<double>(i) * t;
    const double hi = (tau_ps - (center - t / 2.0)) / sigma_ps;
    const double lo = (tau_ps - (center + t / 2.0)) / sigma_ps;
    // Phi(hi) - Phi(lo), evaluated to avoid cancellation in the tails.
    sum.add(common::normal_sf(lo) - common::normal_sf(hi));
  }
  // Clamp tiny numerical excursions outside [0, 1].
  return std::min(1.0, std::max(0.0, sum.value()));
}

double StochasticModel::shannon_entropy(Picoseconds tau_ps, Picoseconds t_a_ps,
                                        int k) const {
  const double p1 = p_one(tau_ps, sigma_acc(t_a_ps), k);
  return common::binary_entropy(p1);
}

double StochasticModel::entropy_lower_bound(Picoseconds t_a_ps, int k) const {
  return shannon_entropy(0.0, t_a_ps, k);
}

double StochasticModel::worst_case_bias(Picoseconds t_a_ps, int k) const {
  const double p1 = p_one(0.0, sigma_acc(t_a_ps), k);
  return std::max(p1, 1.0 - p1) - 0.5;
}

double StochasticModel::xor_bias(double bias, unsigned np) {
  if (np == 0) throw std::invalid_argument("StochasticModel::xor_bias: np=0");
  if (bias < 0.0 || bias > 0.5) {
    throw std::domain_error("StochasticModel::xor_bias: bias outside [0, 0.5]");
  }
  // Piling-up lemma: b_pp = 2^(np-1) * b^np. Computed in the log domain so
  // np in the tens cannot underflow pairwise.
  // trng-lint: allow(TL003) -- exact zero must short-circuit log2(0) = -inf
  if (bias == 0.0) return 0.0;
  const double log2b = std::log2(bias);
  return std::exp2(static_cast<double>(np - 1) +
                   static_cast<double>(np) * log2b);
}

double StochasticModel::entropy_after_postprocessing(Picoseconds t_a_ps, int k,
                                                     unsigned np) const {
  const double b = worst_case_bias(t_a_ps, k);
  const double bpp = xor_bias(b, np);
  return common::binary_entropy(0.5 + bpp);
}

double StochasticModel::p_one_folded(Picoseconds tau_ps, Picoseconds sigma_ps,
                                     int k, Picoseconds wrap_ps,
                                     Picoseconds wrap_phase_ps) const {
  if (k < 1) {
    throw std::invalid_argument("StochasticModel::p_one_folded: k < 1");
  }
  const double t = static_cast<double>(k) * platform_.t_step_ps;
  const double wrap = wrap_ps > 0.0 ? wrap_ps : platform_.d0_lut_ps;
  if (wrap < t) {
    throw std::invalid_argument(
        "StochasticModel::p_one_folded: wrap must be >= one bin");
  }
  const double phase = wrap_phase_ps;
  // Decoded bit for an edge at absolute position x: the observable position
  // re-enters at the wrap boundaries phase + n * wrap; bins follow Eq. 3's
  // convention — centers at even multiples of t decode '1' — so the folded
  // model coincides with p_one() far from any wrap boundary.
  auto bit_at = [&](double x) {
    double y = std::fmod(x - phase, wrap);
    if (y < 0.0) y += wrap;
    y += phase;
    const auto bin = static_cast<long>(std::floor((y + t / 2.0) / t));
    return (bin % 2L + 2L) % 2L == 0L;
  };
  if (sigma_ps <= 0.0) return bit_at(tau_ps) ? 1.0 : 0.0;

  // Integrate the Gaussian over segments of constant bit value. The bit
  // changes at bin boundaries (j + 1/2) t within each wrap period and at
  // the wrap boundaries themselves (where the position resets); enumerate
  // both for every wrap period intersecting +-8.5 sigma.
  const double lo = tau_ps - 8.5 * sigma_ps;
  const double hi = tau_ps + 8.5 * sigma_ps;
  std::vector<double> breaks;
  breaks.push_back(lo);
  breaks.push_back(hi);
  const auto w_lo = static_cast<long>(std::floor((lo - phase) / wrap));
  const auto w_hi = static_cast<long>(std::floor((hi - phase) / wrap));
  for (long w = w_lo; w <= w_hi; ++w) {
    const double base = phase + static_cast<double>(w) * wrap;
    if (base > lo && base < hi) breaks.push_back(base);
    // Bit boundaries within this wrap period: observable coordinates
    // y = (j - 1/2) t for integer j, restricted to [phase, phase + wrap).
    // Jump straight to the first one at or after lo.
    const double y0 = std::ceil((phase - t / 2.0) / t) * t + t / 2.0;
    double x = base + (y0 - phase);
    if (x < lo) x += std::ceil((lo - x) / t) * t;
    for (; x < base + wrap && x < hi; x += t) {
      if (x > lo) breaks.push_back(x);
    }
  }
  std::sort(breaks.begin(), breaks.end());
  common::KahanSum p1;
  for (std::size_t i = 0; i + 1 < breaks.size(); ++i) {
    const double a = breaks[i];
    const double b = breaks[i + 1];
    if (b <= a) continue;
    if (bit_at(0.5 * (a + b))) {
      p1.add(common::normal_cdf((b - tau_ps) / sigma_ps) -
             common::normal_cdf((a - tau_ps) / sigma_ps));
    }
  }
  return std::min(1.0, std::max(0.0, p1.value()));
}

double StochasticModel::folded_entropy_lower_bound_sigma(
    Picoseconds sigma_ps, int k, Picoseconds wrap_ps, int grid) const {
  if (grid < 2) {
    throw std::invalid_argument("folded_entropy_lower_bound_sigma: grid < 2");
  }
  const double wrap = wrap_ps > 0.0 ? wrap_ps : platform_.d0_lut_ps;
  const double t = static_cast<double>(k) * platform_.t_step_ps;
  const int phase_grid = std::max(4, grid / 32);
  double h_min = 1.0;
  for (int ph = 0; ph < phase_grid; ++ph) {
    const double phase = 2.0 * t * (static_cast<double>(ph) + 0.5) /
                         static_cast<double>(phase_grid);
    for (int i = 0; i < grid; ++i) {
      const double tau = wrap * (static_cast<double>(i) + 0.5) /
                         static_cast<double>(grid);
      const double p1 = p_one_folded(tau, sigma_ps, k, wrap, phase);
      h_min = std::min(h_min, common::binary_entropy(p1));
    }
  }
  return h_min;
}

double StochasticModel::folded_entropy_lower_bound(Picoseconds t_a_ps, int k,
                                                   Picoseconds wrap_ps,
                                                   int grid) const {
  return folded_entropy_lower_bound_sigma(sigma_acc(t_a_ps), k, wrap_ps, grid);
}

double StochasticModel::improvement_factor(int k) const {
  if (k < 1) {
    throw std::invalid_argument("StochasticModel::improvement_factor: k < 1");
  }
  const double ratio =
      platform_.d0_lut_ps / (static_cast<double>(k) * platform_.t_step_ps);
  return ratio * ratio;
}

double StochasticModel::throughput_bps(Cycles accumulation_cycles,
                                       unsigned np) const {
  if (accumulation_cycles == 0 || np == 0) {
    throw std::invalid_argument("StochasticModel::throughput_bps: zero arg");
  }
  return platform_.f_clk_hz / static_cast<double>(accumulation_cycles) /
         static_cast<double>(np);
}

}  // namespace trng::model
