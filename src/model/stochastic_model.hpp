// The paper's stochastic model (Section 4): a lower bound on Shannon
// entropy per raw bit from platform parameters (d0,LUT, t_step, sigma_LUT)
// and design parameters (k, t_A, n_p).
//
//   Eq. 1  sigma_acc(t_A) = sigma_LUT * sqrt(t_A / d0)
//   Eq. 3  P1(tau) = sum_i Phi((tau - (2i - 1/2) t) / sigma)
//                  - Phi((tau - (2i + 1/2) t) / sigma),   t = k * t_step
//   Eq. 5  H = -P1 log2 P1 - P0 log2 P0
//   Eq. 6  b = max(P1, P0) - 1/2
//   Eq. 7  b_pp = 2^(n_p - 1) * b^n_p
//   Eq. 8  throughput gain = (d0 / (k t_step))^2
//
// tau is the offset between the mean position of the noisy edge and the
// center of the nearest TDC bin; the bound is evaluated at the worst case
// tau = 0 (edge parked on a bin center, Figure 7).
#pragma once

#include "common/types.hpp"
#include "core/config.hpp"

namespace trng::model {

class StochasticModel {
 public:
  /// Throws std::invalid_argument via PlatformParams::validate().
  explicit StochasticModel(core::PlatformParams platform);

  const core::PlatformParams& platform() const { return platform_; }

  /// Eq. 1: accumulated white jitter after t_A of free running.
  Picoseconds sigma_acc(Picoseconds t_a_ps) const;

  /// Eq. 3: probability that the sampled bin decodes to '1', for an edge
  /// whose mean sits `tau_ps` from the nearest '1'-bin center and whose
  /// jitter is `sigma_ps`. `k` widens the effective bin to k * t_step.
  /// Exact in the sigma -> 0 limit (indicator of the center bin).
  double p_one(Picoseconds tau_ps, Picoseconds sigma_ps, int k = 1) const;

  /// Eq. 5 at a given tau: Shannon entropy of one raw bit.
  double shannon_entropy(Picoseconds tau_ps, Picoseconds t_a_ps,
                         int k = 1) const;

  /// Worst-case (tau = 0) lower bound of Eq. 5 — the H_RAW of Table 1.
  double entropy_lower_bound(Picoseconds t_a_ps, int k = 1) const;

  /// Eq. 6 at worst case tau = 0.
  double worst_case_bias(Picoseconds t_a_ps, int k = 1) const;

  /// Eq. 7: bias after XOR post-processing with rate np.
  static double xor_bias(double bias, unsigned np);

  /// Entropy of one post-processed bit: H(1/2 + b_pp) — the H_NEW of
  /// Table 1.
  double entropy_after_postprocessing(Picoseconds t_a_ps, int k,
                                      unsigned np) const;

  /// Eq. 8: throughput improvement of TDC extraction over elementary
  /// sampling at resolution d0 — (d0 / (k t_step))^2.
  double improvement_factor(int k = 1) const;

  // ---- Folded (wrap-aware) extension ----------------------------------
  //
  // The paper's Eq. 3 treats the TDC as an unbounded axis of alternating
  // bins. The real extractor decodes the FIRST edge, and because every
  // oscillator tap feeds its own line, the observable edge position wraps
  // with period d0 (one stage delay): when the monitored edge's position
  // goes negative, the previous edge — one stage earlier — becomes the
  // first edge, re-entering d0 later. When d0 / (k * t_step) is close to an
  // EVEN integer, the wrapped image lands on the SAME output parity and
  // the two probability masses add instead of alternating, pushing P1
  // beyond Eq. 3's worst case. The folded model integrates the Gaussian
  // against the true parity function of (x mod d0) and is a strict
  // refinement of Eq. 3 (they coincide as d0 -> infinity).

  /// P1 with wrap-around at `wrap_ps` (default: the platform d0).
  /// `wrap_phase_ps` places the wrap boundaries at phase + n * wrap — the
  /// alignment of the wrap relative to the bin grid is die-specific, so the
  /// bound below scans it.
  double p_one_folded(Picoseconds tau_ps, Picoseconds sigma_ps, int k = 1,
                      Picoseconds wrap_ps = 0.0,
                      Picoseconds wrap_phase_ps = 0.0) const;

  /// Worst case over both tau (in [0, wrap)) and the wrap-boundary phase
  /// (in [0, 2 k t_step)) of the folded model's Shannon entropy — the
  /// sharpened, alignment-independent lower bound. `grid` sets the tau
  /// resolution; phases are scanned at grid/32 points.
  double folded_entropy_lower_bound(Picoseconds t_a_ps, int k = 1,
                                    Picoseconds wrap_ps = 0.0,
                                    int grid = 512) const;

  /// Same worst-case scan for an explicitly supplied sigma — used by the
  /// DNL-aware bound, where sigma comes from the true platform but the bin
  /// width is the die's worst bin.
  double folded_entropy_lower_bound_sigma(Picoseconds sigma_ps, int k,
                                          Picoseconds wrap_ps,
                                          int grid = 256) const;

  /// Post-processed throughput f_clk / (N_A * n_p) in bits/s.
  double throughput_bps(Cycles accumulation_cycles, unsigned np) const;

 private:
  core::PlatformParams platform_;
};

}  // namespace trng::model
