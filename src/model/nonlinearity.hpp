// TDC non-linearity (DNL) analysis — Section 5.2 of the paper.
//
// The stochastic model assumes equidistant bins (assumption 4, Section
// 4.1). Real carry chains are not equidistant: CARRY4 structure, process
// variation and clock-tree skew make bin widths vary (differential
// non-linearity, DNL). The paper mitigates this with the single-clock-
// region placement constraint and k = 4 down-sampling.
//
// These helpers quantify a die's DNL from elaborated timing and produce a
// conservative DNL-aware entropy bound: evaluating the (folded) model with
// the WIDEST effective bin as t_step lower-bounds the entropy of a die
// whose worst bin is that wide.
#pragma once

#include "fpga/fabric.hpp"
#include "model/stochastic_model.hpp"

namespace trng::model {

/// Bin-width statistics of one elaborated line at down-sampling k.
struct [[nodiscard]] DnlReport {
  double mean_bin_ps = 0.0;
  double min_bin_ps = 0.0;
  double max_bin_ps = 0.0;
  /// RMS of (w - mean)/mean over bins (relative DNL).
  double dnl_rms = 0.0;
  /// max |w - mean|/mean over bins.
  double dnl_peak = 0.0;
};

/// Effective bin widths of a line (consecutive observation-instant
/// spacings, including clock skew), merged in groups of k. The final
/// partial group is dropped. Throws std::invalid_argument for k < 1 or a
/// line with fewer than k + 1 taps.
std::vector<Picoseconds> effective_bin_widths(
    const fpga::ElaboratedDelayLine& line, int k = 1);

/// DNL statistics for one line at down-sampling k.
DnlReport analyze_dnl(const fpga::ElaboratedDelayLine& line, int k = 1);

/// Widest effective bin across all lines of an elaborated TRNG at
/// down-sampling k, plus `ff_margin_ps` of per-FF sampling-offset margin
/// on each boundary (2 * margin total).
Picoseconds worst_bin_width_ps(const fpga::ElaboratedTrng& elaborated, int k,
                               Picoseconds ff_margin_ps = 0.0);

/// Conservative entropy lower bound for a die with non-equidistant bins:
/// the folded model evaluated with t_step = worst bin width and wrap = the
/// die's mean stage delay. Always <= the equidistant-bin bound.
double dnl_aware_entropy_bound(const StochasticModel& model,
                               const fpga::ElaboratedTrng& elaborated,
                               Picoseconds t_a_ps, int k,
                               Picoseconds ff_margin_ps = 0.0);

}  // namespace trng::model
