// Design-space exploration (paper Section 4.4, "Use of the Model"):
// evaluate the stochastic model over grids of design parameters, find the
// minimal accumulation time for a target entropy bound, and the minimal
// post-processing rate for a target output entropy — the paper's Step 2
// ("determining optimal design parameters").
#pragma once

#include <vector>

#include "model/stochastic_model.hpp"

namespace trng::model {

/// One evaluated design point.
struct DesignPoint {
  int k = 1;
  Cycles accumulation_cycles = 1;
  unsigned np = 1;
  Picoseconds t_a_ps = 0.0;
  double h_raw = 0.0;        ///< worst-case entropy per raw bit
  double bias_raw = 0.0;     ///< worst-case raw bias (Eq. 6)
  double h_post = 0.0;       ///< entropy per post-processed bit
  double throughput_bps = 0.0;
};

class DesignSpaceExplorer {
 public:
  explicit DesignSpaceExplorer(const StochasticModel& model);

  /// Evaluates one design point.
  DesignPoint evaluate(int k, Cycles accumulation_cycles, unsigned np) const;

  /// Full grid sweep (cartesian product).
  std::vector<DesignPoint> sweep(const std::vector<int>& ks,
                                 const std::vector<Cycles>& cycles,
                                 const std::vector<unsigned>& nps) const;

  /// Smallest N_A (clock cycles) with worst-case raw entropy >= target_h.
  /// Throws std::runtime_error if not reached within `max_cycles`.
  Cycles min_accumulation_cycles(int k, double target_h,
                                 Cycles max_cycles = 1u << 20) const;

  /// Continuous-time version: smallest t_A (ps) with H >= target_h,
  /// found by bisection to `tolerance_ps`. Used for Eq. 8 verification,
  /// where the elementary TRNG's t_A is not cycle-quantized.
  Picoseconds min_accumulation_time_ps(int k, double target_h,
                                       Picoseconds tolerance_ps = 1.0) const;

  /// Smallest n_p such that the post-processed entropy >= target_h for the
  /// given (k, N_A). Throws std::runtime_error if no np <= max_np works
  /// (raw bits carry too little entropy, cf. Table 1's "NA" row).
  unsigned min_np(int k, Cycles accumulation_cycles, double target_h,
                  unsigned max_np = 64) const;

  const StochasticModel& model() const { return model_; }

 private:
  const StochasticModel& model_;
};

}  // namespace trng::model
