#include "model/nonlinearity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace trng::model {

std::vector<Picoseconds> effective_bin_widths(
    const fpga::ElaboratedDelayLine& line, int k) {
  const int m = line.taps();
  if (k < 1 || m < k + 1) {
    throw std::invalid_argument("effective_bin_widths: bad k or short line");
  }
  // Observation instant of tap j (relative, clock term cancels):
  // s_j = skew_j - cumulative_j; raw bin width = s_j - s_{j+1}.
  std::vector<Picoseconds> raw;
  raw.reserve(static_cast<std::size_t>(m - 1));
  for (int j = 0; j + 1 < m; ++j) {
    const auto a = static_cast<std::size_t>(j);
    const double s_j = line.ff_clock_skew[a] - line.cumulative_delay[a];
    const double s_j1 = line.ff_clock_skew[a + 1] - line.cumulative_delay[a + 1];
    raw.push_back(s_j - s_j1);
  }
  if (k == 1) return raw;
  std::vector<Picoseconds> merged;
  for (std::size_t j = 0; j + static_cast<std::size_t>(k) <= raw.size();
       j += static_cast<std::size_t>(k)) {
    double sum = 0.0;
    for (int g = 0; g < k; ++g) sum += raw[j + static_cast<std::size_t>(g)];
    merged.push_back(sum);
  }
  return merged;
}

DnlReport analyze_dnl(const fpga::ElaboratedDelayLine& line, int k) {
  const auto widths = effective_bin_widths(line, k);
  DnlReport r;
  double sum = 0.0;
  r.min_bin_ps = widths.front();
  r.max_bin_ps = widths.front();
  for (double w : widths) {
    sum += w;
    r.min_bin_ps = std::min(r.min_bin_ps, w);
    r.max_bin_ps = std::max(r.max_bin_ps, w);
  }
  r.mean_bin_ps = sum / static_cast<double>(widths.size());
  double sq = 0.0;
  for (double w : widths) {
    const double rel = (w - r.mean_bin_ps) / r.mean_bin_ps;
    sq += rel * rel;
    r.dnl_peak = std::max(r.dnl_peak, std::fabs(rel));
  }
  r.dnl_rms = std::sqrt(sq / static_cast<double>(widths.size()));
  return r;
}

Picoseconds worst_bin_width_ps(const fpga::ElaboratedTrng& elaborated, int k,
                               Picoseconds ff_margin_ps) {
  if (elaborated.lines.empty()) {
    throw std::invalid_argument("worst_bin_width_ps: no lines");
  }
  Picoseconds worst = 0.0;
  for (const auto& line : elaborated.lines) {
    worst = std::max(worst, analyze_dnl(line, k).max_bin_ps);
  }
  return worst + 2.0 * ff_margin_ps;
}

double dnl_aware_entropy_bound(const StochasticModel& model,
                               const fpga::ElaboratedTrng& elaborated,
                               Picoseconds t_a_ps, int k,
                               Picoseconds ff_margin_ps) {
  // Re-parameterize the model with the worst merged bin as the (k = 1)
  // step; sigma_acc still comes from the original platform parameters.
  core::PlatformParams worst = model.platform();
  worst.t_step_ps = worst_bin_width_ps(elaborated, k, ff_margin_ps);
  StochasticModel worst_model(worst);
  const double mean_d0 =
      elaborated.ro_half_period() /
      static_cast<double>(elaborated.ro_stage_delay.size());
  const double sigma = model.sigma_acc(t_a_ps);
  return worst_model.folded_entropy_lower_bound_sigma(sigma, 1, mean_d0);
}

}  // namespace trng::model
