// Client-side conveniences for the daemon protocol (session.hpp): frame a
// draw or metrics request on an fd and read the response back. Used by
// the tests, the examples and perf_microbench so none of them re-implement
// the wire format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "server/session.hpp"

namespace trng::server::client {

/// Largest metrics payload the client will accept. A metrics reply has no
/// request-side length to validate against, so allocation is bounded by
/// this ceiling instead of the peer's claimed (up to 4 GiB) frame length.
inline constexpr std::uint32_t kMaxMetricsBytes = 1u << 22;  // 4 MiB

/// Outcome of one framed exchange. `ok` means the transport worked and
/// the response both decoded and obeyed the protocol's length rules: a
/// kOk draw carries exactly the requested bytes, any other status carries
/// none. `status` is the server's verdict.
struct DrawReply {
  bool ok = false;
  Status status = Status::kBadRequest;
  std::uint16_t shard = 0;
  std::vector<std::uint8_t> bytes;
};

/// Sends one draw request and reads the reply. `shard` defaults to the
/// session's assigned shard; set `prediction_resistance` to demand a
/// fresh reseed before the generate. The reply's payload length is
/// validated against `nbytes` before any allocation, so a hostile server
/// cannot make the client allocate or block on bytes it never asked for.
[[nodiscard]] DrawReply draw(int fd, std::uint32_t nbytes,
               bool prediction_resistance = false,
               std::uint16_t shard = kAnyShard);

/// Sends one metrics request; returns the daemon's metrics JSON, or an
/// empty string on transport failure.
[[nodiscard]] std::string fetch_metrics(int fd);

/// Connects to a daemon's AF_UNIX socket; returns the fd or -1.
int connect_unix(const std::string& path);

}  // namespace trng::server::client
