#include "server/serverd.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace trng::server {

void ServerConfig::validate() const {
  conditioner.validate();
  session.validate();
  if (client_slots == 0) {
    throw std::invalid_argument("ServerConfig: client_slots must be >= 1");
  }
  if (session.max_request_bytes > conditioner.drbg.max_request_bytes) {
    throw std::invalid_argument(
        "ServerConfig: session.max_request_bytes must not exceed "
        "conditioner.drbg.max_request_bytes (such draws could never "
        "succeed)");
  }
}

ServerDaemon::ServerDaemon(service::SourceFactory make, ServerConfig config)
    : config_(std::move(config)),
      pool_(std::move(make), config_.pool),
      metrics_(config_.pool.producers, config_.client_slots),
      conditioner_(pool_, config_.conditioner, metrics_) {
  config_.validate();
}

ServerDaemon::~ServerDaemon() { stop(); }

void ServerDaemon::start() {
  if (started_.exchange(true)) return;
  pool_.start();
}

void ServerDaemon::spawn_session_locked(int fd, std::uint16_t shard) {
  SessionHandle handle;
  handle.fd = fd;
  handle.session = std::make_unique<Session>(
      fd, next_id_++, shard, conditioner_, metrics_,
      [this] { return metrics_json(); }, config_.session, draining_);
  Session* session = handle.session.get();
  handle.thread = std::thread([session] { session->serve(); });
  sessions_.push_back(std::move(handle));
}

int ServerDaemon::connect_client() {
  const std::size_t nshards = pool_.producers();
  std::lock_guard<std::mutex> lk(sessions_mu_);
  if (draining_.load(std::memory_order_acquire)) return -1;
  const auto shard = static_cast<std::uint16_t>(next_shard_);
  next_shard_ = (next_shard_ + 1) % nshards;
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error("ServerDaemon: socketpair failed");
  }
  spawn_session_locked(sv[0], shard);
  return sv[1];
}

int ServerDaemon::connect_client_to_shard(std::uint16_t shard) {
  if (shard >= pool_.producers()) {
    throw std::out_of_range("ServerDaemon: shard index out of range");
  }
  std::lock_guard<std::mutex> lk(sessions_mu_);
  if (draining_.load(std::memory_order_acquire)) return -1;
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error("ServerDaemon: socketpair failed");
  }
  spawn_session_locked(sv[0], shard);
  return sv[1];
}

void ServerDaemon::listen_unix(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un::sun_path)) {
    throw std::invalid_argument("ServerDaemon: bad unix socket path");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("ServerDaemon: socket() failed");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw std::runtime_error("ServerDaemon: bind/listen failed on " + path);
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (listen_fd_ >= 0) {
      ::close(fd);
      throw std::logic_error("ServerDaemon: already listening");
    }
    listen_fd_ = fd;
  }
  unix_path_ = path;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServerDaemon::accept_loop() {
  const std::size_t nshards = pool_.producers();
  int fd = -1;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    fd = listen_fd_;
  }
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (stop()) or hard error
    }
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (draining_.load(std::memory_order_acquire)) {
      ::close(client);
      return;
    }
    const auto shard = static_cast<std::uint16_t>(next_shard_);
    next_shard_ = (next_shard_ + 1) % nshards;
    spawn_session_locked(client, shard);
  }
}

void ServerDaemon::stop() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_release);

  // Wake the acceptor first so no new session can appear, then join it
  // without holding sessions_mu_ (it takes the lock per accept).
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Read-side shutdown on every session socket: each serve() loop
  // finishes the request in hand, answers anything still buffered with
  // kShuttingDown, and exits at EOF. Writes stay open for the drain.
  // The thread handles move out under the lock and join outside it, so a
  // still-serving session never contends with stop() for sessions_mu_.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    workers.reserve(sessions_.size());
    for (SessionHandle& handle : sessions_) {
      ::shutdown(handle.fd, SHUT_RD);
      workers.push_back(std::move(handle.thread));
    }
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.clear();  // ~Session closes each server-side fd
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  pool_.stop();
}

}  // namespace trng::server
