// Per-shard DRBG conditioning tier over the EntropyPool.
//
//   pool shard 0 (ring 0) ──reseed──► HashDrbg 0 ──generate──► clients
//   pool shard 1 (ring 1) ──reseed──► HashDrbg 1 ──generate──► clients
//   ...
//
// One Hash_DRBG per pool shard, seeded and reseeded exclusively from that
// shard's ring via EntropyPool::draw_from_shard. This is the amortization
// layer the ROADMAP's "millions of users" item asks for: raw pool entropy
// is kb/s-scale (the fabric sim is the bottleneck), but each health-gated
// seed block funds reseed_interval DRBG generates — thousands of client
// draws per gated block.
//
// The per-shard coupling is also the failover story: when a producer is
// quarantined, its ring drains and only *its* DRBG's reseeds starve. The
// shard keeps serving from its current seed until the reseed interval
// expires, then refuses with backpressure; other shards never notice.
//
// Determinism: with a fixed pool seed, producers == 1 and one sequential
// client, the reseed schedule (every reseed_interval generates, exactly
// seed_words words per reseed, partial draws buffered across attempts)
// makes the conditioned output stream a pure function of the pool seed —
// the determinism test pins this bit-for-bit across two daemon runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/units.hpp"
#include "server/drbg.hpp"
#include "server/metrics.hpp"
#include "service/entropy_pool.hpp"

namespace trng::server {

struct ConditionerConfig {
  DrbgLimits drbg;

  /// Pool words per DRBG (re)seed. 16 words = 1024 raw bits: comfortably
  /// above the 256-bit target strength even if the gated stream only
  /// carries ~0.5 min-entropy bits/bit.
  common::Words seed_words{16};

  /// How long a (re)seed may block on draw_from_shard before the draw is
  /// refused with backpressure (the quarantined-shard path).
  std::uint64_t reseed_timeout_ns = 2'000'000'000;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// Thread-safe conditioning tier: one mutex-serialized Hash_DRBG per pool
/// shard. Sessions on different shards proceed in parallel.
class Conditioner {
 public:
  enum class DrawStatus {
    kOk = 0,
    /// Shard entropy starved past the reseed deadline (or stale past the
    /// reseed interval with nothing to reseed from).
    kBackpressure = 1,
    kBadRequest = 2,
  };

  /// `pool` and `metrics` must outlive the conditioner; metrics must have
  /// one shard slot per pool producer. DRBGs are instantiated lazily on
  /// each shard's first draw (so constructing the tier never blocks).
  Conditioner(service::EntropyPool& pool, ConditionerConfig config,
              ServerMetrics& metrics);

  Conditioner(const Conditioner&) = delete;
  Conditioner& operator=(const Conditioner&) = delete;

  /// Fills out[0..nbytes) with conditioned bytes from `shard`'s DRBG.
  /// `prediction_resistance` forces a fresh reseed immediately before the
  /// generate (SP 800-90A PR semantics); without it the DRBG reseeds only
  /// when its reseed interval expires.
  [[nodiscard]] DrawStatus draw(std::size_t shard, std::uint8_t* out,
                                std::size_t nbytes,
                                bool prediction_resistance);

  std::size_t shards() const { return shards_.size(); }
  const ConditionerConfig& config() const { return config_; }

 private:
  struct Shard {
    // Declared lock order (SA008): the shard mutex is the outermost
    // lock on the conditioning path — the pool's locks nest inside it
    // (draw_entropy holds mu across EntropyPool::draw), never the
    // reverse.
    // trng-analyzer: lock-order(mu, EntropyPool::data_mu_)
    std::mutex mu;
    // Declared locking contract (SA005): the DRBG state and the partial
    // seed buffer advance together on every draw, so all access is under
    // the shard mutex. Different shards share nothing.
    // trng-analyzer: guards(drbg, mu)
    // trng-analyzer: guards(seed_buf, mu)
    // trng-analyzer: guards(seed_buf_words, mu)
    // trng-analyzer: guards(seed_epoch, mu)
    std::unique_ptr<HashDrbg> drbg;
    std::vector<std::uint64_t> seed_buf;  ///< partial entropy across tries
    common::Words seed_buf_words{0};
    std::uint64_t seed_epoch = 0;  ///< (re)seeds completed; nonce input
  };

  /// Tops seed_buf up to seed_words from the shard's ring (bounded by
  /// reseed_timeout_ns); returns true once a full seed is buffered.
  /// Partial draws stay buffered so starved attempts waste no entropy.
  /// Caller holds s.mu.
  [[nodiscard]] bool fill_seed(std::size_t index, Shard& s);

  /// Consumes the full seed buffer into an instantiate or reseed.
  /// Caller holds s.mu with seed_buf full.
  void apply_seed(std::size_t index, Shard& s);

  service::EntropyPool& pool_;
  ConditionerConfig config_;
  ServerMetrics& metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

const char* draw_status_name(Conditioner::DrawStatus status);

}  // namespace trng::server
