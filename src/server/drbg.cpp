#include "server/drbg.hpp"

#include <cstring>
#include <stdexcept>

#include "server/sha256.hpp"

namespace trng::server {
namespace {

/// SP 800-90A spec ceilings for SHA-256-based mechanisms.
constexpr std::uint64_t kMaxReseedInterval = 1ull << 48;
constexpr std::size_t kMaxRequestBytes = (1u << 19) / 8;  // 2^19 bits

/// Hash_df (§10.3.1): out = leftmost bytes of
/// SHA256(counter || no_of_bits_be32 || material) iterated over counter.
/// `material` is supplied as up to four concatenated parts so callers
/// never allocate a scratch buffer for entropy material.
void hash_df(const std::uint8_t* const parts[], const std::size_t lens[],
             std::size_t nparts, std::uint8_t* out, std::size_t out_bytes) {
  const std::uint32_t out_bits = static_cast<std::uint32_t>(out_bytes * 8);
  std::uint8_t counter = 1;
  std::size_t produced = 0;
  while (produced < out_bytes) {
    Sha256 h;
    h.update(&counter, 1);
    const std::uint8_t bits_be[4] = {
        static_cast<std::uint8_t>(out_bits >> 24),
        static_cast<std::uint8_t>(out_bits >> 16),
        static_cast<std::uint8_t>(out_bits >> 8),
        static_cast<std::uint8_t>(out_bits),
    };
    h.update(bits_be, 4);
    for (std::size_t p = 0; p < nparts; ++p) {
      if (lens[p] > 0) h.update(parts[p], lens[p]);
    }
    std::uint8_t digest[Sha256::kDigestBytes];
    h.final(digest);
    const std::size_t take = (out_bytes - produced < sizeof(digest))
                                 ? out_bytes - produced
                                 : sizeof(digest);
    std::memcpy(out + produced, digest, take);
    produced += take;
    ++counter;
  }
}

}  // namespace

const char* drbg_status_name(DrbgStatus status) {
  switch (status) {
    case DrbgStatus::kOk: return "ok";
    case DrbgStatus::kReseedRequired: return "reseed_required";
    case DrbgStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

void DrbgLimits::validate() const {
  if (reseed_interval == 0 || reseed_interval > kMaxReseedInterval) {
    throw std::invalid_argument(
        "DrbgLimits: reseed_interval must be in [1, 2^48]");
  }
  if (max_request_bytes == 0 || max_request_bytes > kMaxRequestBytes) {
    throw std::invalid_argument(
        "DrbgLimits: max_request_bytes must be in [1, 2^16]");
  }
}

HashDrbg::HashDrbg(DrbgLimits limits, const std::uint8_t* entropy,
                   std::size_t entropy_len, const std::uint8_t* nonce,
                   std::size_t nonce_len, const std::uint8_t* personalization,
                   std::size_t pers_len)
    : limits_(limits) {
  limits_.validate();
  if (entropy == nullptr || entropy_len == 0) {
    throw std::invalid_argument("HashDrbg: entropy input is required");
  }
  // §10.1.1.2: V = Hash_df(entropy || nonce || personalization, seedlen);
  // C = Hash_df(0x00 || V, seedlen); reseed_counter = 1.
  const std::uint8_t* parts[3] = {entropy, nonce, personalization};
  const std::size_t lens[3] = {entropy_len, nonce_len, pers_len};
  hash_df(parts, lens, 3, v_, kSeedlenBytes);
  const std::uint8_t zero = 0x00;
  const std::uint8_t* cparts[2] = {&zero, v_};
  const std::size_t clens[2] = {1, kSeedlenBytes};
  hash_df(cparts, clens, 2, c_, kSeedlenBytes);
  reseed_counter_ = 1;
}

void HashDrbg::reseed(const std::uint8_t* entropy, std::size_t entropy_len,
                      const std::uint8_t* additional, std::size_t add_len) {
  if (entropy == nullptr || entropy_len == 0) {
    throw std::invalid_argument("HashDrbg: reseed entropy is required");
  }
  // §10.1.1.3: V = Hash_df(0x01 || V || entropy || additional, seedlen);
  // C = Hash_df(0x00 || V, seedlen); reseed_counter = 1.
  const std::uint8_t one = 0x01;
  std::uint8_t old_v[kSeedlenBytes];
  std::memcpy(old_v, v_, kSeedlenBytes);
  const std::uint8_t* parts[4] = {&one, old_v, entropy, additional};
  const std::size_t lens[4] = {1, kSeedlenBytes, entropy_len, add_len};
  hash_df(parts, lens, 4, v_, kSeedlenBytes);
  const std::uint8_t zero = 0x00;
  const std::uint8_t* cparts[2] = {&zero, v_};
  const std::size_t clens[2] = {1, kSeedlenBytes};
  hash_df(cparts, clens, 2, c_, kSeedlenBytes);
  reseed_counter_ = 1;
}

void HashDrbg::add_to_v(const std::uint8_t* addend, std::size_t len) {
  // v_ += addend, both big-endian, carry propagated leftwards, mod 2^440
  // (the final carry out of byte 0 is dropped).
  unsigned carry = 0;
  for (std::size_t i = 0; i < kSeedlenBytes; ++i) {
    const std::size_t vi = kSeedlenBytes - 1 - i;
    const unsigned a = (i < len) ? addend[len - 1 - i] : 0;
    const unsigned sum = static_cast<unsigned>(v_[vi]) + a + carry;
    v_[vi] = static_cast<std::uint8_t>(sum & 0xffu);
    carry = sum >> 8;
  }
}

void HashDrbg::add_counter_to_v(std::uint64_t value) {
  std::uint8_t be[8];
  for (std::size_t i = 0; i < 8; ++i) {
    be[i] = static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
  add_to_v(be, 8);
}

DrbgStatus HashDrbg::generate(std::uint8_t* out, std::size_t nbytes,
                              const std::uint8_t* additional,
                              std::size_t add_len) {
  if (nbytes == 0 || nbytes > limits_.max_request_bytes) {
    return DrbgStatus::kBadRequest;
  }
  if (reseed_counter_ > limits_.reseed_interval) {
    return DrbgStatus::kReseedRequired;
  }
  // §10.1.1.4 step 2: fold additional input into V via w = SHA(0x02 || V
  // || additional); V = (V + w) mod 2^seedlen.
  if (additional != nullptr && add_len > 0) {
    Sha256 h;
    const std::uint8_t two = 0x02;
    h.update(&two, 1);
    h.update(v_, kSeedlenBytes);
    h.update(additional, add_len);
    std::uint8_t w[Sha256::kDigestBytes];
    h.final(w);
    add_to_v(w, sizeof(w));
  }
  // Hashgen (§10.1.1.4 step 3): data = V; out ||= SHA(data); data = (data
  // + 1) mod 2^seedlen.
  {
    std::uint8_t data[kSeedlenBytes];
    std::memcpy(data, v_, kSeedlenBytes);
    std::size_t produced = 0;
    while (produced < nbytes) {
      std::uint8_t digest[Sha256::kDigestBytes];
      Sha256 h;
      h.update(data, kSeedlenBytes);
      h.final(digest);
      const std::size_t take = (nbytes - produced < sizeof(digest))
                                   ? nbytes - produced
                                   : sizeof(digest);
      std::memcpy(out + produced, digest, take);
      produced += take;
      // data += 1 (big-endian increment).
      for (std::size_t i = kSeedlenBytes; i-- > 0;) {
        if (++data[i] != 0) break;
      }
    }
  }
  // Steps 4–6: H = SHA(0x03 || V); V = (V + H + C + reseed_counter).
  {
    Sha256 h;
    const std::uint8_t three = 0x03;
    h.update(&three, 1);
    h.update(v_, kSeedlenBytes);
    std::uint8_t digest[Sha256::kDigestBytes];
    h.final(digest);
    add_to_v(digest, sizeof(digest));
  }
  add_to_v(c_, kSeedlenBytes);
  add_counter_to_v(reseed_counter_);
  ++reseed_counter_;
  return DrbgStatus::kOk;
}

HmacDrbg::HmacDrbg(DrbgLimits limits, const std::uint8_t* entropy,
                   std::size_t entropy_len, const std::uint8_t* nonce,
                   std::size_t nonce_len, const std::uint8_t* personalization,
                   std::size_t pers_len)
    : limits_(limits) {
  limits_.validate();
  if (entropy == nullptr || entropy_len == 0) {
    throw std::invalid_argument("HmacDrbg: entropy input is required");
  }
  // §10.1.2.3: Key = 0x00^32, V = 0x01^32, then Update(seed_material).
  std::memset(key_, 0x00, sizeof(key_));
  std::memset(v_, 0x01, sizeof(v_));
  // Update takes one concatenated provided-data string; splice the three
  // instantiate inputs into a contiguous pair for the two-part update().
  if (nonce_len + pers_len == 0) {
    update(entropy, entropy_len, nullptr, 0);
  } else {
    // Three logical parts but update() takes two: fold nonce ||
    // personalization into one stack buffer (both are tiny).
    std::uint8_t tail[128];
    if (nonce_len + pers_len > sizeof(tail)) {
      throw std::invalid_argument("HmacDrbg: nonce+personalization too long");
    }
    if (nonce_len > 0) std::memcpy(tail, nonce, nonce_len);
    if (pers_len > 0) std::memcpy(tail + nonce_len, personalization, pers_len);
    update(entropy, entropy_len, tail, nonce_len + pers_len);
  }
  reseed_counter_ = 1;
}

void HmacDrbg::update(const std::uint8_t* data1, std::size_t len1,
                      const std::uint8_t* data2, std::size_t len2) {
  // §10.1.2.2: K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V); and if
  // provided data is non-empty, repeat with 0x01.
  const std::size_t provided = len1 + len2;
  const std::size_t rounds = (provided > 0) ? 2 : 1;
  for (std::size_t round = 0; round < rounds; ++round) {
    HmacSha256 mac(key_, sizeof(key_));
    mac.update(v_, sizeof(v_));
    const std::uint8_t sep = static_cast<std::uint8_t>(round);
    mac.update(&sep, 1);
    if (len1 > 0) mac.update(data1, len1);
    if (len2 > 0) mac.update(data2, len2);
    mac.final(key_);
    HmacSha256 vmac(key_, sizeof(key_));
    vmac.update(v_, sizeof(v_));
    vmac.final(v_);
  }
}

void HmacDrbg::reseed(const std::uint8_t* entropy, std::size_t entropy_len,
                      const std::uint8_t* additional, std::size_t add_len) {
  if (entropy == nullptr || entropy_len == 0) {
    throw std::invalid_argument("HmacDrbg: reseed entropy is required");
  }
  update(entropy, entropy_len, additional, add_len);
  reseed_counter_ = 1;
}

DrbgStatus HmacDrbg::generate(std::uint8_t* out, std::size_t nbytes,
                              const std::uint8_t* additional,
                              std::size_t add_len) {
  if (nbytes == 0 || nbytes > limits_.max_request_bytes) {
    return DrbgStatus::kBadRequest;
  }
  if (reseed_counter_ > limits_.reseed_interval) {
    return DrbgStatus::kReseedRequired;
  }
  if (additional != nullptr && add_len > 0) {
    update(additional, add_len, nullptr, 0);
  }
  std::size_t produced = 0;
  while (produced < nbytes) {
    HmacSha256 mac(key_, sizeof(key_));
    mac.update(v_, sizeof(v_));
    mac.final(v_);
    const std::size_t take =
        (nbytes - produced < sizeof(v_)) ? nbytes - produced : sizeof(v_);
    std::memcpy(out + produced, v_, take);
    produced += take;
  }
  update(additional, (additional != nullptr) ? add_len : 0, nullptr, 0);
  ++reseed_counter_;
  return DrbgStatus::kOk;
}

}  // namespace trng::server
