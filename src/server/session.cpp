#include "server/session.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "service/clock.hpp"

namespace trng::server {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return std::uint32_t{in[0]} | (std::uint32_t{in[1]} << 8) |
         (std::uint32_t{in[2]} << 16) | (std::uint32_t{in[3]} << 24);
}

void put_u16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(std::uint16_t{in[0]} |
                                    (std::uint16_t{in[1]} << 8));
}

}  // namespace

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBackpressure: return "backpressure";
    case Status::kRateLimited: return "rate_limited";
    case Status::kBadRequest: return "bad_request";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

void encode_request(const Request& req,
                    std::uint8_t out[kRequestFrameBytes]) {
  put_u32(out, kRequestMagic);
  out[4] = static_cast<std::uint8_t>(req.type);
  out[5] = req.flags;
  put_u16(out + 6, req.shard);
  put_u32(out + 8, req.nbytes);
  put_u32(out + 12, 0);
}

bool decode_request(const std::uint8_t in[kRequestFrameBytes],
                    Request* req) {
  if (get_u32(in) != kRequestMagic) return false;
  // Range-check before the enum cast: a junk type byte must not become an
  // out-of-range MessageType value that switches hit their default on.
  if (in[4] != static_cast<std::uint8_t>(MessageType::kDraw) &&
      in[4] != static_cast<std::uint8_t>(MessageType::kMetrics)) {
    return false;
  }
  req->type = static_cast<MessageType>(in[4]);
  req->flags = in[5];
  req->shard = get_u16(in + 6);
  req->nbytes = get_u32(in + 8);
  return true;
}

void encode_response(const ResponseHeader& rsp,
                     std::uint8_t out[kResponseHeaderBytes]) {
  put_u32(out, kResponseMagic);
  out[4] = static_cast<std::uint8_t>(rsp.status);
  out[5] = 0;
  put_u16(out + 6, rsp.shard);
  put_u32(out + 8, rsp.payload_bytes);
  put_u32(out + 12, 0);
}

bool decode_response(const std::uint8_t in[kResponseHeaderBytes],
                     ResponseHeader* rsp) {
  if (get_u32(in) != kResponseMagic) return false;
  // Range-check before the enum cast: a hostile or corrupt peer must not
  // hand the client an out-of-range Status value.
  if (in[4] > static_cast<std::uint8_t>(Status::kShuttingDown)) return false;
  rsp->status = static_cast<Status>(in[4]);
  rsp->shard = get_u16(in + 6);
  rsp->payload_bytes = get_u32(in + 8);
  return true;
}

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

TokenBucket::TokenBucket(double bytes_per_s, double burst_bytes)
    : rate_(bytes_per_s), burst_(burst_bytes), tokens_(burst_bytes),
      last_ns_(0) {}

bool TokenBucket::try_take(double amount, std::uint64_t now_ns) {
  if (rate_ <= 0.0) return true;
  if (last_ns_ == 0) last_ns_ = now_ns;
  if (now_ns > last_ns_) {
    tokens_ += rate_ * (static_cast<double>(now_ns - last_ns_) * 1e-9);
    if (tokens_ > burst_) tokens_ = burst_;
    last_ns_ = now_ns;
  }
  if (tokens_ < amount) return false;
  tokens_ -= amount;
  return true;
}

void SessionConfig::validate() const {
  if (rate_bytes_per_s < 0.0 || burst_bytes <= 0.0) {
    throw std::invalid_argument(
        "SessionConfig: rate must be >= 0 and burst > 0");
  }
  if (max_request_bytes == 0) {
    throw std::invalid_argument(
        "SessionConfig: max_request_bytes must be >= 1");
  }
  // A token bucket never accumulates past its burst, so with limiting on,
  // any request larger than the burst would be answered kRateLimited
  // forever — a starvation trap for requests the size ceiling says are
  // legal. Reject the configuration instead of starving clients at runtime.
  if (rate_bytes_per_s > 0.0 &&
      burst_bytes < static_cast<double>(max_request_bytes)) {
    throw std::invalid_argument(
        "SessionConfig: burst_bytes must be >= max_request_bytes when rate "
        "limiting is enabled (a request above the burst can never pass the "
        "bucket and would be rate-limited forever)");
  }
}

Session::Session(int fd, std::size_t id, std::uint16_t default_shard,
                 Conditioner& conditioner, ServerMetrics& metrics,
                 std::function<std::string()> metrics_json,
                 // trng-analyzer: atomic(flag)
                 SessionConfig config, const std::atomic<bool>& draining)
    : fd_(fd), id_(id), default_shard_(default_shard),
      conditioner_(conditioner), metrics_(metrics),
      metrics_json_(std::move(metrics_json)), config_(config),
      draining_(draining),
      bucket_(config.rate_bytes_per_s, config.burst_bytes) {
  config_.validate();
}

Session::~Session() {
  if (fd_ >= 0) ::close(fd_);
}

bool Session::serve_draw(const Request& req) {
  ClientCounters& cc = metrics_.client(id_);
  const std::uint16_t shard =
      (req.shard == kAnyShard) ? default_shard_ : req.shard;
  ResponseHeader rsp;
  rsp.shard = shard;

  if (draining_.load(std::memory_order_acquire)) {
    metrics_.shutdown_refusals.fetch_add(1, std::memory_order_relaxed);
    rsp.status = Status::kShuttingDown;
  } else if (req.nbytes == 0 || req.nbytes > config_.max_request_bytes ||
             shard >= conditioner_.shards() ||
             // Defense in depth behind validate()'s burst >= max_request
             // invariant: a request the bucket could never grant is a
             // malformed request, not a transient rate condition — answer
             // kBadRequest once instead of looping the client on
             // kRateLimited forever.
             (config_.rate_bytes_per_s > 0.0 &&
              static_cast<double>(req.nbytes) > config_.burst_bytes)) {
    cc.bad_requests.fetch_add(1, std::memory_order_relaxed);
    rsp.status = Status::kBadRequest;
  } else if (!bucket_.try_take(static_cast<double>(req.nbytes),
                               service::monotonic_ns())) {
    cc.denied_rate_limit.fetch_add(1, std::memory_order_relaxed);
    rsp.status = Status::kRateLimited;
  } else {
    payload_.resize(req.nbytes);
    const bool pr = (req.flags & kFlagPredictionResistance) != 0;
    switch (conditioner_.draw(shard, payload_.data(), payload_.size(), pr)) {
      case Conditioner::DrawStatus::kOk:
        rsp.status = Status::kOk;
        rsp.payload_bytes = req.nbytes;
        cc.draws_ok.fetch_add(1, std::memory_order_relaxed);
        cc.bytes_served.fetch_add(req.nbytes, std::memory_order_relaxed);
        break;
      case Conditioner::DrawStatus::kBackpressure:
        cc.denied_backpressure.fetch_add(1, std::memory_order_relaxed);
        rsp.status = Status::kBackpressure;
        break;
      case Conditioner::DrawStatus::kBadRequest:
        cc.bad_requests.fetch_add(1, std::memory_order_relaxed);
        rsp.status = Status::kBadRequest;
        break;
    }
  }

  std::uint8_t header[kResponseHeaderBytes];
  encode_response(rsp, header);
  if (!write_full(fd_, header, sizeof(header))) return false;
  if (rsp.payload_bytes > 0) {
    if (!write_full(fd_, payload_.data(), rsp.payload_bytes)) return false;
  }
  return true;
}

bool Session::serve_metrics() {
  metrics_.metrics_requests.fetch_add(1, std::memory_order_relaxed);
  const std::string json = metrics_json_ ? metrics_json_() : std::string{};
  ResponseHeader rsp;
  rsp.status = Status::kOk;
  rsp.payload_bytes = static_cast<std::uint32_t>(json.size());
  std::uint8_t header[kResponseHeaderBytes];
  encode_response(rsp, header);
  if (!write_full(fd_, header, sizeof(header))) return false;
  return write_full(fd_, json.data(), json.size());
}

void Session::serve() {
  metrics_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  std::uint8_t frame[kRequestFrameBytes];
  while (read_full(fd_, frame, sizeof(frame))) {
    Request req;
    metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
    metrics_.client(id_).requests.fetch_add(1, std::memory_order_relaxed);
    if (!decode_request(frame, &req)) {
      // Desynchronized peer: answer once, then drop the connection (we
      // can no longer trust frame boundaries).
      metrics_.client(id_).bad_requests.fetch_add(1,
                                                  std::memory_order_relaxed);
      ResponseHeader rsp;
      rsp.status = Status::kBadRequest;
      std::uint8_t header[kResponseHeaderBytes];
      encode_response(rsp, header);
      // Best-effort courtesy reply: the connection is dropped either
      // way, so a failed write changes nothing.
      (void)write_full(fd_, header, sizeof(header));
      break;
    }
    bool ok = false;
    switch (req.type) {
      case MessageType::kDraw:
        ok = serve_draw(req);
        break;
      case MessageType::kMetrics:
        ok = serve_metrics();
        break;
      default: {
        metrics_.client(id_).bad_requests.fetch_add(
            1, std::memory_order_relaxed);
        ResponseHeader rsp;
        rsp.status = Status::kBadRequest;
        std::uint8_t header[kResponseHeaderBytes];
        encode_response(rsp, header);
        ok = write_full(fd_, header, sizeof(header));
        break;
      }
    }
    if (!ok) break;
  }
  // Signal EOF to the peer right away: the Session object (and with it
  // the fd number) stays alive until the daemon reaps it in stop(), so a
  // dropped connection must not look open to the client until then. The
  // fd itself is closed only in ~Session, keeping the number reserved
  // against reuse races with stop()'s own shutdown() call.
  ::shutdown(fd_, SHUT_RDWR);
  metrics_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace trng::server
