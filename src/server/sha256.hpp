// In-repo SHA-256 / HMAC-SHA-256 (FIPS 180-4, FIPS 198-1).
//
// The DRBG conditioning tier (drbg.hpp) must be dependency-free and
// bit-exact against the SP 800-90A specification, so the hash it is built
// on lives in the repo rather than behind a platform crypto library: the
// container has no OpenSSL, and a DRBG whose output depends on which
// libcrypto happens to be installed would break the repo's determinism
// guarantees (TL001 spirit: everything reproducible from explicit inputs).
//
// Scope: exactly what the DRBG needs — incremental hashing, a one-shot
// digest helper, and keyed HMAC for the CAVP-anchored HMAC_DRBG. This is
// a correctness-first scalar implementation; hashing is a per-reseed cost
// amortized over thousands of generates, so it is nowhere near the hot
// path (see DESIGN.md §3.6).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace trng::server {

/// Incremental SHA-256. update() any number of times, then final() once;
/// reset() rearms the object for a fresh message.
class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;
  static constexpr std::size_t kBlockBytes = 64;

  Sha256() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);

  /// Finalizes the current message into `out`. The object must be
  /// reset() before the next message.
  void final(std::uint8_t out[kDigestBytes]);

  /// One-shot convenience.
  static std::array<std::uint8_t, kDigestBytes> digest(
      const std::uint8_t* data, std::size_t len);

 private:
  void process_block(const std::uint8_t block[kBlockBytes]);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buf_[kBlockBytes];
  std::size_t buf_len_ = 0;
};

/// Incremental HMAC-SHA-256 (FIPS 198-1). Construct with the key, update()
/// with message parts, final() for the tag.
class HmacSha256 {
 public:
  static constexpr std::size_t kTagBytes = Sha256::kDigestBytes;

  HmacSha256(const std::uint8_t* key, std::size_t key_len);

  void update(const std::uint8_t* data, std::size_t len);
  void final(std::uint8_t out[kTagBytes]);

 private:
  std::uint8_t opad_key_[Sha256::kBlockBytes];
  Sha256 inner_;
};

}  // namespace trng::server
