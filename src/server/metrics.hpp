// Observability for the server tier: per-shard DRBG counters, per-client
// session counters, and a daemon-level snapshot that *embeds* the pool's
// service snapshot.
//
// Schema: "trng.server.metrics.v1". The service layer's
// "trng.service.metrics.v1" object is nested verbatim under "service", so
// a scraper of the daemon sees both tiers in one document and existing
// service-schema consumers keep working unchanged.
//
// Same discipline as service/metrics.hpp: every counter is a relaxed
// atomic (monotonic event tallies plus a few gauges); a snapshot is a
// monitoring dump, not a ledger, so no cross-counter consistency is
// promised. Counter slots are allocated up front (shard count is the pool
// producer count, client slots are fixed by config) because atomics make
// the structs immovable — sessions past the slot count alias slots
// modulo client_slots, which keeps the tallies correct in aggregate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/metrics.hpp"

namespace trng::server {

/// Per-shard conditioning-tier counters. Written by whichever session
/// thread holds the shard's DRBG mutex (plus lock-free backpressure
/// tallies); read by snapshot_json at any time.
struct ShardCounters {
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> instantiates{0};   ///< DRBG (re)instantiations
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> reseeds{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> reseed_timeouts{0};  ///< shard entropy starved
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> generates{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> bytes_generated{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> backpressure{0};   ///< draws refused, no entropy
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> entropy_words_consumed{0};  ///< pool words eaten
  // trng-analyzer: atomic(gauge)
  std::atomic<std::uint64_t> generates_since_reseed{0};
  /// End-to-end conditioner draw latency (lock + optional reseed +
  /// generate), microseconds.
  service::Histogram generate_latency_us{{1, 5, 10, 50, 100, 500, 1000,
                                          10000, 100000}};
};

/// Per-client session counters. Slot = session id modulo client_slots.
struct ClientCounters {
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> requests{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> draws_ok{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> bytes_served{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> denied_rate_limit{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> denied_backpressure{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> bad_requests{0};
};

/// Counters for the whole daemon plus one ShardCounters per pool shard
/// and one ClientCounters per client slot.
class ServerMetrics {
 public:
  ServerMetrics(std::size_t shards, std::size_t client_slots);

  ServerMetrics(const ServerMetrics&) = delete;
  ServerMetrics& operator=(const ServerMetrics&) = delete;

  std::size_t shards() const { return shards_.size(); }
  std::size_t client_slots() const { return clients_.size(); }

  ShardCounters& shard(std::size_t i) { return shards_[i]; }
  const ShardCounters& shard(std::size_t i) const { return shards_[i]; }

  /// Maps an unbounded session id onto a fixed counter slot.
  ClientCounters& client(std::size_t session_id) {
    return clients_[session_id % clients_.size()];
  }

  // Daemon-level counters.
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> sessions_opened{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> sessions_closed{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> requests_total{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> metrics_requests{0};
  // trng-analyzer: atomic(counter)
  std::atomic<std::uint64_t> shutdown_refusals{0};  ///< draws after stop()

  /// One JSON object covering the daemon, every shard, every client slot,
  /// and (nested under "service") the pool's own snapshot.
  std::string snapshot_json(const service::Metrics& pool) const;

 private:
  std::vector<ShardCounters> shards_;
  std::vector<ClientCounters> clients_;
};

}  // namespace trng::server
