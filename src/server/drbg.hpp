// SP 800-90A deterministic random bit generators over the in-repo SHA-256.
//
// Two mechanisms:
//
//   HashDrbg — Hash_DRBG (SP 800-90A §10.1.1, SHA-256, seedlen = 440).
//     The production conditioner mechanism: state is (V, C,
//     reseed_counter), generate is one SHA-256 compression per 32 output
//     bytes with no key schedule, and unlike CTR_DRBG it needs no block
//     cipher — the repo has no AES, and a bit-banged AES would be both
//     slow and a side-channel liability (see DESIGN.md §3.6).
//
//   HmacDrbg — HMAC_DRBG (SP 800-90A §10.1.2, SHA-256). Kept as the
//     validation anchor: tests pin it against a NIST CAVP vector, which
//     transitively proves the SHA-256 core and the shared
//     request/reseed-accounting plumbing that HashDrbg also uses.
//
// Reseed semantics follow the spec: reseed_counter starts at 1 after
// (re)instantiation and increments per generate; once it exceeds
// reseed_interval, generate refuses with kReseedRequired until reseed()
// provides fresh entropy. Prediction resistance is the caller's contract
// (conditioner.hpp): reseed immediately before the generate it applies to.
//
// Neither class gathers entropy itself — callers (the per-shard
// conditioner) seed them exclusively from EntropyPool blocks, keeping the
// whole tier deterministic for a fixed pool seed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace trng::server {

enum class DrbgStatus {
  kOk = 0,
  /// reseed_counter exceeded reseed_interval; reseed() before generating.
  kReseedRequired = 1,
  /// Request exceeds max_request_bytes (or is zero).
  kBadRequest = 2,
};

const char* drbg_status_name(DrbgStatus status);

/// Administrative limits shared by both mechanisms. Defaults are far
/// below the spec ceilings (2^48 generates, 2^19 bits/request) — the
/// conditioner tightens reseed_interval further for freshness.
struct DrbgLimits {
  std::uint64_t reseed_interval = 1u << 12;
  std::size_t max_request_bytes = 1u << 16;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// Hash_DRBG (SHA-256). Instantiate with entropy || nonce ||
/// personalization; generate produces any number of bytes per request up
/// to max_request_bytes.
class HashDrbg {
 public:
  /// seedlen for SHA-256 per SP 800-90A Table 2: 440 bits.
  static constexpr std::size_t kSeedlenBytes = 55;

  HashDrbg(DrbgLimits limits, const std::uint8_t* entropy,
           std::size_t entropy_len, const std::uint8_t* nonce,
           std::size_t nonce_len, const std::uint8_t* personalization = nullptr,
           std::size_t pers_len = 0);

  /// Folds fresh entropy (and optional additional input) into the state;
  /// resets reseed_counter to 1.
  void reseed(const std::uint8_t* entropy, std::size_t entropy_len,
              const std::uint8_t* additional = nullptr,
              std::size_t add_len = 0);

  /// Fills out[0..nbytes) and advances the state. Refuses (leaving the
  /// state and output untouched) when a reseed is overdue or the request
  /// is out of bounds.
  [[nodiscard]] DrbgStatus generate(std::uint8_t* out, std::size_t nbytes,
                                    const std::uint8_t* additional = nullptr,
                                    std::size_t add_len = 0);

  /// Generates completed since the last (re)seed == reseed_counter - 1.
  std::uint64_t reseed_counter() const { return reseed_counter_; }

  /// True once the next generate would return kReseedRequired.
  bool needs_reseed() const {
    return reseed_counter_ > limits_.reseed_interval;
  }

  const DrbgLimits& limits() const { return limits_; }

 private:
  /// V += addend (big-endian) mod 2^440.
  void add_to_v(const std::uint8_t* addend, std::size_t len);
  void add_counter_to_v(std::uint64_t value);

  DrbgLimits limits_;
  std::uint8_t v_[kSeedlenBytes];
  std::uint8_t c_[kSeedlenBytes];
  std::uint64_t reseed_counter_;
};

/// HMAC_DRBG (SHA-256). Same request/reseed accounting as HashDrbg.
class HmacDrbg {
 public:
  HmacDrbg(DrbgLimits limits, const std::uint8_t* entropy,
           std::size_t entropy_len, const std::uint8_t* nonce,
           std::size_t nonce_len, const std::uint8_t* personalization = nullptr,
           std::size_t pers_len = 0);

  void reseed(const std::uint8_t* entropy, std::size_t entropy_len,
              const std::uint8_t* additional = nullptr,
              std::size_t add_len = 0);

  [[nodiscard]] DrbgStatus generate(std::uint8_t* out, std::size_t nbytes,
                                    const std::uint8_t* additional = nullptr,
                                    std::size_t add_len = 0);

  std::uint64_t reseed_counter() const { return reseed_counter_; }
  bool needs_reseed() const {
    return reseed_counter_ > limits_.reseed_interval;
  }

 private:
  /// HMAC_DRBG Update (§10.1.2.2) over up to two provided-data parts.
  void update(const std::uint8_t* data1, std::size_t len1,
              const std::uint8_t* data2, std::size_t len2);

  DrbgLimits limits_;
  std::uint8_t key_[32];
  std::uint8_t v_[32];
  std::uint64_t reseed_counter_;
};

}  // namespace trng::server
