// The daemon's framed request/response protocol and per-connection
// serving loop.
//
// Wire format (all integers little-endian, fixed 16-byte frames so a
// client never needs to parse variable-length headers):
//
//   request  : magic("TRQ1") u32 | type u8 | flags u8 | shard u16 |
//              nbytes u32 | reserved u32
//   response : magic("TRS1") u32 | status u8 | reserved u8 | shard u16 |
//              payload_bytes u32 | reserved u32 | payload...
//
// type kDraw asks for `nbytes` conditioned bytes (flags bit 0 requests
// prediction resistance; shard kAnyShard uses the session's assigned
// shard). type kMetrics asks for the daemon's metrics JSON. A non-kOk
// status carries no payload except kMetrics responses.
//
// Each session runs on a daemon-owned thread: one blocking read/serve
// loop with a per-session token bucket (bytes/s with burst) in front of
// the conditioner. Shutdown is cooperative — the daemon flips the
// draining flag and shuts the socket's read side down, so the loop
// finishes the request in hand (draining in-flight work), answers any
// already-buffered draws with kShuttingDown, and exits on EOF.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "server/conditioner.hpp"
#include "server/metrics.hpp"

namespace trng::server {

inline constexpr std::size_t kRequestFrameBytes = 16;
inline constexpr std::size_t kResponseHeaderBytes = 16;
inline constexpr std::uint32_t kRequestMagic = 0x31515254u;   // "TRQ1"
inline constexpr std::uint32_t kResponseMagic = 0x31535254u;  // "TRS1"
inline constexpr std::uint16_t kAnyShard = 0xffffu;
inline constexpr std::uint8_t kFlagPredictionResistance = 0x01u;

enum class MessageType : std::uint8_t { kDraw = 1, kMetrics = 2 };

enum class Status : std::uint8_t {
  kOk = 0,
  kBackpressure = 1,
  kRateLimited = 2,
  kBadRequest = 3,
  kShuttingDown = 4,
};

const char* status_name(Status status);

struct Request {
  MessageType type = MessageType::kDraw;
  std::uint8_t flags = 0;
  std::uint16_t shard = kAnyShard;
  std::uint32_t nbytes = 0;
};

struct ResponseHeader {
  Status status = Status::kOk;
  std::uint16_t shard = 0;
  std::uint32_t payload_bytes = 0;
};

void encode_request(const Request& req, std::uint8_t out[kRequestFrameBytes]);
/// False when the magic does not match (desynchronized peer) or the type
/// byte is not a known MessageType — never yields an out-of-range enum.
[[nodiscard]] bool decode_request(const std::uint8_t in[kRequestFrameBytes],
                                  Request* req);

void encode_response(const ResponseHeader& rsp,
                     std::uint8_t out[kResponseHeaderBytes]);
/// False when the magic does not match or the status byte is not a known
/// Status — never yields an out-of-range enum.
[[nodiscard]] bool decode_response(const std::uint8_t in[kResponseHeaderBytes],
                                   ResponseHeader* rsp);

/// Reads/writes exactly `n` bytes, riding out EINTR and partial
/// transfers. read_full returns false on EOF or error (posix read);
/// write_full returns false on error.
[[nodiscard]] bool read_full(int fd, void* buf, std::size_t n);
[[nodiscard]] bool write_full(int fd, const void* buf, std::size_t n);

/// Classic token bucket in byte units. Not thread-safe: each session owns
/// one and charges it from its serving thread only.
class TokenBucket {
 public:
  /// rate 0 disables limiting; otherwise `burst` is the bucket capacity
  /// (and the largest single request that can ever pass).
  TokenBucket(double bytes_per_s, double burst_bytes);

  /// Takes `amount` tokens at time `now_ns` if available.
  [[nodiscard]] bool try_take(double amount, std::uint64_t now_ns);

 private:
  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_;
};

struct SessionConfig {
  /// Token-bucket refill rate in conditioned bytes/s; 0 = unlimited.
  double rate_bytes_per_s = 0.0;
  /// Bucket capacity in bytes (also the instantaneous burst ceiling).
  /// With rate limiting on, must be >= max_request_bytes: the bucket never
  /// accumulates past its burst, so a smaller burst would rate-limit every
  /// request above it forever instead of ever serving it.
  double burst_bytes = 1 << 16;
  /// Per-request size ceiling enforced before the conditioner sees it.
  std::uint32_t max_request_bytes = 1 << 16;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// One client connection. The daemon constructs it with an owned fd and
/// runs serve() on a dedicated thread; everything the session touches
/// (conditioner, metrics) is thread-safe or session-local.
class Session {
 public:
  /// `draining` and all references must outlive the session. The session
  /// takes ownership of `fd` and closes it when serve() returns.
  Session(int fd, std::size_t id, std::uint16_t default_shard,
          Conditioner& conditioner, ServerMetrics& metrics,
          std::function<std::string()> metrics_json, SessionConfig config,
          // trng-analyzer: atomic(flag)
          const std::atomic<bool>& draining);

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Blocking serve loop; returns on peer close, malformed frame, write
  /// failure, or drained shutdown.
  void serve();

  std::size_t id() const { return id_; }

 private:
  [[nodiscard]] bool serve_draw(const Request& req);
  [[nodiscard]] bool serve_metrics();

  int fd_;
  std::size_t id_;
  std::uint16_t default_shard_;
  Conditioner& conditioner_;
  ServerMetrics& metrics_;
  std::function<std::string()> metrics_json_;
  SessionConfig config_;
  // trng-analyzer: atomic(flag)
  const std::atomic<bool>& draining_;
  TokenBucket bucket_;
  std::vector<std::uint8_t> payload_;  ///< reused draw scratch buffer
};

}  // namespace trng::server
