// ServerDaemon: the network-facing entropy daemon.
//
//   EntropyPool (producers, health gate, rings)
//        │ draw_from_shard
//   Conditioner (one Hash_DRBG per shard)
//        │ draw
//   Session threads ── framed protocol ── client fds (socketpair / UDS)
//
// The daemon owns the whole vertical slice: the pool, the per-shard
// conditioning tier, the metrics, an optional AF_UNIX listener, and one
// joined thread per client session (trng_lint TL007 confines raw threads
// to src/service/ and src/server/). Clients connect two ways:
//
//   connect_client()      — in-process socketpair; returns the client fd
//                           (hermetic tests, examples, bench)
//   listen_unix(path)     — filesystem AF_UNIX socket a separate process
//                           can connect() to (the scrapeable daemon)
//
// Sessions are assigned pool shards round-robin, so clients spread across
// the per-shard DRBGs and a quarantined producer degrades only the
// sessions pinned to its shard.
//
// Shutdown (stop()) is graceful: the draining flag flips first, the
// listener and every session socket get a read-side shutdown, sessions
// finish the request in hand and answer anything still buffered with
// kShuttingDown, and every thread is joined before the pool stops.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/conditioner.hpp"
#include "server/metrics.hpp"
#include "server/session.hpp"
#include "service/entropy_pool.hpp"

namespace trng::server {

struct ServerConfig {
  service::PoolConfig pool;
  ConditionerConfig conditioner;
  SessionConfig session;

  /// Fixed per-client metrics slots (sessions alias modulo this).
  std::size_t client_slots = 64;

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

class ServerDaemon {
 public:
  /// Constructs the pool/conditioner synchronously; no threads run until
  /// start(). Throws std::invalid_argument on a bad config or factory.
  ServerDaemon(service::SourceFactory make, ServerConfig config);

  /// stop()s everything.
  ~ServerDaemon();

  ServerDaemon(const ServerDaemon&) = delete;
  ServerDaemon& operator=(const ServerDaemon&) = delete;

  /// Starts the pool's producer threads. Idempotent.
  void start();

  /// Creates a connected in-process client endpoint: spawns the serving
  /// session thread on one end of a socketpair and returns the other end
  /// (caller owns and closes it). The session's default shard is assigned
  /// round-robin. Returns -1 once the daemon is draining.
  int connect_client();

  /// Same, pinned to a specific pool shard.
  /// Throws std::out_of_range on a bad shard.
  int connect_client_to_shard(std::uint16_t shard);

  /// Binds an AF_UNIX listener at `path` (unlinking any stale socket) and
  /// starts the accept thread. Call at most once, before stop().
  /// Throws std::runtime_error on socket errors.
  void listen_unix(const std::string& path);

  /// Graceful shutdown: refuse new work, drain in-flight requests, join
  /// every session and the acceptor, then stop the pool. Idempotent.
  void stop();

  service::EntropyPool& pool() { return pool_; }
  Conditioner& conditioner() { return conditioner_; }
  ServerMetrics& metrics() { return metrics_; }
  const ServerMetrics& metrics() const { return metrics_; }

  /// The trng.server.metrics.v1 snapshot (daemon + shards + clients +
  /// embedded service snapshot).
  std::string metrics_json() const {
    return metrics_.snapshot_json(pool_.metrics());
  }

 private:
  void spawn_session_locked(int fd, std::uint16_t shard);
  void accept_loop();

  struct SessionHandle {
    std::unique_ptr<Session> session;
    std::thread thread;
    int fd;  ///< server-side fd, owned by the daemon (shutdown in stop())
  };

  ServerConfig config_;
  service::EntropyPool pool_;
  ServerMetrics metrics_;
  Conditioner conditioner_;

  /// One-way latches; same discipline as EntropyPool: exchange() makes
  /// start/stop idempotent, sessions observe draining_ with acquire.
  // trng-analyzer: atomic(flag)
  std::atomic<bool> started_{false};
  // trng-analyzer: atomic(flag)
  std::atomic<bool> draining_{false};
  // trng-analyzer: atomic(flag)
  std::atomic<bool> stopped_{false};

  mutable std::mutex sessions_mu_;
  // Declared locking contract (SA005): the session table, the id/shard
  // cursors and the listener fd are mutated by connect_client callers,
  // the accept thread and stop(), so every access takes sessions_mu_.
  // trng-analyzer: guards(sessions_, sessions_mu_)
  // trng-analyzer: guards(next_id_, sessions_mu_)
  // trng-analyzer: guards(next_shard_, sessions_mu_)
  // trng-analyzer: guards(listen_fd_, sessions_mu_)
  std::vector<SessionHandle> sessions_;
  std::size_t next_id_ = 0;
  std::size_t next_shard_ = 0;
  int listen_fd_ = -1;

  std::thread accept_thread_;
  std::string unix_path_;
};

}  // namespace trng::server
