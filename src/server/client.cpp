#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace trng::server::client {

DrawReply draw(int fd, std::uint32_t nbytes, bool prediction_resistance,
               std::uint16_t shard) {
  DrawReply reply;
  Request req;
  req.type = MessageType::kDraw;
  req.flags = prediction_resistance ? kFlagPredictionResistance : 0;
  req.shard = shard;
  req.nbytes = nbytes;
  std::uint8_t frame[kRequestFrameBytes];
  encode_request(req, frame);
  if (!write_full(fd, frame, sizeof(frame))) return reply;

  std::uint8_t header[kResponseHeaderBytes];
  if (!read_full(fd, header, sizeof(header))) return reply;
  ResponseHeader rsp;
  if (!decode_response(header, &rsp)) return reply;
  reply.status = rsp.status;
  reply.shard = rsp.shard;
  // Never allocate on the peer's say-so: a kOk draw carries exactly the
  // requested bytes and every other status carries none (session.hpp
  // protocol). A frame claiming anything else is hostile or corrupt —
  // fail the reply (ok stays false) without reading or allocating.
  if (rsp.status == Status::kOk) {
    if (rsp.payload_bytes != nbytes) return reply;
    reply.bytes.resize(rsp.payload_bytes);
    if (!read_full(fd, reply.bytes.data(), reply.bytes.size())) {
      reply.bytes.clear();
      return reply;
    }
  } else if (rsp.payload_bytes != 0) {
    return reply;
  }
  reply.ok = true;
  return reply;
}

std::string fetch_metrics(int fd) {
  Request req;
  req.type = MessageType::kMetrics;
  std::uint8_t frame[kRequestFrameBytes];
  encode_request(req, frame);
  if (!write_full(fd, frame, sizeof(frame))) return {};

  std::uint8_t header[kResponseHeaderBytes];
  if (!read_full(fd, header, sizeof(header))) return {};
  ResponseHeader rsp;
  if (!decode_response(header, &rsp) || rsp.status != Status::kOk) return {};
  // Metrics JSON has no request-side length to check against, so bound the
  // allocation by a sane ceiling instead of the peer's claimed 4 GiB max.
  if (rsp.payload_bytes > kMaxMetricsBytes) return {};
  std::string json(rsp.payload_bytes, '\0');
  if (rsp.payload_bytes > 0 &&
      !read_full(fd, json.data(), json.size())) {
    return {};
  }
  return json;
}

int connect_unix(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un::sun_path)) {
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace trng::server::client
