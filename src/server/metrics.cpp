#include "server/metrics.hpp"

#include <stdexcept>

namespace trng::server {

namespace {

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool trailing_comma = true) {
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(v);
  if (trailing_comma) out += ", ";
}

}  // namespace

ServerMetrics::ServerMetrics(std::size_t shards, std::size_t client_slots)
    : shards_(shards), clients_(client_slots) {
  if (shards == 0 || client_slots == 0) {
    throw std::invalid_argument(
        "ServerMetrics: shards and client_slots must be >= 1");
  }
}

std::string ServerMetrics::snapshot_json(const service::Metrics& pool) const {
  std::string out;
  out.reserve(1024 + 512 * shards_.size() + 256 * clients_.size());
  out += "{\"schema\": \"trng.server.metrics.v1\", \"daemon\": {";
  append_kv(out, "sessions_opened",
            sessions_opened.load(std::memory_order_relaxed));
  append_kv(out, "sessions_closed",
            sessions_closed.load(std::memory_order_relaxed));
  append_kv(out, "requests_total",
            requests_total.load(std::memory_order_relaxed));
  append_kv(out, "metrics_requests",
            metrics_requests.load(std::memory_order_relaxed));
  append_kv(out, "shutdown_refusals",
            shutdown_refusals.load(std::memory_order_relaxed), false);
  out += "}, \"shards\": [";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardCounters& s = shards_[i];
    if (i > 0) out += ", ";
    out += "{";
    append_kv(out, "shard", i);
    append_kv(out, "instantiates",
              s.instantiates.load(std::memory_order_relaxed));
    append_kv(out, "reseeds", s.reseeds.load(std::memory_order_relaxed));
    append_kv(out, "reseed_timeouts",
              s.reseed_timeouts.load(std::memory_order_relaxed));
    append_kv(out, "generates", s.generates.load(std::memory_order_relaxed));
    append_kv(out, "bytes_generated",
              s.bytes_generated.load(std::memory_order_relaxed));
    append_kv(out, "backpressure",
              s.backpressure.load(std::memory_order_relaxed));
    append_kv(out, "entropy_words_consumed",
              s.entropy_words_consumed.load(std::memory_order_relaxed));
    append_kv(out, "generates_since_reseed",
              s.generates_since_reseed.load(std::memory_order_relaxed));
    out += "\"generate_latency_us_histogram\": ";
    out += s.generate_latency_us.to_json();
    out += "}";
  }
  out += "], \"clients\": [";
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const ClientCounters& c = clients_[i];
    if (i > 0) out += ", ";
    out += "{";
    append_kv(out, "slot", i);
    append_kv(out, "requests", c.requests.load(std::memory_order_relaxed));
    append_kv(out, "draws_ok", c.draws_ok.load(std::memory_order_relaxed));
    append_kv(out, "bytes_served",
              c.bytes_served.load(std::memory_order_relaxed));
    append_kv(out, "denied_rate_limit",
              c.denied_rate_limit.load(std::memory_order_relaxed));
    append_kv(out, "denied_backpressure",
              c.denied_backpressure.load(std::memory_order_relaxed));
    append_kv(out, "bad_requests",
              c.bad_requests.load(std::memory_order_relaxed), false);
    out += "}";
  }
  out += "], \"service\": ";
  out += pool.snapshot_json();
  out += "}";
  return out;
}

}  // namespace trng::server
