#include "server/conditioner.hpp"

#include <cstring>
#include <stdexcept>

#include "service/clock.hpp"

namespace trng::server {
namespace {

/// Domain-separation label mixed into every instantiate as the
/// personalization string (SP 800-90A §8.7.1).
constexpr char kPersonalization[] = "trng.server.hash-drbg.v1";

}  // namespace

const char* draw_status_name(Conditioner::DrawStatus status) {
  switch (status) {
    case Conditioner::DrawStatus::kOk: return "ok";
    case Conditioner::DrawStatus::kBackpressure: return "backpressure";
    case Conditioner::DrawStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

void ConditionerConfig::validate() const {
  drbg.validate();
  if (seed_words.is_zero()) {
    throw std::invalid_argument("ConditionerConfig: seed_words must be >= 1");
  }
  if (reseed_timeout_ns == 0) {
    throw std::invalid_argument(
        "ConditionerConfig: reseed_timeout_ns must be > 0");
  }
}

Conditioner::Conditioner(service::EntropyPool& pool, ConditionerConfig config,
                         ServerMetrics& metrics)
    : pool_(pool), config_(config), metrics_(metrics) {
  config_.validate();
  if (metrics_.shards() < pool_.producers()) {
    throw std::invalid_argument(
        "Conditioner: metrics must have one shard slot per pool producer");
  }
  shards_.reserve(pool_.producers());
  for (std::size_t i = 0; i < pool_.producers(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->seed_buf.resize(config_.seed_words.count());
    shards_.push_back(std::move(shard));
  }
}

bool Conditioner::fill_seed(std::size_t index, Shard& s) {
  const common::Words want = config_.seed_words;
  if (s.seed_buf_words < want) {
    std::uint64_t* dst = s.seed_buf.data() + s.seed_buf_words.count();
    const common::Words got = pool_.draw_from_shard(
        index, dst, want - s.seed_buf_words, config_.reseed_timeout_ns);
    s.seed_buf_words += got;
    metrics_.shard(index).entropy_words_consumed.fetch_add(
        got.count(), std::memory_order_relaxed);
  }
  return s.seed_buf_words >= want;
}

void Conditioner::apply_seed(std::size_t index, Shard& s) {
  // Serialize the seed words little-endian so the DRBG input — and hence
  // the conditioned stream — does not depend on host byte order.
  std::vector<std::uint8_t> entropy(s.seed_buf_words.count() * 8);
  for (std::size_t w = 0; w < s.seed_buf_words.count(); ++w) {
    for (std::size_t b = 0; b < 8; ++b) {
      entropy[w * 8 + b] =
          static_cast<std::uint8_t>(s.seed_buf[w] >> (8 * b));
    }
  }
  ShardCounters& sc = metrics_.shard(index);
  if (!s.drbg) {
    // Nonce (§8.6.7): shard index plus the shard's seed epoch, both
    // big-endian — unique per instantiation, deterministic across runs.
    std::uint8_t nonce[16];
    for (std::size_t i = 0; i < 8; ++i) {
      nonce[i] = static_cast<std::uint8_t>(
          static_cast<std::uint64_t>(index) >> (56 - 8 * i));
      nonce[8 + i] = static_cast<std::uint8_t>(s.seed_epoch >> (56 - 8 * i));
    }
    s.drbg = std::make_unique<HashDrbg>(
        config_.drbg, entropy.data(), entropy.size(), nonce, sizeof(nonce),
        reinterpret_cast<const std::uint8_t*>(kPersonalization),
        sizeof(kPersonalization) - 1);
    sc.instantiates.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.drbg->reseed(entropy.data(), entropy.size());
    sc.reseeds.fetch_add(1, std::memory_order_relaxed);
  }
  sc.generates_since_reseed.store(0, std::memory_order_relaxed);
  ++s.seed_epoch;
  s.seed_buf_words = common::Words{0};
}

Conditioner::DrawStatus Conditioner::draw(std::size_t shard,
                                          std::uint8_t* out,
                                          std::size_t nbytes,
                                          bool prediction_resistance) {
  if (shard >= shards_.size()) return DrawStatus::kBadRequest;
  if (nbytes == 0 || nbytes > config_.drbg.max_request_bytes) {
    return DrawStatus::kBadRequest;
  }
  ShardCounters& sc = metrics_.shard(shard);
  const std::uint64_t t0 = service::monotonic_ns();
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lk(s.mu);
  // (Re)seed when the DRBG does not exist yet, the reseed interval has
  // expired, or the client demanded prediction resistance. A failed fill
  // (shard starved past the deadline) keeps its partial words buffered
  // and refuses the draw only if serving would violate DRBG semantics.
  const bool must_seed =
      !s.drbg || s.drbg->needs_reseed() || prediction_resistance;
  if (must_seed) {
    if (fill_seed(shard, s)) {
      apply_seed(shard, s);
    } else {
      sc.reseed_timeouts.fetch_add(1, std::memory_order_relaxed);
      sc.backpressure.fetch_add(1, std::memory_order_relaxed);
      return DrawStatus::kBackpressure;
    }
  }
  const DrbgStatus st = s.drbg->generate(out, nbytes);
  if (st != DrbgStatus::kOk) {
    // kBadRequest was excluded above; kReseedRequired cannot happen right
    // after a successful seed — treat any residue as backpressure.
    sc.backpressure.fetch_add(1, std::memory_order_relaxed);
    return DrawStatus::kBackpressure;
  }
  sc.generates.fetch_add(1, std::memory_order_relaxed);
  sc.bytes_generated.fetch_add(nbytes, std::memory_order_relaxed);
  sc.generates_since_reseed.store(s.drbg->reseed_counter() - 1,
                                  std::memory_order_relaxed);
  sc.generate_latency_us.record((service::monotonic_ns() - t0) / 1000);
  return DrawStatus::kOk;
}

}  // namespace trng::server
