// Deterministic simulation PRNGs.
//
// All randomness used to *simulate* physical noise flows from these
// generators, so every experiment in the repository is reproducible
// bit-for-bit from its seed. (The TRNG under test produces randomness from
// the simulated physics; these PRNGs are the physics substrate, not the
// product.)
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace trng::common {

/// SplitMix64: tiny, high-quality 64-bit generator. Used to expand a single
/// user seed into independent stream seeds (the standard xoshiro seeding
/// recipe) and as a cheap standalone generator in tests.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, passes BigCrush, 2^256-1
/// period. Satisfies std::uniform_random_bit_generator so it plugs into
/// <random> distributions where convenient.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64 so that nearby seeds give
  /// unrelated streams.
  explicit Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1) — never returns exactly 0, safe for log().
  double next_double_open() {
    // 2^-54 offset keeps the value strictly inside the unit interval.
    return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Standard normal deviate (Marsaglia polar method with caching).
  /// Defined inline: this is the single hottest call in the physics
  /// simulation (every transition and every flip-flop capture draws one).
  double next_gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    // Marsaglia polar method: ~1.27 uniform pairs per output pair, no trig.
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Block form of next_gaussian(): fills out[0..n) with standard normal
  /// deviates, consuming the uniform stream in exactly the same order as n
  /// successive next_gaussian() calls — same values, same final generator
  /// state (including the one-value polar cache). This is the draw-order
  /// contract that lets batch kernels pre-draw whole jitter blocks and stay
  /// bit-identical to their scalar reference paths.
  void fill_gaussian(double* out, std::size_t n);

  /// Jump function: advances the stream by 2^128 steps. Calling jump() k
  /// times on copies yields k non-overlapping parallel substreams.
  void jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace trng::common
