#include "common/rng.hpp"

#include <cmath>

namespace trng::common {

void Xoshiro256StarStar::fill_gaussian(double* out, std::size_t n) {
  std::size_t i = 0;
  // Drain the polar cache first — exactly what the first next_gaussian()
  // call of an equivalent scalar sequence would return.
  if (has_cached_gaussian_ && i < n) {
    has_cached_gaussian_ = false;
    out[i++] = cached_gaussian_;
  }
  // Whole pairs: the polar method produces (u*factor, v*factor) together;
  // the scalar path returns the first and caches the second, so writing
  // both directly yields the identical value sequence without bouncing
  // through the cache.
  while (i + 2 <= n) {
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    out[i++] = u * factor;
    out[i++] = v * factor;
  }
  // Odd tail: one more scalar draw, which leaves its partner in the cache —
  // the same end state as n scalar calls.
  if (i < n) out[i] = next_gaussian();
}

std::uint64_t Xoshiro256StarStar::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256StarStar::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        t[0] ^= state_[0];
        t[1] ^= state_[1];
        t[2] ^= state_[2];
        t[3] ^= state_[3];
      }
      next();
    }
  }
  state_ = t;
}

}  // namespace trng::common
