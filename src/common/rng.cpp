#include "common/rng.hpp"

namespace trng::common {

std::uint64_t Xoshiro256StarStar::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Xoshiro256StarStar::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ULL << b)) {
        t[0] ^= state_[0];
        t[1] ^= state_[1];
        t[2] ^= state_[2];
        t[3] ^= state_[3];
      }
      next();
    }
  }
  state_ = t;
}

}  // namespace trng::common
