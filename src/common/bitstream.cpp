#include "common/bitstream.hpp"

#include <bit>
#include <stdexcept>

namespace trng::common {

BitStream BitStream::from_string(const std::string& bits) {
  BitStream bs;
  bs.reserve(bits.size());
  for (char c : bits) {
    if (c == '0') {
      bs.push_back(false);
    } else if (c == '1') {
      bs.push_back(true);
    } else {
      throw std::invalid_argument(
          "BitStream::from_string: expected only '0'/'1'");
    }
  }
  return bs;
}

BitStream BitStream::from_words(const std::vector<std::uint64_t>& words,
                                unsigned bits_per_word) {
  if (bits_per_word == 0 || bits_per_word > 64) {
    throw std::invalid_argument(
        "BitStream::from_words: bits_per_word must be in [1, 64]");
  }
  BitStream bs;
  if (words.size() > kMaxBits / bits_per_word) {
    throw std::length_error("BitStream::from_words: size overflow");
  }
  bs.reserve(words.size() * bits_per_word);
  for (std::uint64_t w : words) bs.append_bits(w, bits_per_word);
  return bs;
}

void BitStream::push_back(bool bit) {
  const std::size_t word = size_ >> 6;
  if (word == words_.size()) words_.push_back(0);
  if (bit) words_[word] |= 1ULL << (size_ & 63);
  ++size_;
}

void BitStream::append_bits(std::uint64_t value, unsigned count) {
  if (count > 64) {
    throw std::invalid_argument("BitStream::append_bits: count > 64");
  }
  // append_words ignores bits above `count`, so the word-writer handles
  // the masking and tail maintenance.
  append_words(&value, count);
}

void BitStream::append_words(const std::uint64_t* words, std::size_t nbits) {
  if (nbits == 0) return;
  if (nbits > kMaxBits - size_) {
    throw std::length_error("BitStream::append_words: size overflow");
  }
  const std::size_t nwords = (nbits + 63) / 64;
  const unsigned shift = static_cast<unsigned>(size_ & 63);
  if (shift == 0) {
    words_.insert(words_.end(), words, words + nwords);
  } else {
    // Splice each incoming word across the partially-filled tail word.
    words_.reserve((size_ + nbits + 63) / 64);
    for (std::size_t w = 0; w < nwords; ++w) {
      words_.back() |= words[w] << shift;
      words_.push_back(words[w] >> (64 - shift));
    }
  }
  size_ += nbits;
  // Drop any spilled word and clear bits above `nbits` in the final input
  // word so that the tail-bits-are-zero invariant holds even when the
  // caller's buffer has garbage past nbits.
  words_.resize((size_ + 63) / 64);
  const unsigned tail = static_cast<unsigned>(size_ & 63);
  if (tail != 0) words_.back() &= ~0ULL >> (64 - tail);
}

void BitStream::append(const BitStream& other) {
  // Fast path when this stream is word-aligned.
  if ((size_ & 63) == 0) {
    words_.insert(words_.end(), other.words_.begin(), other.words_.end());
    size_ += other.size_;
    return;
  }
  for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
}

bool BitStream::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitStream::at: index out of range");
  return (*this)[i];
}

void BitStream::clear() {
  words_.clear();
  size_ = 0;
}

void BitStream::reserve(std::size_t bits) {
  if (bits > kMaxBits) {
    throw std::length_error("BitStream::reserve: size overflow");
  }
  words_.reserve((bits + 63) / 64);
}

std::size_t BitStream::count_ones() const {
  std::size_t ones = 0;
  for (std::uint64_t w : words_) ones += static_cast<std::size_t>(std::popcount(w));
  return ones;
}

std::size_t BitStream::count_ones(std::size_t begin,
                                  std::size_t length) const {
  if (begin > size_ || length > size_ - begin) {
    throw std::out_of_range("BitStream::count_ones: range out of bounds");
  }
  if (length == 0) return 0;
  const std::size_t first = begin >> 6;
  const std::size_t last = (begin + length - 1) >> 6;
  const unsigned head = static_cast<unsigned>(begin & 63);
  std::size_t ones = 0;
  if (first == last) {
    const std::uint64_t mask = (~0ULL >> (64 - length)) << head;
    return static_cast<std::size_t>(std::popcount(words_[first] & mask));
  }
  ones += static_cast<std::size_t>(std::popcount(words_[first] >> head));
  for (std::size_t w = first + 1; w < last; ++w) {
    ones += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  const unsigned tail = static_cast<unsigned>((begin + length - 1) & 63) + 1;
  ones += static_cast<std::size_t>(
      std::popcount(words_[last] & (~0ULL >> (64 - tail))));
  return ones;
}

std::uint64_t BitStream::word_at(std::size_t begin) const {
  const std::size_t k = begin >> 6;
  const unsigned off = static_cast<unsigned>(begin & 63);
  const std::uint64_t lo = k < words_.size() ? words_[k] : 0;
  const std::uint64_t hi = k + 1 < words_.size() ? words_[k + 1] : 0;
  // (hi << 1) << (63 - off) == hi << (64 - off) without the off == 0
  // undefined shift-by-64.
  return (lo >> off) | ((hi << 1) << (63 - off));
}

BitStream BitStream::slice(std::size_t begin, std::size_t length) const {
  // Overflow-safe form of `begin + length > size_`: the naive sum wraps for
  // begin/length near SIZE_MAX, silently passing the check and handing
  // out-of-bounds indices to operator[].
  if (begin > size_ || length > size_ - begin) {
    throw std::out_of_range("BitStream::slice: range out of bounds");
  }
  BitStream out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out.push_back((*this)[begin + i]);
  return out;
}

BitStream BitStream::xor_fold(unsigned np) const {
  if (np == 0) {
    throw std::invalid_argument("BitStream::xor_fold: np must be >= 1");
  }
  BitStream out;
  out.reserve(size_ / np);
  std::size_t i = 0;
  while (i + np <= size_) {
    bool acc = false;
    for (unsigned j = 0; j < np; ++j) acc ^= (*this)[i + j];
    out.push_back(acc);
    i += np;
  }
  return out;
}

double BitStream::ones_fraction() const {
  if (size_ == 0) {
    throw std::logic_error("BitStream::ones_fraction: empty stream");
  }
  return static_cast<double>(count_ones()) / static_cast<double>(size_);
}

std::string BitStream::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back((*this)[i] ? '1' : '0');
  return s;
}

bool BitStream::operator==(const BitStream& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace trng::common
