// File interchange for bit sequences: the ASCII '0'/'1' format consumed by
// the official NIST SP 800-22 `assess` tool, and a compact binary format.
// Lets users pipe this library's generators into external evaluation tools
// and re-ingest captured data.
#pragma once

#include <string>

#include "common/bitstream.hpp"

namespace trng::common {

/// Writes the stream as ASCII '0'/'1' characters (NIST assess "file
/// format 0"). Throws std::runtime_error on I/O failure.
void write_ascii_bits(const BitStream& bits, const std::string& path);

/// Reads an ASCII '0'/'1' file (whitespace/newlines ignored).
/// Throws std::runtime_error on I/O failure, std::invalid_argument on any
/// other character.
BitStream read_ascii_bits(const std::string& path);

/// Writes packed binary: 8 bits per byte, LSB-first, zero-padded tail,
/// prefixed by a little-endian 64-bit bit count.
void write_binary_bits(const BitStream& bits, const std::string& path);

/// Reads the packed binary format written by write_binary_bits.
BitStream read_binary_bits(const std::string& path);

}  // namespace trng::common
