#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trng::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) throw std::logic_error("RunningStats::variance: need >= 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: no samples");
  return max_;
}

void RunningStats::reset() { *this = RunningStats{}; }

void KahanSum::add(double x) {
  const double t = sum_ + x;
  if (std::fabs(sum_) >= std::fabs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: requires hi > lo and bins >= 1");
  }
}

void Histogram::add(double x) {
  auto idx = static_cast<long>(std::floor((x - lo_) / width_));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_count");
  return counts_[i];
}

double Histogram::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double chi_square_statistic(const std::vector<std::size_t>& observed,
                            const std::vector<double>& expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("chi_square_statistic: size mismatch");
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument(
          "chi_square_statistic: expected counts must be positive");
    }
    const double d = static_cast<double>(observed[i]) - expected[i];
    chi2 += d * d / expected[i];
  }
  return chi2;
}

double binary_entropy(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("binary_entropy: p must lie in [0, 1]");
  }
  if (p == 0.0 || p == 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double binary_min_entropy(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::domain_error("binary_min_entropy: p must lie in [0, 1]");
  }
  return -std::log2(std::max(p, 1.0 - p));
}

}  // namespace trng::common
