// Special functions needed by the statistical test suite (chi-square and
// gamma tail probabilities behind the NIST SP 800-22 p-values).
#pragma once

namespace trng::common {

/// Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
/// Requires a > 0, x >= 0.
double igam(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = Gamma(a, x) / Gamma(a).
/// This is NIST's `igamc`; p-values of chi-square statistics are
/// Q(df/2, chi2/2). Requires a > 0, x >= 0.
double igamc(double a, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: P[X >= x].
double chi_square_sf(double x, double df);

/// Natural log of the binomial coefficient C(n, k).
double log_binomial(unsigned n, unsigned k);

}  // namespace trng::common
