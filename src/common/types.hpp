// Fundamental types and physical constants shared by every subsystem.
#pragma once

#include <cstdint>

namespace trng {

/// Physical time in picoseconds. All timing-level simulation (stage delays,
/// jitter, TDC bins) is carried in double-precision picoseconds: one LSB of a
/// double near 10^5 ps is ~1.5e-11 ps, ten orders of magnitude below any
/// physical effect modelled here.
using Picoseconds = double;

/// Count of system-clock cycles (100 MHz platform clock in the paper).
using Cycles = std::uint64_t;

namespace constants {

/// Platform clock frequency used throughout the paper (Spartan-6 board).
inline constexpr double kSystemClockHz = 100.0e6;

/// Platform clock period: 10 ns = 10000 ps.
inline constexpr Picoseconds kSystemClockPeriodPs = 1.0e12 / kSystemClockHz;

/// Nominal platform parameters measured in the paper (Section 5.1).
/// These seed the *simulated* fabric; the measurement procedures in
/// trng::model re-derive them from simulation, mimicking the paper's flow.
inline constexpr Picoseconds kNominalLutDelayPs = 480.0;   ///< d0,LUT
inline constexpr Picoseconds kNominalCarryBinPs = 17.0;    ///< t_step
inline constexpr Picoseconds kNominalJitterSigmaPs = 2.0;  ///< sigma_LUT

}  // namespace constants

}  // namespace trng
