#include "common/io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace trng::common {

void write_ascii_bits(const BitStream& bits, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_ascii_bits: cannot open " + path);
  std::string buffer;
  buffer.reserve(81);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    buffer.push_back(bits[i] ? '1' : '0');
    if (buffer.size() == 80) {
      buffer.push_back('\n');
      out << buffer;
      buffer.clear();
    }
  }
  if (!buffer.empty()) out << buffer << '\n';
  if (!out) throw std::runtime_error("write_ascii_bits: write failed");
}

BitStream read_ascii_bits(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_ascii_bits: cannot open " + path);
  BitStream bits;
  char c;
  while (in.get(c)) {
    if (c == '0') {
      // trng-lint: allow(TL006) -- ASCII parsing is inherently char-at-a-time
      bits.push_back(false);
    } else if (c == '1') {
      // trng-lint: allow(TL006) -- ASCII parsing is inherently char-at-a-time
      bits.push_back(true);
    } else if (c != '\n' && c != '\r' && c != ' ' && c != '\t') {
      throw std::invalid_argument("read_ascii_bits: unexpected character");
    }
  }
  return bits;
}

void write_binary_bits(const BitStream& bits, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) throw std::runtime_error("write_binary_bits: cannot open " + path);
  const std::uint64_t count = bits.size();
  for (int b = 0; b < 8; ++b) {
    out.put(static_cast<char>((count >> (8 * b)) & 0xff));
  }
  std::uint8_t byte = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte = static_cast<std::uint8_t>(byte | (1u << (i % 8)));
    if (i % 8 == 7) {
      out.put(static_cast<char>(byte));
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) out.put(static_cast<char>(byte));
  if (!out) throw std::runtime_error("write_binary_bits: write failed");
}

BitStream read_binary_bits(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary_bits: cannot open " + path);
  std::uint64_t count = 0;
  for (int b = 0; b < 8; ++b) {
    const int c = in.get();
    if (c == EOF) throw std::runtime_error("read_binary_bits: truncated header");
    count |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * b);
  }
  BitStream bits;
  bits.reserve(count);
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const int c = in.get();
    if (c == EOF) throw std::runtime_error("read_binary_bits: truncated data");
    const auto byte = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    const unsigned take = remaining < 8 ? static_cast<unsigned>(remaining) : 8u;
    bits.append_bits(byte, take);
    remaining -= take;
  }
  return bits;
}

}  // namespace trng::common
