// Online statistics and small numeric helpers used across the repository:
// jitter-measurement post-processing, code-density (bin-width) estimation,
// chi-square goodness of fit, and compensated summation for the stochastic
// model's long Gaussian tail sums.
#pragma once

#include <cstddef>
#include <vector>

namespace trng::common {

/// Welford's online mean/variance accumulator — numerically stable for the
/// long measurement runs used in platform characterization.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  /// Throws std::logic_error if no samples were added.
  double mean() const;
  /// Unbiased sample variance; throws std::logic_error if count() < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Kahan–Neumaier compensated accumulator. Eq. 3 of the paper sums many
/// nearly-cancelling Gaussian masses; naive summation loses digits exactly
/// where the entropy bound is tightest.
class KahanSum {
 public:
  void add(double x);
  double value() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are clamped
/// into the edge bins. Used by the TDC code-density (bin non-linearity)
/// analysis.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t i) const;

  const std::vector<std::size_t>& counts() const { return counts_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson chi-square statistic of observed counts against expected counts.
/// Throws std::invalid_argument on size mismatch or non-positive expected.
double chi_square_statistic(const std::vector<std::size_t>& observed,
                            const std::vector<double>& expected);

/// Binary Shannon entropy H(p) = -p log2 p - (1-p) log2 (1-p); H(0)=H(1)=0.
double binary_entropy(double p);

/// Binary min-entropy -log2(max(p, 1-p)).
double binary_min_entropy(double p);

}  // namespace trng::common
