#include "common/special.hpp"

#include <math.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace trng::common {

namespace {

constexpr double kMachEps = std::numeric_limits<double>::epsilon();
constexpr double kBig = 4.503599627370496e15;
constexpr double kBigInv = 2.22044604925031308085e-16;

// Both expansions converge in tens of terms over this library's entire
// input domain (chi-square statistics of finite bit sequences); the cap
// turns a would-be infinite loop on pathological input (NaN propagation,
// denormal stalls) into a loud failure instead of a hang. Note the loop
// exit conditions below compare floating-point values with strict
// inequalities — never ==/!= — so convergence cannot ping-pong on ulps.
constexpr int kMaxIterations = 10000;

[[noreturn]] void throw_no_convergence(const char* fn) {
  throw std::runtime_error(std::string(fn) +
                           ": no convergence after 10000 iterations");
}

// glibc's lgamma() writes its sign result to the process-global `signgam`,
// which is a data race when battery jobs evaluate igamc() concurrently on
// executor threads. The reentrant lgamma_r() returns the identical value
// and keeps the sign in a caller-local out-parameter; every argument here
// is positive, so the sign is discarded.
double lgamma_threadsafe(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

/// Series expansion for P(a, x), converges fast for x < a + 1.
double igam_series(double a, double x) {
  double ax = a * std::log(x) - x - lgamma_threadsafe(a);
  if (ax < -709.78) return 0.0;  // underflow of exp
  ax = std::exp(ax);

  double r = a;
  double c = 1.0;
  double ans = 1.0;
  for (int i = 0;; ++i) {
    if (i >= kMaxIterations) throw_no_convergence("igam_series");
    r += 1.0;
    c *= x / r;
    ans += c;
    if (!(c / ans > kMachEps)) break;
  }
  return ans * ax / a;
}

/// Continued fraction for Q(a, x), converges fast for x >= a + 1.
double igamc_cfrac(double a, double x) {
  double ax = a * std::log(x) - x - lgamma_threadsafe(a);
  if (ax < -709.78) return 0.0;
  ax = std::exp(ax);

  double y = 1.0 - a;
  double z = x + y + 1.0;
  double c = 0.0;
  double pkm2 = 1.0;
  double qkm2 = x;
  double pkm1 = x + 1.0;
  double qkm1 = z * x;
  double ans = pkm1 / qkm1;
  double t;
  int iterations = 0;
  do {
    if (++iterations > kMaxIterations) throw_no_convergence("igamc_cfrac");
    c += 1.0;
    y += 1.0;
    z += 2.0;
    const double yc = y * c;
    const double pk = pkm1 * z - pkm2 * yc;
    const double qk = qkm1 * z - qkm2 * yc;
    // Exact != 0.0 is correct here: this guards the division below against
    // the one value that raises FE_DIVBYZERO; any nonzero qk, however
    // tiny, yields a finite convergent (the kBig rescaling keeps the
    // recurrence magnitudes bounded).
    if (qk != 0.0) {
      const double r = pk / qk;
      t = std::fabs((ans - r) / r);
      ans = r;
    } else {
      t = 1.0;
    }
    pkm2 = pkm1;
    pkm1 = pk;
    qkm2 = qkm1;
    qkm1 = qk;
    if (std::fabs(pk) > kBig) {
      pkm2 *= kBigInv;
      pkm1 *= kBigInv;
      qkm2 *= kBigInv;
      qkm1 *= kBigInv;
    }
  } while (t > kMachEps);
  return ans * ax;
}

}  // namespace

double igam(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("igam: requires a > 0 and x >= 0");
  }
  // Exact == 0.0 is correct: P(a, 0) = 0 is the boundary value, and x = 0
  // would otherwise feed log(0) into the series prefactor.
  if (x == 0.0) return 0.0;
  if (x > 1.0 && x > a) return 1.0 - igamc_cfrac(a, x);
  return igam_series(a, x);
}

double igamc(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::domain_error("igamc: requires a > 0 and x >= 0");
  }
  // Exact == 0.0: Q(a, 0) = 1, same boundary rationale as igam().
  if (x == 0.0) return 1.0;
  if (x < 1.0 || x < a) return 1.0 - igam_series(a, x);
  return igamc_cfrac(a, x);
}

double chi_square_sf(double x, double df) {
  if (x < 0.0) return 1.0;
  return igamc(df / 2.0, x / 2.0);
}

double log_binomial(unsigned n, unsigned k) {
  if (k > n) throw std::domain_error("log_binomial: k > n");
  return lgamma_threadsafe(static_cast<double>(n) + 1.0) -
         lgamma_threadsafe(static_cast<double>(k) + 1.0) -
         lgamma_threadsafe(static_cast<double>(n - k) + 1.0);
}

}  // namespace trng::common
