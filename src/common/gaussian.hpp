// Gaussian distribution helpers used by the stochastic model (Eq. 3-4 of the
// paper) and by the statistical tests.
#pragma once

namespace trng::common {

/// Standard normal probability density function.
double normal_pdf(double x);

/// Standard normal cumulative distribution Phi(x) = P[N(0,1) <= x].
/// This is Eq. 4 of the paper; implemented via erfc for full double accuracy
/// in both tails.
double normal_cdf(double x);

/// Complement 1 - Phi(x), accurate for large positive x (no cancellation).
double normal_sf(double x);

/// Inverse of normal_cdf. Acklam's rational approximation refined by one
/// Halley step; relative error below 1e-13 over (0, 1).
/// Throws std::domain_error for p outside (0, 1).
double normal_quantile(double p);

}  // namespace trng::common
