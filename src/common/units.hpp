// Strong count types for the two denominations the packed datapath deals
// in: bits and 64-bit words.
//
// The batched BitSource contract moves entropy as packed words but sizes
// requests in bits, so every interface that touches both carries a silent
// factor-of-64 hazard: passing a word count where a bit count is expected
// truncates 98.4% of a request, and the reverse overflows buffers. The
// paper's entropy claims (Eq. 3-5) hold only if extraction is exact, and
// exactness starts with never miscounting what was extracted. `Bits` and
// `Words` make the denomination part of the type: construction is
// explicit, cross-denomination arithmetic does not compile, and the only
// ways across are the named, checked conversions below (enforced
// repo-wide by the semantic analyzer's SA002 rule).
//
// Both types are thin wrappers over std::uint64_t — passing them by value
// costs exactly what passing the raw integer did.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>

namespace trng::common {

/// Count of single bits. Explicitly constructed, explicitly unwrapped
/// (`count()`); supports same-type arithmetic and comparison only.
class Bits {
 public:
  constexpr Bits() = default;
  constexpr explicit Bits(std::uint64_t n) : n_(n) {}

  /// The raw count. Unwrapping is deliberate and visible at call sites:
  /// SA002 treats the result as a bit-denominated raw integer.
  [[nodiscard]] constexpr std::uint64_t count() const { return n_; }

  [[nodiscard]] constexpr bool is_zero() const { return n_ == 0; }

  friend constexpr bool operator==(Bits, Bits) = default;
  friend constexpr auto operator<=>(Bits a, Bits b) {
    return a.n_ <=> b.n_;
  }

  friend constexpr Bits operator+(Bits a, Bits b) { return Bits(a.n_ + b.n_); }
  friend constexpr Bits operator-(Bits a, Bits b) {
    if (b.n_ > a.n_) {
      throw std::underflow_error("Bits: subtraction would underflow");
    }
    return Bits(a.n_ - b.n_);
  }
  /// Scaling by a dimensionless factor (e.g. XOR compression's np).
  friend constexpr Bits operator*(Bits a, std::uint64_t k) {
    if (k != 0 && a.n_ > std::numeric_limits<std::uint64_t>::max() / k) {
      throw std::overflow_error("Bits: multiplication would overflow");
    }
    return Bits(a.n_ * k);
  }
  friend constexpr Bits operator*(std::uint64_t k, Bits a) { return a * k; }

  constexpr Bits& operator+=(Bits o) { n_ += o.n_; return *this; }
  constexpr Bits& operator-=(Bits o) { *this = *this - o; return *this; }

 private:
  std::uint64_t n_ = 0;
};

/// Count of packed 64-bit words (the BitSource / WordRing transfer unit).
class Words {
 public:
  constexpr Words() = default;
  constexpr explicit Words(std::uint64_t n) : n_(n) {}

  [[nodiscard]] constexpr std::uint64_t count() const { return n_; }

  [[nodiscard]] constexpr bool is_zero() const { return n_ == 0; }

  friend constexpr bool operator==(Words, Words) = default;
  friend constexpr auto operator<=>(Words a, Words b) {
    return a.n_ <=> b.n_;
  }

  friend constexpr Words operator+(Words a, Words b) {
    return Words(a.n_ + b.n_);
  }
  friend constexpr Words operator-(Words a, Words b) {
    if (b.n_ > a.n_) {
      throw std::underflow_error("Words: subtraction would underflow");
    }
    return Words(a.n_ - b.n_);
  }
  friend constexpr Words operator*(Words a, std::uint64_t k) {
    if (k != 0 && a.n_ > std::numeric_limits<std::uint64_t>::max() / k) {
      throw std::overflow_error("Words: multiplication would overflow");
    }
    return Words(a.n_ * k);
  }
  friend constexpr Words operator*(std::uint64_t k, Words a) { return a * k; }

  constexpr Words& operator+=(Words o) { n_ += o.n_; return *this; }
  constexpr Words& operator-=(Words o) { *this = *this - o; return *this; }

 private:
  std::uint64_t n_ = 0;
};

/// Words needed to hold `b` bits: ceil(b / 64). The canonical "size my
/// packed buffer" conversion; never lossy.
[[nodiscard]] constexpr Words bits_to_words(Bits b) {
  return Words(b.count() / 64 + (b.count() % 64 != 0 ? 1 : 0));
}

/// Bit capacity of `w` words: w * 64, overflow-checked (counts above
/// 2^58 words cannot be expressed in bits).
[[nodiscard]] constexpr Bits words_to_bits(Words w) {
  if (w.count() > std::numeric_limits<std::uint64_t>::max() / 64) {
    throw std::overflow_error("words_to_bits: bit count would overflow");
  }
  return Bits(w.count() * 64);
}

/// Index of the word containing bit `b` (floor division — distinct from
/// bits_to_words, which is a ceiling capacity).
[[nodiscard]] constexpr Words word_index(Bits b) {
  return Words(b.count() / 64);
}

/// Position of bit `b` within its word (0..63).
[[nodiscard]] constexpr unsigned bit_offset(Bits b) {
  return static_cast<unsigned>(b.count() % 64);
}

/// Narrowing with a runtime range check: converts an unsigned count to any
/// narrower integral type, throwing std::overflow_error instead of
/// truncating. Used where a typed count meets a legacy narrow parameter
/// (histogram buckets, percentages, test lengths held in unsigned).
template <typename To>
[[nodiscard]] constexpr To checked_narrow(std::uint64_t v) {
  static_assert(std::is_integral_v<To> && !std::is_same_v<To, bool>,
                "checked_narrow targets an integral type");
  if (v > static_cast<std::uint64_t>(std::numeric_limits<To>::max())) {
    throw std::overflow_error("checked_narrow: value out of range");
  }
  return static_cast<To>(v);
}

template <typename To>
[[nodiscard]] constexpr To checked_narrow(Bits b) {
  return checked_narrow<To>(b.count());
}

template <typename To>
[[nodiscard]] constexpr To checked_narrow(Words w) {
  return checked_narrow<To>(w.count());
}

}  // namespace trng::common
