// Packed bit container for generated random sequences.
//
// Every TRNG in the repository emits its output into a BitStream; the
// statistical battery, post-processors and entropy estimators all consume
// BitStreams. Bits are stored LSB-first within 64-bit words.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace trng::common {

class BitStream {
 public:
  BitStream() = default;

  /// Constructs from a string of '0'/'1' characters (test convenience).
  /// Throws std::invalid_argument on any other character.
  static BitStream from_string(const std::string& bits);

  /// Constructs from the low `bits_per_word` bits of each value.
  static BitStream from_words(const std::vector<std::uint64_t>& words,
                              unsigned bits_per_word);

  void push_back(bool bit);

  /// Appends the low `count` bits of `value`, LSB first.
  void append_bits(std::uint64_t value, unsigned count);

  /// Appends `nbits` bits from a packed LSB-first word buffer (the layout
  /// produced by core::BitSource::generate_into). `words` must hold at
  /// least (nbits + 63) / 64 words; bits above `nbits` in the final word
  /// are ignored. This is the bulk word-writer that replaces per-bit
  /// push_back loops in generator hot paths.
  void append_words(const std::uint64_t* words, std::size_t nbits);

  void append(const BitStream& other);

  /// Reads bit `i`; bounds-checked, throws std::out_of_range.
  bool at(std::size_t i) const;

  /// Reads bit `i` without bounds checking (hot paths; callers are expected
  /// to have validated the index).
  bool operator[](std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear();
  void reserve(std::size_t bits);

  /// Number of one-bits in the whole stream (hardware-popcount per word).
  std::size_t count_ones() const;

  /// Number of one-bits in [begin, begin+length). Throws std::out_of_range
  /// when the range does not fit (overflow-safe check, like slice()).
  std::size_t count_ones(std::size_t begin, std::size_t length) const;

  /// The 64 bits starting at bit `begin`, packed LSB-first: bit j of the
  /// result is stream bit begin+j. Positions at or past size() read as
  /// zero, so any `begin` is valid — this is the primitive the word-parallel
  /// statistical kernels use to extract packed L-bit windows at arbitrary
  /// (unaligned) offsets.
  std::uint64_t word_at(std::size_t begin) const;

  /// Returns the sub-stream [begin, begin+length). Throws std::out_of_range
  /// if the range does not fit.
  BitStream slice(std::size_t begin, std::size_t length) const;

  /// XOR-compresses the stream by folding each group of `np` consecutive
  /// bits into one (the paper's Section 4.5 post-processing). A trailing
  /// partial group is dropped. np must be >= 1.
  BitStream xor_fold(unsigned np) const;

  /// Fraction of ones, in [0, 1]. Throws std::logic_error when empty.
  double ones_fraction() const;

  /// '0'/'1' textual rendering (tests and debugging; O(n) allocation).
  std::string to_string() const;

  bool operator==(const BitStream& other) const;

  /// Raw word storage, LSB-first; the tail word's unused high bits are zero.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  /// Capacity guard used by reserve()/from_words(): large enough for any
  /// real sequence, small enough that `bits + 63` and
  /// `words * bits_per_word` can never wrap std::size_t.
  static constexpr std::size_t kMaxBits = std::size_t{1} << 48;

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace trng::common
