// Environment-variable size knobs shared by benches, examples and smoke
// tests, so short CI budgets and full paper-scale runs share one binary.
#pragma once

#include <cstddef>
#include <cstdlib>

namespace trng::common {

/// Reads a size knob from the environment (e.g. TRNG_BENCH_BITS); returns
/// `fallback` when unset, unparsable or zero.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

}  // namespace trng::common
