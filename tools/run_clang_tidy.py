#!/usr/bin/env python3
"""Runs clang-tidy over every src/ translation unit in a build tree's
compile_commands.json. Registered as the `trng_tidy.src` ctest; exits 77
(the ctest skip sentinel) on hosts without a clang-tidy binary so the gate
degrades to "skipped", never to silently-green.

Usage: run_clang_tidy.py -p <build-dir> [--source-root <repo-root>]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import shutil
import subprocess
import sys

SKIP_EXIT = 77

CANDIDATES = [
    "clang-tidy", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
    "clang-tidy-16", "clang-tidy-15",
]


def find_clang_tidy() -> str | None:
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) else None
    for name in CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", required=True,
                        type=pathlib.Path,
                        help="build tree containing compile_commands.json")
    parser.add_argument("--source-root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 4)
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        print("trng_tidy: SKIP - no clang-tidy executable on this host "
              "(set CLANG_TIDY or install clang-tidy)", file=sys.stderr)
        return SKIP_EXIT

    db_path = args.build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"trng_tidy: {db_path} not found; configure with "
              f"CMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2

    src_root = (args.source_root / "src").resolve()
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    files = sorted({e["file"] for e in entries
                    if pathlib.Path(e["file"]).resolve()
                    .is_relative_to(src_root)})
    if not files:
        print("trng_tidy: no src/ entries in the compilation database",
              file=sys.stderr)
        return 2

    print(f"trng_tidy: {tidy} over {len(files)} TU(s), "
          f"{args.jobs} jobs", file=sys.stderr)

    def run_one(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(args.build_dir), "--quiet",
             "--warnings-as-errors=*", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            if code != 0:
                failures += 1
                rel = os.path.relpath(path, args.source_root)
                print(f"--- {rel} (exit {code}) ---")
                print(output)

    if failures:
        print(f"trng_tidy: {failures}/{len(files)} TU(s) with findings",
              file=sys.stderr)
        return 1
    print(f"trng_tidy: clean ({len(files)} TUs)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
