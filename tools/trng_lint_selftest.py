#!/usr/bin/env python3
"""Self-test for tools/trng_lint.py.

Runs the linter over the known-bad/known-good fixture tree in
tests/lint/fixtures/ (which mirrors the repo's src/ layout so every
path-scoped rule applies exactly as in production) and asserts that each
rule fires where expected and nowhere else.

Exit codes: 0 all assertions hold, 1 otherwise.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "trng_lint.py"
FIXTURES = REPO / "tests" / "lint" / "fixtures"

# Every (file, rule) pair the fixture run must produce — no more, no less.
# Multiset: a pair listed twice must be reported exactly twice.
EXPECTED = sorted([
    ("src/core/bad_rand.cpp", "TL001"),      # srand(
    ("src/core/bad_rand.cpp", "TL001"),      # time(nullptr)
    ("src/core/bad_rand.cpp", "TL001"),      # rand()
    ("src/core/bad_rand.cpp", "TL001"),      # std::rand -> rand(
    ("src/core/bad_rand.cpp", "TL001"),      # std::rand token
    ("src/core/bad_rand.cpp", "TL001"),      # random_device
    ("src/core/bad_rand.cpp", "TL001"),      # steady_clock::now
    ("src/model/bad_float.cpp", "TL002"),   # declaration
    ("src/model/bad_float.cpp", "TL002"),   # static_cast<float>

    ("src/model/bad_fp_eq.cpp", "TL003"),    # literal rhs
    ("src/model/bad_fp_eq.cpp", "TL003"),    # literal lhs
    ("src/stattests/bad_result.hpp", "TL004"),
    ("src/core/bad_test_include.cpp", "TL005"),
    ("src/core/bad_test_include.cpp", "TL005"),
    ("src/core/bad_pushback.cpp", "TL006"),  # reference parameter
    ("src/core/bad_pushback.cpp", "TL006"),  # per-bit loop
    ("src/core/bad_thread.cpp", "TL007"),    # std::thread construction
    ("src/core/bad_thread.cpp", "TL007"),    # .detach()
    ("src/core/bad_thread.cpp", "TL007"),    # std::thread member
    ("src/core/bad_socket.cpp", "TL009"),    # ::socket(
    ("src/core/bad_socket.cpp", "TL009"),    # ::bind(
    ("src/core/bad_socket.cpp", "TL009"),    # bare recv(
    ("src/stattests/wordpar_kernels.hpp", "TL008"),  # uncovered_kernel
    ("src/model/suppressed_bad.cpp", "TL000"),
    ("src/model/dangling_allow.cpp", "TL000"),
])

# Files that must NOT appear in any finding (negative assertions: the rng.cpp
# exemption, comment/string stripping, justified suppressions, clean code).
MUST_BE_CLEAN = [
    "src/common/rng.cpp",
    "src/common/bitstream.cpp",
    "src/model/comment_only.cpp",
    "src/model/suppressed_ok.cpp",
    "src/core/clean.cpp",
    "src/service/clean_thread.cpp",
    "src/server/clean_socket.cpp",
]


def main() -> int:
    proc = subprocess.run(
        [sys.executable, str(LINT), "--root", str(FIXTURES), "--quiet"],
        capture_output=True, text=True)

    findings = []
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        location, _, rest = line.partition(": ")
        path = location.rsplit(":", 1)[0]
        rule = rest.split()[0]
        findings.append((path, rule))
    findings.sort()

    failures = []

    if proc.returncode != 1:
        failures.append(
            f"expected exit code 1 (findings present), got {proc.returncode}")

    for path in MUST_BE_CLEAN:
        hits = [f for f in findings if f[0] == path]
        if hits:
            failures.append(f"false positive(s) in {path}: {hits}")

    if findings != EXPECTED:
        missing = list(EXPECTED)
        extra = []
        for f in findings:
            if f in missing:
                missing.remove(f)
            else:
                extra.append(f)
        if missing:
            failures.append(f"expected findings never fired: {missing}")
        if extra:
            failures.append(f"unexpected findings: {extra}")

    # The rule table must stay documented: --list-rules lists every TL rule.
    rules = subprocess.run(
        [sys.executable, str(LINT), "--list-rules"],
        capture_output=True, text=True)
    for rule_id in ("TL001", "TL002", "TL003", "TL004", "TL005", "TL006",
                    "TL007", "TL008", "TL009"):
        if rule_id not in rules.stdout:
            failures.append(f"--list-rules does not document {rule_id}")

    if failures:
        print("trng_lint_selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("--- linter stdout ---", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        return 1

    print(f"trng_lint_selftest: OK "
          f"({len(EXPECTED)} expected findings, "
          f"{len(MUST_BE_CLEAN)} clean files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
