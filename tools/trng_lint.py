#!/usr/bin/env python3
"""TRNG repository invariant linter.

Enforces repo-specific correctness rules that no generic static analyzer
knows about. The rules exist because the repository's value rests on
numerical reproduction claims (Eq. 3 bin masses, the Eq. 5 entropy bound,
the Eq. 8 improvement factor), and each rule guards a way those numbers
have historically gone silently wrong:

  TL001 nondeterministic-rng
      No std::rand/srand, std::random_device, time()-seeding or wall-clock
      reads anywhere in src/ except src/common/rng.{cpp,hpp}. Every
      simulation must be exactly reproducible from its explicit seed; a
      single random_device() hidden in a constructor makes a failing
      entropy estimate unreproducible.

  TL002 float-type
      No `float` in src/model/ or src/stattests/. The entropy-bound
      numerics (Gaussian tail sums, chi-square survival functions) lose
      the paper's claimed precision in single precision; everything is
      double end to end.

  TL003 fp-literal-equality
      No ==/!= against a floating-point literal in src/model/ or
      src/stattests/. Exact comparison against computed FP values is
      almost always a bug in the estimator code; the rare legitimate
      exact-zero guard carries a justified suppression.

  TL004 nodiscard-result
      Every estimator / health-test result type (struct or class named
      *Result, *Report, *Outcome, *Verdict, *Assessment) must be declared
      [[nodiscard]]. Dropping a health-test verdict on the floor is the
      TRNG equivalent of ignoring an error code.

  TL005 test-include
      src/ must not #include anything from tests/. Production code that
      reaches into the test tree inverts the dependency graph and breaks
      standalone library builds.

  TL006 per-bit-pushback
      No BitStream::push_back on named BitStream objects in src/ outside
      src/common/bitstream.{cpp,hpp} (the container's own implementation).
      The batched BitSource layer exists precisely so hot paths assemble
      packed words and append_words() them; a per-bit push_back loop
      silently reintroduces the bit-at-a-time datapath the refactor
      removed. Genuinely bit-serial algorithms (ASCII parsers, von
      Neumann rejection) carry a justified suppression.

  TL009 socket-confinement
      No BSD socket calls (socket, socketpair, bind, listen, accept,
      connect, send*, recv*) in src/ outside src/server/. The entropy
      daemon owns the transport; a socket opened from the core or model
      layers would make the hermetic simulation library network-facing
      and untestable without a peer.

  TL008 kernel-equivalence-test
      Every kernel declared in a `wordpar` namespace in a header under
      src/stattests/ must be exercised by name in a tests/ file whose
      filename contains "equivalence". The word-parallel battery's whole
      correctness story is bit-identity with the scalar reference
      (tests/test_battery_equivalence.cpp); a kernel that nothing
      compares against its reference is an unchecked rewrite of a
      statistical test.

Suppressions
------------
A finding is suppressed by a marker on the same line or the line
immediately above:

    // trng-lint: allow(TL003) -- exact zero is the documented sentinel

The ` -- justification` part is mandatory; an allow() without a written
justification is itself an error (TL000). Suppressions are deliberately
line-scoped — there is no file-level or rule-level kill switch.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import collections
import dataclasses
import json
import pathlib
import re
import sys

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

ALLOW_RE = re.compile(
    r"//\s*trng-lint:\s*allow\(\s*(TL\d{3})\s*\)\s*(?:--\s*(\S.*))?")

FP_LITERAL = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"


@dataclasses.dataclass(frozen=True)
class Finding:
    path: pathlib.Path
    line: int
    rule: str
    name: str
    message: str
    suppressed: bool = False
    justification: str | None = None

    def render(self, root: pathlib.Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.rule} [{self.name}] {self.message}"

    def to_json(self, root: pathlib.Path) -> dict:
        try:
            rel = str(self.path.relative_to(root))
        except ValueError:
            rel = str(self.path)
        out = {"rule": self.rule, "name": self.name, "file": rel,
               "line": self.line, "message": self.message,
               "suppressed": self.suppressed}
        if self.justification:
            out["justification"] = self.justification
        return out


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, keeping
    newlines so offsets still map to the original line numbers. Handles //,
    /* */, "..." and '...' with escapes; raw string literals are treated as
    ordinary strings (good enough for this codebase, which has none)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


class Rule:
    rule_id: str = "TL000"
    name: str = "unnamed"
    doc: str = ""

    def applies_to(self, rel: pathlib.PurePosixPath) -> bool:
        raise NotImplementedError

    def check(self, rel: pathlib.PurePosixPath, path: pathlib.Path,
              stripped: str) -> list[tuple[int, str]]:
        """Returns (line, message) pairs for the stripped file content."""
        raise NotImplementedError


def _under(rel: pathlib.PurePosixPath, *prefixes: str) -> bool:
    return any(str(rel).startswith(p) for p in prefixes)


def _line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


class PatternRule(Rule):
    """Findings are regex matches over comment/string-stripped content."""

    patterns: list[tuple[re.Pattern, str]] = []

    def check(self, rel, path, stripped):
        findings = []
        for pattern, message in self.patterns:
            for m in pattern.finditer(stripped):
                findings.append((_line_of(stripped, m.start()), message))
        return findings


class NondeterministicRng(PatternRule):
    rule_id = "TL001"
    name = "nondeterministic-rng"
    doc = ("no std::rand/srand, std::random_device, time()-seeding or "
           "wall-clock reads outside src/common/rng.{cpp,hpp}")
    patterns = [
        (re.compile(r"\bs?rand\s*\("),
         "C rand()/srand() is banned; use trng::common::Xoshiro256StarStar"),
        (re.compile(r"\bstd::rand\b"),
         "std::rand is banned; use trng::common::Xoshiro256StarStar"),
        (re.compile(r"\brandom_device\b"),
         "std::random_device breaks simulation determinism; seeds must be "
         "explicit (see src/common/rng.hpp)"),
        (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
         "time()-based seeding breaks simulation determinism"),
        (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)"
                    r"\s*::\s*now\b"),
         "wall-clock reads in library code break simulation determinism; "
         "timing belongs in bench/"),
    ]

    def applies_to(self, rel):
        if str(rel) in ("src/common/rng.cpp", "src/common/rng.hpp"):
            return False
        return _under(rel, "src/")


class FloatType(PatternRule):
    rule_id = "TL002"
    name = "float-type"
    doc = "no `float` in src/model/ or src/stattests/ (numerics are double)"
    patterns = [
        (re.compile(r"\bfloat\b"),
         "single-precision float is banned in entropy-bound numerics; "
         "use double"),
    ]

    def applies_to(self, rel):
        return _under(rel, "src/model/", "src/stattests/")


class FpLiteralEquality(PatternRule):
    rule_id = "TL003"
    name = "fp-literal-equality"
    doc = ("no ==/!= against a floating-point literal in src/model/ or "
           "src/stattests/")
    patterns = [
        (re.compile(r"[=!]=\s*" + FP_LITERAL),
         "exact ==/!= against a floating-point literal; compare with a "
         "tolerance or justify the exact sentinel"),
        (re.compile(FP_LITERAL + r"\s*[=!]=(?!=)"),
         "exact ==/!= against a floating-point literal; compare with a "
         "tolerance or justify the exact sentinel"),
    ]

    def applies_to(self, rel):
        return _under(rel, "src/model/", "src/stattests/")


class NodiscardResult(Rule):
    rule_id = "TL004"
    name = "nodiscard-result"
    doc = ("struct/class *Result, *Report, *Outcome, *Verdict, *Assessment "
           "definitions must be [[nodiscard]]")

    DEF_RE = re.compile(
        r"(?<![\w:])(?:struct|class)\s+"
        r"(?P<attrs>(?:\[\[[^\]]*\]\]\s*)*)"
        r"(?P<name>[A-Za-z_]\w*(?:Result|Report|Outcome|Verdict|Assessment))"
        r"\s*(?:final\s*)?(?::[^;{}]*)?\{")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def check(self, rel, path, stripped):
        findings = []
        for m in self.DEF_RE.finditer(stripped):
            if "nodiscard" not in m.group("attrs"):
                findings.append((
                    _line_of(stripped, m.start()),
                    f"result type '{m.group('name')}' must be declared "
                    f"[[nodiscard]] so callers cannot drop a verdict"))
        return findings


class TestInclude(PatternRule):
    rule_id = "TL005"
    name = "test-include"
    doc = "src/ must not #include anything from tests/"
    # Runs on raw-ish stripped text where string contents are blanked, so
    # match the include path on the raw line instead.
    patterns = []

    INCLUDE_RE = re.compile(r'#\s*include\s*["<]([^">]+)[">]')

    def applies_to(self, rel):
        return _under(rel, "src/")

    def check(self, rel, path, stripped):
        findings = []
        raw = path.read_text(encoding="utf-8", errors="replace")
        for lineno, line in enumerate(raw.splitlines(), start=1):
            m = self.INCLUDE_RE.search(line)
            if not m:
                continue
            inc = m.group(1)
            if inc.startswith("tests/") or "../tests" in inc \
                    or inc.startswith("test_snippets/"):
                findings.append((
                    lineno,
                    f"'#include \"{inc}\"' pulls the test tree into src/; "
                    f"move the shared code under src/"))
        return findings


class PerBitPushBack(Rule):
    rule_id = "TL006"
    name = "per-bit-pushback"
    doc = ("no BitStream::push_back on named BitStream objects in src/ "
           "outside src/common/bitstream.{cpp,hpp}; assemble words and "
           "append_words() instead")

    # Pass 1: names bound to BitStream objects (locals, members, reference
    # parameters). Scanning declarations keeps the rule from firing on
    # push_back calls against unrelated containers.
    DECL_RE = re.compile(
        r"\b(?:common::)?BitStream\b\s*&?\s*([A-Za-z_]\w*)\b")

    def applies_to(self, rel):
        if str(rel) in ("src/common/bitstream.cpp",
                        "src/common/bitstream.hpp"):
            return False
        return _under(rel, "src/")

    def check(self, rel, path, stripped):
        names = {m.group(1) for m in self.DECL_RE.finditer(stripped)}
        if not names:
            return []
        findings = []
        # Pass 2: per-bit appends through any of those names.
        alt = "|".join(sorted(re.escape(n) for n in names))
        call_re = re.compile(r"\b(?:" + alt + r")\s*\.\s*push_back\s*\(")
        for m in call_re.finditer(stripped):
            findings.append((
                _line_of(stripped, m.start()),
                "per-bit BitStream::push_back in library code; build packed "
                "words and append_words() them (or implement generate_into), "
                "or justify the bit-serial loop with a suppression"))
        return findings


class ThreadConfinement(Rule):
    rule_id = "TL007"
    name = "thread-confinement"
    doc = ("no .detach() anywhere in src/ and no raw std::thread/"
           "std::jthread outside src/service/ and src/server/; those two "
           "layers own their worker threads and always join them")

    # .detach() is banned everywhere in src/ (service included): a detached
    # thread outlives the rings/metrics it references and cannot be joined
    # at shutdown, which is exactly how use-after-free races get in.
    DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")

    # Matches the std::thread/std::jthread type itself; std::this_thread::*
    # (sleep/yield helpers) intentionally does not match.
    THREAD_RE = re.compile(r"\bstd\s*::\s*j?thread\b")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def check(self, rel, path, stripped):
        findings = []
        for m in self.DETACH_RE.finditer(stripped):
            findings.append((
                _line_of(stripped, m.start()),
                "detached threads cannot be joined at shutdown and outlive "
                "the state they reference; keep the handle and join it"))
        if not _under(rel, "src/service/", "src/server/"):
            for m in self.THREAD_RE.finditer(stripped):
                findings.append((
                    _line_of(stripped, m.start()),
                    "raw std::thread outside src/service/ and src/server/; "
                    "thread ownership is confined to those layers "
                    "(Producer/EntropyPool, ServerDaemon sessions) so every "
                    "worker is provably joined"))
        return findings


class SocketConfinement(PatternRule):
    rule_id = "TL009"
    name = "socket-confinement"
    doc = ("no BSD socket calls (socket/socketpair/bind/listen/accept/"
           "connect/send*/recv*) in src/ outside src/server/; the daemon "
           "owns the transport, the simulation library stays hermetic")

    # Matches a bare or globally-qualified call — `bind(`, `::bind(` — but
    # not `std::bind(`, `obj.connect(` or `ptr->accept(`: the optional `::`
    # is consumed by the pattern, and the lookbehind rejects any word
    # character, member access or further qualification in front of it.
    patterns = [
        (re.compile(
            r"(?<![\w.>:])(?:::\s*)?"
            r"(?:socket|socketpair|bind|listen|accept4?|connect|"
            r"send(?:to|msg)?|recv(?:from|msg)?)\s*\("),
         "BSD socket call outside src/server/; network transport is "
         "confined to the daemon layer"),
    ]

    def applies_to(self, rel):
        if _under(rel, "src/server/"):
            return False
        return _under(rel, "src/")


class KernelEquivalenceTest(Rule):
    rule_id = "TL008"
    name = "kernel-equivalence-test"
    doc = ("every kernel declared in a wordpar namespace in a header under "
           "src/stattests/ must be called by name in a tests/ file whose "
           "name contains 'equivalence' (the scalar-reference bit-identity "
           "suite)")

    NAMESPACE_RE = re.compile(
        r"\bnamespace\s+(?:trng\s*::\s*stat\s*::\s*)?wordpar\b")
    # A declaration line: return type(s), then the kernel name, then its
    # parameter list. Anchored to line starts so parameter continuation
    # lines do not match.
    DECL_RE = re.compile(
        r"^\s*(?:[\w:]+(?:\s*[&*])?\s+)+([a-z_]\w*)\s*\(", re.MULTILINE)

    def __init__(self) -> None:
        self._corpus_cache: dict[pathlib.Path, str] = {}

    def applies_to(self, rel):
        return _under(rel, "src/stattests/") and rel.suffix == ".hpp"

    def _equivalence_corpus(self, root: pathlib.Path) -> str:
        cached = self._corpus_cache.get(root)
        if cached is None:
            texts = []
            tests = root / "tests"
            if tests.is_dir():
                for p in sorted(tests.rglob("*")):
                    if (p.is_file() and p.suffix in SOURCE_SUFFIXES
                            and "equivalence" in p.name):
                        texts.append(
                            p.read_text(encoding="utf-8", errors="replace"))
            cached = "\n".join(texts)
            self._corpus_cache[root] = cached
        return cached

    def check(self, rel, path, stripped):
        ns = self.NAMESPACE_RE.search(stripped)
        if not ns:
            return []
        root = path.parents[len(rel.parts) - 1]
        corpus = self._equivalence_corpus(root)
        findings = []
        for m in self.DECL_RE.finditer(stripped, ns.end()):
            name = m.group(1)
            if re.search(r"\b" + re.escape(name) + r"\s*\(", corpus):
                continue
            findings.append((
                _line_of(stripped, m.start(1)),
                f"word-parallel kernel '{name}' is never exercised by any "
                f"tests/*equivalence* file; add it to the scalar-reference "
                f"equivalence suite"))
        return findings


RULES: list[Rule] = [
    NondeterministicRng(),
    FloatType(),
    FpLiteralEquality(),
    NodiscardResult(),
    TestInclude(),
    PerBitPushBack(),
    ThreadConfinement(),
    SocketConfinement(),
    KernelEquivalenceTest(),
]


def apply_suppressions(path: pathlib.Path, findings: list[Finding],
                       raw_lines: list[str]) -> list[Finding]:
    """Marks findings carrying a justified allow() marker on the finding
    line or the line above as suppressed (they stay in the list so --json
    can report them); emits TL000 for unjustified or dangling markers."""
    out = []
    used_markers: set[int] = set()

    markers: dict[int, tuple[str, str | None]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            markers[lineno] = (m.group(1), m.group(2))

    for f in findings:
        suppressed = False
        for marker_line in (f.line, f.line - 1):
            marker = markers.get(marker_line)
            if marker and marker[0] == f.rule:
                used_markers.add(marker_line)
                if marker[1]:
                    out.append(dataclasses.replace(
                        f, suppressed=True, justification=marker[1]))
                    suppressed = True
                else:
                    out.append(Finding(
                        f.path, marker_line, "TL000", "bad-suppression",
                        f"allow({f.rule}) without a '-- justification'; "
                        f"every suppression must say why"))
                    suppressed = True  # reported as TL000 instead
                break
        if not suppressed:
            out.append(f)

    for lineno, (rule_id, _) in markers.items():
        if lineno not in used_markers:
            out.append(Finding(
                path, lineno, "TL000", "bad-suppression",
                f"allow({rule_id}) marker does not match any finding on "
                f"this or the next line; delete it"))
    return out


def lint_file(path: pathlib.Path, rel: pathlib.PurePosixPath) -> list[Finding]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    findings: list[Finding] = []
    for rule in RULES:
        if not rule.applies_to(rel):
            continue
        for line, message in rule.check(rel, path, stripped):
            findings.append(Finding(path, line, rule.rule_id, rule.name,
                                    message))
    # Suppression markers live in comments, so they are matched on raw lines.
    raw_lines = raw.splitlines()
    has_markers = any(ALLOW_RE.search(line) for line in raw_lines)
    if findings or has_markers:
        findings = apply_suppressions(path, findings, raw_lines)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def collect_files(root: pathlib.Path) -> list[pathlib.Path]:
    src = root / "src"
    if not src.is_dir():
        print(f"trng_lint: no src/ directory under {root}", file=sys.stderr)
        raise SystemExit(2)
    return sorted(p for p in src.rglob("*")
                  if p.is_file() and p.suffix in SOURCE_SUFFIXES)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="TRNG repository invariant linter")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root; <root>/src is linted")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout "
                             "(suppressed findings included, flagged)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id} {rule.name}: {rule.doc}")
        return 0

    root = args.root.resolve()
    findings: list[Finding] = []
    files = collect_files(root)
    for path in files:
        rel = pathlib.PurePosixPath(path.relative_to(root).as_posix())
        findings.extend(lint_file(path, rel))

    unsuppressed = [f for f in findings if not f.suppressed]
    if args.json:
        print(json.dumps([f.to_json(root) for f in findings], indent=2))
    else:
        for f in unsuppressed:
            print(f.render(root))
    if not args.quiet:
        by_rule: collections.Counter[str] = collections.Counter()
        suppressed: collections.Counter[str] = collections.Counter()
        for f in findings:
            (suppressed if f.suppressed else by_rule)[f.rule] += 1
        print(f"trng_lint: {len(files)} files, "
              f"{len(unsuppressed)} finding(s), "
              f"{len(findings) - len(unsuppressed)} suppressed",
              file=sys.stderr)
        if by_rule or suppressed:
            print("  rule    findings  suppressed", file=sys.stderr)
            for rid in sorted(set(by_rule) | set(suppressed)):
                print(f"  {rid}  {by_rule.get(rid, 0):8d}  "
                      f"{suppressed.get(rid, 0):10d}", file=sys.stderr)
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
