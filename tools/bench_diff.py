#!/usr/bin/env python3
"""Benchmark regression tripwire over BENCH_throughput.json.

Compares a freshly measured BENCH_throughput.json against the committed
baseline and fails when a headline metric regresses by more than the
allowed fraction (default 25%). The headline metrics are the five
numbers the ROADMAP perf items are tracked by:

  - carry-chain-raw batched ns/bit      (lower is better)
  - carry-k4 batched ns/bit             (lower is better)
  - whole-battery word-parallel ns/bit  (lower is better)
  - pool_draw paced speedup at the largest producer count
                                        (higher is better)
  - server_draw requests/s at the best client count
                                        (higher is better)

The gate is deliberately loose: microbenchmarks on shared CI runners
jitter, and a 25% band catches algorithmic regressions (a dropped
batching path, a serialized battery) without flaking on scheduler noise.

    python3 tools/bench_diff.py --baseline BENCH_throughput.json \
        --fresh build/BENCH_throughput.json
    python3 tools/bench_diff.py --selftest     # prove the tripwire trips

Exit codes: 0 within budget, 1 regression (or malformed input), 2 usage
error, 77 skip (no fresh measurement available — benches did not run).
"""

from __future__ import annotations

import argparse
import copy
import json
import pathlib
import sys

SKIP_EXIT = 77

# The pool_draw headline key embeds the largest measured producer count
# ("pool_draw paced speedup @ 16 producers"), which changes when the bench
# fleet is re-run at a different sweep. compare() matches these keys by
# prefix so a baseline from an @8 sweep still gates an @16 measurement
# (and vice versa) instead of failing on the name.
POOL_DRAW_PREFIX = "pool_draw paced speedup @"


def _get(d: dict, path: str):
    """Dotted-path lookup; raises KeyError with the full path on miss."""
    cur = d
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            raise KeyError(path)
        cur = cur[part]
    return cur


def headline_metrics(doc: dict) -> dict[str, tuple[float, str]]:
    """name -> (value, direction); direction is 'lower' or 'higher'."""
    out: dict[str, tuple[float, str]] = {}

    sources = doc.get("sources", [])
    for source_id in ("carry-chain-raw", "carry-k4"):
        row = next((s for s in sources if s.get("id") == source_id), None)
        if row is None or "batched_ns_per_bit" not in row:
            raise KeyError(f"sources[id={source_id}].batched_ns_per_bit")
        out[f"{source_id} batched ns/bit"] = (
            float(row["batched_ns_per_bit"]), "lower")

    out["whole-battery wordpar ns/bit"] = (
        float(_get(doc, "battery.whole_battery.wordpar_ns_per_bit")),
        "lower")

    rows = _get(doc, "pool_draw.paced.rows")
    if not rows:
        raise KeyError("pool_draw.paced.rows")
    top = max(rows, key=lambda r: r.get("producers", 0))
    out[f"pool_draw paced speedup @ {top['producers']} producers"] = (
        float(top["speedup_vs_1"]), "higher")

    server_rows = _get(doc, "server_draw.rows")
    if not server_rows:
        raise KeyError("server_draw.rows")
    best = max(server_rows, key=lambda r: r.get("requests_per_s", 0.0))
    out["server_draw requests/s"] = (
        float(best["requests_per_s"]), "higher")
    return out


def compare(baseline: dict, fresh: dict,
            max_regression: float) -> list[str]:
    """Human-readable report lines; lines starting with FAIL are
    regressions beyond the budget."""
    base_metrics = headline_metrics(baseline)
    fresh_metrics = headline_metrics(fresh)
    lines = []
    for name, (base_value, direction) in base_metrics.items():
        fresh_name = name
        if name not in fresh_metrics and name.startswith(POOL_DRAW_PREFIX):
            fresh_name = next(
                (k for k in fresh_metrics if k.startswith(POOL_DRAW_PREFIX)),
                name)
        if fresh_name not in fresh_metrics:
            lines.append(f"FAIL {name}: missing from fresh measurement")
            continue
        fresh_value = fresh_metrics[fresh_name][0]
        if fresh_name != name:
            name = f"{name} (fresh: {fresh_name})"
        if base_value <= 0:
            lines.append(f"SKIP {name}: non-positive baseline "
                         f"{base_value}")
            continue
        if direction == "lower":
            change = (fresh_value - base_value) / base_value
            arrow = "slower" if change > 0 else "faster"
        else:
            change = (base_value - fresh_value) / base_value
            arrow = "worse" if change > 0 else "better"
        verdict = "FAIL" if change > max_regression else "ok"
        lines.append(
            f"{verdict:>4} {name}: baseline {base_value:g}, fresh "
            f"{fresh_value:g} ({abs(change) * 100:.1f}% {arrow}, budget "
            f"{max_regression * 100:.0f}%)")
    return lines


def selftest(baseline: dict, max_regression: float) -> int:
    """Proves the tripwire trips: a copy of the baseline perturbed past
    the budget must FAIL on every headline metric, and an unperturbed
    copy must pass. Runs in-memory; no files are written."""
    clean = compare(baseline, copy.deepcopy(baseline), max_regression)
    if any(line.startswith("FAIL") for line in clean):
        print("bench_diff selftest: identical inputs reported a "
              "regression:", file=sys.stderr)
        print("\n".join(clean), file=sys.stderr)
        return 1

    bad = copy.deepcopy(baseline)
    factor = 1.0 + 2 * max_regression
    for source_id in ("carry-chain-raw", "carry-k4"):
        row = next(s for s in bad["sources"] if s["id"] == source_id)
        row["batched_ns_per_bit"] *= factor
    bad["battery"]["whole_battery"]["wordpar_ns_per_bit"] *= factor
    top = max(bad["pool_draw"]["paced"]["rows"],
              key=lambda r: r["producers"])
    top["speedup_vs_1"] /= factor
    for row in bad["server_draw"]["rows"]:
        row["requests_per_s"] /= factor

    tripped = compare(baseline, bad, max_regression)
    n_fail = sum(1 for line in tripped if line.startswith("FAIL"))
    if n_fail != 5:
        print(f"bench_diff selftest: perturbed run tripped {n_fail}/5 "
              f"metrics:", file=sys.stderr)
        print("\n".join(tripped), file=sys.stderr)
        return 1
    print("bench_diff selftest: OK (identical passes, perturbed trips "
          "all 5 headline metrics)")
    return 0


def main(argv: list[str]) -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(
        description="Benchmark regression gate over BENCH_throughput.json")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=repo / "BENCH_throughput.json",
                        help="committed baseline (default: repo root)")
    parser.add_argument("--fresh", type=pathlib.Path, default=None,
                        help="freshly measured BENCH_throughput.json; "
                             "when absent or missing, exit 77 (skip)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional regression per headline "
                             "metric (default: 0.25)")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the tripwire trips on a perturbed "
                             "copy of the baseline, then exit")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    if args.selftest:
        return selftest(baseline, args.max_regression)

    if args.fresh is None or not args.fresh.is_file():
        print("bench_diff: no fresh measurement (pass --fresh after "
              "running perf_microbench); skipping", file=sys.stderr)
        return SKIP_EXIT
    try:
        fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read fresh {args.fresh}: {exc}",
              file=sys.stderr)
        return 2

    try:
        lines = compare(baseline, fresh, args.max_regression)
    except KeyError as exc:
        print(f"bench_diff: missing headline metric {exc}",
              file=sys.stderr)
        return 1
    print("\n".join(lines))
    return 1 if any(line.startswith("FAIL") for line in lines) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
