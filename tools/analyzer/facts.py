"""Shared fact schema for the semantic TRNG analyzer.

A frontend (libclang or the dependency-free lite tokenizer) reduces one
translation unit to a `TUFacts` value; the rules in rules.py consume
facts only and never look at the frontend. Every fact carries a 1-based
line number in the original file so findings and suppressions line up
with what the developer sees.

The schema is deliberately small: it holds exactly what the SA rules
need (guard scopes, condition_variable waits with their loop context,
call sites, variable declarations and assignments; member-field accesses
and atomic operations with their memory orders for the concurrency
protocol rules SA005/SA006; annotation facts for declared locking intent
and atomic roles), plus the comment/string-stripped text for the
pattern-shaped parts of SA002/SA007.

Annotation grammar (raw-comment facts, shared verbatim by both
frontends so they can never disagree about declared intent):

    // trng-analyzer: guards(<field>, <mutex>)
        Class-level locking contract: every access to member <field>
        must happen while a scoped guard on <mutex> is held (SA005).

    // trng-analyzer: atomic(<role>)
        On a std::atomic declaration line (or the line directly above):
        declares the member's protocol role, one of counter, gauge,
        flag, index-producer, index-consumer (SA006).
"""

from __future__ import annotations

import dataclasses
import pathlib
import re


@dataclasses.dataclass(frozen=True)
class Guard:
    """A scoped lock object: std::lock_guard / unique_lock / scoped_lock.

    `scope_end_line` is the last line of the innermost block containing
    the declaration — the guard is held from `line` to there.
    """
    var: str
    kind: str            # "lock_guard" | "unique_lock" | "scoped_lock"
    mutex: str           # first constructor argument, textual
    line: int
    scope_end_line: int


@dataclasses.dataclass(frozen=True)
class WaitCall:
    """A .wait/.wait_for/.wait_until member call on a condition variable."""
    recv: str            # receiver expression, e.g. "data_cv_"
    member: str          # "wait" | "wait_for" | "wait_until"
    line: int
    args: tuple[str, ...]          # top-level argument texts
    immediate_loop_cond: str | None
    # ^ condition text when the wait is the statement directly controlled
    #   by a while/do-while loop (the canonical re-check idiom
    #   `while (!pred) cv.wait(lk);`); None when the wait merely sits
    #   somewhere inside a larger loop body, which does NOT count as
    #   re-checking — the loop's condition governs the outer work item,
    #   not the wait's wake-up state.


@dataclasses.dataclass(frozen=True)
class Call:
    """Any call expression: callee name, optional receiver, location."""
    callee: str          # rightmost name, e.g. "push" for ring_.push(...)
    recv: str | None     # receiver expression for member calls
    line: int
    offset: int          # character offset into the stripped text
    args: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class VarDecl:
    """A variable/parameter declaration with its (textual) type."""
    name: str
    type_text: str       # e.g. "double", "common::Bits", "std::uint64_t"
    line: int
    func_start_line: int  # enclosing function span (0 when file scope)
    func_end_line: int


@dataclasses.dataclass(frozen=True)
class Assign:
    """An assignment or compound assignment statement."""
    lhs: str
    op: str              # "=", "|=", "+=", ...
    rhs: str
    line: int
    func_start_line: int
    func_end_line: int


@dataclasses.dataclass(frozen=True)
class FieldAccess:
    """A read or write of a trailing-underscore member field inside a
    function body (the repository's naming convention makes member state
    recognizable in both frontends). Accesses through another object
    (`other.field_`) are not recorded: a guard held here says nothing
    about that object's state."""
    name: str
    line: int


@dataclasses.dataclass(frozen=True)
class AtomicOp:
    """One operation on a (presumed) std::atomic object.

    `order`/`fail_order` are the textual memory-order constants found in
    the argument list ("relaxed", "acquire", ...); None means the order
    was left implicit (seq_cst by language default). `kind` classifies
    the op as "load", "store" or "rmw" (read-modify-write)."""
    member: str          # base name of the receiver, e.g. "stopped_"
    op: str              # "load" | "store" | "fetch_add" | "exchange" ...
    kind: str            # "load" | "store" | "rmw"
    order: str | None
    fail_order: str | None
    line: int


@dataclasses.dataclass(frozen=True)
class AtomicDecl:
    """A std::atomic declaration (member or local) with its resolved role
    annotation; role is None when the declaration carries no
    `// trng-analyzer: atomic(<role>)` marker."""
    name: str
    line: int
    role: str | None


@dataclasses.dataclass(frozen=True)
class GuardAnnot:
    """A `// trng-analyzer: guards(field, mutex)` intent declaration."""
    field: str
    mutex: str
    line: int


@dataclasses.dataclass
class TUFacts:
    path: pathlib.Path
    rel: pathlib.PurePosixPath
    stripped: str        # comment/string-stripped source, newlines kept
    guards: list[Guard] = dataclasses.field(default_factory=list)
    waits: list[WaitCall] = dataclasses.field(default_factory=list)
    calls: list[Call] = dataclasses.field(default_factory=list)
    decls: list[VarDecl] = dataclasses.field(default_factory=list)
    assigns: list[Assign] = dataclasses.field(default_factory=list)
    field_accesses: list[FieldAccess] = dataclasses.field(
        default_factory=list)
    atomic_ops: list[AtomicOp] = dataclasses.field(default_factory=list)
    atomic_decls: list[AtomicDecl] = dataclasses.field(default_factory=list)
    guard_annots: list[GuardAnnot] = dataclasses.field(default_factory=list)
    frontend: str = "lite"   # which frontend produced these facts

    def decl_types(self) -> dict[str, str]:
        """Last-writer-wins name -> type map (adequate for TU-local use)."""
        return {d.name: d.type_text for d in self.decls}


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, keeping
    newlines so offsets still map to the original line numbers. Same
    algorithm as tools/trng_lint.py (kept dependency-free on purpose:
    the analyzer package must import without the linter on sys.path)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ------------------------------------------------------- shared scanners
#
# Annotation parsing, atomic-declaration detection and memory-order
# classification are text-shaped, not AST-shaped: both frontends call
# these helpers verbatim so they can never disagree about declared
# intent or about which operations are atomic protocol ops.

ATOMIC_ROLES = ("counter", "gauge", "flag", "index-producer",
                "index-consumer")

GUARDS_ANNOT_RE = re.compile(
    r"//\s*trng-analyzer:\s*guards\(\s*(\w+)\s*,\s*([\w.:>\-]+)\s*\)")

ATOMIC_ANNOT_RE = re.compile(
    r"//\s*trng-analyzer:\s*atomic\(\s*([\w\-]+)\s*\)")

# Matches the declaration of an atomic object: `std::atomic<T> name...`
# including brace-init members and arrays-behind-unique_ptr
# (`std::unique_ptr<std::atomic<u64>[]> counts_;`); the trailing
# character class rejects call expressions like `make_unique<...>(...)`
# only when the name is followed by a template arg list, which `\w+`
# cannot span — a name directly followed by `(` is a brace-less direct
# init, which is a declaration too.
_ATOMIC_DECL_RE = re.compile(
    r"\batomic\s*<[^;{}]*?>\s*(?:\[\s*\]\s*>\s*)?&?\s*(\w+)\s*"
    r"(?:\{[^;{}]*\})?\s*[;=({,)]")

_MEM_ORDER_RE = re.compile(
    r"\bmemory_order(?:_|\s*::\s*)"
    r"(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")

# member-call name -> (kind, order-arg index, fail-order-arg index)
_ATOMIC_OP_TABLE = {
    "load":                  ("load", 0, None),
    "store":                 ("store", 1, None),
    "exchange":              ("rmw", 1, None),
    "fetch_add":             ("rmw", 1, None),
    "fetch_sub":             ("rmw", 1, None),
    "fetch_and":             ("rmw", 1, None),
    "fetch_or":              ("rmw", 1, None),
    "fetch_xor":             ("rmw", 1, None),
    "compare_exchange_weak": ("rmw", 2, 3),
    "compare_exchange_strong": ("rmw", 2, 3),
}

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def head_name(expr: str) -> str | None:
    """First identifier of an expression — the buffer/object a pointer
    expression is rooted in (`words + delivered` -> "words",
    `dst_[i]` -> "dst_")."""
    m = _IDENT_RE.search(expr or "")
    return m.group(0) if m else None


def tail_name(expr: str) -> str | None:
    """Last identifier of a receiver chain after stripping subscripts —
    the member actually operated on (`metrics_.producer(i).words_drawn`
    -> "words_drawn", `counts_[b]` -> "counts_")."""
    if not expr:
        return None
    e = re.sub(r"\[[^\]]*\]", "", expr)
    names = _IDENT_RE.findall(e)
    return names[-1] if names else None


def _order_of(arg: str | None) -> str | None:
    if not arg:
        return None
    m = _MEM_ORDER_RE.search(arg)
    return m.group(1) if m else None


def scan_annotations(tu: TUFacts, raw: str) -> None:
    """Fills tu.atomic_decls and tu.guard_annots from the raw (comments
    intact) and stripped texts. An atomic(<role>) marker binds to a
    declaration on the same line or the line directly below the marker's
    line (the repo style puts annotations above the member)."""
    raw_lines = raw.splitlines()
    stripped_lines = tu.stripped.splitlines()

    role_at = {}         # line number -> role text
    for i, text in enumerate(raw_lines, start=1):
        gm = GUARDS_ANNOT_RE.search(text)
        if gm:
            tu.guard_annots.append(GuardAnnot(
                field=gm.group(1), mutex=gm.group(2), line=i))
        am = ATOMIC_ANNOT_RE.search(text)
        if am:
            role_at[i] = am.group(1)

    for i, text in enumerate(stripped_lines, start=1):
        for dm in _ATOMIC_DECL_RE.finditer(text):
            role = role_at.get(i) or role_at.get(i - 1)
            tu.atomic_decls.append(AtomicDecl(
                name=dm.group(1), line=i, role=role))


def derive_atomic_ops(tu: TUFacts) -> None:
    """Classifies recorded member calls as atomic operations. Only calls
    whose receiver base is a declared atomic in this TU are kept when
    the TU declares any atomics; the repo-wide rule pass re-filters
    against the cross-TU atomic table, so over-collection here is
    harmless and under-collection is not possible for annotated code."""
    for call in tu.calls:
        entry = _ATOMIC_OP_TABLE.get(call.callee)
        if entry is None or call.recv is None:
            continue
        kind, oidx, fidx = entry
        member = tail_name(call.recv)
        if member is None:
            continue
        order = _order_of(call.args[oidx]) if oidx is not None and \
            len(call.args) > oidx else None
        fail_order = _order_of(call.args[fidx]) if fidx is not None and \
            len(call.args) > fidx else None
        tu.atomic_ops.append(AtomicOp(
            member=member, op=call.callee, kind=kind,
            order=order, fail_order=fail_order, line=call.line))
