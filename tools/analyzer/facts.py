"""Shared fact schema for the semantic TRNG analyzer.

A frontend (libclang or the dependency-free lite tokenizer) reduces one
translation unit to a `TUFacts` value; the rules in rules.py consume
facts only and never look at the frontend. Every fact carries a 1-based
line number in the original file so findings and suppressions line up
with what the developer sees.

The schema is deliberately small: it holds exactly what the SA rules
need (guard scopes, condition_variable waits with their loop context,
call sites, variable declarations and assignments; member-field accesses
and atomic operations with their memory orders for the concurrency
protocol rules SA005/SA006; annotation facts for declared locking intent
and atomic roles), plus the comment/string-stripped text for the
pattern-shaped parts of SA002/SA007.

Annotation grammar (raw-comment facts, shared verbatim by both
frontends so they can never disagree about declared intent):

    // trng-analyzer: guards(<field>, <mutex>)
        Class-level locking contract: every access to member <field>
        must happen while a scoped guard on <mutex> is held (SA005).

    // trng-analyzer: atomic(<role>)
        On a std::atomic declaration line (or the line directly above):
        declares the member's protocol role, one of counter, gauge,
        flag, index-producer, index-consumer (SA006).

    // trng-analyzer: lock-order(<first>, <second>)
        Declares the intended repo-wide acquisition order: <first> may
        be held while acquiring <second>, never the reverse. The
        interprocedural pass (SA008) adds the declared edge to the lock
        graph, so an observed reverse acquisition closes a cycle and
        fires even when no code path currently takes both orders.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re


@dataclasses.dataclass(frozen=True)
class Guard:
    """A scoped lock object: std::lock_guard / unique_lock / scoped_lock.

    `scope_end_line` is the last line of the innermost block containing
    the declaration — the guard is held from `line` to there.
    """
    var: str
    kind: str            # "lock_guard" | "unique_lock" | "scoped_lock"
    mutex: str           # first constructor argument, textual
    line: int
    scope_end_line: int


@dataclasses.dataclass(frozen=True)
class WaitCall:
    """A .wait/.wait_for/.wait_until member call on a condition variable."""
    recv: str            # receiver expression, e.g. "data_cv_"
    member: str          # "wait" | "wait_for" | "wait_until"
    line: int
    args: tuple[str, ...]          # top-level argument texts
    immediate_loop_cond: str | None
    # ^ condition text when the wait is the statement directly controlled
    #   by a while/do-while loop (the canonical re-check idiom
    #   `while (!pred) cv.wait(lk);`); None when the wait merely sits
    #   somewhere inside a larger loop body, which does NOT count as
    #   re-checking — the loop's condition governs the outer work item,
    #   not the wait's wake-up state.


@dataclasses.dataclass(frozen=True)
class Call:
    """Any call expression: callee name, optional receiver, location."""
    callee: str          # rightmost name, e.g. "push" for ring_.push(...)
    recv: str | None     # receiver expression for member calls
    line: int
    offset: int          # character offset into the stripped text
    args: tuple[str, ...]
    callee_qual: str | None = None
    # ^ resolved `Class::name` of the callee when the frontend can name
    #   it semantically (libclang via cursor.referenced); None means the
    #   interprocedural pass falls back to name heuristics (lite).


@dataclasses.dataclass(frozen=True)
class VarDecl:
    """A variable/parameter declaration with its (textual) type."""
    name: str
    type_text: str       # e.g. "double", "common::Bits", "std::uint64_t"
    line: int
    func_start_line: int  # enclosing function span (0 when file scope)
    func_end_line: int


@dataclasses.dataclass(frozen=True)
class Assign:
    """An assignment or compound assignment statement."""
    lhs: str
    op: str              # "=", "|=", "+=", ...
    rhs: str
    line: int
    func_start_line: int
    func_end_line: int


@dataclasses.dataclass(frozen=True)
class FieldAccess:
    """A read or write of a trailing-underscore member field inside a
    function body (the repository's naming convention makes member state
    recognizable in both frontends). Accesses through another object
    (`other.field_`) are not recorded: a guard held here says nothing
    about that object's state."""
    name: str
    line: int


@dataclasses.dataclass(frozen=True)
class AtomicOp:
    """One operation on a (presumed) std::atomic object.

    `order`/`fail_order` are the textual memory-order constants found in
    the argument list ("relaxed", "acquire", ...); None means the order
    was left implicit (seq_cst by language default). `kind` classifies
    the op as "load", "store" or "rmw" (read-modify-write)."""
    member: str          # base name of the receiver, e.g. "stopped_"
    op: str              # "load" | "store" | "fetch_add" | "exchange" ...
    kind: str            # "load" | "store" | "rmw"
    order: str | None
    fail_order: str | None
    line: int


@dataclasses.dataclass(frozen=True)
class AtomicDecl:
    """A std::atomic declaration (member or local) with its resolved role
    annotation; role is None when the declaration carries no
    `// trng-analyzer: atomic(<role>)` marker."""
    name: str
    line: int
    role: str | None


@dataclasses.dataclass(frozen=True)
class GuardAnnot:
    """A `// trng-analyzer: guards(field, mutex)` intent declaration."""
    field: str
    mutex: str
    line: int


@dataclasses.dataclass(frozen=True)
class LockOrderAnnot:
    """A `// trng-analyzer: lock-order(first, second)` declaration of
    intended acquisition order (SA008)."""
    first: str
    second: str
    line: int


@dataclasses.dataclass(frozen=True)
class ClassSpan:
    """A class/struct definition span (1-based lines, inclusive)."""
    name: str
    start_line: int
    end_line: int


@dataclasses.dataclass(frozen=True)
class FuncDef:
    """A function *definition* span (1-based body lines, inclusive).

    `qual` is `Class::name` for methods (the innermost owning class for
    in-class definitions, the `X::` qualifier for out-of-class ones —
    namespaces are deliberately excluded so both frontends produce the
    same spelling), the bare name for free functions, and a synthetic
    `<lambda...>` for lambdas. `kind` is "fn", "lambda" or "anon";
    anonymous spans exist so facts inside them detach from the enclosing
    function (a deferred callback does not run under the caller's
    locks), but they are never call-resolution targets."""
    name: str | None
    cls: str | None
    qual: str
    kind: str            # "fn" | "lambda" | "anon"
    start_line: int      # line of the body's `{`
    end_line: int        # line of the matching `}`


@dataclasses.dataclass
class TUFacts:
    path: pathlib.Path
    rel: pathlib.PurePosixPath
    stripped: str        # comment/string-stripped source, newlines kept
    guards: list[Guard] = dataclasses.field(default_factory=list)
    waits: list[WaitCall] = dataclasses.field(default_factory=list)
    calls: list[Call] = dataclasses.field(default_factory=list)
    decls: list[VarDecl] = dataclasses.field(default_factory=list)
    assigns: list[Assign] = dataclasses.field(default_factory=list)
    field_accesses: list[FieldAccess] = dataclasses.field(
        default_factory=list)
    atomic_ops: list[AtomicOp] = dataclasses.field(default_factory=list)
    atomic_decls: list[AtomicDecl] = dataclasses.field(default_factory=list)
    guard_annots: list[GuardAnnot] = dataclasses.field(default_factory=list)
    lock_order_annots: list[LockOrderAnnot] = dataclasses.field(
        default_factory=list)
    classes: list[ClassSpan] = dataclasses.field(default_factory=list)
    funcs: list[FuncDef] = dataclasses.field(default_factory=list)
    frontend: str = "lite"   # which frontend produced these facts

    def decl_types(self) -> dict[str, str]:
        """Last-writer-wins name -> type map (adequate for TU-local use)."""
        return {d.name: d.type_text for d in self.decls}


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, keeping
    newlines so offsets still map to the original line numbers. Same
    algorithm as tools/trng_lint.py (kept dependency-free on purpose:
    the analyzer package must import without the linter on sys.path)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ------------------------------------------------------- shared scanners
#
# Annotation parsing, atomic-declaration detection and memory-order
# classification are text-shaped, not AST-shaped: both frontends call
# these helpers verbatim so they can never disagree about declared
# intent or about which operations are atomic protocol ops.

ATOMIC_ROLES = ("counter", "gauge", "flag", "index-producer",
                "index-consumer")

GUARDS_ANNOT_RE = re.compile(
    r"//\s*trng-analyzer:\s*guards\(\s*(\w+)\s*,\s*([\w.:>\-]+)\s*\)")

ATOMIC_ANNOT_RE = re.compile(
    r"//\s*trng-analyzer:\s*atomic\(\s*([\w\-]+)\s*\)")

LOCK_ORDER_ANNOT_RE = re.compile(
    r"//\s*trng-analyzer:\s*lock-order\(\s*([\w.:]+)\s*,\s*([\w.:]+)\s*\)")

# Matches the declaration of an atomic object: `std::atomic<T> name...`
# including brace-init members and arrays-behind-unique_ptr
# (`std::unique_ptr<std::atomic<u64>[]> counts_;`); the trailing
# character class rejects call expressions like `make_unique<...>(...)`
# only when the name is followed by a template arg list, which `\w+`
# cannot span — a name directly followed by `(` is a brace-less direct
# init, which is a declaration too.
_ATOMIC_DECL_RE = re.compile(
    r"\batomic\s*<[^;{}]*?>\s*(?:\[\s*\]\s*>\s*)?&?\s*(\w+)\s*"
    r"(?:\{[^;{}]*\})?\s*[;=({,)]")

_MEM_ORDER_RE = re.compile(
    r"\bmemory_order(?:_|\s*::\s*)"
    r"(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")

# member-call name -> (kind, order-arg index, fail-order-arg index)
_ATOMIC_OP_TABLE = {
    "load":                  ("load", 0, None),
    "store":                 ("store", 1, None),
    "exchange":              ("rmw", 1, None),
    "fetch_add":             ("rmw", 1, None),
    "fetch_sub":             ("rmw", 1, None),
    "fetch_and":             ("rmw", 1, None),
    "fetch_or":              ("rmw", 1, None),
    "fetch_xor":             ("rmw", 1, None),
    "compare_exchange_weak": ("rmw", 2, 3),
    "compare_exchange_strong": ("rmw", 2, 3),
}

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def head_name(expr: str) -> str | None:
    """First identifier of an expression — the buffer/object a pointer
    expression is rooted in (`words + delivered` -> "words",
    `dst_[i]` -> "dst_")."""
    m = _IDENT_RE.search(expr or "")
    return m.group(0) if m else None


def tail_name(expr: str) -> str | None:
    """Last identifier of a receiver chain after stripping subscripts —
    the member actually operated on (`metrics_.producer(i).words_drawn`
    -> "words_drawn", `counts_[b]` -> "counts_")."""
    if not expr:
        return None
    e = re.sub(r"\[[^\]]*\]", "", expr)
    names = _IDENT_RE.findall(e)
    return names[-1] if names else None


def _order_of(arg: str | None) -> str | None:
    if not arg:
        return None
    m = _MEM_ORDER_RE.search(arg)
    return m.group(1) if m else None


def scan_annotations(tu: TUFacts, raw: str) -> None:
    """Fills tu.atomic_decls and tu.guard_annots from the raw (comments
    intact) and stripped texts. An atomic(<role>) marker binds to a
    declaration on the same line or the line directly below the marker's
    line (the repo style puts annotations above the member)."""
    raw_lines = raw.splitlines()
    stripped_lines = tu.stripped.splitlines()

    role_at = {}         # line number -> role text
    for i, text in enumerate(raw_lines, start=1):
        gm = GUARDS_ANNOT_RE.search(text)
        if gm:
            tu.guard_annots.append(GuardAnnot(
                field=gm.group(1), mutex=gm.group(2), line=i))
        lm = LOCK_ORDER_ANNOT_RE.search(text)
        if lm:
            tu.lock_order_annots.append(LockOrderAnnot(
                first=lm.group(1), second=lm.group(2), line=i))
        am = ATOMIC_ANNOT_RE.search(text)
        if am:
            role_at[i] = am.group(1)

    for i, text in enumerate(stripped_lines, start=1):
        for dm in _ATOMIC_DECL_RE.finditer(text):
            role = role_at.get(i) or role_at.get(i - 1)
            tu.atomic_decls.append(AtomicDecl(
                name=dm.group(1), line=i, role=role))


def derive_atomic_ops(tu: TUFacts) -> None:
    """Classifies recorded member calls as atomic operations. Only calls
    whose receiver base is a declared atomic in this TU are kept when
    the TU declares any atomics; the repo-wide rule pass re-filters
    against the cross-TU atomic table, so over-collection here is
    harmless and under-collection is not possible for annotated code."""
    for call in tu.calls:
        entry = _ATOMIC_OP_TABLE.get(call.callee)
        if entry is None or call.recv is None:
            continue
        kind, oidx, fidx = entry
        member = tail_name(call.recv)
        if member is None:
            continue
        order = _order_of(call.args[oidx]) if oidx is not None and \
            len(call.args) > oidx else None
        fail_order = _order_of(call.args[fidx]) if fidx is not None and \
            len(call.args) > fidx else None
        tu.atomic_ops.append(AtomicOp(
            member=member, op=call.callee, kind=kind,
            order=order, fail_order=fail_order, line=call.line))


# --------------------------------------------- shared structure scanner
#
# Class spans and function-definition spans are likewise text-shaped:
# both frontends call scan_structure verbatim so the interprocedural
# pass (call graph, lock graph, typestate spans) sees the same function
# inventory regardless of frontend. The libclang frontend still adds
# semantic callee resolution on top (Call.callee_qual); the spans
# themselves are deliberately derived from one algorithm.

_CLASS_HEAD_RE = re.compile(
    r"(?<!enum\s)\b(?:class|struct)\s+([A-Za-z_]\w*)"
    r"(?:\s+final)?\s*(?::[^;{]*)?\{")

# `...) [qualifiers] {` — a function-definition head. `mutable` is
# included (lambdas); init-lists are not, so a constructor's span is
# found at its last init-list call head instead — those get an "anon"
# span (trailing-underscore pseudo-name), which detaches their contents
# without polluting call resolution.
_STRUCT_FUNC_HEAD_RE = re.compile(
    r"\)\s*(?:const\s*|noexcept(?:\s*\([^()]*\))?\s*|override\s*|final\s*"
    r"|mutable\s*|->\s*[\w:<>,&*\s]+?)*\{")

# A capture-list directly followed by `{`: the paren-less lambda form
# (`[this] { ... }`). Paren-full lambdas are found by the head regex.
_BARE_LAMBDA_RE = re.compile(r"\[[^\[\]\n]*\]\s*\{")

_STRUCT_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "new", "delete", "throw", "case", "default",
}


def match_brace(text: str, open_off: int) -> int:
    """Offset of the `}` matching the `{` at open_off (len(text) if
    unbalanced)."""
    depth = 0
    for i in range(open_off, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def _match_back(text: str, close_off: int, close: str, open_: str) -> int:
    """Offset of the opener matching the closer at close_off (-1 if
    unbalanced)."""
    depth = 0
    for i in range(close_off, -1, -1):
        c = text[i]
        if c == close:
            depth += 1
        elif c == open_:
            depth -= 1
            if depth == 0:
                return i
    return -1


def _ident_before(text: str, off: int) -> tuple[str, int]:
    """(identifier, start_offset) of the identifier ending just before
    off, skipping trailing whitespace; ("", off) when there is none."""
    k = off - 1
    while k >= 0 and text[k].isspace():
        k -= 1
    end = k + 1
    while k >= 0 and (text[k].isalnum() or text[k] in "_~"):
        k -= 1
    return text[k + 1:end], k + 1


def scan_structure(tu: TUFacts) -> None:
    """Fills tu.classes and tu.funcs from the stripped text."""
    text = tu.stripped

    class_spans = []     # (start_off, end_off, name)
    for m in _CLASS_HEAD_RE.finditer(text):
        open_off = m.end() - 1
        close_off = match_brace(text, open_off)
        class_spans.append((m.start(), close_off, m.group(1)))
        tu.classes.append(ClassSpan(
            name=m.group(1),
            start_line=line_of(text, m.start()),
            end_line=line_of(text, close_off)))

    def innermost_class(off: int) -> str | None:
        best = None
        for a, b, name in class_spans:
            if a < off <= b and (best is None or (b - a) < best[0]):
                best = (b - a, name)
        return best[1] if best else None

    seen_bodies = set()
    for m in _STRUCT_FUNC_HEAD_RE.finditer(text):
        open_off = m.end() - 1
        close_off = match_brace(text, open_off)
        paren_open = _match_back(text, m.start(), ")", "(")
        if paren_open < 0:
            continue
        name, name_off = _ident_before(text, paren_open)
        start_line = line_of(text, open_off)
        end_line = line_of(text, close_off)
        if not name:
            # `](...)` before the paren list: a lambda. Named when bound
            # to a variable (`auto pop = [&]() {`), anonymous otherwise.
            k = paren_open - 1
            while k >= 0 and text[k].isspace():
                k -= 1
            if k < 0 or text[k] != "]":
                continue
            bracket_open = _match_back(text, k, "]", "[")
            lam_name = None
            if bracket_open > 0:
                head = text[max(0, bracket_open - 80):bracket_open]
                nm = re.search(r"([A-Za-z_]\w*)\s*=\s*$", head)
                if nm:
                    lam_name = nm.group(1)
            qual = lam_name or f"<lambda:{start_line}>"
            tu.funcs.append(FuncDef(
                name=lam_name, cls=None, qual=qual, kind="lambda",
                start_line=start_line, end_line=end_line))
            seen_bodies.add(open_off)
            continue
        if name in _STRUCT_KEYWORDS or not re.match(r"[A-Za-z_~]", name):
            continue
        if name.endswith("_"):
            # Constructor init-list tail (`: a_(x), metrics_(y) {`):
            # record an anonymous span so the ctor body's facts don't
            # leak into the enclosing scope, but never resolve calls
            # to a member-shaped pseudo-name.
            tu.funcs.append(FuncDef(
                name=None, cls=None, qual=f"<anon:{start_line}>",
                kind="anon", start_line=start_line, end_line=end_line))
            seen_bodies.add(open_off)
            continue
        # Optional `Class::` qualifier before the name.
        cls = None
        k = name_off - 1
        while k >= 0 and text[k].isspace():
            k -= 1
        if k >= 1 and text[k] == ":" and text[k - 1] == ":":
            q, _ = _ident_before(text, k - 1)
            # CamelCase = class; lowercase qualifiers are namespaces,
            # which the clang frontend also skips.
            if q and q[0].isupper():
                cls = q
        if cls is None:
            cls = innermost_class(name_off)
        qual = f"{cls}::{name}" if cls else name
        tu.funcs.append(FuncDef(
            name=name, cls=cls, qual=qual, kind="fn",
            start_line=start_line, end_line=end_line))
        seen_bodies.add(open_off)

    for m in _BARE_LAMBDA_RE.finditer(text):
        open_off = m.end() - 1
        if open_off in seen_bodies:
            continue
        close_off = match_brace(text, open_off)
        start_line = line_of(text, open_off)
        tu.funcs.append(FuncDef(
            name=None, cls=None, qual=f"<lambda:{start_line}>",
            kind="lambda", start_line=start_line,
            end_line=line_of(text, close_off)))
