"""Shared fact schema for the semantic TRNG analyzer.

A frontend (libclang or the dependency-free lite tokenizer) reduces one
translation unit to a `TUFacts` value; the rules in rules.py consume
facts only and never look at the frontend. Every fact carries a 1-based
line number in the original file so findings and suppressions line up
with what the developer sees.

The schema is deliberately small: it holds exactly what the four SA
rules need (guard scopes, condition_variable waits with their loop
context, call sites, variable declarations and assignments), plus the
comment/string-stripped text for the pattern-shaped parts of SA002.
"""

from __future__ import annotations

import dataclasses
import pathlib


@dataclasses.dataclass(frozen=True)
class Guard:
    """A scoped lock object: std::lock_guard / unique_lock / scoped_lock.

    `scope_end_line` is the last line of the innermost block containing
    the declaration — the guard is held from `line` to there.
    """
    var: str
    kind: str            # "lock_guard" | "unique_lock" | "scoped_lock"
    mutex: str           # first constructor argument, textual
    line: int
    scope_end_line: int


@dataclasses.dataclass(frozen=True)
class WaitCall:
    """A .wait/.wait_for/.wait_until member call on a condition variable."""
    recv: str            # receiver expression, e.g. "data_cv_"
    member: str          # "wait" | "wait_for" | "wait_until"
    line: int
    args: tuple[str, ...]          # top-level argument texts
    immediate_loop_cond: str | None
    # ^ condition text when the wait is the statement directly controlled
    #   by a while/do-while loop (the canonical re-check idiom
    #   `while (!pred) cv.wait(lk);`); None when the wait merely sits
    #   somewhere inside a larger loop body, which does NOT count as
    #   re-checking — the loop's condition governs the outer work item,
    #   not the wait's wake-up state.


@dataclasses.dataclass(frozen=True)
class Call:
    """Any call expression: callee name, optional receiver, location."""
    callee: str          # rightmost name, e.g. "push" for ring_.push(...)
    recv: str | None     # receiver expression for member calls
    line: int
    offset: int          # character offset into the stripped text
    args: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class VarDecl:
    """A variable/parameter declaration with its (textual) type."""
    name: str
    type_text: str       # e.g. "double", "common::Bits", "std::uint64_t"
    line: int
    func_start_line: int  # enclosing function span (0 when file scope)
    func_end_line: int


@dataclasses.dataclass(frozen=True)
class Assign:
    """An assignment or compound assignment statement."""
    lhs: str
    op: str              # "=", "|=", "+=", ...
    rhs: str
    line: int
    func_start_line: int
    func_end_line: int


@dataclasses.dataclass
class TUFacts:
    path: pathlib.Path
    rel: pathlib.PurePosixPath
    stripped: str        # comment/string-stripped source, newlines kept
    guards: list[Guard] = dataclasses.field(default_factory=list)
    waits: list[WaitCall] = dataclasses.field(default_factory=list)
    calls: list[Call] = dataclasses.field(default_factory=list)
    decls: list[VarDecl] = dataclasses.field(default_factory=list)
    assigns: list[Assign] = dataclasses.field(default_factory=list)
    frontend: str = "lite"   # which frontend produced these facts

    def decl_types(self) -> dict[str, str]:
        """Last-writer-wins name -> type map (adequate for TU-local use)."""
        return {d.name: d.type_text for d in self.decls}


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal contents with spaces, keeping
    newlines so offsets still map to the original line numbers. Same
    algorithm as tools/trng_lint.py (kept dependency-free on purpose:
    the analyzer package must import without the linter on sys.path)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1
