"""Semantic TRNG analyzer (SA rules).

A compile_commands.json-driven companion to tools/trng_lint.py. Where the
linter enforces lexical invariants (banned tokens, missing attributes),
the analyzer reasons about *scopes and dataflow*: which lock guards are
live at a call site, whether a condition_variable wait re-checks its
predicate, whether a floating-point value can reach bit emission, and
whether a bit count is used where a word count belongs.

Two frontends produce one shared fact schema (tools/analyzer/facts.py):

  frontend_clang  libclang (clang.cindex) AST walk — highest fidelity;
                  used where the Python bindings are installed (CI).
  frontend_lite   a self-contained tokenizer with brace/scope tracking —
                  no dependencies beyond the standard library, so the
                  rules run on any host (and back the selftest fixtures).

Rules (tools/analyzer/rules.py) consume facts only, so both frontends
feed the same rule code. See tools/analyzer/analyze.py for the CLI.
"""
