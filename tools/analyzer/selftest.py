#!/usr/bin/env python3
"""Self-test for the semantic TRNG analyzer.

Runs the analyzer over the fixture tree in tests/lint/fixtures/analyzer/
(which mirrors the repo's src/ layout so path-scoped rules apply exactly
as in production) and asserts each SA rule fires precisely on its bad
fixture and stays silent on the good one. The assertions run against the
--json output, which also pins the machine-readable schema the CI
artifact upload depends on.

Exit codes: 0 all assertions hold, 1 otherwise.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
ANALYZE = REPO / "tools" / "analyzer" / "analyze.py"
FIXTURES = REPO / "tests" / "lint" / "fixtures" / "analyzer"

# Every unsuppressed (file, rule) pair the fixture run must produce — no
# more, no less. Multiset: a pair listed twice must fire exactly twice.
EXPECTED = sorted([
    ("src/service/sa001_bad.cpp", "SA001"),   # naked wait in work loop
    ("src/service/sa001_bad.cpp", "SA001"),   # while(true) trivial cond
    ("src/core/sa002_bad.cpp", "SA002"),      # (nbits + 63) / 64
    ("src/core/sa002_bad.cpp", "SA002"),      # nbits & 63
    ("src/core/sa002_bad.cpp", "SA002"),      # ring_words * 64
    ("src/core/sa002_bad.cpp", "SA002"),      # block_bits <= capacity_words
    ("src/core/sa003_bad.cpp", "SA003"),      # tainted packed-word store
    ("src/core/sa003_bad.cpp", "SA003"),      # tainted push_back
    ("src/service/sa004_bad.cpp", "SA004"),   # generate_into under lock
    ("src/service/sa004_bad.cpp", "SA004"),   # push under lock
    ("src/service/sa004_bad.cpp", "SA004"),   # sleep_for under lock
    ("src/service/sa004_bad.cpp", "SA004"),   # wait holding a second lock
    ("src/service/sa005_bad.cpp", "SA005"),   # mixed guarded/unguarded
    ("src/service/sa005_bad.cpp", "SA005"),   # disjoint guard sets
    ("src/service/sa005_bad.cpp", "SA005"),   # declared guards() violated
    ("src/server/sa005_server_bad.cpp", "SA005"),  # rule covers src/server/
    ("src/service/sa006_bad.cpp", "SA006"),   # atomic without a role
    ("src/service/sa006_bad.cpp", "SA006"),   # relaxed store on a flag
    ("src/service/sa006_bad.cpp", "SA006"),   # relaxed load on a flag
    ("src/service/sa006_bad.cpp", "SA006"),   # implicit-order index store
    ("src/service/sa006_bad.cpp", "SA006"),   # relaxed index load
    ("src/service/sa007_bad.cpp", "SA007"),   # raw word to printf
    ("src/service/sa007_bad.cpp", "SA007"),   # raw word to a stream
    ("src/service/sa007_bad.cpp", "SA007"),   # raw word to to_string
    ("src/service/sa007_bad.cpp", "SA007"),   # raw word in an exception
    ("src/server/sa007_shard_bad.cpp", "SA007"),  # draw_from_shard arg 1
    ("src/service/sa008_bad.cpp", "SA008"),   # front -> back acquisition
    ("src/service/sa008_bad.cpp", "SA008"),   # reversed, contradicts decl
    ("src/service/sa008_xtu_a.cpp", "SA008"),  # cross-TU cycle, side A
    ("src/service/sa008_xtu_b.cpp", "SA008"),  # cross-TU cycle, side B
    ("src/server/sa009_bad.cpp", "SA009"),    # generate before instantiate
    ("src/server/sa009_bad.cpp", "SA009"),    # discarded generate status
    ("src/server/sa009_bad.cpp", "SA009"),    # unchecked-then-generate
    ("src/service/sa009_state_bad.cpp", "SA009"),  # undeclared transition
    ("src/service/sa009_state_bad.cpp", "SA009"),  # naked non-reset assign
    ("src/service/sa009_state_bad.cpp", "SA009"),  # SPSC role mixing
    ("src/service/suppressed_bad.cpp", "SA000"),
    ("src/service/dangling_allow.cpp", "SA000"),
])

# Files that must produce no unsuppressed finding at all.
MUST_BE_CLEAN = [
    "src/service/sa001_good.cpp",
    "src/core/sa002_good.cpp",
    "src/core/sa003_good.cpp",
    "src/service/sa004_good.cpp",
    "src/service/sa005_good.cpp",
    "src/service/sa006_good.cpp",
    "src/service/sa007_good.cpp",
    "src/service/suppressed_ok.cpp",
    "src/server/sa005_locked_good.cpp",
    "src/service/sa008_good.cpp",
    "src/server/sa009_good.cpp",
    "src/service/sa009_state_good.cpp",
]

# (file, rule) pairs that must appear as suppressed=true in --json: the
# justified marker hides the finding from the exit code but not from the
# machine-readable report.
EXPECTED_SUPPRESSED = [
    ("src/service/suppressed_ok.cpp", "SA001"),
]


def run_analyzer(*extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(ANALYZE), "--root", str(FIXTURES),
         "--quiet", *extra],
        capture_output=True, text=True)


def main() -> int:
    frontend = "auto"
    if "--frontend" in sys.argv[1:]:
        frontend = sys.argv[sys.argv.index("--frontend") + 1]
    proc = run_analyzer("--json", "--frontend", frontend)

    failures: list[str] = []
    if proc.returncode == 77:
        print("analyzer selftest: requested frontend unavailable; skip")
        return 77
    if proc.returncode != 1:
        failures.append(
            f"expected exit code 1 (findings present), got "
            f"{proc.returncode}: {proc.stderr.strip()}")

    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        print(f"analyzer selftest: --json output is not JSON: {exc}",
              file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        return 1

    for entry in report:
        for key in ("rule", "file", "line", "message", "suppressed"):
            if key not in entry:
                failures.append(f"--json entry missing '{key}': {entry}")
                break

    unsuppressed = sorted((e["file"], e["rule"]) for e in report
                          if not e.get("suppressed"))
    suppressed = sorted((e["file"], e["rule"]) for e in report
                        if e.get("suppressed"))

    for path in MUST_BE_CLEAN:
        hits = [f for f in unsuppressed if f[0] == path]
        if hits:
            failures.append(f"false positive(s) in {path}: {hits}")

    if unsuppressed != EXPECTED:
        missing = list(EXPECTED)
        extra = []
        for f in unsuppressed:
            if f in missing:
                missing.remove(f)
            else:
                extra.append(f)
        if missing:
            failures.append(f"expected findings never fired: {missing}")
        if extra:
            failures.append(f"unexpected findings: {extra}")

    for pair in EXPECTED_SUPPRESSED:
        if pair not in suppressed:
            failures.append(
                f"justified suppression not reported in --json: {pair}")
    for path, rule in suppressed:
        if (path, rule) not in EXPECTED_SUPPRESSED:
            failures.append(
                f"unexpected suppressed finding: {(path, rule)}")

    # Suppressed findings must carry their written justification.
    for entry in report:
        if entry.get("suppressed") and not entry.get("justification"):
            failures.append(
                f"suppressed finding without justification text: {entry}")

    # The human-readable path agrees with --json on the verdict.
    plain = run_analyzer("--frontend", frontend)
    if plain.returncode != 1:
        failures.append(
            f"plain run exit code {plain.returncode}, expected 1")
    for path in MUST_BE_CLEAN:
        if path in plain.stdout:
            failures.append(f"plain output mentions clean file {path}")

    # The rule table stays documented.
    rules_proc = subprocess.run(
        [sys.executable, str(ANALYZE), "--list-rules"],
        capture_output=True, text=True)
    for rule_id in ("SA001", "SA002", "SA003", "SA004",
                    "SA005", "SA006", "SA007", "SA008", "SA009"):
        if rule_id not in rules_proc.stdout:
            failures.append(f"--list-rules does not document {rule_id}")

    # --rules scoping: a subset run reports only that subset's findings
    # (and still exits 1 because the subset has unsuppressed hits).
    subset = run_analyzer("--json", "--frontend", frontend,
                          "--rules", "SA008,SA009")
    try:
        subset_report = json.loads(subset.stdout)
    except json.JSONDecodeError:
        subset_report = None
        failures.append("--rules SA008,SA009 --json output is not JSON")
    if subset_report is not None:
        got = sorted((e["file"], e["rule"]) for e in subset_report
                     if not e.get("suppressed")
                     and e["rule"] in ("SA008", "SA009"))
        want = sorted(p for p in EXPECTED if p[1] in ("SA008", "SA009"))
        if got != want:
            failures.append(
                f"--rules SA008,SA009 findings mismatch: {got} != {want}")
        stray = [e for e in subset_report
                 if e["rule"] not in ("SA008", "SA009", "SA000")]
        if stray:
            failures.append(
                f"--rules subset leaked other rules: {stray[:3]}")
        if subset.returncode != 1:
            failures.append(
                f"--rules subset exit code {subset.returncode}, expected 1")

    # --dot emits a structurally valid Graphviz digraph of the fixture
    # lock graph: no graphviz dependency, just the line grammar plus one
    # known edge (the declared Vault contract, dashed) and one cycle
    # participant.
    import re as _re
    import tempfile
    with tempfile.TemporaryDirectory() as td:
        dot_path = pathlib.Path(td) / "lock.dot"
        dot_proc = run_analyzer("--frontend", frontend,
                                "--dot", str(dot_path))
        if dot_proc.returncode not in (0, 1):
            failures.append(
                f"--dot run exit code {dot_proc.returncode}")
        dot = dot_path.read_text() if dot_path.is_file() else ""
        lines = [ln for ln in dot.splitlines() if ln.strip()]
        node_re = _re.compile(r'^  "[^"]+";$')
        edge_re = _re.compile(
            r'^  "[^"]+" -> "[^"]+" \[label="[^"]*"'
            r'(?:, style=dashed)?\];$')
        if not lines or lines[0] != "digraph lock_order {" \
                or lines[-1] != "}":
            failures.append("--dot output missing digraph wrapper")
        for ln in lines[1:-1]:
            if not (node_re.match(ln) or edge_re.match(ln)):
                failures.append(f"--dot line fails the grammar: {ln!r}")
                break
        if '"Vault::alpha_mu_" -> "Vault::beta_mu_"' not in dot:
            failures.append("--dot missing the Vault observed edge")
        if "style=dashed" not in dot:
            failures.append("--dot missing a declared (dashed) edge")
        if '"Pair::left_mu_" -> "Pair::right_mu_"' not in dot or \
                '"Pair::right_mu_" -> "Pair::left_mu_"' not in dot:
            failures.append("--dot missing the cross-TU cycle edges")

    if failures:
        print("analyzer selftest: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("--- analyzer --json stdout ---", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        return 1

    print(f"analyzer selftest: OK ({len(EXPECTED)} expected findings, "
          f"{len(EXPECTED_SUPPRESSED)} suppressed, "
          f"{len(MUST_BE_CLEAN)} clean files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
