"""Dependency-free frontend: tokenizer + brace/scope tracking.

Produces the same `TUFacts` schema as the libclang frontend from nothing
but the file text. It is deliberately conservative: a C++ parser it is
not, but the constructs the SA rules care about (scoped lock guards,
condition_variable waits, call expressions, declarations, assignment
statements) are all statement-shaped, and brace matching over
comment/string-stripped text recovers their scopes reliably for the
style this repository enforces (clang-format, no macros generating
braces).

Known approximations, shared with the rule docs:
  - Member declarations in *other* headers are invisible; receiver
    classification (is this a condition_variable? a BitStream?) falls
    back to naming conventions (`*cv*`/`*cond*`, `bits`/`stream`).
  - Function spans are detected as `...) [qualifiers] {` — good for
    definitions, blind to K&R oddities this codebase does not contain.
"""

from __future__ import annotations

import pathlib
import re

from . import facts

# ---------------------------------------------------------------- scanning

_GUARD_RE = re.compile(
    r"\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\b"
    r"(?:\s*<[^;{}()]*>)?\s+(\w+)\s*[({]")

_WAIT_RE = re.compile(
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*"
    r"(wait|wait_for|wait_until)\s*\(")

_CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*|\[[^\]]*\])*)"
    r"\s*(?:\.|->)\s*)?"
    r"([A-Za-z_]\w*)\s*\(")

_DECL_RE = re.compile(
    r"(?<![\w:.])"
    r"((?:const\s+)?(?:std\s*::\s*|common\s*::\s*|trng\s*::\s*)*"
    r"(?:float|double|uint64_t|size_t|Bits|Words|BitStream|"
    r"condition_variable(?:_any)?|mutex|auto))\b"
    r"\s*[*&]?\s+(\w+)\s*(?=[=;,()\[{])")

# Class-typed reference/pointer declarations (`Shard& s = ...;`,
# `WordRing& ring`): CamelCase head, so plain multiplications and
# builtin decls (handled above) don't match. Feeds receiver-type
# resolution in the interprocedural pass.
_CLASS_DECL_RE = re.compile(
    r"(?<![\w:.<,])((?:[A-Z]\w*\s*::\s*)*[A-Z]\w*)\s*[&*]\s*(\w+)\s*"
    r"(?=[=;,()\[{])")

# Trailing-underscore identifiers (the repo's member naming convention)
# not reached through `.`/`->`/`::` — i.e. implicit-this accesses. The
# `this->` spelling is matched separately since the generic pattern
# rejects anything preceded by `>`.
_FIELD_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*_)\b")
_THIS_FIELD_RE = re.compile(r"\bthis\s*->\s*([A-Za-z_]\w*_)\b")

_ASSIGN_RE = re.compile(
    r"(?:^|[;{}])\s*"
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*|\[[^\]]*\])*)\s*"
    r"(\|=|&=|\^=|\+=|-=|\*=|/=|<<=|>>=|=)(?!=)"
    r"\s*([^;{}]+);", re.MULTILINE)

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "new", "delete", "throw", "case", "default", "else", "static_cast",
    "const_cast", "reinterpret_cast", "dynamic_cast", "alignof",
    "decltype", "noexcept", "typeid", "co_await", "co_return",
}


def _match_brace(text: str, open_off: int) -> int:
    """Offset of the `}` matching the `{` at open_off (len(text) if
    unbalanced)."""
    depth = 0
    for i in range(open_off, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def _block_spans(text: str) -> list[tuple[int, int]]:
    """(open, close) offsets of every brace block, innermost discoverable
    by narrowest span containment."""
    spans = []
    stack = []
    for i, c in enumerate(text):
        if c == "{":
            stack.append(i)
        elif c == "}":
            if stack:
                spans.append((stack.pop(), i))
    for leftover in stack:
        spans.append((leftover, len(text)))
    return spans


def _innermost_block(spans: list[tuple[int, int]],
                     off: int) -> tuple[int, int] | None:
    best = None
    for a, b in spans:
        if a < off <= b:
            if best is None or (b - a) < (best[1] - best[0]):
                best = (a, b)
    return best


_FUNC_HEAD_RE = re.compile(
    r"\)\s*(?:const\s*|noexcept(?:\s*\([^()]*\))?\s*|override\s*|final\s*"
    r"|->\s*[\w:<>,&*\s]+?)*\{")


def _function_spans(text: str) -> list[tuple[int, int]]:
    """(open, close) offsets of blocks that look like function bodies:
    their `{` follows a `)` plus optional qualifiers / trailing return."""
    spans = []
    for m in _FUNC_HEAD_RE.finditer(text):
        open_off = m.end() - 1
        spans.append((open_off, _match_brace(text, open_off)))
    return spans


def _enclosing_function(func_spans: list[tuple[int, int]], text: str,
                        off: int) -> tuple[int, int]:
    """(start_line, end_line) of the innermost function containing off,
    or (0, 0) at file scope."""
    best = None
    for a, b in func_spans:
        if a < off <= b:
            if best is None or (b - a) < (best[1] - best[0]):
                best = (a, b)
    if best is None:
        return (0, 0)
    return (facts.line_of(text, best[0]), facts.line_of(text, best[1]))


def _split_args(argtext: str) -> tuple[str, ...]:
    """Splits a balanced argument blob on top-level commas."""
    args, depth, cur = [], 0, []
    for c in argtext:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        args.append(tail)
    return tuple(args)


def _balanced_parens(text: str, open_off: int) -> int:
    """Offset just past the `)` matching the `(` at open_off."""
    depth = 0
    for i in range(open_off, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _immediate_loop_cond(text: str, call_off: int) -> str | None:
    """Condition text when the statement at call_off is directly
    controlled by a while/do-while loop; None otherwise.

    Matches the canonical re-check idiom in both spellings:
        while (COND) cv.wait(lk);
        while (COND) { cv.wait(lk); }
        do { cv.wait(lk); } while (COND);
    A wait that merely appears somewhere inside a bigger loop body does
    not match: its wake-up state is not what the loop re-checks.
    """
    # Statement start: after the previous ';', '{' or '}'.
    stmt_start = call_off
    while stmt_start > 0 and text[stmt_start - 1] not in ";{}":
        stmt_start -= 1

    # Unbraced form: the loop header shares the statement scan-back —
    # `while (COND) cv.wait(lk);` has no ';{}' between header and call.
    segment = text[stmt_start:call_off]
    m = re.match(r"\s*while\s*\(", segment)
    if m:
        cond_open = stmt_start + m.end() - 1
        cond_close = _balanced_parens(text, cond_open)
        if text[cond_close:call_off].strip() == "":
            return text[cond_open + 1:cond_close - 1].strip()

    before = text[:stmt_start].rstrip()

    opened_block = bool(before) and before[-1] == "{"
    if opened_block:
        before = before[:-1].rstrip()
        # do { wait(...); } while (COND);
        if re.search(r"\bdo\s*$", before):
            close = _match_brace(text, text.rfind("{", 0, stmt_start))
            m = re.match(r"\s*while\s*\(", text[close + 1:])
            if m:
                cond_open = close + 1 + m.end() - 1
                cond_close = _balanced_parens(text, cond_open)
                return text[cond_open + 1:cond_close - 1].strip()
            return None

    # while (COND) [ { ] wait(...)
    if before.endswith(")"):
        # Walk back over the balanced condition.
        depth = 0
        i = len(before) - 1
        while i >= 0:
            if before[i] == ")":
                depth += 1
            elif before[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        head = before[:i].rstrip()
        if re.search(r"\bwhile\s*$", head):
            return before[i + 1:-1].strip()
    return None


# --------------------------------------------------------------- frontend

def parse(path: pathlib.Path, rel: pathlib.PurePosixPath,
          text: str | None = None) -> facts.TUFacts:
    raw = text if text is not None else path.read_text(
        encoding="utf-8", errors="replace")
    stripped = facts.strip_comments_and_strings(raw)
    tu = facts.TUFacts(path=path, rel=rel, stripped=stripped,
                       frontend="lite")
    spans = _block_spans(stripped)
    func_spans = _function_spans(stripped)

    for m in _DECL_RE.finditer(stripped):
        type_text, name = m.group(1), m.group(2)
        if name in _KEYWORDS:
            continue
        fs, fe = _enclosing_function(func_spans, stripped, m.start())
        line = facts.line_of(stripped, m.start())
        tu.decls.append(facts.VarDecl(
            name=name, type_text=re.sub(r"\s+", "", type_text),
            line=line, func_start_line=fs, func_end_line=fe))
        # A declaration with an initializer is also an assignment for
        # taint purposes: `auto x = tainted * 2;` must propagate.
        after = stripped[m.end():]
        init = re.match(r"\s*=\s*([^;{}]+);", after)
        if init:
            tu.assigns.append(facts.Assign(
                name, "=", init.group(1).strip(), line, fs, fe))

    for m in _CLASS_DECL_RE.finditer(stripped):
        type_text, name = m.group(1), m.group(2)
        if name in _KEYWORDS or type_text in _KEYWORDS:
            continue
        fs, fe = _enclosing_function(func_spans, stripped, m.start())
        tu.decls.append(facts.VarDecl(
            name=name, type_text=re.sub(r"\s+", "", type_text),
            line=facts.line_of(stripped, m.start()),
            func_start_line=fs, func_end_line=fe))

    for m in _GUARD_RE.finditer(stripped):
        kind, var = m.group(1), m.group(2)
        ctor_open = m.end() - 1
        if stripped[ctor_open] != "(":   # aggregate init `{...}`
            close = stripped.find("}", ctor_open)
            mutex = stripped[ctor_open + 1:close if close >= 0 else None]
        else:
            close = _balanced_parens(stripped, ctor_open)
            mutex = stripped[ctor_open + 1:close - 1]
        block = _innermost_block(spans, m.start())
        end_off = block[1] if block else len(stripped)
        tu.guards.append(facts.Guard(
            var=var, kind=kind,
            mutex=_split_args(mutex)[0] if mutex.strip() else "",
            line=facts.line_of(stripped, m.start()),
            scope_end_line=facts.line_of(stripped, end_off)))

    for m in _WAIT_RE.finditer(stripped):
        recv, member = m.group(1), m.group(2)
        arg_open = m.end() - 1
        arg_close = _balanced_parens(stripped, arg_open)
        args = _split_args(stripped[arg_open + 1:arg_close - 1])
        tu.waits.append(facts.WaitCall(
            recv=recv, member=member,
            line=facts.line_of(stripped, m.start()),
            args=args,
            immediate_loop_cond=_immediate_loop_cond(stripped, m.start())))

    for m in _CALL_RE.finditer(stripped):
        recv, callee = m.group(1), m.group(2)
        if callee in _KEYWORDS:
            continue
        arg_open = m.end() - 1
        arg_close = _balanced_parens(stripped, arg_open)
        tu.calls.append(facts.Call(
            callee=callee, recv=recv,
            line=facts.line_of(stripped, m.start()),
            offset=m.start(),
            args=_split_args(stripped[arg_open + 1:arg_close - 1])))

    for m in _ASSIGN_RE.finditer(stripped):
        lhs, op, rhs = m.group(1), m.group(2), m.group(3)
        if lhs in _KEYWORDS:
            continue
        off = m.start(1)
        fs, fe = _enclosing_function(func_spans, stripped, off)
        tu.assigns.append(facts.Assign(
            lhs=lhs, op=op, rhs=rhs.strip(),
            line=facts.line_of(stripped, off),
            func_start_line=fs, func_end_line=fe))

    # Member-field accesses: only inside function bodies (class-scope
    # declarations and constructor init-lists are not accesses under a
    # runtime lockset, and file scope returns (0, 0)).
    seen_field = set()
    for pat in (_FIELD_RE, _THIS_FIELD_RE):
        for m in pat.finditer(stripped):
            off = m.start(1)
            fs, _fe = _enclosing_function(func_spans, stripped, off)
            if fs == 0:
                continue
            key = (m.group(1), off)
            if key in seen_field:
                continue
            seen_field.add(key)
            tu.field_accesses.append(facts.FieldAccess(
                name=m.group(1), line=facts.line_of(stripped, off)))

    facts.scan_annotations(tu, raw)
    facts.scan_structure(tu)
    facts.derive_atomic_ops(tu)
    return tu
