"""SA rules: semantic invariants over the shared fact schema.

  SA001 condvar-discipline
      Every condition_variable wait must either use the predicate
      overload or be the statement *directly* controlled by a re-checking
      loop (`while (!pred) cv.wait(lk);`). A naked wait that merely sits
      inside a larger work loop does not qualify: the loop's condition
      governs the work item, not the wake-up state, so a stop() or
      close() landing between the state check and the sleep is lost and
      the consumer parks forever. The motivating bug was exactly that
      shape in EntropyPool::draw.

  SA002 unit-safety
      Bit counts and word counts must not mix. Raw /64, *64, %64, <<6,
      >>6, &63 conversions on unit-carrying values (common::Bits/Words
      or *_bits/*_words/nbits/nwords names), and arithmetic/comparison
      mixing a bits name with a words name, must go through the typed
      helpers in src/common/units.hpp (bits_to_words, words_to_bits,
      word_index, bit_offset). Loop indices and other unsuffixed
      locals are out of scope by design.

  SA003 fp-taint
      In src/core/, no float/double-derived value may reach bit emission
      (BitStream append/push_back, or packed-word stores in
      generate_into-shaped code). Taint propagates through arithmetic,
      casts and assignments; a comparison yields an untainted bool —
      that is the one legitimate quantization boundary (threshold
      crossings, probability draws). src/model/ is exempt: estimator
      numerics are float math by nature and never emit bits.

  SA004 lock-scope
      No blocking call while holding a ring/pool lock guard, except the
      designated wait points: a cv wait whose lock argument is the held
      guard. Generator draws (generate/generate_into/next_bit...),
      sleeps, joins and WordRing::push are blocking; running them under
      a mutex turns the lock into a convoy and, for push-vs-drain
      cycles, a deadlock.

  SA005 lockset-consistency
      Per shared member field, the set of guards held at each access
      across a TU must be consistent: either every access is unguarded
      (thread-confined or pre-start state) or every access holds a
      common mutex. Mixed guarded/unguarded access and non-intersecting
      guard sets are exactly the shapes TSan only catches when a test
      interleaves them. A `// trng-analyzer: guards(field, mu)`
      annotation turns inference into a declared contract: every access
      must then hold `mu`. Atomics and the sync objects themselves
      (`*mu_`, `*cv_`, ...) are exempt by construction.

  SA006 atomics-discipline
      Every std::atomic declaration carries a declared role
      (`// trng-analyzer: atomic(<role>)`): counter and gauge tolerate
      any order (monotonic tallies / racy-by-design snapshots); flag
      requires release-publish/acquire-observe (seq_cst, or the default,
      is fine — relaxed is not); index-producer/index-consumer (the
      lock-free SPSC ring protocol) additionally require the order to
      be spelled explicitly at every operation. Universally invalid
      combinations (acquire store, release load) are flagged regardless
      of role. This is the pre-flight gate for the ROADMAP lock-free
      ring refactor.

  SA007 entropy-leak-taint
      Buffers that receive raw entropy (BitSource::generate_into
      output, WordRing payloads, EntropyPool::draw destinations) taint
      every value derived from them; tainted values must not reach
      logging (printf family, stream inserts), metrics/JSON
      serialization helpers, to_string/format, or exception messages.
      Counts and verdicts are fine; words are not. This is the
      paper's raw-vs-conditioned boundary as a compile-time check.

Suppressions use the same line-scoped justified-marker contract as
trng_lint:  // trng-analyzer: allow(SA001) -- why this one is fine
"""

from __future__ import annotations

import dataclasses
import pathlib
import re
import time

from . import facts

ALLOW_RE = re.compile(
    r"//\s*trng-analyzer:\s*allow\(\s*(SA\d{3})\s*\)\s*(?:--\s*(\S.*))?")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: pathlib.Path
    line: int
    rule: str
    name: str
    message: str
    suppressed: bool = False
    justification: str | None = None

    def render(self, root: pathlib.Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.rule} [{self.name}] {self.message}"

    def to_json(self, root: pathlib.Path) -> dict:
        try:
            rel = str(self.path.relative_to(root))
        except ValueError:
            rel = str(self.path)
        out = {"rule": self.rule, "name": self.name, "file": rel,
               "line": self.line, "message": self.message,
               "suppressed": self.suppressed}
        if self.justification:
            out["justification"] = self.justification
        return out


def _under(rel: pathlib.PurePosixPath, *prefixes: str) -> bool:
    return any(str(rel).startswith(p) for p in prefixes)


@dataclasses.dataclass
class RepoContext:
    """Cross-TU annotation knowledge: locking contracts and atomic roles
    are declared in headers but checked at use sites in other TUs, so
    the driver builds this table in a pre-pass over every file before
    any rule runs. When a TU is checked standalone (tests, single-file
    mode) the context degrades gracefully to that TU's own facts."""
    guards: dict[str, set[str]] = dataclasses.field(default_factory=dict)
    roles: dict[str, str | None] = dataclasses.field(default_factory=dict)
    atomics: set[str] = dataclasses.field(default_factory=set)
    tus: list[facts.TUFacts] = dataclasses.field(default_factory=list)
    _model: object = dataclasses.field(default=None, repr=False)

    def model(self):
        """Lazily-built interprocedural model (call graph + lock graph)
        over every absorbed TU; shared by SA008/SA009 so the graph is
        constructed once per run."""
        if self._model is None:
            from . import interproc
            self._model = interproc.Model(self.tus)
        return self._model

    def absorb(self, tu: facts.TUFacts) -> None:
        self.tus.append(tu)
        self._model = None
        for ga in tu.guard_annots:
            mutex = facts.tail_name(ga.mutex) or ga.mutex
            self.guards.setdefault(ga.field, set()).add(mutex)
        for ad in tu.atomic_decls:
            self.atomics.add(ad.name)
            # First annotated declaration wins; an unannotated redecl
            # must not erase a role declared at the canonical site.
            if ad.role is not None or ad.name not in self.roles:
                self.roles[ad.name] = ad.role


def build_repo_context(tus: list[facts.TUFacts]) -> RepoContext:
    repo = RepoContext()
    for tu in tus:
        repo.absorb(tu)
    return repo


class Rule:
    rule_id: str = "SA000"
    name: str = "unnamed"
    doc: str = ""

    def applies_to(self, rel: pathlib.PurePosixPath) -> bool:
        raise NotImplementedError

    def check(self, tu: facts.TUFacts,
              repo: RepoContext) -> list[tuple[int, str]]:
        raise NotImplementedError


# ----------------------------------------------------------------- SA001

_TRIVIAL_CONDS = {"", "true", "1", "(true)", "(1)"}


class CondvarDiscipline(Rule):
    rule_id = "SA001"
    name = "condvar-discipline"
    doc = ("condition_variable waits must use the predicate overload or "
           "be directly controlled by a re-checking loop; a naked wait "
           "loses wakeups that race the sleep")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def _is_condvar(self, tu: facts.TUFacts, recv: str) -> bool:
        base = recv.split(".")[-1].split("->")[-1]
        t = tu.decl_types().get(base, "")
        if "condition_variable" in t:
            return True
        low = base.lower()
        return "cv" in low or "cond" in low

    def check(self, tu, repo):
        findings = []
        guard_vars = {g.var for g in tu.guards}
        for w in tu.waits:
            if not self._is_condvar(tu, w.recv):
                continue
            # Predicate overload: wait(lock, pred) has 2 top-level args,
            # wait_for/wait_until(lock, time, pred) has 3.
            need = 2 if w.member == "wait" else 3
            if len(w.args) >= need:
                continue
            # Timed waits without a predicate still return a reason code
            # the caller must interpret; only flag them when the first
            # argument is not even a known lock (same sanity bar as
            # below), otherwise the naked-wait rule stays focused.
            if not w.args:
                continue
            first = w.args[0].strip()
            if guard_vars and first not in guard_vars:
                # Waiting on something that is not a TU-visible guard:
                # out of this rule's reach (SA004 covers foreign locks).
                continue
            cond = (w.immediate_loop_cond or "").replace(" ", "")
            if w.immediate_loop_cond is not None \
                    and cond not in _TRIVIAL_CONDS:
                continue
            if w.immediate_loop_cond is not None:
                findings.append((w.line, (
                    f"{w.recv}.{w.member}({first}) re-check loop has a "
                    f"trivial condition; the loop must re-test the "
                    f"awaited state")))
            else:
                findings.append((w.line, (
                    f"naked {w.recv}.{w.member}({first}): use the "
                    f"predicate overload (or `while (!pred) wait;`) so "
                    f"every wakeup re-checks the awaited state; a stop "
                    f"racing this sleep is otherwise lost")))
        return findings


# ----------------------------------------------------------------- SA002

_BITS_ID = r"[A-Za-z_]\w*(?:_bits|_nbits)|nbits|bit_count|block_bits"
_WORDS_ID = r"[A-Za-z_]\w*(?:_words|_nwords)|nwords|word_count"

_CONV_PATTERNS = [
    (re.compile(r"\b(" + _BITS_ID + r")\b(?!\s*\()"
                r"(?:\s*\.\s*count\s*\(\s*\))?"
                r"\s*(?:\+\s*63\s*\)\s*)?/\s*64\b"),
     "raw bits->words division; use common::bits_to_words() / "
     "common::word_index()"),
    (re.compile(r"\b(" + _BITS_ID + r")\b(?!\s*\()"
                r"(?:\s*\.\s*count\s*\(\s*\))?"
                r"\s*(?:>>\s*6|%\s*64|&\s*63)(?!\d)"),
     "raw bit-offset arithmetic; use common::word_index() / "
     "common::bit_offset()"),
    (re.compile(r"\b(" + _WORDS_ID + r")\b(?!\s*\()"
                r"(?:\s*\.\s*count\s*\(\s*\))?"
                r"\s*(?:\*\s*64\b|<<\s*6(?!\d))"),
     "raw words->bits multiplication; use common::words_to_bits()"),
]

_MIX_PATTERNS = [
    re.compile(r"\b(" + _BITS_ID + r")\b(?!\s*\()\s*"
               r"(?:[+\-]|<=?|>=?|==|!=)\s*"
               r"\b(" + _WORDS_ID + r")\b(?!\s*\()"),
    re.compile(r"\b(" + _WORDS_ID + r")\b(?!\s*\()\s*"
               r"(?:[+\-]|<=?|>=?|==|!=)\s*"
               r"\b(" + _BITS_ID + r")\b(?!\s*\()"),
]


class UnitSafety(Rule):
    rule_id = "SA002"
    name = "unit-safety"
    doc = ("no raw /64, *64, %64, <<6, >>6, &63 conversions or "
           "bits/words mixing on unit-carrying values; use the typed "
           "helpers in src/common/units.hpp")

    EXEMPT = ("src/common/units.hpp", "src/common/bitstream.hpp",
              "src/common/bitstream.cpp")

    def applies_to(self, rel):
        if str(rel) in self.EXEMPT:
            return False
        return _under(rel, "src/core/", "src/service/", "src/stattests/",
                      "src/common/")

    def check(self, tu, repo):
        findings = []
        for pattern, message in _CONV_PATTERNS:
            for m in pattern.finditer(tu.stripped):
                findings.append((
                    facts.line_of(tu.stripped, m.start()),
                    f"'{m.group(0).strip()}': {message}"))
        for pattern in _MIX_PATTERNS:
            for m in pattern.finditer(tu.stripped):
                findings.append((
                    facts.line_of(tu.stripped, m.start()),
                    f"'{m.group(0).strip()}' mixes a bit count with a "
                    f"word count; convert explicitly with "
                    f"bits_to_words()/words_to_bits()"))
        return findings


# ----------------------------------------------------------------- SA003

_FP_TYPES = ("float", "double")
_CMP_OPS = re.compile(r"(?<![<>=!])(?:<=?|>=?|==|!=)(?![<>=])")
_NUMERIC_DECL_TYPES = re.compile(
    r"^(?:const)?(?:std::)?(?:u?int\d+_t|size_t|auto|float|double|"
    r"unsigned|long|int)$")


def _paren_depth_map(expr: str) -> list[int]:
    depths, d = [], 0
    for c in expr:
        if c == "(":
            d += 1
        depths.append(d)
        if c == ")":
            d = max(0, d - 1)
    return depths


_CAST_TEMPLATE_RE = re.compile(
    r"\b(?:static|reinterpret|const|dynamic)_cast\s*<[^<>]*>")


def _has_bare_use(expr: str, tainted: set[str]) -> str | None:
    """Name of a tainted variable used in `expr` outside any comparison
    subexpression; None when every use is quantized by a comparison.

    Quantized means: within the tainted identifier's minimal enclosing
    parenthesis level (or the whole expression), a comparison operator
    appears at that same level — the FP value only feeds a bool.
    """
    if not tainted:
        return None
    # Cast angle brackets would read as </> comparisons; blank the
    # template argument list (a cast never quantizes, it launders).
    expr = _CAST_TEMPLATE_RE.sub(lambda m: " cast" + " " * (len(m.group(0))
                                                           - 5), expr)
    depths = _paren_depth_map(expr)
    for m in re.finditer(r"[A-Za-z_]\w*", expr):
        name = m.group(0)
        if name not in tainted:
            continue
        level = depths[m.start()]
        quantized = False
        for cm in _CMP_OPS.finditer(expr):
            if depths[cm.start()] <= level:
                quantized = True
                break
        if not quantized:
            return name
    return None


class FpTaint(Rule):
    rule_id = "SA003"
    name = "fp-taint"
    doc = ("no float/double-derived value may reach bit emission in "
           "src/core/ (BitStream appends, packed-word stores); quantize "
           "through an explicit comparison first")

    _EMIT_CALLEES = {"push_back", "append_bit", "append_words"}
    _WORD_LHS = re.compile(r"^(?:\*\s*)?(\w+)\s*(?:\[.*\])?$")

    def applies_to(self, rel):
        return _under(rel, "src/core/")

    def check(self, tu, repo):
        findings = []
        types = tu.decl_types()

        # Seed: declared float/double vars, per function span.
        by_func: dict[tuple[int, int], set[str]] = {}
        for d in tu.decls:
            if d.type_text.replace("const", "") in _FP_TYPES:
                by_func.setdefault(
                    (d.func_start_line, d.func_end_line), set()).add(d.name)

        # Propagate through assignments to numeric locals (fixpoint).
        changed = True
        while changed:
            changed = False
            for a in tu.assigns:
                span = (a.func_start_line, a.func_end_line)
                tainted = by_func.get(span, set())
                if not tainted:
                    continue
                lhs_base = a.lhs.split("[")[0]
                if lhs_base in tainted:
                    continue
                lhs_type = types.get(lhs_base, "")
                if lhs_type and not _NUMERIC_DECL_TYPES.match(lhs_type):
                    continue
                if _has_bare_use(a.rhs, tainted):
                    tainted.add(lhs_base)
                    changed = True

        def tainted_at(line: int) -> set[str]:
            for (fs, fe), names in by_func.items():
                if fs and fs <= line <= fe:
                    return names
            return set()

        # Sink 1: packed-word stores (words[i] = .., word |= ..) where
        # the destination is uint64-typed or the canonical out-param.
        for a in tu.assigns:
            tainted = tainted_at(a.line)
            if not tainted:
                continue
            m = self._WORD_LHS.match(a.lhs)
            if not m:
                continue
            base = m.group(1)
            base_type = types.get(base, "")
            is_word_dst = ("uint64" in base_type or base in ("words", "word")
                           or base.endswith("_word") or
                           base.endswith("_words"))
            if not is_word_dst:
                continue
            bare = _has_bare_use(a.rhs, tainted)
            if bare:
                findings.append((a.line, (
                    f"float/double-derived '{bare}' flows into packed "
                    f"word '{a.lhs} {a.op} ...'; bits must come from an "
                    f"explicit comparison, not FP arithmetic")))

        # Sink 2: BitStream emission calls.
        for c in tu.calls:
            if c.callee not in self._EMIT_CALLEES:
                continue
            tainted = tainted_at(c.line)
            if not tainted or not c.args:
                continue
            recv_base = (c.recv or "").split(".")[-1].split("->")[-1]
            recv_type = types.get(recv_base, "")
            if "BitStream" not in recv_type and \
                    recv_base not in ("bits", "stream", "out"):
                continue
            bare = _has_bare_use(c.args[0], tainted)
            if bare:
                findings.append((c.line, (
                    f"float/double-derived '{bare}' emitted via "
                    f"{recv_base}.{c.callee}(); quantize through a "
                    f"comparison before emission")))
        return findings


# ----------------------------------------------------------------- SA004

class LockScope(Rule):
    rule_id = "SA004"
    name = "lock-scope"
    doc = ("no blocking call (generator draws, sleeps, joins, "
           "WordRing::push, foreign cv waits) while holding a lock "
           "guard; cv waits on the held guard are the designated wait "
           "points")

    _BLOCKING = {
        "sleep_for": "sleeps under a held lock convoy every other thread",
        "sleep_until": "sleeps under a held lock convoy every other "
                       "thread",
        "join": "joining a thread under a held lock deadlocks if the "
                "thread needs that lock to exit",
        "generate": "generator draws are unbounded work; holding a lock "
                    "across one starves the other side",
        "generate_into": "generator draws are unbounded work; holding a "
                         "lock across one starves the other side",
        "generate_raw": "generator draws are unbounded work; holding a "
                        "lock across one starves the other side",
        "next_bit": "generator draws are unbounded work; holding a lock "
                    "across one starves the other side",
        "next_raw_bit": "generator draws are unbounded work; holding a "
                        "lock across one starves the other side",
        "push": "WordRing::push blocks on a full ring; calling it under "
                "a lock the drainer needs is a deadlock",
        "draw": "EntropyPool::draw blocks on empty rings; calling it "
                "under a lock a producer needs is a deadlock",
    }
    _WAIT_MEMBERS = {"wait", "wait_for", "wait_until"}

    def applies_to(self, rel):
        return _under(rel, "src/core/", "src/service/")

    def check(self, tu, repo):
        findings = []
        if not tu.guards:
            return findings
        # Guard scopes by line; the fact schema keeps line granularity,
        # which is exact for this codebase's one-statement-per-line style.
        guards = [(g.line, g.scope_end_line, g.var) for g in tu.guards]

        def held_at(line: int) -> list[str]:
            return [v for (a, b, v) in guards if a <= line <= b]

        for c in tu.calls:
            held = held_at(c.line)
            if not held:
                continue
            if c.callee in self._WAIT_MEMBERS:
                first = c.args[0].strip() if c.args else ""
                if first in held and len(held) == 1:
                    continue  # designated wait point on the held guard
                if not any(g.var == first for g in tu.guards):
                    continue  # not a lock-taking wait (e.g. future.wait)
                others = sorted(v for v in held if v != first)
                findings.append((c.line, (
                    f"{c.recv or ''}.{c.callee}({first}) sleeps while "
                    f"still holding {', '.join(others)}; the wait "
                    f"releases only its own lock, so every other held "
                    f"guard convoys its contenders")))
                continue
            why = self._BLOCKING.get(c.callee)
            if why is None:
                continue
            # Guard declarations themselves match the call regex
            # (constructor syntax); skip calls that *are* guard ctors.
            if any(g.line == c.line and g.var == c.callee
                   for g in tu.guards):
                continue
            recv = f"{c.recv}." if c.recv else ""
            findings.append((c.line, (
                f"blocking call {recv}{c.callee}() while holding lock "
                f"guard {', '.join(sorted(held))}: {why}")))
        return findings


# ----------------------------------------------------------------- SA005

# Synchronization objects are what guards are made of, not what they
# protect; their access pattern (locked in some places, notified outside
# the lock in others) is correct by design.
_SYNC_SUFFIXES = ("mu_", "cv_", "mutex_", "cond_", "lock_")

_LOCKED_FN_RE = re.compile(r"\b[A-Za-z_]\w*_locked\s*\(")


def _locked_fn_spans(stripped: str) -> list[tuple[int, int]]:
    """Line spans of `*_locked` function *definitions*. The suffix is the
    repository's caller-holds-the-lock contract: the body runs under the
    caller's guard, so its accesses carry no lexical lockset of their
    own. Calls and declarations (no following brace) are skipped."""
    spans = []
    for m in _LOCKED_FN_RE.finditer(stripped):
        i = stripped.find("(", m.start())
        depth, j = 1, i + 1
        while j < len(stripped) and depth:
            if stripped[j] == "(":
                depth += 1
            elif stripped[j] == ")":
                depth -= 1
            j += 1
        k = j
        while k < len(stripped) and stripped[k] not in "{;":
            k += 1
        if k >= len(stripped) or stripped[k] == ";":
            continue
        depth, e = 1, k + 1
        while e < len(stripped) and depth:
            if stripped[e] == "{":
                depth += 1
            elif stripped[e] == "}":
                depth -= 1
            e += 1
        spans.append((facts.line_of(stripped, k),
                      facts.line_of(stripped, e - 1)))
    return spans


class LocksetConsistency(Rule):
    rule_id = "SA005"
    name = "lockset-consistency"
    doc = ("every access to a shared member field must hold a consistent "
           "guard set: all-unguarded (thread-confined) or a common mutex; "
           "declare intent with // trng-analyzer: guards(field, mu); "
           "bodies of *_locked helpers run under the caller's guard and "
           "are exempt by convention")

    def applies_to(self, rel):
        return _under(rel, "src/service/", "src/stattests/", "src/server/")

    def check(self, tu, repo):
        findings = []
        guards = [(g.line, g.scope_end_line,
                   facts.tail_name(g.mutex) or g.mutex)
                  for g in tu.guards]

        def lockset(line: int) -> set[str]:
            return {m for (a, b, m) in guards if a <= line <= b}

        locked_spans = _locked_fn_spans(tu.stripped)

        def in_locked_helper(line: int) -> bool:
            return any(a <= line <= b for (a, b) in locked_spans)

        by_field: dict[str, list[facts.FieldAccess]] = {}
        for fa in tu.field_accesses:
            if fa.name.endswith(_SYNC_SUFFIXES):
                continue
            if fa.name in repo.atomics:
                continue   # SA006 owns atomics; locksets don't apply
            if in_locked_helper(fa.line):
                continue   # caller-holds-the-lock contract (*_locked)
            by_field.setdefault(fa.name, []).append(fa)

        for field in sorted(by_field):
            accesses = sorted(by_field[field], key=lambda fa: fa.line)
            sets = [lockset(fa.line) for fa in accesses]

            declared = repo.guards.get(field)
            if declared:
                for fa, held in zip(accesses, sets):
                    if not (held & declared):
                        findings.append((fa.line, (
                            f"'{field}' accessed without its declared "
                            f"guard {'/'.join(sorted(declared))} "
                            f"(guards(...) annotation); held here: "
                            f"{', '.join(sorted(held)) or 'nothing'}")))
                continue

            if all(not s for s in sets):
                continue   # consistently unguarded: thread-confined state

            if any(not s for s in sets):
                first = next(fa for fa, s in zip(accesses, sets) if not s)
                locked = next(s for s in sets if s)
                findings.append((first.line, (
                    f"mixed guarded/unguarded access to '{field}': this "
                    f"access holds no lock while other accesses in this "
                    f"TU hold {', '.join(sorted(locked))}; either every "
                    f"access locks or none does (annotate guards("
                    f"{field}, ...) to declare the contract)")))
                continue

            inter = set(sets[0])
            for fa, held in zip(accesses[1:], sets[1:]):
                if not (inter & held):
                    findings.append((fa.line, (
                        f"disjoint guard sets for '{field}': this access "
                        f"holds {', '.join(sorted(held))} but earlier "
                        f"accesses hold {', '.join(sorted(inter))}; "
                        f"non-intersecting locksets do not exclude each "
                        f"other")))
                    break
                inter &= held
        return findings


# ----------------------------------------------------------------- SA006

# Orders that actually synchronize for each operation kind; None means
# the order was left implicit, i.e. seq_cst — always strong enough.
_STORE_OK = {None, "release", "seq_cst"}
_LOAD_OK = {None, "acquire", "seq_cst"}
_RMW_OK = {None, "acq_rel", "seq_cst", "release", "acquire"}

# Combinations the standard rejects or demotes regardless of intent.
_STORE_INVALID = {"acquire", "consume", "acq_rel"}
_LOAD_INVALID = {"release", "acq_rel"}


class AtomicsDiscipline(Rule):
    rule_id = "SA006"
    name = "atomics-discipline"
    doc = ("every std::atomic carries a role annotation (counter, gauge, "
           "flag, index-producer, index-consumer); relaxed is legal only "
           "for counter/gauge, flag needs release-store/acquire-load, "
           "index-* additionally require explicit orders everywhere")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def check(self, tu, repo):
        findings = []
        for ad in tu.atomic_decls:
            if ad.role is None:
                findings.append((ad.line, (
                    f"std::atomic '{ad.name}' has no role annotation; "
                    f"declare // trng-analyzer: atomic(<role>) with role "
                    f"in {{{', '.join(facts.ATOMIC_ROLES)}}} so the "
                    f"memory-order protocol is checkable")))
            elif ad.role not in facts.ATOMIC_ROLES:
                findings.append((ad.line, (
                    f"unknown atomic role '{ad.role}' on '{ad.name}'; "
                    f"valid roles: {', '.join(facts.ATOMIC_ROLES)}")))

        for op in tu.atomic_ops:
            role = repo.roles.get(op.member)
            if op.member not in repo.atomics:
                continue   # .load()/.store() on something non-atomic

            # Standard-level sanity first, independent of role.
            if op.kind == "store" and op.order in _STORE_INVALID:
                findings.append((op.line, (
                    f"'{op.member}.{op.op}' with memory_order_{op.order}: "
                    f"a store cannot acquire; this is undefined or "
                    f"silently demoted")))
                continue
            if op.kind == "load" and op.order in _LOAD_INVALID:
                findings.append((op.line, (
                    f"'{op.member}.{op.op}' with memory_order_{op.order}: "
                    f"a load cannot release; this is undefined or "
                    f"silently demoted")))
                continue
            if op.fail_order in ("release", "acq_rel"):
                findings.append((op.line, (
                    f"'{op.member}.{op.op}' failure order "
                    f"memory_order_{op.fail_order}: the failure load of a "
                    f"compare-exchange cannot release")))
                continue

            if role is None or role in ("counter", "gauge"):
                # counter/gauge: monotonic tallies and racy-by-design
                # snapshots — any order (typically relaxed) is fine.
                # Unannotated atomics were already flagged at the decl.
                continue

            ok = {"load": _LOAD_OK, "store": _STORE_OK,
                  "rmw": _RMW_OK}[op.kind]
            if role == "flag":
                if op.order is not None and op.order not in ok:
                    findings.append((op.line, (
                        f"role(flag) '{op.member}.{op.op}' uses "
                        f"memory_order_{op.order}; a flag publishes "
                        f"state, so stores need release (or seq_cst/"
                        f"default) and loads need acquire — relaxed "
                        f"orders lose the happens-before edge")))
                continue

            # index-producer / index-consumer: the SPSC ring protocol.
            if op.order is None:
                findings.append((op.line, (
                    f"role({role}) '{op.member}.{op.op}' leaves the "
                    f"memory order implicit; ring index operations must "
                    f"spell the acquire/release protocol explicitly so "
                    f"the pairing is auditable")))
                continue
            if op.order not in ok - {None}:
                findings.append((op.line, (
                    f"role({role}) '{op.member}.{op.op}' uses "
                    f"memory_order_{op.order}; the publish protocol "
                    f"requires release stores, acquire loads and acq_rel "
                    f"read-modify-writes — nothing weaker")))
        return findings


# ----------------------------------------------------------------- SA007

# Callee -> index of the buffer argument the call taints. Most entropy
# interfaces lead with the destination buffer; the sharded pool and the
# DRBG conditioner take the shard index first, buffer second.
_TAINT_SOURCE_CALLS = {"generate_into": 0, "pop_some": 0, "draw": 0,
                       "draw_nonblocking": 0, "draw_from_shard": 1}

# Definitions of the entropy-carrying interfaces taint their own word
# buffer parameter: the body of generate_into writes raw entropy into
# it, the body of push reads raw entropy out of it.
_TAINT_DEF_RE = re.compile(
    r"\b(generate_into|push|pop_some|draw|draw_nonblocking|"
    r"draw_from_shard)\s*"
    r"\(([^)]*)\)[^;{}]*\{")

_WORD_PTR_PARAM_RE = re.compile(
    r"(?:const\s+)?(?:std\s*::\s*)?uint64_t\s*\*\s*(\w+)")

_PRINT_SINKS = {"printf", "fprintf", "sprintf", "snprintf", "puts",
                "fputs"}
_EXCEPTION_SINKS = {"runtime_error", "logic_error", "invalid_argument",
                    "out_of_range", "domain_error", "length_error",
                    "range_error"}
_FORMAT_SINKS = {"to_string", "format", "append_u64", "append_kv"}

_COPY_DST_FIRST = {"memcpy", "memmove"}
_COPY_DST_LAST = {"copy", "copy_n"}

# The lite frontend cannot tell a function *declaration* from a call, so
# `pop_some(std::uint64_t* out, ...)` arrives as a call whose first
# "argument" is a parameter declaration. Its head identifier is then a
# type or namespace, never a buffer — reject those so both frontends
# seed identically.
_TYPE_HEADS = {"const", "constexpr", "std", "common", "trng", "core",
               "unsigned", "signed", "void", "bool", "char", "short",
               "int", "long", "float", "double", "auto", "size_t",
               "uint8_t", "uint32_t", "uint64_t"}

_STREAM_NAMES = {"cout", "cerr", "clog", "os", "oss"}
_STREAM_INSERT_RE = re.compile(r"\b([A-Za-z_]\w*)\s*<<(?![<=])")

_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _mentions(expr: str, tainted: set[str]) -> str | None:
    for name in _IDENT_RE.findall(expr or ""):
        if name in tainted:
            return name
    return None


class EntropyLeakTaint(Rule):
    rule_id = "SA007"
    name = "entropy-leak-taint"
    doc = ("values reaching generate_into output buffers, WordRing "
           "payloads or EntropyPool::draw destinations are "
           "entropy-tainted and must not flow into logging, JSON/metrics "
           "serialization, exception messages or stdout; counts and "
           "verdicts are fine, words are not")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def _seed(self, tu: facts.TUFacts) -> set[str]:
        tainted: set[str] = set()
        for c in tu.calls:
            idx = _TAINT_SOURCE_CALLS.get(c.callee)
            if idx is not None:
                # Conditioner::draw(shard, out, ...) leads with the shard
                # index; the pool/source draw(out, ...) leads with the
                # buffer. Disambiguate on the receiver.
                if c.callee == "draw" and c.recv and \
                        "conditioner" in c.recv.lower():
                    idx = 1
                if len(c.args) > idx:
                    name = facts.head_name(c.args[idx])
                    if name and name not in _TYPE_HEADS:
                        tainted.add(name)
            elif c.callee == "push" and c.args and c.recv and \
                    "ring" in c.recv.lower():
                name = facts.head_name(c.args[0])
                if name and name not in _TYPE_HEADS:
                    tainted.add(name)
        for m in _TAINT_DEF_RE.finditer(tu.stripped):
            pm = _WORD_PTR_PARAM_RE.search(m.group(2))
            if pm:
                tainted.add(pm.group(1))
        return tainted

    def check(self, tu, repo):
        findings = []
        tainted = self._seed(tu)
        if not tainted:
            return findings

        # Propagate through assignments and buffer copies to fixpoint.
        changed = True
        while changed:
            changed = False
            for a in tu.assigns:
                lhs = facts.head_name(a.lhs)
                if lhs and lhs not in tainted and _mentions(a.rhs, tainted):
                    tainted.add(lhs)
                    changed = True
            for c in tu.calls:
                if c.callee in _COPY_DST_FIRST and len(c.args) >= 2:
                    dst, srcs = c.args[0], c.args[1:]
                elif c.callee in _COPY_DST_LAST and len(c.args) >= 2:
                    dst, srcs = c.args[-1], c.args[:-1]
                else:
                    continue
                dst_name = facts.head_name(dst)
                if dst_name and dst_name not in tainted and \
                        any(_mentions(s, tainted) for s in srcs):
                    tainted.add(dst_name)
                    changed = True

        # Sink 1: calls that format, print or throw the value.
        sinks = _PRINT_SINKS | _EXCEPTION_SINKS | _FORMAT_SINKS
        flagged_lines: set[int] = set()
        for c in tu.calls:
            if c.callee not in sinks:
                continue
            hit = next((n for a in c.args
                        if (n := _mentions(a, tainted))), None)
            if hit is None or c.line in flagged_lines:
                continue
            flagged_lines.add(c.line)
            if c.callee in _PRINT_SINKS:
                how = "printed"
            elif c.callee in _EXCEPTION_SINKS:
                how = "put into an exception message"
            else:
                how = "serialized"
            findings.append((c.line, (
                f"entropy-tainted '{hit}' is {how} via {c.callee}(); "
                f"raw words must never leave the drawn-entropy path — "
                f"log counts or verdicts instead")))

        # Sink 2: stream inserts (text-based over the shared stripped
        # view so both frontends agree by construction).
        for m in _STREAM_INSERT_RE.finditer(tu.stripped):
            recv = m.group(1)
            if recv not in _STREAM_NAMES and \
                    not recv.endswith(("_os", "_oss", "stream")):
                continue
            stmt_end = tu.stripped.find(";", m.end())
            if stmt_end < 0:
                stmt_end = len(tu.stripped)
            hit = _mentions(tu.stripped[m.end():stmt_end], tainted)
            line = facts.line_of(tu.stripped, m.start())
            if hit is None or line in flagged_lines:
                continue
            flagged_lines.add(line)
            findings.append((line, (
                f"entropy-tainted '{hit}' streamed to '{recv}'; raw "
                f"words must never leave the drawn-entropy path — log "
                f"counts or verdicts instead")))
        return findings


# ----------------------------------------------------------------- SA008

class LockOrderConsistency(Rule):
    rule_id = "SA008"
    name = "lock-order"
    doc = ("repo-wide lock acquisition order must be acyclic: nodes are "
           "mutex members qualified by owning class, an edge A -> B "
           "means B is acquired (lexically or through the cross-TU call "
           "graph) while A is held, try-lock acquisitions never block "
           "and condvar waits release; a cycle — including one closed "
           "by a declared `// trng-analyzer: lock-order(a, b)` edge — "
           "is a deadlock some thread interleaving can reach")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def check(self, tu, repo):
        return list(repo.model().sa008_findings().get(str(tu.rel), []))


# ----------------------------------------------------------------- SA009

class TypestateProtocols(Rule):
    rule_id = "SA009"
    name = "typestate-protocol"
    doc = ("stateful protocol contracts checked against a declarative "
           "table: the SP 800-90A DRBG lifecycle (no generate before "
           "instantiate; a generate/seeding status — kReseedRequired "
           "included — must be consumed, and a failed seeding gate must "
           "not fall through to generate; no second generate while the "
           "first status is still unchecked), the quarantine admission "
           "state machine (only declared transitions, and only inside "
           "the state switch except a reset to the start state), and "
           "WordRing SPSC role confinement (no function may reach both "
           "producer-side and consumer-side ring operations, per the "
           "SA006 index-producer/index-consumer roles)")

    # --- protocol table -------------------------------------------------
    # DRBG lifecycle (SP 800-90A): receivers are classified as DRBGs by
    # declared type or by the `drbg` naming convention; `fill_seed` is
    # the seeding gate whose bool failure result guards generate.
    _DRBG_TYPES = ("HashDrbg", "HmacDrbg", "Drbg")
    _DRBG_HINT = "drbg"
    _GATES = ("fill_seed",)
    # Quarantine admission state machine (mirrors QuarantinePolicy).
    _Q_FIELD = "state_"
    _Q_ENUM = "AdmitState"
    _Q_START = "kHealthy"
    _Q_TRANSITIONS = {
        ("kHealthy", "kQuarantined"),
        ("kQuarantined", "kProbation"),
        ("kProbation", "kQuarantined"),
        ("kProbation", "kHealthy"),
    }
    # SPSC ring role confinement: member-call spellings per side, plus
    # the SA006 atomic index roles reached through the call graph.
    _PRODUCER_CALLS = ("push", "try_push")
    _CONSUMER_CALLS = ("pop_some",)
    _RING_HINT = "ring"

    _GEN_RE = re.compile(
        r"([A-Za-z_][\w.\[\]>-]*?)\s*(?:\.|->)\s*generate\s*\(")
    _DRBG_LOCAL_RE = re.compile(
        r"\bunique_ptr\s*<[^;{}()]*?Drbg[^;{}()]*?>\s+(\w+)\s*;")

    def applies_to(self, rel):
        return _under(rel, "src/service/", "src/server/")

    def check(self, tu, repo):
        findings: list[tuple[int, str]] = []
        self._check_discarded_status(tu, findings)
        self._check_generate_before_instantiate(tu, findings)
        self._check_unchecked_then_generate(tu, findings)
        self._check_quarantine_transitions(tu, findings)
        self._check_spsc_roles(tu, repo, findings)
        findings.sort()
        return findings

    # ------------------------------------------------------------ DRBG

    def _is_drbg_recv(self, recv: str, decl_types: dict[str, str]) -> bool:
        tail = facts.tail_name(recv) or ""
        if self._DRBG_HINT in tail.lower():
            return True
        base = facts.head_name(recv)
        t = decl_types.get(base or "", "")
        return any(d in t for d in self._DRBG_TYPES)

    def _drbg_generates(self, tu):
        """(match, line, normalized receiver) for every DRBG-classified
        generate call in the stripped text."""
        decl_types = tu.decl_types()
        out = []
        for m in self._GEN_RE.finditer(tu.stripped):
            recv = m.group(1)
            if not self._is_drbg_recv(recv, decl_types):
                continue
            out.append((m, facts.line_of(tu.stripped, m.start()),
                        re.sub(r"\s+", "", recv)))
        return out

    def _check_discarded_status(self, tu, findings):
        text = tu.stripped
        sites = [(m.start(), m.group(1) + " generate", ln)
                 for m, ln, _ in self._drbg_generates(tu)]
        for gate in self._GATES:
            for m in re.finditer(rf"(?<![\w.>:]){gate}\s*\(", text):
                sites.append((m.start(), gate,
                              facts.line_of(text, m.start())))
        for off, what, line in sites:
            prev = text[:off].rstrip()
            if not prev or prev[-1] in ";{}":
                findings.append((line, (
                    f"DRBG status of '{what.split()[0]}' discarded as a "
                    f"bare statement; kReseedRequired (or a failed "
                    f"seeding gate) silently ignored breaks the "
                    f"SP 800-90A reseed contract")))

    def _check_generate_before_instantiate(self, tu, findings):
        text = tu.stripped
        lines = text.splitlines()
        for m in self._DRBG_LOCAL_RE.finditer(text):
            name = m.group(1)
            line = facts.line_of(text, m.start())
            span = self._innermost_fn(tu, line)
            if span is None:
                continue     # member declaration, not a local
            use_re = re.compile(
                rf"\b{re.escape(name)}\s*(?:\.|->)\s*(generate|reseed)"
                rf"\s*\(")
            ctor_re = re.compile(
                rf"\b{re.escape(name)}\s*(?:=(?!=)|\.\s*reset\s*\()")
            line_start = text.rfind("\n", 0, m.start()) + 1
            decl_end_col = m.end() - line_start
            for ln in range(line, min(span.end_line, len(lines)) + 1):
                seg = lines[ln - 1]
                if ln == line:
                    seg = seg[decl_end_col:]
                if ctor_re.search(seg):
                    break
                um = use_re.search(seg)
                if um:
                    findings.append((ln, (
                        f"'{name}->{um.group(1)}' before the DRBG is "
                        f"instantiated (local unique_ptr still null); "
                        f"SP 800-90A requires instantiate before "
                        f"generate/reseed")))
                    break

    def _check_unchecked_then_generate(self, tu, findings):
        text = tu.stripped
        per_fn: dict[tuple[int, int], list] = {}
        for m, line, recv in self._drbg_generates(tu):
            span = self._innermost_fn(tu, line)
            if span is None:
                continue
            # `DrbgStatus st = drbg->generate(...)`: the status variable
            # is the identifier just before a trailing `=`.
            status = None
            prev = text[:m.start()].rstrip()
            if prev.endswith("=") and not prev.endswith(("==", "!=",
                                                         "<=", ">=")):
                svm = re.search(r"([A-Za-z_]\w*)\s*\Z", prev[:-1])
                status = svm.group(1) if svm else None
            per_fn.setdefault((span.start_line, span.end_line),
                              []).append((m, line, recv, status))
        for sites in per_fn.values():
            sites.sort(key=lambda s: s[0].start())
            for (m1, _l1, r1, status), (m2, l2, r2, _s2) in zip(
                    sites, sites[1:]):
                if r1 != r2 or status is None:
                    continue
                between = text[m1.end():m2.start()]
                if re.search(rf"\b{re.escape(status)}\b", between):
                    continue
                if "reseed" in between:
                    continue
                findings.append((l2, (
                    f"second generate on '{r2}' while status "
                    f"'{status}' from the previous generate is still "
                    f"unchecked; a dropped kReseedRequired would "
                    f"generate from a stale DRBG state")))

    # ------------------------------------------------- quarantine FSM

    def _check_quarantine_transitions(self, tu, findings):
        text = tu.stripped
        switch_spans = []
        for m in re.finditer(
                rf"switch\s*\(\s*(?:this\s*->\s*)?{self._Q_FIELD}\s*\)"
                rf"\s*\{{", text):
            open_off = m.end() - 1
            switch_spans.append((open_off, facts.match_brace(
                text, open_off)))
        case_re = re.compile(
            rf"case\s+{self._Q_ENUM}\s*::\s*(k\w+)\s*:|default\s*:")
        assign_re = re.compile(
            rf"(?<![\w.>])(?:this\s*->\s*)?{self._Q_FIELD}\s*=(?!=)\s*"
            rf"{self._Q_ENUM}\s*::\s*(k\w+)")
        for m in assign_re.finditer(text):
            to = m.group(1)
            line = facts.line_of(text, m.start())
            span = None
            for a, b in switch_spans:
                if a < m.start() <= b and (
                        span is None or (b - a) < (span[1] - span[0])):
                    span = (a, b)
            if span is None:
                if to != self._Q_START:
                    findings.append((line, (
                        f"quarantine state set to {to} outside the "
                        f"`switch ({self._Q_FIELD})` transition table; "
                        f"only a reset to {self._Q_START} may bypass "
                        f"declared transitions")))
                continue
            frm = None
            for cm in case_re.finditer(text, span[0], m.start()):
                frm = cm.group(1) or "default"
            if frm is None or frm == "default":
                continue
            if (frm, to) not in self._Q_TRANSITIONS:
                findings.append((line, (
                    f"undeclared quarantine transition {frm} -> {to}; "
                    f"the admission state machine declares only "
                    f"{sorted(self._Q_TRANSITIONS)}")))

    # ----------------------------------------------- SPSC confinement

    def _innermost_fn(self, tu, line):
        best = None
        for fd in tu.funcs:
            if fd.start_line <= line <= fd.end_line:
                if best is None or (fd.end_line - fd.start_line) < \
                        (best.end_line - best.start_line):
                    best = fd
        return best

    def _check_spsc_roles(self, tu, repo, findings):
        model = repo.model()
        roles = repo.roles
        memo: dict[int, tuple[frozenset, frozenset]] = {}

        def ring_recv(call) -> bool:
            tail = facts.tail_name(call.recv or "") or ""
            return self._RING_HINT in tail.lower()

        def reach(f, stack) -> tuple[frozenset, frozenset]:
            key = id(f)
            if key in memo:
                return memo[key]
            if key in stack:
                return frozenset(), frozenset()
            stack.add(key)
            prod, cons = set(), set()
            for op in f.atomic_ops:
                if op.kind not in ("store", "rmw"):
                    continue
                role = roles.get(op.member)
                if role == "index-producer":
                    prod.add(f"{op.member}.{op.op}")
                elif role == "index-consumer":
                    cons.add(f"{op.member}.{op.op}")
            for call in f.calls:
                if call.recv is not None and ring_recv(call):
                    if call.callee in self._PRODUCER_CALLS:
                        prod.add(f"{call.recv}.{call.callee}")
                    elif call.callee in self._CONSUMER_CALLS:
                        cons.add(f"{call.recv}.{call.callee}")
                for t in model.resolve(call, f):
                    tp, tc = reach(t, stack)
                    if tp:
                        prod.add(f"{call.callee} -> {sorted(tp)[0]}")
                    if tc:
                        cons.add(f"{call.callee} -> {sorted(tc)[0]}")
            stack.discard(key)
            memo[key] = (frozenset(prod), frozenset(cons))
            return memo[key]

        rel = str(tu.rel)
        for f in model.funcs:
            if f.rel != rel or f.fd.kind != "fn" or not f.fd.name:
                continue
            prod, cons = reach(f, set())
            if prod and cons:
                findings.append((f.fd.start_line, (
                    f"'{f.qual}' reaches both producer-side "
                    f"({sorted(prod)[0]}) and consumer-side "
                    f"({sorted(cons)[0]}) SPSC ring operations; the "
                    f"single-producer/single-consumer split requires "
                    f"disjoint role sets per function")))


RULES: list[Rule] = [
    CondvarDiscipline(),
    UnitSafety(),
    FpTaint(),
    LockScope(),
    LocksetConsistency(),
    AtomicsDiscipline(),
    EntropyLeakTaint(),
    LockOrderConsistency(),
    TypestateProtocols(),
]


def apply_suppressions(path: pathlib.Path, findings: list[Finding],
                       raw_lines: list[str]) -> list[Finding]:
    """Line-scoped justified suppressions, same contract as trng_lint:
    a marker on the finding line or the line above suppresses it (the
    finding is kept, flagged `suppressed`, for --json reporting); an
    allow() without justification or matching finding is an SA000."""
    out: list[Finding] = []
    used_markers: set[int] = set()

    markers: dict[int, tuple[str, str | None]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            markers[lineno] = (m.group(1), m.group(2))

    for f in findings:
        handled = False
        for marker_line in (f.line, f.line - 1):
            marker = markers.get(marker_line)
            if marker and marker[0] == f.rule:
                used_markers.add(marker_line)
                if marker[1]:
                    out.append(dataclasses.replace(
                        f, suppressed=True, justification=marker[1]))
                else:
                    out.append(Finding(
                        f.path, marker_line, "SA000", "bad-suppression",
                        f"allow({f.rule}) without a '-- justification'; "
                        f"every suppression must say why"))
                handled = True
                break
        if not handled:
            out.append(f)

    for lineno, (rule_id, _) in markers.items():
        if lineno not in used_markers:
            out.append(Finding(
                path, lineno, "SA000", "bad-suppression",
                f"allow({rule_id}) marker does not match any finding on "
                f"this or the next line; delete it"))
    return out


def check_tu(tu: facts.TUFacts, raw_lines: list[str],
             repo: RepoContext | None = None,
             rule_ids: set[str] | None = None,
             timings: dict[str, float] | None = None) -> list[Finding]:
    """Runs every rule (or the `rule_ids` subset) over one TU.

    `timings`, when given, accumulates per-rule wall seconds across
    calls — the driver feeds it to the stderr summary so a slow rule is
    bisectable from CI output."""
    if repo is None:
        repo = build_repo_context([tu])
    findings: list[Finding] = []
    for rule in RULES:
        if rule_ids is not None and rule.rule_id not in rule_ids:
            continue
        if not rule.applies_to(tu.rel):
            continue
        t0 = time.perf_counter()
        rule_findings = rule.check(tu, repo)
        if timings is not None:
            timings[rule.rule_id] = timings.get(rule.rule_id, 0.0) + \
                (time.perf_counter() - t0)
        for line, message in rule_findings:
            findings.append(Finding(tu.path, line, rule.rule_id,
                                    rule.name, message))
    has_markers = any(ALLOW_RE.search(line) for line in raw_lines)
    if findings or has_markers:
        findings = apply_suppressions(tu.path, findings, raw_lines)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings
