"""SA rules: semantic invariants over the shared fact schema.

  SA001 condvar-discipline
      Every condition_variable wait must either use the predicate
      overload or be the statement *directly* controlled by a re-checking
      loop (`while (!pred) cv.wait(lk);`). A naked wait that merely sits
      inside a larger work loop does not qualify: the loop's condition
      governs the work item, not the wake-up state, so a stop() or
      close() landing between the state check and the sleep is lost and
      the consumer parks forever. The motivating bug was exactly that
      shape in EntropyPool::draw.

  SA002 unit-safety
      Bit counts and word counts must not mix. Raw /64, *64, %64, <<6,
      >>6, &63 conversions on unit-carrying values (common::Bits/Words
      or *_bits/*_words/nbits/nwords names), and arithmetic/comparison
      mixing a bits name with a words name, must go through the typed
      helpers in src/common/units.hpp (bits_to_words, words_to_bits,
      word_index, bit_offset). Loop indices and other unsuffixed
      locals are out of scope by design.

  SA003 fp-taint
      In src/core/, no float/double-derived value may reach bit emission
      (BitStream append/push_back, or packed-word stores in
      generate_into-shaped code). Taint propagates through arithmetic,
      casts and assignments; a comparison yields an untainted bool —
      that is the one legitimate quantization boundary (threshold
      crossings, probability draws). src/model/ is exempt: estimator
      numerics are float math by nature and never emit bits.

  SA004 lock-scope
      No blocking call while holding a ring/pool lock guard, except the
      designated wait points: a cv wait whose lock argument is the held
      guard. Generator draws (generate/generate_into/next_bit...),
      sleeps, joins and WordRing::push are blocking; running them under
      a mutex turns the lock into a convoy and, for push-vs-drain
      cycles, a deadlock.

Suppressions use the same line-scoped justified-marker contract as
trng_lint:  // trng-analyzer: allow(SA001) -- why this one is fine
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

from . import facts

ALLOW_RE = re.compile(
    r"//\s*trng-analyzer:\s*allow\(\s*(SA\d{3})\s*\)\s*(?:--\s*(\S.*))?")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: pathlib.Path
    line: int
    rule: str
    name: str
    message: str
    suppressed: bool = False
    justification: str | None = None

    def render(self, root: pathlib.Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.rule} [{self.name}] {self.message}"

    def to_json(self, root: pathlib.Path) -> dict:
        try:
            rel = str(self.path.relative_to(root))
        except ValueError:
            rel = str(self.path)
        out = {"rule": self.rule, "name": self.name, "file": rel,
               "line": self.line, "message": self.message,
               "suppressed": self.suppressed}
        if self.justification:
            out["justification"] = self.justification
        return out


def _under(rel: pathlib.PurePosixPath, *prefixes: str) -> bool:
    return any(str(rel).startswith(p) for p in prefixes)


class Rule:
    rule_id: str = "SA000"
    name: str = "unnamed"
    doc: str = ""

    def applies_to(self, rel: pathlib.PurePosixPath) -> bool:
        raise NotImplementedError

    def check(self, tu: facts.TUFacts) -> list[tuple[int, str]]:
        raise NotImplementedError


# ----------------------------------------------------------------- SA001

_TRIVIAL_CONDS = {"", "true", "1", "(true)", "(1)"}


class CondvarDiscipline(Rule):
    rule_id = "SA001"
    name = "condvar-discipline"
    doc = ("condition_variable waits must use the predicate overload or "
           "be directly controlled by a re-checking loop; a naked wait "
           "loses wakeups that race the sleep")

    def applies_to(self, rel):
        return _under(rel, "src/")

    def _is_condvar(self, tu: facts.TUFacts, recv: str) -> bool:
        base = recv.split(".")[-1].split("->")[-1]
        t = tu.decl_types().get(base, "")
        if "condition_variable" in t:
            return True
        low = base.lower()
        return "cv" in low or "cond" in low

    def check(self, tu):
        findings = []
        guard_vars = {g.var for g in tu.guards}
        for w in tu.waits:
            if not self._is_condvar(tu, w.recv):
                continue
            # Predicate overload: wait(lock, pred) has 2 top-level args,
            # wait_for/wait_until(lock, time, pred) has 3.
            need = 2 if w.member == "wait" else 3
            if len(w.args) >= need:
                continue
            # Timed waits without a predicate still return a reason code
            # the caller must interpret; only flag them when the first
            # argument is not even a known lock (same sanity bar as
            # below), otherwise the naked-wait rule stays focused.
            if not w.args:
                continue
            first = w.args[0].strip()
            if guard_vars and first not in guard_vars:
                # Waiting on something that is not a TU-visible guard:
                # out of this rule's reach (SA004 covers foreign locks).
                continue
            cond = (w.immediate_loop_cond or "").replace(" ", "")
            if w.immediate_loop_cond is not None \
                    and cond not in _TRIVIAL_CONDS:
                continue
            if w.immediate_loop_cond is not None:
                findings.append((w.line, (
                    f"{w.recv}.{w.member}({first}) re-check loop has a "
                    f"trivial condition; the loop must re-test the "
                    f"awaited state")))
            else:
                findings.append((w.line, (
                    f"naked {w.recv}.{w.member}({first}): use the "
                    f"predicate overload (or `while (!pred) wait;`) so "
                    f"every wakeup re-checks the awaited state; a stop "
                    f"racing this sleep is otherwise lost")))
        return findings


# ----------------------------------------------------------------- SA002

_BITS_ID = r"[A-Za-z_]\w*(?:_bits|_nbits)|nbits|bit_count|block_bits"
_WORDS_ID = r"[A-Za-z_]\w*(?:_words|_nwords)|nwords|word_count"

_CONV_PATTERNS = [
    (re.compile(r"\b(" + _BITS_ID + r")\b(?!\s*\()"
                r"(?:\s*\.\s*count\s*\(\s*\))?"
                r"\s*(?:\+\s*63\s*\)\s*)?/\s*64\b"),
     "raw bits->words division; use common::bits_to_words() / "
     "common::word_index()"),
    (re.compile(r"\b(" + _BITS_ID + r")\b(?!\s*\()"
                r"(?:\s*\.\s*count\s*\(\s*\))?"
                r"\s*(?:>>\s*6|%\s*64|&\s*63)(?!\d)"),
     "raw bit-offset arithmetic; use common::word_index() / "
     "common::bit_offset()"),
    (re.compile(r"\b(" + _WORDS_ID + r")\b(?!\s*\()"
                r"(?:\s*\.\s*count\s*\(\s*\))?"
                r"\s*(?:\*\s*64\b|<<\s*6(?!\d))"),
     "raw words->bits multiplication; use common::words_to_bits()"),
]

_MIX_PATTERNS = [
    re.compile(r"\b(" + _BITS_ID + r")\b(?!\s*\()\s*"
               r"(?:[+\-]|<=?|>=?|==|!=)\s*"
               r"\b(" + _WORDS_ID + r")\b(?!\s*\()"),
    re.compile(r"\b(" + _WORDS_ID + r")\b(?!\s*\()\s*"
               r"(?:[+\-]|<=?|>=?|==|!=)\s*"
               r"\b(" + _BITS_ID + r")\b(?!\s*\()"),
]


class UnitSafety(Rule):
    rule_id = "SA002"
    name = "unit-safety"
    doc = ("no raw /64, *64, %64, <<6, >>6, &63 conversions or "
           "bits/words mixing on unit-carrying values; use the typed "
           "helpers in src/common/units.hpp")

    EXEMPT = ("src/common/units.hpp", "src/common/bitstream.hpp",
              "src/common/bitstream.cpp")

    def applies_to(self, rel):
        if str(rel) in self.EXEMPT:
            return False
        return _under(rel, "src/core/", "src/service/", "src/stattests/",
                      "src/common/")

    def check(self, tu):
        findings = []
        for pattern, message in _CONV_PATTERNS:
            for m in pattern.finditer(tu.stripped):
                findings.append((
                    facts.line_of(tu.stripped, m.start()),
                    f"'{m.group(0).strip()}': {message}"))
        for pattern in _MIX_PATTERNS:
            for m in pattern.finditer(tu.stripped):
                findings.append((
                    facts.line_of(tu.stripped, m.start()),
                    f"'{m.group(0).strip()}' mixes a bit count with a "
                    f"word count; convert explicitly with "
                    f"bits_to_words()/words_to_bits()"))
        return findings


# ----------------------------------------------------------------- SA003

_FP_TYPES = ("float", "double")
_CMP_OPS = re.compile(r"(?<![<>=!])(?:<=?|>=?|==|!=)(?![<>=])")
_NUMERIC_DECL_TYPES = re.compile(
    r"^(?:const)?(?:std::)?(?:u?int\d+_t|size_t|auto|float|double|"
    r"unsigned|long|int)$")


def _paren_depth_map(expr: str) -> list[int]:
    depths, d = [], 0
    for c in expr:
        if c == "(":
            d += 1
        depths.append(d)
        if c == ")":
            d = max(0, d - 1)
    return depths


_CAST_TEMPLATE_RE = re.compile(
    r"\b(?:static|reinterpret|const|dynamic)_cast\s*<[^<>]*>")


def _has_bare_use(expr: str, tainted: set[str]) -> str | None:
    """Name of a tainted variable used in `expr` outside any comparison
    subexpression; None when every use is quantized by a comparison.

    Quantized means: within the tainted identifier's minimal enclosing
    parenthesis level (or the whole expression), a comparison operator
    appears at that same level — the FP value only feeds a bool.
    """
    if not tainted:
        return None
    # Cast angle brackets would read as </> comparisons; blank the
    # template argument list (a cast never quantizes, it launders).
    expr = _CAST_TEMPLATE_RE.sub(lambda m: " cast" + " " * (len(m.group(0))
                                                           - 5), expr)
    depths = _paren_depth_map(expr)
    for m in re.finditer(r"[A-Za-z_]\w*", expr):
        name = m.group(0)
        if name not in tainted:
            continue
        level = depths[m.start()]
        quantized = False
        for cm in _CMP_OPS.finditer(expr):
            if depths[cm.start()] <= level:
                quantized = True
                break
        if not quantized:
            return name
    return None


class FpTaint(Rule):
    rule_id = "SA003"
    name = "fp-taint"
    doc = ("no float/double-derived value may reach bit emission in "
           "src/core/ (BitStream appends, packed-word stores); quantize "
           "through an explicit comparison first")

    _EMIT_CALLEES = {"push_back", "append_bit", "append_words"}
    _WORD_LHS = re.compile(r"^(?:\*\s*)?(\w+)\s*(?:\[.*\])?$")

    def applies_to(self, rel):
        return _under(rel, "src/core/")

    def check(self, tu):
        findings = []
        types = tu.decl_types()

        # Seed: declared float/double vars, per function span.
        by_func: dict[tuple[int, int], set[str]] = {}
        for d in tu.decls:
            if d.type_text.replace("const", "") in _FP_TYPES:
                by_func.setdefault(
                    (d.func_start_line, d.func_end_line), set()).add(d.name)

        # Propagate through assignments to numeric locals (fixpoint).
        changed = True
        while changed:
            changed = False
            for a in tu.assigns:
                span = (a.func_start_line, a.func_end_line)
                tainted = by_func.get(span, set())
                if not tainted:
                    continue
                lhs_base = a.lhs.split("[")[0]
                if lhs_base in tainted:
                    continue
                lhs_type = types.get(lhs_base, "")
                if lhs_type and not _NUMERIC_DECL_TYPES.match(lhs_type):
                    continue
                if _has_bare_use(a.rhs, tainted):
                    tainted.add(lhs_base)
                    changed = True

        def tainted_at(line: int) -> set[str]:
            for (fs, fe), names in by_func.items():
                if fs and fs <= line <= fe:
                    return names
            return set()

        # Sink 1: packed-word stores (words[i] = .., word |= ..) where
        # the destination is uint64-typed or the canonical out-param.
        for a in tu.assigns:
            tainted = tainted_at(a.line)
            if not tainted:
                continue
            m = self._WORD_LHS.match(a.lhs)
            if not m:
                continue
            base = m.group(1)
            base_type = types.get(base, "")
            is_word_dst = ("uint64" in base_type or base in ("words", "word")
                           or base.endswith("_word") or
                           base.endswith("_words"))
            if not is_word_dst:
                continue
            bare = _has_bare_use(a.rhs, tainted)
            if bare:
                findings.append((a.line, (
                    f"float/double-derived '{bare}' flows into packed "
                    f"word '{a.lhs} {a.op} ...'; bits must come from an "
                    f"explicit comparison, not FP arithmetic")))

        # Sink 2: BitStream emission calls.
        for c in tu.calls:
            if c.callee not in self._EMIT_CALLEES:
                continue
            tainted = tainted_at(c.line)
            if not tainted or not c.args:
                continue
            recv_base = (c.recv or "").split(".")[-1].split("->")[-1]
            recv_type = types.get(recv_base, "")
            if "BitStream" not in recv_type and \
                    recv_base not in ("bits", "stream", "out"):
                continue
            bare = _has_bare_use(c.args[0], tainted)
            if bare:
                findings.append((c.line, (
                    f"float/double-derived '{bare}' emitted via "
                    f"{recv_base}.{c.callee}(); quantize through a "
                    f"comparison before emission")))
        return findings


# ----------------------------------------------------------------- SA004

class LockScope(Rule):
    rule_id = "SA004"
    name = "lock-scope"
    doc = ("no blocking call (generator draws, sleeps, joins, "
           "WordRing::push, foreign cv waits) while holding a lock "
           "guard; cv waits on the held guard are the designated wait "
           "points")

    _BLOCKING = {
        "sleep_for": "sleeps under a held lock convoy every other thread",
        "sleep_until": "sleeps under a held lock convoy every other "
                       "thread",
        "join": "joining a thread under a held lock deadlocks if the "
                "thread needs that lock to exit",
        "generate": "generator draws are unbounded work; holding a lock "
                    "across one starves the other side",
        "generate_into": "generator draws are unbounded work; holding a "
                         "lock across one starves the other side",
        "generate_raw": "generator draws are unbounded work; holding a "
                        "lock across one starves the other side",
        "next_bit": "generator draws are unbounded work; holding a lock "
                    "across one starves the other side",
        "next_raw_bit": "generator draws are unbounded work; holding a "
                        "lock across one starves the other side",
        "push": "WordRing::push blocks on a full ring; calling it under "
                "a lock the drainer needs is a deadlock",
        "draw": "EntropyPool::draw blocks on empty rings; calling it "
                "under a lock a producer needs is a deadlock",
    }
    _WAIT_MEMBERS = {"wait", "wait_for", "wait_until"}

    def applies_to(self, rel):
        return _under(rel, "src/core/", "src/service/")

    def check(self, tu):
        findings = []
        if not tu.guards:
            return findings
        # Guard scopes by line; the fact schema keeps line granularity,
        # which is exact for this codebase's one-statement-per-line style.
        guards = [(g.line, g.scope_end_line, g.var) for g in tu.guards]

        def held_at(line: int) -> list[str]:
            return [v for (a, b, v) in guards if a <= line <= b]

        for c in tu.calls:
            held = held_at(c.line)
            if not held:
                continue
            if c.callee in self._WAIT_MEMBERS:
                first = c.args[0].strip() if c.args else ""
                if first in held and len(held) == 1:
                    continue  # designated wait point on the held guard
                if not any(g.var == first for g in tu.guards):
                    continue  # not a lock-taking wait (e.g. future.wait)
                others = sorted(v for v in held if v != first)
                findings.append((c.line, (
                    f"{c.recv or ''}.{c.callee}({first}) sleeps while "
                    f"still holding {', '.join(others)}; the wait "
                    f"releases only its own lock, so every other held "
                    f"guard convoys its contenders")))
                continue
            why = self._BLOCKING.get(c.callee)
            if why is None:
                continue
            # Guard declarations themselves match the call regex
            # (constructor syntax); skip calls that *are* guard ctors.
            if any(g.line == c.line and g.var == c.callee
                   for g in tu.guards):
                continue
            recv = f"{c.recv}." if c.recv else ""
            findings.append((c.line, (
                f"blocking call {recv}{c.callee}() while holding lock "
                f"guard {', '.join(sorted(held))}: {why}")))
        return findings


RULES: list[Rule] = [
    CondvarDiscipline(),
    UnitSafety(),
    FpTaint(),
    LockScope(),
]


def apply_suppressions(path: pathlib.Path, findings: list[Finding],
                       raw_lines: list[str]) -> list[Finding]:
    """Line-scoped justified suppressions, same contract as trng_lint:
    a marker on the finding line or the line above suppresses it (the
    finding is kept, flagged `suppressed`, for --json reporting); an
    allow() without justification or matching finding is an SA000."""
    out: list[Finding] = []
    used_markers: set[int] = set()

    markers: dict[int, tuple[str, str | None]] = {}
    for lineno, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            markers[lineno] = (m.group(1), m.group(2))

    for f in findings:
        handled = False
        for marker_line in (f.line, f.line - 1):
            marker = markers.get(marker_line)
            if marker and marker[0] == f.rule:
                used_markers.add(marker_line)
                if marker[1]:
                    out.append(dataclasses.replace(
                        f, suppressed=True, justification=marker[1]))
                else:
                    out.append(Finding(
                        f.path, marker_line, "SA000", "bad-suppression",
                        f"allow({f.rule}) without a '-- justification'; "
                        f"every suppression must say why"))
                handled = True
                break
        if not handled:
            out.append(f)

    for lineno, (rule_id, _) in markers.items():
        if lineno not in used_markers:
            out.append(Finding(
                path, lineno, "SA000", "bad-suppression",
                f"allow({rule_id}) marker does not match any finding on "
                f"this or the next line; delete it"))
    return out


def check_tu(tu: facts.TUFacts, raw_lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in RULES:
        if not rule.applies_to(tu.rel):
            continue
        for line, message in rule.check(tu):
            findings.append(Finding(tu.path, line, rule.rule_id,
                                    rule.name, message))
    has_markers = any(ALLOW_RE.search(line) for line in raw_lines)
    if findings or has_markers:
        findings = apply_suppressions(tu.path, findings, raw_lines)
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings
