"""libclang frontend: fills the shared fact schema from a real AST.

Used when the clang Python bindings and a loadable libclang are present
(the CI analyzer job installs them; most dev hosts run the lite frontend
instead). Fidelity gains over the tokenizer: receiver and declaration
types are canonical (a condition_variable is recognized by type, not by
name), guard scopes come from lexical parents rather than brace
matching, and calls inside templates/macros resolve properly.

The frontend is deliberately fail-soft: `available()` probes the
bindings, and `parse()` raises `FrontendError` on any per-TU problem so
the driver can fall back to the lite frontend for that file rather than
aborting the run — an analyzer that dies on one unparsable TU checks
nothing at all.
"""

from __future__ import annotations

import pathlib

from . import facts

_CINDEX = None
_PROBED = False


class FrontendError(RuntimeError):
    pass


def _cindex():
    global _CINDEX, _PROBED
    if not _PROBED:
        _PROBED = True
        try:
            from clang import cindex  # type: ignore
            # Force-load the library now: import succeeds even when the
            # shared object is missing, so probe eagerly.
            cindex.Index.create()
            _CINDEX = cindex
        except Exception:
            _CINDEX = None
    return _CINDEX


def available() -> bool:
    return _cindex() is not None


def _extent_lines(cursor) -> tuple[int, int]:
    return (cursor.extent.start.line, cursor.extent.end.line)


def _text_of(cursor) -> str:
    return " ".join(t.spelling for t in cursor.get_tokens())


def _first_arg_texts(call) -> tuple[str, ...]:
    return tuple(_text_of(a) for a in call.get_arguments())


def parse(path: pathlib.Path, rel: pathlib.PurePosixPath,
          compile_args: list[str] | None = None) -> facts.TUFacts:
    cindex = _cindex()
    if cindex is None:
        raise FrontendError("clang python bindings unavailable")

    raw = path.read_text(encoding="utf-8", errors="replace")
    tu_facts = facts.TUFacts(
        path=path, rel=rel,
        stripped=facts.strip_comments_and_strings(raw),
        frontend="clang")

    try:
        index = cindex.Index.create()
        unit = index.parse(
            str(path), args=compile_args or ["-std=c++20"],
            options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
    except Exception as exc:  # cindex raises broad TranslationUnitLoadError
        raise FrontendError(f"parse failed: {exc}") from exc
    fatal = [d for d in unit.diagnostics if d.severity >= 4]
    if fatal:
        raise FrontendError(f"fatal diagnostics: {fatal[0].spelling}")

    ck = cindex.CursorKind
    guard_kinds = ("lock_guard", "unique_lock", "scoped_lock")

    def in_main_file(cursor) -> bool:
        loc = cursor.location
        return loc.file is not None and \
            pathlib.Path(loc.file.name).resolve() == path.resolve()

    def func_span_of(cursor) -> tuple[int, int]:
        node = cursor.semantic_parent
        while node is not None:
            if node.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                             ck.CONSTRUCTOR, ck.DESTRUCTOR,
                             ck.LAMBDA_EXPR, ck.FUNCTION_TEMPLATE):
                return _extent_lines(node)
            node = node.semantic_parent
        return (0, 0)

    def walk(cursor, ancestors):
        for child in cursor.get_children():
            visit(child, ancestors + [cursor])
            walk(child, ancestors + [cursor])

    def loop_context(ancestors, stmt):
        """Condition text when stmt is the direct body (or sole compound
        child) of a while/do statement."""
        for i in range(len(ancestors) - 1, -1, -1):
            a = ancestors[i]
            if a.kind in (ck.WHILE_STMT, ck.DO_STMT):
                between = ancestors[i + 1:]
                # Allow exactly one CompoundStmt between loop and stmt.
                if all(b.kind == ck.COMPOUND_STMT for b in between) \
                        and len(between) <= 1:
                    kids = list(a.get_children())
                    cond = kids[0] if a.kind == ck.WHILE_STMT else kids[-1]
                    return _text_of(cond)
                return None
            if a.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.LAMBDA_EXPR,
                          ck.CONSTRUCTOR, ck.DESTRUCTOR):
                return None
        return None

    def visit(cursor, ancestors):
        if not in_main_file(cursor):
            return
        kind = cursor.kind

        if kind in (ck.VAR_DECL, ck.PARM_DECL, ck.FIELD_DECL):
            type_text = cursor.type.spelling.replace(" ", "")
            fs, fe = func_span_of(cursor)
            tu_facts.decls.append(facts.VarDecl(
                name=cursor.spelling, type_text=type_text,
                line=cursor.location.line,
                func_start_line=fs, func_end_line=fe))
            if kind == ck.VAR_DECL:
                init_kids = [c for c in cursor.get_children()
                             if c.kind not in (ck.TYPE_REF,
                                               ck.NAMESPACE_REF,
                                               ck.TEMPLATE_REF)]
                if init_kids:
                    # Initializer doubles as an assignment for taint.
                    tu_facts.assigns.append(facts.Assign(
                        lhs=cursor.spelling, op="=",
                        rhs=_text_of(init_kids[-1]),
                        line=cursor.location.line,
                        func_start_line=fs, func_end_line=fe))
            if kind == ck.VAR_DECL and \
                    any(g in type_text for g in guard_kinds):
                gkind = next(g for g in guard_kinds if g in type_text)
                args = _first_arg_texts(cursor) or \
                    tuple(_text_of(c) for c in cursor.get_children()
                          if c.kind != ck.TYPE_REF)
                parent = ancestors[-1] if ancestors else None
                end_line = (_extent_lines(parent)[1]
                            if parent is not None
                            else cursor.extent.end.line)
                tu_facts.guards.append(facts.Guard(
                    var=cursor.spelling, kind=gkind,
                    mutex=args[0] if args else "",
                    line=cursor.location.line,
                    scope_end_line=end_line))
            return

        if kind == ck.CALL_EXPR:
            callee = cursor.spelling or ""
            children = list(cursor.get_children())
            recv = None
            recv_type = ""
            if children and children[0].kind == ck.MEMBER_REF_EXPR:
                member = children[0]
                mkids = list(member.get_children())
                if mkids:
                    recv = _text_of(mkids[0])
                    recv_type = mkids[0].type.spelling
            # Semantic callee: `Class::name` (classes only — namespaces
            # are skipped so the spelling matches the shared structure
            # scanner's FuncDef.qual) for the interprocedural pass.
            callee_qual = None
            try:
                ref = cursor.referenced
            except Exception:
                ref = None
            if ref is not None and ref.kind in (
                    ck.CXX_METHOD, ck.FUNCTION_DECL, ck.CONSTRUCTOR,
                    ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE):
                rname = ref.spelling or ""
                if rname == "operator()":
                    # A call through a named lambda object (`pop()`):
                    # surface the variable name instead so the
                    # heuristic resolver can bind it TU-locally.
                    if children and children[0].kind == ck.DECL_REF_EXPR:
                        callee = children[0].spelling or callee
                elif rname:
                    rcls = None
                    node = ref.semantic_parent
                    while node is not None:
                        if node.kind in (ck.CLASS_DECL, ck.STRUCT_DECL,
                                         ck.CLASS_TEMPLATE):
                            rcls = node.spelling
                            break
                        if node.kind in (ck.NAMESPACE,
                                         ck.TRANSLATION_UNIT):
                            break
                        node = node.semantic_parent
                    callee_qual = f"{rcls}::{rname}" if rcls else rname
            args = _first_arg_texts(cursor)
            line = cursor.location.line
            tu_facts.calls.append(facts.Call(
                callee=callee, recv=recv, line=line, offset=0, args=args,
                callee_qual=callee_qual))
            if callee in ("wait", "wait_for", "wait_until") and \
                    "condition_variable" in recv_type:
                # Find the nearest statement-shaped ancestor for loop
                # context: the call may be wrapped in an ExprStmt.
                stmt_ancestors = [a for a in ancestors
                                  if a.kind != ck.UNEXPOSED_EXPR]
                tu_facts.waits.append(facts.WaitCall(
                    recv=recv or "", member=callee, line=line, args=args,
                    immediate_loop_cond=loop_context(
                        stmt_ancestors, cursor)))
            return

        if kind == ck.MEMBER_REF_EXPR:
            name = cursor.spelling or ""
            if name.endswith("_"):
                fs, fe = func_span_of(cursor)
                if (fs, fe) != (0, 0):
                    kids = [c for c in cursor.get_children()
                            if c.kind not in (ck.TYPE_REF,
                                              ck.NAMESPACE_REF,
                                              ck.TEMPLATE_REF)]

                    def implicit_this(node) -> bool:
                        if node.kind == ck.CXX_THIS_EXPR:
                            return True
                        inner = list(node.get_children())
                        return len(inner) == 1 and implicit_this(inner[0])

                    # Record only own-member accesses: no base child at
                    # all (implicit this) or an explicit `this->`; an
                    # access through another object says nothing about
                    # this object's lockset.
                    if not kids or implicit_this(kids[0]):
                        tu_facts.field_accesses.append(facts.FieldAccess(
                            name=name,
                            line=cursor.location.line))
            return

        if kind == ck.BINARY_OPERATOR or \
                kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
            tokens = list(cursor.get_tokens())
            ops = {"=", "|=", "&=", "^=", "+=", "-=", "*=", "/=",
                   "<<=", ">>="}
            kids = list(cursor.get_children())
            if len(kids) == 2:
                lhs_end = kids[0].extent.end.offset
                op = next((t.spelling for t in tokens
                           if t.spelling in ops
                           and t.extent.start.offset >= lhs_end), None)
                if op:
                    fs, fe = func_span_of(cursor)
                    tu_facts.assigns.append(facts.Assign(
                        lhs=_text_of(kids[0]), op=op,
                        rhs=_text_of(kids[1]),
                        line=cursor.location.line,
                        func_start_line=fs, func_end_line=fe))

    walk(unit.cursor, [])
    facts.scan_annotations(tu_facts, raw)
    facts.scan_structure(tu_facts)
    facts.derive_atomic_ops(tu_facts)
    return tu_facts
