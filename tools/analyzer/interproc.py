"""Interprocedural model: cross-TU call graph + lock acquisition-order
graph for the SA008/SA009 rules.

Built once per analyzer run from every TU's facts (the same two-pass
`RepoContext` flow the per-access rules use — pass 1 parses all TUs,
pass 2 runs rules), so cycles that only close across translation units
are visible. The model is frontend-agnostic: function spans come from
the shared `facts.scan_structure` scanner, and call resolution prefers
the libclang frontend's semantic `Call.callee_qual` when present,
falling back to qualified-name heuristics (receiver declaration types,
receiver-name/class-name affinity, own-class methods, repo-unique
names) for the lite frontend. Resolution is deliberately
under-approximate: an ambiguous callee resolves to nothing rather than
to everything, so the lock graph never grows edges from guesses.

Lock graph semantics (lockdep-style):
  - Nodes are mutexes qualified by owning class (`EntropyPool::data_mu_`);
    a mutex held in a vector is one node — per-element ordering inside
    one vector is out of scope.
  - An edge A -> B means "B was (or may be) acquired while A was held":
    lexically (guard B declared inside guard A's scope) or through a
    call chain (A held at a call whose transitive callee closure
    blocks on B).
  - try_to_lock / defer_lock acquisitions never form edge
    *destinations* (a failed try returns instead of blocking) but do
    act as sources once held.
  - condition_variable waits are release points: `wait`/`wait_for`/
    `wait_until` calls never propagate held sets into callees, and
    wait predicates are lambdas, which always detach (a lambda body is
    its own function span — deferred callbacks do not run under the
    caller's locks; the canonical empty-critical-section notify idiom
    therefore contributes no edges).
  - `// trng-analyzer: lock-order(a, b)` adds a declared edge a -> b,
    so one observed reverse acquisition closes a cycle even before a
    second code path exists.

Cycles are strongly connected components of the edge set; every
*observed* edge inside an SCC is reported at its acquisition site (so a
cross-TU cycle fires once in each participating TU), falling back to
the declared-annotation sites for a purely declared contradiction.
"""

from __future__ import annotations

import dataclasses
import re

from . import facts

_WAITISH = {"wait", "wait_for", "wait_until", "notify_one", "notify_all"}

# A mutex-typed member declaration inside a class span. The lazy middle
# cannot cross statement or call punctuation, so guard locals inside
# inline method bodies (`std::lock_guard<std::mutex> lk(mu_);`) and
# mutex reference parameters never match; wrapped members
# (`std::vector<std::unique_ptr<std::mutex>> stripe_mu_;`) do.
_MUTEX_MEMBER_RE = re.compile(r"\bmutex\b[^;{}()=]*?\s(\w+)\s*;")

_NONBLOCKING_ACQ_RE = re.compile(r"\btry_to_lock\b|\bdefer_lock\b")


@dataclasses.dataclass(frozen=True)
class LockEdge:
    src: str             # qualified mutex held
    dst: str             # qualified mutex acquired under it
    rel: str             # TU of the acquisition site ("" for declared)
    line: int
    via: str | None      # callee qual when the edge crosses a call
    declared: bool


class _Func:
    """A FuncDef plus its attributed facts. `res_cls` is the class
    context used for receiver-less call resolution: the FuncDef's own
    class, or — for lambdas and anonymous spans, whose bodies run with
    the enclosing method's `this` captured — the enclosing function's
    class."""

    __slots__ = ("rel", "fd", "guards", "calls", "atomic_ops", "tu",
                 "res_cls")

    def __init__(self, tu, fd):
        self.tu = tu
        self.rel = str(tu.rel)
        self.fd = fd
        self.guards = []
        self.calls = []
        self.atomic_ops = []
        self.res_cls = fd.cls

    @property
    def qual(self):
        return self.fd.qual

    @property
    def cls(self):
        return self.fd.cls


def _innermost(funcs, line):
    best = None
    for f in funcs:
        fd = f.fd
        if fd.start_line <= line <= fd.end_line:
            if best is None or (fd.end_line - fd.start_line) < \
                    (best.fd.end_line - best.fd.start_line):
                best = f
    return best


class Model:
    """Repo-wide interprocedural model; build once, query per rule."""

    def __init__(self, tus):
        self.tus = list(tus)
        self.funcs: list[_Func] = []
        self.by_qual: dict[str, list[_Func]] = {}
        self.by_name: dict[str, list[_Func]] = {}
        self.lambda_by_tu_name: dict[tuple[str, str], list[_Func]] = {}
        self.mutex_members: dict[str, set[str]] = {}
        self.class_names: set[str] = set()
        self._decl_types: dict[str, dict[str, str]] = {}
        self._stripped_lines: dict[str, list[str]] = {}
        self._blocking_closure: dict[int, frozenset] = {}
        self._build()
        self.edges: list[LockEdge] = []
        self._build_edges()
        self._sa008: dict[str, list[tuple[int, str]]] | None = None

    # ------------------------------------------------------------ build

    def _build(self):
        for tu in self.tus:
            rel = str(tu.rel)
            self._decl_types[rel] = tu.decl_types()
            self._stripped_lines[rel] = tu.stripped.splitlines()
            for cs in tu.classes:
                self.class_names.add(cs.name)
            self._scan_mutex_members(tu)
            per_tu = []
            for fd in tu.funcs:
                f = _Func(tu, fd)
                self.funcs.append(f)
                per_tu.append(f)
                if fd.kind == "fn" and fd.name:
                    self.by_qual.setdefault(fd.qual, []).append(f)
                    self.by_name.setdefault(fd.name, []).append(f)
                elif fd.kind == "lambda" and fd.name:
                    self.lambda_by_tu_name.setdefault(
                        (rel, fd.name), []).append(f)
            for g in tu.guards:
                f = _innermost(per_tu, g.line)
                if f is not None:
                    f.guards.append(g)
            for c in tu.calls:
                f = _innermost(per_tu, c.line)
                if f is not None:
                    f.calls.append(c)
            for op in tu.atomic_ops:
                f = _innermost(per_tu, op.line)
                if f is not None:
                    f.atomic_ops.append(op)
            # Lambda class context: innermost enclosing named function.
            named = [f for f in per_tu if f.fd.kind == "fn"]
            for f in per_tu:
                if f.fd.kind == "fn":
                    continue
                encl = None
                for g in named:
                    if g.fd.start_line <= f.fd.start_line and \
                            f.fd.end_line <= g.fd.end_line:
                        if encl is None or \
                                (g.fd.end_line - g.fd.start_line) < \
                                (encl.fd.end_line - encl.fd.start_line):
                            encl = g
                if encl is not None:
                    f.res_cls = encl.fd.cls

    def _scan_mutex_members(self, tu):
        text = tu.stripped
        spans = []
        for cs in tu.classes:
            spans.append(cs)
        for m in _MUTEX_MEMBER_RE.finditer(text):
            line = facts.line_of(text, m.start())
            owner = None
            for cs in spans:
                if cs.start_line <= line <= cs.end_line:
                    if owner is None or (cs.end_line - cs.start_line) < \
                            (owner.end_line - owner.start_line):
                        owner = cs
            if owner is not None:
                self.mutex_members.setdefault(
                    m.group(1), set()).add(owner.name)

    # ---------------------------------------------------- qualification

    def qualify_mutex(self, expr: str, cls: str | None,
                      rel: str | None) -> str | None:
        """Qualified lock-graph node for a mutex expression: the owning
        class is (in priority order) the enclosing function's class when
        it declares the member, the receiver base's declared type, or
        the repo-unique owner; a never-declared name stays bare."""
        if not expr:
            return None
        if "::" in expr and "(" not in expr:
            return expr.strip()
        e = expr.strip().lstrip("*&").strip()
        tail = facts.tail_name(e)
        if tail is None:
            return None
        owners = self.mutex_members.get(tail, set())
        if cls and cls in owners:
            return f"{cls}::{tail}"
        base = facts.head_name(e)
        if base and base != tail and rel is not None:
            t = self._decl_types.get(rel, {}).get(base, "")
            for owner in owners:
                if owner in t:
                    return f"{owner}::{tail}"
        if len(owners) == 1:
            return f"{next(iter(owners))}::{tail}"
        return tail

    def _nonblocking(self, rel: str, line: int) -> bool:
        lines = self._stripped_lines.get(rel, [])
        if 1 <= line <= len(lines):
            return bool(_NONBLOCKING_ACQ_RE.search(lines[line - 1]))
        return False

    # ------------------------------------------------------- resolution

    def resolve(self, call, caller: _Func) -> list[_Func]:
        if call.callee in _WAITISH:
            return []
        if call.callee_qual is not None:
            return self.by_qual.get(call.callee_qual, [])
        name = call.callee
        lam = self.lambda_by_tu_name.get((caller.rel, name))
        if lam:
            return lam
        cands = self.by_name.get(name, [])
        if not cands:
            return []
        if len(cands) == 1:
            f = cands[0]
            if f.cls is None or call.recv is not None:
                return cands
            # Receiver-less call to a unique *method*: only an own-class
            # call qualifies — `::close(fd)` (POSIX) must not resolve to
            # `WordRing::close` just because the name is repo-unique.
            return cands if caller.res_cls == f.cls else []
        if call.recv:
            base = facts.head_name(call.recv)
            tail = facts.tail_name(call.recv)
            if base:
                t = self._decl_types.get(caller.rel, {}).get(base, "")
                typed = [f for f in cands if f.cls and f.cls in t]
                if typed and len({f.cls for f in typed}) == 1:
                    return typed
            if tail:
                norm = tail.rstrip("_").lower()
                forms = {norm, norm.rstrip("s")}
                affine = [f for f in cands if f.cls and any(
                    x and (x in f.cls.lower() or f.cls.lower() in x)
                    for x in forms)]
                if affine and len({f.cls for f in affine}) == 1:
                    return affine
            return []
        own = [f for f in cands if f.cls and f.cls == caller.res_cls]
        return own

    # ------------------------------------------------------- lock graph

    def blocking_closure(self, f: _Func, _stack=None) -> frozenset:
        """Qualified mutexes a call into f may block on, transitively."""
        key = id(f)
        memo = self._blocking_closure
        if key in memo:
            return memo[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return frozenset()
        stack.add(key)
        acc = set()
        for g in f.guards:
            if self._nonblocking(f.rel, g.line):
                continue
            q = self.qualify_mutex(g.mutex, f.res_cls, f.rel)
            if q:
                acc.add(q)
        for c in f.calls:
            for t in self.resolve(c, f):
                acc |= self.blocking_closure(t, stack)
        stack.discard(key)
        memo[key] = frozenset(acc)
        return memo[key]

    def _build_edges(self):
        seen = set()

        def add(src, dst, rel, line, via, declared):
            if src == dst:
                return
            key = (src, dst, rel, line, declared)
            if key in seen:
                return
            seen.add(key)
            self.edges.append(LockEdge(
                src=src, dst=dst, rel=rel, line=line, via=via,
                declared=declared))

        for f in self.funcs:
            quals = {}
            for g in f.guards:
                quals[id(g)] = self.qualify_mutex(g.mutex, f.res_cls, f.rel)
            # Lexical nesting: guard g2 acquired inside g1's scope.
            for g1 in f.guards:
                q1 = quals[id(g1)]
                if q1 is None:
                    continue
                for g2 in f.guards:
                    if g2 is g1 or self._nonblocking(f.rel, g2.line):
                        continue
                    q2 = quals[id(g2)]
                    if q2 is None:
                        continue
                    if g1.line < g2.line <= g1.scope_end_line:
                        add(q1, q2, f.rel, g2.line, None, False)
            # Call propagation: held guards x callee blocking closure.
            for c in f.calls:
                targets = self.resolve(c, f)
                if not targets:
                    continue
                held = [g for g in f.guards
                        if g.line <= c.line <= g.scope_end_line]
                if not held:
                    continue
                for t in targets:
                    for q2 in self.blocking_closure(t):
                        for g in held:
                            q1 = quals[id(g)]
                            if q1 is not None:
                                add(q1, q2, f.rel, c.line, t.qual, False)

        for tu in self.tus:
            rel = str(tu.rel)
            for ann in tu.lock_order_annots:
                cls = None
                for cs in tu.classes:
                    if cs.start_line <= ann.line <= cs.end_line:
                        if cls is None or (cs.end_line - cs.start_line) < \
                                (cls.end_line - cls.start_line):
                            cls = cs
                cname = cls.name if cls else None

                def qual_ann(name):
                    if "::" in name:
                        return name
                    if cname and cname in self.mutex_members.get(
                            name, set()):
                        return f"{cname}::{name}"
                    owners = self.mutex_members.get(name, set())
                    if len(owners) == 1:
                        return f"{next(iter(owners))}::{name}"
                    return name

                add(qual_ann(ann.first), qual_ann(ann.second),
                    rel, ann.line, None, True)

    # ------------------------------------------------------------ cycles

    def _sccs(self):
        nodes = sorted({e.src for e in self.edges} |
                       {e.dst for e in self.edges})
        adj = {n: set() for n in nodes}
        for e in self.edges:
            adj[e.src].add(e.dst)
        index = {}
        low = {}
        on_stack = set()
        stack = []
        sccs = []
        counter = [0]

        for root in nodes:
            if root in index:
                continue
            work = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(adj[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp = set()
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.add(w)
                        if w == node:
                            break
                    sccs.append(comp)
        return sccs

    def sa008_findings(self) -> dict[str, list[tuple[int, str]]]:
        """rel -> [(line, message)] for every lock-order cycle."""
        if self._sa008 is not None:
            return self._sa008
        out: dict[str, list[tuple[int, str]]] = {}
        declared_pairs = {(e.src, e.dst) for e in self.edges if e.declared}
        for scc in self._sccs():
            if len(scc) < 2:
                continue
            scc_edges = [e for e in self.edges
                         if e.src in scc and e.dst in scc]
            observed = [e for e in scc_edges if not e.declared]
            cyc = " <-> ".join(sorted(scc))
            for e in (observed or scc_edges):
                detail = f"acquires {e.dst} while holding {e.src}"
                if e.via:
                    detail += f" (through call into {e.via})"
                if e.declared:
                    detail = (f"declared lock-order({e.src}, {e.dst}) "
                              f"conflicts with another declaration")
                msg = (f"lock-order cycle [{cyc}]: {detail}; some thread "
                       f"interleaving can deadlock")
                if (e.dst, e.src) in declared_pairs and not e.declared:
                    msg += (f"; contradicts declared "
                            f"lock-order({e.dst}, {e.src})")
                out.setdefault(e.rel, []).append((e.line, msg))
        self._sa008 = out
        return out

    # --------------------------------------------------------------- dot

    def to_dot(self) -> str:
        """Graphviz rendering of the acquisition-order graph; declared
        edges are dashed. Structural format (one edge per line) is
        pinned by selftest.py so CI artifacts stay parseable."""
        lines = ["digraph lock_order {"]
        for n in sorted({e.src for e in self.edges} |
                        {e.dst for e in self.edges}):
            lines.append(f'  "{n}";')
        for e in sorted(self.edges, key=lambda e: (e.src, e.dst, e.rel,
                                                   e.line)):
            attrs = [f'label="{e.rel}:{e.line}"']
            if e.declared:
                attrs.append("style=dashed")
            lines.append(f'  "{e.src}" -> "{e.dst}" '
                         f'[{", ".join(attrs)}];')
        lines.append("}")
        return "\n".join(lines) + "\n"
