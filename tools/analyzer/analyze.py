#!/usr/bin/env python3
"""Semantic TRNG analyzer CLI.

Drives the SA rules (tools/analyzer/rules.py) over the repository's
sources. The file list and per-TU compile flags come from
compile_commands.json when available (every CMake preset exports one and
the build symlinks it to the repo root); without one the analyzer falls
back to walking src/.

    python3 tools/analyzer/analyze.py --root .            # lite frontend
    python3 tools/analyzer/analyze.py -p build --json     # machine output
    python3 tools/analyzer/analyze.py --frontend clang    # require AST
    python3 tools/analyzer/analyze.py --only src/sim      # scoped sweep

Frontends: `auto` (default) uses libclang per TU when the bindings are
importable and falls back to the lite tokenizer otherwise — per file, so
one unparsable TU degrades only itself. `clang` requires libclang and
exits 77 (the ctest skip code) when it is unavailable, mirroring the
clang-tidy wiring. `lite` forces the tokenizer.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/internal error,
77 requested frontend unavailable (skip).
"""

from __future__ import annotations

import argparse
import collections
import json
import pathlib
import shlex
import sys

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from analyzer import facts, frontend_clang, frontend_lite, rules
else:
    from . import facts, frontend_clang, frontend_lite, rules

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
SKIP_EXIT = 77

# Flags that matter for parsing; linker/diagnostic noise is dropped.
_KEEP_FLAG_PREFIXES = ("-std=", "-I", "-D", "-isystem", "-f", "-W")


def load_compile_commands(
        compdb_dir: pathlib.Path) -> dict[pathlib.Path, list[str]]:
    """file -> parse-relevant flags, from compile_commands.json."""
    db = compdb_dir / "compile_commands.json"
    if not db.is_file():
        return {}
    out: dict[pathlib.Path, list[str]] = {}
    try:
        entries = json.loads(db.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    for entry in entries:
        try:
            file = pathlib.Path(entry["directory"], entry["file"]).resolve()
        except KeyError:
            continue
        argv = entry.get("arguments") or shlex.split(entry.get("command", ""))
        flags = []
        for arg in argv[1:]:
            if arg.startswith(_KEEP_FLAG_PREFIXES):
                flags.append(arg)
        out[file] = flags
    return out


def collect_files(root: pathlib.Path,
                  compdb: dict[pathlib.Path, list[str]],
                  only: list[str] | None = None) -> list[pathlib.Path]:
    """All analyzable sources under <root>/src. The compdb contributes
    flags, not the file list: headers never appear in it, and the rules
    must see headers (guard scopes and unit contracts live there).

    `only` restricts the *reported* set, not the parsed set — callers
    filter after parsing so cross-TU context (annotations in headers
    outside the prefix) stays complete. This helper just validates the
    prefixes exist so a typo'd --only fails loudly instead of silently
    analyzing nothing."""
    src = root / "src"
    if not src.is_dir():
        print(f"trng_analyzer: no src/ directory under {root}",
              file=sys.stderr)
        raise SystemExit(2)
    for prefix in only or []:
        if not (root / prefix).exists():
            print(f"trng_analyzer: --only prefix '{prefix}' does not "
                  f"exist under {root}", file=sys.stderr)
            raise SystemExit(2)
    return sorted(p for p in src.rglob("*")
                  if p.is_file() and p.suffix in SOURCE_SUFFIXES)


def rel_matches(rel: pathlib.PurePosixPath, only: list[str]) -> bool:
    """True when `rel` sits under one of the --only prefixes."""
    rel_str = rel.as_posix()
    return any(rel_str == p or rel_str.startswith(p.rstrip("/") + "/")
               for p in only)


def parse_file(path: pathlib.Path, rel: pathlib.PurePosixPath,
               frontend: str,
               compdb: dict[pathlib.Path, list[str]]) -> facts.TUFacts:
    tu = None
    if frontend in ("auto", "clang") and frontend_clang.available():
        try:
            tu = frontend_clang.parse(path, rel,
                                      compdb.get(path.resolve()))
        except frontend_clang.FrontendError as exc:
            if frontend == "clang":
                print(f"trng_analyzer: clang frontend failed on {rel}: "
                      f"{exc}; falling back to lite", file=sys.stderr)
            tu = None
    if tu is None:
        tu = frontend_lite.parse(path, rel)
    return tu


def analyze_file(path: pathlib.Path, rel: pathlib.PurePosixPath,
                 frontend: str,
                 compdb: dict[pathlib.Path, list[str]],
                 repo: rules.RepoContext | None = None
                 ) -> list[rules.Finding]:
    tu = parse_file(path, rel, frontend, compdb)
    raw_lines = path.read_text(
        encoding="utf-8", errors="replace").splitlines()
    return rules.check_tu(tu, raw_lines, repo)


def print_summary(findings: list[rules.Finding], nfiles: int,
                  timings: dict[str, float] | None = None,
                  rule_ids: set[str] | None = None) -> None:
    by_rule: collections.Counter[str] = collections.Counter()
    suppressed: collections.Counter[str] = collections.Counter()
    for f in findings:
        (suppressed if f.suppressed else by_rule)[f.rule] += 1
    timings = timings or {}
    print(f"trng_analyzer: {nfiles} files", file=sys.stderr)
    print("  rule    findings  suppressed        ms", file=sys.stderr)
    for rule in rules.RULES:
        rid = rule.rule_id
        if rule_ids is not None and rid not in rule_ids:
            continue
        print(f"  {rid}  {by_rule.get(rid, 0):8d}  "
              f"{suppressed.get(rid, 0):10d}  "
              f"{timings.get(rid, 0.0) * 1000:8.1f}", file=sys.stderr)
    if by_rule.get("SA000") or suppressed.get("SA000"):
        print(f"  SA000  {by_rule.get('SA000', 0):8d}  "
              f"{suppressed.get('SA000', 0):10d}  {0.0:8.1f}",
              file=sys.stderr)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Semantic TRNG analyzer (SA rules)")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(
                            __file__).resolve().parent.parent.parent,
                        help="repository root; <root>/src is analyzed")
    parser.add_argument("-p", "--compdb", type=pathlib.Path, default=None,
                        help="directory containing compile_commands.json "
                             "(defaults to --root)")
    parser.add_argument("--frontend", choices=("auto", "clang", "lite"),
                        default="auto",
                        help="AST frontend selection (default: auto)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="PREFIX",
                        help="report findings only for files under this "
                             "repo-relative prefix (repeatable, e.g. "
                             "--only src/sim); every TU is still parsed "
                             "so cross-TU annotations keep working")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule subset to run, e.g. "
                             "--rules SA008,SA009 (complements --only's "
                             "path scoping; default: all rules)")
    parser.add_argument("--dot", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="write the repo-wide lock acquisition-order "
                             "graph (SA008's input) as Graphviz DOT; "
                             "declared lock-order edges are dashed")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout "
                             "(suppressed findings included, flagged)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-rule summary")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in rules.RULES:
            print(f"{rule.rule_id} {rule.name}: {rule.doc}")
        return 0

    rule_ids: set[str] | None = None
    if args.rules is not None:
        rule_ids = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {rule.rule_id for rule in rules.RULES}
        unknown = rule_ids - known
        if unknown:
            print(f"trng_analyzer: unknown rule id(s): "
                  f"{', '.join(sorted(unknown))}; known: "
                  f"{', '.join(sorted(known))}", file=sys.stderr)
            return 2

    if args.frontend == "clang" and not frontend_clang.available():
        print("trng_analyzer: clang python bindings not available; "
              "skipping (install python3-clang + libclang to enable the "
              "AST frontend, or run with --frontend auto/lite)",
              file=sys.stderr)
        return SKIP_EXIT

    root = args.root.resolve()
    compdb = load_compile_commands((args.compdb or root).resolve())
    files = collect_files(root, compdb, args.only)

    # Pass 1: parse every TU. Annotations (locking contracts, atomic
    # roles) live in headers but govern accesses in other TUs, so the
    # cross-TU context must exist before any rule runs — even under
    # --only, which filters reporting, not parsing.
    tus: list[facts.TUFacts] = []
    for path in files:
        rel = pathlib.PurePosixPath(path.relative_to(root).as_posix())
        tus.append(parse_file(path, rel, args.frontend, compdb))
    repo = rules.build_repo_context(tus)

    # Pass 2: rules per TU against the shared context, reported only
    # for TUs inside the --only scope (all of them by default).
    scoped = [tu for tu in tus
              if args.only is None or rel_matches(tu.rel, args.only)]
    findings: list[rules.Finding] = []
    timings: dict[str, float] = {}
    for tu in scoped:
        raw_lines = tu.path.read_text(
            encoding="utf-8", errors="replace").splitlines()
        findings.extend(rules.check_tu(tu, raw_lines, repo,
                                       rule_ids=rule_ids,
                                       timings=timings))

    if args.dot is not None:
        args.dot.write_text(repo.model().to_dot(), encoding="utf-8")

    unsuppressed = [f for f in findings if not f.suppressed]
    if args.json:
        print(json.dumps([f.to_json(root) for f in findings], indent=2))
    else:
        for f in unsuppressed:
            print(f.render(root))
    if not args.quiet:
        print_summary(findings, len(scoped), timings, rule_ids)
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
