// End-to-end tests for the entropy daemon: wire-format codecs, the token
// bucket, concurrent client draws over the framed protocol, protocol-level
// determinism, rate limiting, metrics scraping, AF_UNIX listening, and
// graceful shutdown.
//
// Suites are named Server* on purpose: the `tsan-server` ctest preset
// selects them with the regex ^(Server|Drbg|Conditioner).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/source_registry.hpp"
#include "server/client.hpp"
#include "server/serverd.hpp"
#include "server/session.hpp"

namespace {

using namespace trng;
using common::Bits;
using common::Words;
using server::kAnyShard;
using server::MessageType;
using server::Request;
using server::ResponseHeader;
using server::ServerConfig;
using server::ServerDaemon;
using server::Status;

service::SourceFactory registry_factory(const std::string& id,
                                        std::uint64_t die_seed_base) {
  return [id, die_seed_base](std::size_t index, std::uint64_t seed) {
    return core::make_die_seeded_source(id, die_seed_base + index, seed);
  };
}

ServerConfig base_config(std::size_t producers) {
  ServerConfig cfg;
  cfg.pool.producers = producers;
  cfg.pool.producer.block_bits = Bits{512};
  cfg.pool.producer.h_per_bit = 0.05;  // a gate a sane source never trips
  cfg.pool.ring_capacity_words = Words{128};
  return cfg;
}

// ------------------------------------------------------------ wire format

TEST(ServerWire, RequestRoundTripsAndRejectsBadMagic) {
  Request req;
  req.type = MessageType::kDraw;
  req.flags = server::kFlagPredictionResistance;
  req.shard = 3;
  req.nbytes = 0xdeadbeef;
  std::uint8_t frame[server::kRequestFrameBytes];
  server::encode_request(req, frame);

  Request back;
  ASSERT_TRUE(server::decode_request(frame, &back));
  EXPECT_EQ(back.type, req.type);
  EXPECT_EQ(back.flags, req.flags);
  EXPECT_EQ(back.shard, req.shard);
  EXPECT_EQ(back.nbytes, req.nbytes);

  frame[0] ^= 0xff;  // corrupt the magic
  EXPECT_FALSE(server::decode_request(frame, &back));
}

TEST(ServerWire, ResponseRoundTripsAndRejectsBadMagic) {
  ResponseHeader rsp;
  rsp.status = Status::kBackpressure;
  rsp.shard = 7;
  rsp.payload_bytes = 1234;
  std::uint8_t header[server::kResponseHeaderBytes];
  server::encode_response(rsp, header);

  ResponseHeader back;
  ASSERT_TRUE(server::decode_response(header, &back));
  EXPECT_EQ(back.status, rsp.status);
  EXPECT_EQ(back.shard, rsp.shard);
  EXPECT_EQ(back.payload_bytes, rsp.payload_bytes);

  header[3] ^= 0x01;
  EXPECT_FALSE(server::decode_response(header, &back));
}

TEST(ServerWire, StatusNamesAreStable) {
  EXPECT_STREQ(server::status_name(Status::kOk), "ok");
  EXPECT_STREQ(server::status_name(Status::kBackpressure), "backpressure");
  EXPECT_STREQ(server::status_name(Status::kRateLimited), "rate_limited");
  EXPECT_STREQ(server::status_name(Status::kBadRequest), "bad_request");
  EXPECT_STREQ(server::status_name(Status::kShuttingDown), "shutting_down");
}

// ------------------------------------------------------------ token bucket

TEST(ServerTokenBucket, ZeroRateNeverLimits) {
  server::TokenBucket bucket(0.0, 16.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.try_take(1e9, i));
  }
}

TEST(ServerTokenBucket, DrainsAndRefillsAtTheConfiguredRate) {
  // 100 bytes/s, burst 1000. Times are explicit nanoseconds, so the test
  // is deterministic regardless of wall-clock behavior.
  server::TokenBucket bucket(100.0, 1000.0);
  const std::uint64_t t0 = 1'000'000'000;
  EXPECT_TRUE(bucket.try_take(1000.0, t0));   // full burst drains the bucket
  EXPECT_FALSE(bucket.try_take(1.0, t0));     // empty at the same instant
  // +500 ms => 50 tokens refilled.
  EXPECT_FALSE(bucket.try_take(51.0, t0 + 500'000'000));
  EXPECT_TRUE(bucket.try_take(50.0, t0 + 500'000'000));
  // Refill caps at the burst: after an hour, still at most 1000 tokens.
  EXPECT_FALSE(bucket.try_take(1001.0, t0 + 3'600'000'000'000ull));
  EXPECT_TRUE(bucket.try_take(1000.0, t0 + 3'600'000'000'000ull));
}

TEST(ServerSessionConfig, ValidateRejectsNonsense) {
  server::SessionConfig cfg;
  cfg.rate_bytes_per_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = server::SessionConfig{};
  cfg.burst_bytes = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = server::SessionConfig{};
  cfg.max_request_bytes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(server::SessionConfig{}.validate());
}

// --------------------------------------------------------------- protocol

TEST(ServerDaemonTest, DrawOverSocketpairDeliversConditionedBytes) {
  ServerDaemon daemon(registry_factory("str-virtex", 300), base_config(1));
  daemon.start();
  const int fd = daemon.connect_client();
  ASSERT_GE(fd, 0);

  auto reply = server::client::draw(fd, 4096);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.shard, 0);
  ASSERT_EQ(reply.bytes.size(), 4096u);
  // Conditioned output is never the all-zero string.
  bool nonzero = false;
  for (std::uint8_t b : reply.bytes) nonzero |= (b != 0);
  EXPECT_TRUE(nonzero);

  ::close(fd);
  daemon.stop();
  EXPECT_EQ(daemon.metrics().sessions_opened.load(), 1u);
  EXPECT_EQ(daemon.metrics().sessions_closed.load(), 1u);
  EXPECT_EQ(daemon.metrics().requests_total.load(), 1u);
}

TEST(ServerDaemonTest, BadRequestsAreRefusedPerRequestNotPerConnection) {
  ServerConfig cfg = base_config(1);
  cfg.session.max_request_bytes = 1 << 12;
  ServerDaemon daemon(registry_factory("str-virtex", 310), cfg);
  daemon.start();
  const int fd = daemon.connect_client();
  ASSERT_GE(fd, 0);

  // Oversized request: refused, connection stays usable.
  auto reply = server::client::draw(fd, (1u << 12) + 1);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kBadRequest);
  EXPECT_TRUE(reply.bytes.empty());

  // Zero-byte request: also refused.
  reply = server::client::draw(fd, 0);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kBadRequest);

  // Out-of-range explicit shard: refused.
  reply = server::client::draw(fd, 64, false, /*shard=*/9);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kBadRequest);

  // The connection still serves good requests afterwards.
  reply = server::client::draw(fd, 64);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kOk);
  ::close(fd);
  daemon.stop();
  EXPECT_EQ(daemon.metrics().client(0).bad_requests.load(), 3u);
  EXPECT_EQ(daemon.metrics().client(0).draws_ok.load(), 1u);
}

TEST(ServerDaemonTest, MalformedFrameGetsOneReplyThenDisconnect) {
  ServerDaemon daemon(registry_factory("str-virtex", 320), base_config(1));
  daemon.start();
  const int fd = daemon.connect_client();
  ASSERT_GE(fd, 0);

  std::uint8_t garbage[server::kRequestFrameBytes];
  std::memset(garbage, 0x5a, sizeof(garbage));
  ASSERT_TRUE(server::write_full(fd, garbage, sizeof(garbage)));

  std::uint8_t header[server::kResponseHeaderBytes];
  ASSERT_TRUE(server::read_full(fd, header, sizeof(header)));
  ResponseHeader rsp;
  ASSERT_TRUE(server::decode_response(header, &rsp));
  EXPECT_EQ(rsp.status, Status::kBadRequest);
  // The session then drops the desynchronized connection: EOF.
  std::uint8_t byte;
  EXPECT_FALSE(server::read_full(fd, &byte, 1));
  ::close(fd);
  daemon.stop();
}

TEST(ServerDaemonTest, ShardPinningAndRoundRobin) {
  ServerDaemon daemon(registry_factory("str-virtex", 330), base_config(2));
  daemon.start();

  // Round-robin default shards: first client shard 0, second shard 1.
  const int fd0 = daemon.connect_client();
  const int fd1 = daemon.connect_client();
  ASSERT_GE(fd0, 0);
  ASSERT_GE(fd1, 0);
  auto r0 = server::client::draw(fd0, 64);
  auto r1 = server::client::draw(fd1, 64);
  ASSERT_TRUE(r0.ok);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r0.shard, 0);
  EXPECT_EQ(r1.shard, 1);
  EXPECT_NE(r0.bytes, r1.bytes);  // distinct per-shard DRBGs

  // An explicit in-request shard overrides the session default.
  auto cross = server::client::draw(fd0, 64, false, /*shard=*/1);
  ASSERT_TRUE(cross.ok);
  EXPECT_EQ(cross.status, Status::kOk);
  EXPECT_EQ(cross.shard, 1);

  // Pinned connects take the requested shard; bad pins throw.
  const int fd_pin = daemon.connect_client_to_shard(1);
  ASSERT_GE(fd_pin, 0);
  auto pinned = server::client::draw(fd_pin, 64);
  ASSERT_TRUE(pinned.ok);
  EXPECT_EQ(pinned.shard, 1);
  EXPECT_THROW(daemon.connect_client_to_shard(2), std::out_of_range);

  ::close(fd0);
  ::close(fd1);
  ::close(fd_pin);
  daemon.stop();
}

TEST(ServerDaemonTest, RateLimitedClientIsDeniedThenServedAfterRefill) {
  ServerConfig cfg = base_config(1);
  // 1 byte/s with a 1 KiB burst: the first 1024-byte draw passes, the
  // second is denied (refilling 1024 tokens would take ~17 minutes).
  // max_request matches the burst — validate() rejects burst < max_request
  // because such requests could never pass the bucket.
  cfg.session.rate_bytes_per_s = 1.0;
  cfg.session.burst_bytes = 1024.0;
  cfg.session.max_request_bytes = 1024;
  ServerDaemon daemon(registry_factory("str-virtex", 340), cfg);
  daemon.start();
  const int fd = daemon.connect_client();
  ASSERT_GE(fd, 0);

  auto first = server::client::draw(fd, 1024);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.status, Status::kOk);

  auto second = server::client::draw(fd, 1024);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.status, Status::kRateLimited);
  EXPECT_TRUE(second.bytes.empty());

  ::close(fd);
  daemon.stop();
  EXPECT_EQ(daemon.metrics().client(0).denied_rate_limit.load(), 1u);
  EXPECT_EQ(daemon.metrics().client(0).draws_ok.load(), 1u);
}

// The headline e2e: several clients concurrently pull >= 10^6 conditioned
// bytes through the full daemon stack (pool -> conditioner -> sessions)
// with zero errors. This is also the tsan-server centerpiece.
TEST(ServerDaemonTest, ConcurrentClientsDrawAMillionBytesWithoutErrors) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClientBytes = 1 << 18;  // 4 x 256 KiB > 10^6
  constexpr std::size_t kChunk = 1 << 15;

  ServerDaemon daemon(registry_factory("str-virtex", 350),
                      base_config(2));
  daemon.start();

  std::atomic<std::uint64_t> bytes_ok{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    const int fd = daemon.connect_client();
    ASSERT_GE(fd, 0);
    clients.emplace_back([fd, &bytes_ok, &errors] {
      std::size_t drawn = 0;
      while (drawn < kPerClientBytes) {
        auto reply = server::client::draw(fd, kChunk);
        if (!reply.ok || reply.status != Status::kOk ||
            reply.bytes.size() != kChunk) {
          errors.fetch_add(1);
          break;
        }
        drawn += reply.bytes.size();
        bytes_ok.fetch_add(reply.bytes.size());
      }
      ::close(fd);
    });
  }
  for (auto& t : clients) t.join();
  daemon.stop();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(bytes_ok.load(), kClients * kPerClientBytes);
  EXPECT_GE(bytes_ok.load(), 1'000'000u);
  // Cross-check the server-side ledger.
  std::uint64_t served = 0;
  for (std::size_t s = 0; s < daemon.metrics().shards(); ++s) {
    served += daemon.metrics().shard(s).bytes_generated.load();
  }
  EXPECT_EQ(served, kClients * kPerClientBytes);
}

// Protocol-level determinism: producers == 1, fixed seeds, the same
// request sequence => two daemon runs serve bit-identical client streams.
TEST(ServerDaemonTest, SingleProducerClientStreamIsDeterministic) {
  auto run = [] {
    ServerConfig cfg = base_config(1);
    cfg.pool.stream_seed_base = 777;
    cfg.conditioner.drbg.reseed_interval = 8;  // cross reseed boundaries
    ServerDaemon daemon(registry_factory("str-virtex", 360), cfg);
    daemon.start();
    const int fd = daemon.connect_client();
    EXPECT_GE(fd, 0);
    std::vector<std::uint8_t> stream;
    const std::size_t sizes[] = {1, 1000, 33, 4096, 64};
    for (int i = 0; i < 30; ++i) {
      auto reply = server::client::draw(fd, sizes[i % 5]);
      EXPECT_TRUE(reply.ok);
      EXPECT_EQ(reply.status, Status::kOk);
      stream.insert(stream.end(), reply.bytes.begin(), reply.bytes.end());
    }
    ::close(fd);
    daemon.stop();
    return stream;
  };
  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------- metrics

TEST(ServerDaemonTest, MetricsScrapeCarriesBothSchemas) {
  ServerDaemon daemon(registry_factory("str-virtex", 370), base_config(2));
  daemon.start();
  const int fd = daemon.connect_client();
  ASSERT_GE(fd, 0);
  auto reply = server::client::draw(fd, 512);
  ASSERT_TRUE(reply.ok);

  const std::string json = server::client::fetch_metrics(fd);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"schema\": \"trng.server.metrics.v1\""),
            std::string::npos);
  // The pool's own snapshot rides along, unchanged, under "service".
  EXPECT_NE(json.find("\"schema\": \"trng.service.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bytes_generated\": 512"), std::string::npos);
  EXPECT_NE(json.find("\"sessions_opened\": 1"), std::string::npos);
  // Structural sanity: braces and brackets balance.
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  ::close(fd);
  daemon.stop();
  EXPECT_EQ(daemon.metrics().metrics_requests.load(), 1u);
}

// ----------------------------------------------------------------- AF_UNIX

TEST(ServerDaemonTest, UnixSocketListenerServesExternalConnections) {
  const std::string path = "/tmp/trng_serverd_test_" +
                           std::to_string(::getpid()) + ".sock";
  ServerDaemon daemon(registry_factory("str-virtex", 380), base_config(1));
  daemon.start();
  daemon.listen_unix(path);

  const int fd = server::client::connect_unix(path);
  ASSERT_GE(fd, 0);
  auto reply = server::client::draw(fd, 2048);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kOk);
  EXPECT_EQ(reply.bytes.size(), 2048u);
  const std::string json = server::client::fetch_metrics(fd);
  EXPECT_NE(json.find("trng.server.metrics.v1"), std::string::npos);
  ::close(fd);

  daemon.stop();
  // stop() unlinked the socket: connecting again fails cleanly.
  EXPECT_LT(server::client::connect_unix(path), 0);
}

TEST(ServerDaemonTest, ConnectUnixRejectsBadPaths) {
  EXPECT_LT(server::client::connect_unix(""), 0);
  EXPECT_LT(server::client::connect_unix(std::string(200, 'x')), 0);
  EXPECT_LT(server::client::connect_unix("/tmp/definitely-not-there.sock"),
            0);
}

// ---------------------------------------------------------------- shutdown

TEST(ServerDaemonTest, StopDrainsIdleSessionsAndRefusesNewClients) {
  ServerDaemon daemon(registry_factory("str-virtex", 390), base_config(1));
  daemon.start();
  const int fd = daemon.connect_client();
  ASSERT_GE(fd, 0);
  auto reply = server::client::draw(fd, 128);
  ASSERT_TRUE(reply.ok);

  daemon.stop();  // joins the session; the client sees EOF
  std::uint8_t byte;
  EXPECT_FALSE(server::read_full(fd, &byte, 1));
  ::close(fd);

  EXPECT_EQ(daemon.connect_client(), -1);
  EXPECT_EQ(daemon.metrics().sessions_closed.load(),
            daemon.metrics().sessions_opened.load());
  daemon.stop();  // idempotent
}

// Regression: a metrics scraper hammering its own session must stay
// well-formed while other clients draw and the daemon stops mid-flight.
// The scrape path walks every shard's counters while stop() drains the
// pool and joins sessions — exactly the interleaving the lock-order
// contract (Shard::mu before the pool's locks, scrape lock-free) has to
// keep deadlock- and crash-free. Scrapes before stop() must parse as
// the metrics schema; after stop() the scraper may only see a clean
// transport failure (empty string), never a torn frame.
TEST(ServerDaemonTest, MetricsScrapeWhileDrainingStaysWellFormed) {
  // A scrape racing stop() may write into a drained session's socket;
  // that must surface as EPIPE (clean empty scrape), not kill the test.
  std::signal(SIGPIPE, SIG_IGN);
  ServerDaemon daemon(registry_factory("str-virtex", 410), base_config(2));
  daemon.start();

  const int draw_fd = daemon.connect_client();
  const int scrape_fd = daemon.connect_client();
  ASSERT_GE(draw_fd, 0);
  ASSERT_GE(scrape_fd, 0);

  std::atomic<bool> stop_scraping{false};
  std::atomic<int> good_scrapes{0};
  std::atomic<int> torn_scrapes{0};
  std::thread scraper([&] {
    while (!stop_scraping.load(std::memory_order_acquire)) {
      const std::string json = server::client::fetch_metrics(scrape_fd);
      if (json.empty()) {
        // Clean transport failure: only legal once the daemon drains.
        continue;
      }
      if (json.front() != '{' || json.back() != '}' ||
          json.find("\"shards\"") == std::string::npos) {
        torn_scrapes.fetch_add(1);
      } else {
        good_scrapes.fetch_add(1);
      }
    }
  });

  std::thread drawer([&] {
    for (int i = 0; i < 64; ++i) {
      auto reply = server::client::draw(draw_fd, 512);
      if (!reply.ok || reply.status != Status::kOk) break;
    }
  });

  // Let the scraper observe live traffic, then drain under it.
  while (good_scrapes.load() < 8) {
    std::this_thread::yield();
  }
  drawer.join();
  daemon.stop();  // joins sessions while the scraper is mid-request

  stop_scraping.store(true, std::memory_order_release);
  scraper.join();
  ::close(draw_fd);
  ::close(scrape_fd);

  EXPECT_EQ(torn_scrapes.load(), 0);
  EXPECT_GE(good_scrapes.load(), 8);
  EXPECT_EQ(daemon.metrics().sessions_closed.load(),
            daemon.metrics().sessions_opened.load());
}

// A session constructed while the daemon drains answers draw requests
// with kShuttingDown instead of serving them (the buffered-request path).
TEST(ServerSession, DrainingSessionRefusesDrawsWithShuttingDown) {
  service::PoolConfig pcfg;
  pcfg.producers = 1;
  pcfg.producer.block_bits = Bits{512};
  pcfg.producer.h_per_bit = 0.05;
  pcfg.ring_capacity_words = Words{128};
  service::EntropyPool pool(registry_factory("str-virtex", 400), pcfg);
  server::ServerMetrics metrics(1, 4);
  server::Conditioner conditioner(pool, server::ConditionerConfig{}, metrics);

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::atomic<bool> draining{true};
  server::Session session(sv[0], /*id=*/0, /*default_shard=*/0, conditioner,
                          metrics, [] { return std::string("{}"); },
                          server::SessionConfig{}, draining);
  std::thread server_thread([&] { session.serve(); });

  auto reply = server::client::draw(sv[1], 64);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, Status::kShuttingDown);
  EXPECT_TRUE(reply.bytes.empty());

  ::close(sv[1]);  // EOF ends the serve loop
  server_thread.join();
  EXPECT_EQ(metrics.shutdown_refusals.load(), 1u);
  EXPECT_EQ(metrics.shard(0).generates.load(), 0u);
}

}  // namespace
