// Known-answer tests: the worked examples of SP 800-22 rev. 1a, checked
// against the published p-values. Every example is replayed through both
// the scalar reference and the word-parallel kernels, and the two must
// agree to the last bit of the double.
//
// The short examples (n = 10..100) violate the production length
// recommendations, so they run under Gating::kSpecExample, which bypasses
// the recommended minimums without changing the statistic.
#include <gtest/gtest.h>

#include <cmath>

#include "stattests/sp800_22.hpp"
#include "stattests/sp800_22_wordpar.hpp"

namespace trng::stat {
namespace {

// First 100 binary digits of pi (integer part "11" included) — the input
// of the spec's n = 100 worked examples: 42 ones (S_100 = -16), V = 52
// runs, max cumulative-sum excursions 16 forward / 19 backward.
constexpr const char* kPi100 =
    "1100100100001111110110101010001000100001011010001100"
    "001000110100110001001100011001100010100010111000";

common::BitStream pi100() { return common::BitStream::from_string(kPi100); }

constexpr double kTol = 1e-6;  // published values are rounded to 6 digits

}  // namespace

// ---- 2.1 frequency -------------------------------------------------------

TEST(Kat, FrequencyShortExample) {
  // Section 2.1.4: epsilon = 1011010101, S = 2, P = 0.527089.
  const auto bits = common::BitStream::from_string("1011010101");
  const auto scalar = frequency_test(bits, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.527089, kTol);
  EXPECT_EQ(scalar.p(), wordpar::frequency_test(bits, Gating::kSpecExample).p());
}

TEST(Kat, FrequencyPi100) {
  // Section 2.1.8: n = 100, S = -16, P = 0.109599.
  const auto bits = pi100();
  const auto scalar = frequency_test(bits);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.109599, kTol);
  EXPECT_EQ(scalar.p(), wordpar::frequency_test(bits).p());
}

// ---- 2.2 block frequency -------------------------------------------------

TEST(Kat, BlockFrequencyShortExample) {
  // Section 2.2.4: epsilon = 0110011010, M = 3, chi^2 = 1, P = 0.801252.
  const auto bits = common::BitStream::from_string("0110011010");
  const auto scalar = block_frequency_test(bits, 3, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.801252, kTol);
  EXPECT_EQ(scalar.p(),
            wordpar::block_frequency_test(bits, 3, Gating::kSpecExample).p());
}

TEST(Kat, BlockFrequencyPi100) {
  // Section 2.2.8: n = 100, M = 10, chi^2 = 7.2, P = 0.706438.
  const auto bits = pi100();
  const auto scalar = block_frequency_test(bits, 10, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.706438, kTol);
  EXPECT_EQ(scalar.p(),
            wordpar::block_frequency_test(bits, 10, Gating::kSpecExample).p());
}

// ---- 2.3 runs ------------------------------------------------------------

TEST(Kat, RunsShortExample) {
  // Section 2.3.4: epsilon = 1001101011, V = 7, P = 0.147232.
  const auto bits = common::BitStream::from_string("1001101011");
  const auto scalar = runs_test(bits, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.147232, kTol);
  EXPECT_EQ(scalar.p(), wordpar::runs_test(bits, Gating::kSpecExample).p());
}

TEST(Kat, RunsPi100) {
  // Section 2.3.8: n = 100, pi = 0.42, V = 52, P = 0.500798.
  const auto bits = pi100();
  const auto scalar = runs_test(bits);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.500798, kTol);
  EXPECT_EQ(scalar.p(), wordpar::runs_test(bits).p());
}

// ---- 2.13 cumulative sums ------------------------------------------------

TEST(Kat, CumulativeSumsShortExample) {
  // Section 2.13.4: epsilon = 1011010111, z = 4. The spec prints
  // P = 0.4116588, but evaluating its own closed-form sum (step 4 of
  // §2.13.4) exactly gives 0.4115847 — the printed value is a document
  // erratum (truncated normal-CDF table). The n = 100 example below
  // matches the same formula to all published digits, confirming the
  // implementation; assert the exact value here.
  const auto bits = common::BitStream::from_string("1011010111");
  const auto scalar = cumulative_sums_test(bits, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  ASSERT_EQ(scalar.p_values.size(), 2u);
  EXPECT_NEAR(scalar.p_values[0], 0.4115847, kTol);
  const auto word = wordpar::cumulative_sums_test(bits, Gating::kSpecExample);
  EXPECT_EQ(scalar.p_values[0], word.p_values[0]);
  EXPECT_EQ(scalar.p_values[1], word.p_values[1]);
}

TEST(Kat, CumulativeSumsPi100) {
  // Section 2.13.8: n = 100, z = 16 forward (P = 0.219194) and z = 19
  // backward (P = 0.114866).
  const auto bits = pi100();
  const auto scalar = cumulative_sums_test(bits);
  ASSERT_TRUE(scalar.applicable);
  ASSERT_EQ(scalar.p_values.size(), 2u);
  EXPECT_NEAR(scalar.p_values[0], 0.219194, kTol);
  EXPECT_NEAR(scalar.p_values[1], 0.114866, kTol);
  const auto word = wordpar::cumulative_sums_test(bits);
  EXPECT_EQ(scalar.p_values[0], word.p_values[0]);
  EXPECT_EQ(scalar.p_values[1], word.p_values[1]);
}

// ---- 2.11 serial ---------------------------------------------------------

TEST(Kat, SerialShortExample) {
  // Section 2.11.4: epsilon = 0011011101, m = 3, psi^2_3 = 2.8,
  // psi^2_2 = 1.2, psi^2_1 = 0.4 -> P1 = 0.808792, P2 = 0.670320.
  const auto bits = common::BitStream::from_string("0011011101");
  const auto scalar = serial_test(bits, 3, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  ASSERT_EQ(scalar.p_values.size(), 2u);
  EXPECT_NEAR(scalar.p_values[0], 0.808792, kTol);
  EXPECT_NEAR(scalar.p_values[1], 0.670320, kTol);
  const auto word = wordpar::serial_test(bits, 3, Gating::kSpecExample);
  EXPECT_EQ(scalar.p_values[0], word.p_values[0]);
  EXPECT_EQ(scalar.p_values[1], word.p_values[1]);
}

// ---- 2.12 approximate entropy --------------------------------------------

TEST(Kat, ApproximateEntropyShortExample) {
  // Section 2.12.4: epsilon = 0100110101, m = 3, chi^2 = 10.043862,
  // P = 0.261961.
  const auto bits = common::BitStream::from_string("0100110101");
  const auto scalar = approximate_entropy_test(bits, 3, Gating::kSpecExample);
  ASSERT_TRUE(scalar.applicable);
  EXPECT_NEAR(scalar.p(), 0.261961, kTol);
  EXPECT_EQ(scalar.p(),
            wordpar::approximate_entropy_test(bits, 3, Gating::kSpecExample).p());
}

// ---- 2.9 universal -------------------------------------------------------

TEST(Kat, UniversalShortExample) {
  // Section 2.9.4: epsilon = 01011010011101010111, L = 2, Q = 4, K = 6,
  // sum = log2(3) + log2(6) + 1 + 0 + 0 + 2, fn = 1.1949875. The spec's
  // illustrated P-value (0.767189) uses the simplified sigma =
  // sqrt(variance) without the c bias-correction factor, so it is
  // recomputed here from fn rather than from universal_statistic's
  // production formula.
  const auto bits = common::BitStream::from_string("01011010011101010111");
  const auto stat = universal_statistic(bits, 2, 4, 1.5374383, 1.338);
  EXPECT_EQ(stat.k, 6u);
  EXPECT_NEAR(stat.fn, 1.1949875, kTol);
  const double illustrated =
      std::erfc(std::fabs(stat.fn - 1.5374383) /
                (std::sqrt(2.0) * std::sqrt(1.338)));
  EXPECT_NEAR(illustrated, 0.767189, kTol);
  EXPECT_GT(stat.p_value, 0.0);
  EXPECT_LE(stat.p_value, 1.0);
}

}  // namespace trng::stat
