// Tests for the per-shard DRBG conditioning tier: configuration
// validation, the determinism guarantee (fixed pool seed + producers == 1
// => bit-identical conditioned stream), prediction-resistance reseeds,
// backpressure on a starved shard, and the metrics accounting that ties
// entropy consumption to (re)seed events.
//
// Suites are named Conditioner* on purpose: the `tsan-server` ctest
// preset selects them with the regex ^(Server|Drbg|Conditioner).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/source_registry.hpp"
#include "server/conditioner.hpp"
#include "server/metrics.hpp"
#include "service/entropy_pool.hpp"

namespace {

using namespace trng;
using common::Bits;
using common::Words;
using server::Conditioner;
using server::ConditionerConfig;
using DrawStatus = server::Conditioner::DrawStatus;

service::SourceFactory registry_factory(const std::string& id,
                                        std::uint64_t die_seed_base) {
  return [id, die_seed_base](std::size_t index, std::uint64_t seed) {
    return core::make_die_seeded_source(id, die_seed_base + index, seed);
  };
}

// A gate a sane source never trips (see test_entropy_pool.cpp).
service::PoolConfig pool_config(std::size_t producers) {
  service::PoolConfig cfg;
  cfg.producers = producers;
  cfg.producer.block_bits = Bits{512};
  cfg.producer.h_per_bit = 0.05;
  cfg.ring_capacity_words = Words{128};
  return cfg;
}

ConditionerConfig small_conditioner() {
  ConditionerConfig cfg;
  cfg.drbg.reseed_interval = 8;  // frequent reseeds in small tests
  cfg.seed_words = Words{16};
  return cfg;
}

// ---------------------------------------------------------------- config

TEST(ConditionerConfigTest, ValidateRejectsNonsense) {
  ConditionerConfig cfg;
  cfg.seed_words = Words{0};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ConditionerConfig{};
  cfg.reseed_timeout_ns = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ConditionerConfig{};
  cfg.drbg.reseed_interval = 0;  // nested DrbgLimits validated too
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ConditionerConfig{}.validate());
}

TEST(ConditionerConfigTest, ConstructorDemandsOneMetricsSlotPerShard) {
  auto cfg = pool_config(2);
  service::EntropyPool pool(registry_factory("str-virtex", 200), cfg);
  server::ServerMetrics too_few(/*shards=*/1, /*client_slots=*/4);
  EXPECT_THROW(Conditioner(pool, small_conditioner(), too_few),
               std::invalid_argument);
  server::ServerMetrics enough(/*shards=*/2, /*client_slots=*/4);
  EXPECT_NO_THROW(Conditioner(pool, small_conditioner(), enough));
}

// ----------------------------------------------------------- validation

TEST(ConditionerDraw, BadRequestsAreRefusedWithoutTouchingTheDrbg) {
  auto cfg = pool_config(1);
  service::EntropyPool pool(registry_factory("str-virtex", 210), cfg);
  server::ServerMetrics metrics(1, 4);
  Conditioner cond(pool, small_conditioner(), metrics);

  std::vector<std::uint8_t> out(128);
  // Out-of-range shard, zero bytes, oversized request: all kBadRequest,
  // and none of them consume entropy or instantiate a DRBG.
  EXPECT_EQ(DrawStatus::kBadRequest, cond.draw(1, out.data(), 64, false));
  EXPECT_EQ(DrawStatus::kBadRequest, cond.draw(0, out.data(), 0, false));
  const std::size_t too_big =
      cond.config().drbg.max_request_bytes + 1;
  std::vector<std::uint8_t> big(too_big);
  EXPECT_EQ(DrawStatus::kBadRequest,
            cond.draw(0, big.data(), too_big, false));
  EXPECT_EQ(metrics.shard(0).instantiates.load(), 0u);
  EXPECT_EQ(metrics.shard(0).entropy_words_consumed.load(), 0u);
}

TEST(ConditionerDraw, StatusNamesAreStable) {
  EXPECT_STREQ(server::draw_status_name(DrawStatus::kOk), "ok");
  EXPECT_STREQ(server::draw_status_name(DrawStatus::kBackpressure),
               "backpressure");
  EXPECT_STREQ(server::draw_status_name(DrawStatus::kBadRequest),
               "bad_request");
}

// ---------------------------------------------------------- determinism

// The tier-level determinism guarantee: two pools built from the same
// configuration and seeds, each feeding its own conditioner, produce
// bit-identical conditioned streams for the same request sequence —
// including across several reseed boundaries.
TEST(ConditionerDraw, SingleProducerStreamIsDeterministic) {
  auto cfg = pool_config(1);
  cfg.stream_seed_base = 4242;

  auto run = [&cfg]() {
    service::EntropyPool pool(registry_factory("str-virtex", 220), cfg);
    server::ServerMetrics metrics(1, 4);
    Conditioner cond(pool, small_conditioner(), metrics);
    pool.start();
    std::vector<std::uint8_t> stream;
    std::vector<std::uint8_t> buf(256);
    // Ragged request sizes; 40 requests with reseed_interval = 8 forces
    // at least four reseeds beyond the initial instantiate.
    const std::size_t sizes[] = {1, 33, 256, 7, 64};
    for (int i = 0; i < 40; ++i) {
      const std::size_t n = sizes[i % 5];
      EXPECT_EQ(DrawStatus::kOk, cond.draw(0, buf.data(), n, false));
      stream.insert(stream.end(), buf.begin(), buf.begin() + n);
    }
    pool.stop();
    EXPECT_GE(metrics.shard(0).reseeds.load(), 4u);
    EXPECT_EQ(metrics.shard(0).instantiates.load(), 1u);
    return stream;
  };

  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
}

// ------------------------------------------------- reseeds + accounting

TEST(ConditionerDraw, PredictionResistanceForcesAReseedPerDraw) {
  auto cfg = pool_config(1);
  service::EntropyPool pool(registry_factory("str-virtex", 230), cfg);
  server::ServerMetrics metrics(1, 4);
  ConditionerConfig ccfg = small_conditioner();
  Conditioner cond(pool, ccfg, metrics);
  pool.start();

  std::vector<std::uint8_t> out(64);
  // First draw instantiates; the next two without PR reuse the seed.
  ASSERT_EQ(DrawStatus::kOk, cond.draw(0, out.data(), out.size(), false));
  ASSERT_EQ(DrawStatus::kOk, cond.draw(0, out.data(), out.size(), false));
  ASSERT_EQ(DrawStatus::kOk, cond.draw(0, out.data(), out.size(), false));
  EXPECT_EQ(metrics.shard(0).instantiates.load(), 1u);
  EXPECT_EQ(metrics.shard(0).reseeds.load(), 0u);

  // Three PR draws: one reseed each, immediately before the generate.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(DrawStatus::kOk, cond.draw(0, out.data(), out.size(), true));
  }
  pool.stop();
  EXPECT_EQ(metrics.shard(0).reseeds.load(), 3u);
  // Every instantiate/reseed ate exactly seed_words of pool entropy.
  EXPECT_EQ(metrics.shard(0).entropy_words_consumed.load(),
            4 * ccfg.seed_words.count());
  EXPECT_EQ(metrics.shard(0).generates.load(), 6u);
  EXPECT_EQ(metrics.shard(0).bytes_generated.load(), 6 * out.size());
  EXPECT_EQ(metrics.shard(0).generate_latency_us.total(), 6u);
}

TEST(ConditionerDraw, StarvedShardBackpressuresAndIsMetered) {
  auto cfg = pool_config(1);
  // Pool never started: the ring stays empty, so the instantiate draw
  // must time out and surface as backpressure.
  service::EntropyPool pool(registry_factory("str-virtex", 240), cfg);
  server::ServerMetrics metrics(1, 4);
  ConditionerConfig ccfg = small_conditioner();
  ccfg.reseed_timeout_ns = 50'000'000;  // 50 ms: keep the test fast
  Conditioner cond(pool, ccfg, metrics);

  std::vector<std::uint8_t> out(32);
  EXPECT_EQ(DrawStatus::kBackpressure,
            cond.draw(0, out.data(), out.size(), false));
  EXPECT_EQ(metrics.shard(0).reseed_timeouts.load(), 1u);
  EXPECT_EQ(metrics.shard(0).backpressure.load(), 1u);
  EXPECT_EQ(metrics.shard(0).generates.load(), 0u);

  // Feed the ring by hand; the buffered partial (zero words here) plus
  // the fresh block completes the seed and the draw recovers.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.producer(0).step());  // 512 bits = 8 words per step
  }
  EXPECT_EQ(DrawStatus::kOk, cond.draw(0, out.data(), out.size(), false));
  EXPECT_EQ(metrics.shard(0).instantiates.load(), 1u);
  EXPECT_EQ(metrics.shard(0).entropy_words_consumed.load(),
            ccfg.seed_words.count());
}

TEST(ConditionerDraw, ShardsAreIndependent) {
  auto cfg = pool_config(2);
  service::EntropyPool pool(registry_factory("str-virtex", 250), cfg);
  server::ServerMetrics metrics(2, 4);
  Conditioner cond(pool, small_conditioner(), metrics);
  ASSERT_EQ(cond.shards(), 2u);
  pool.start();

  std::vector<std::uint8_t> a(64), b(64);
  ASSERT_EQ(DrawStatus::kOk, cond.draw(0, a.data(), a.size(), false));
  ASSERT_EQ(DrawStatus::kOk, cond.draw(1, b.data(), b.size(), false));
  pool.stop();

  // Different shards have different DRBGs (distinct nonces and entropy):
  // their streams must not collide.
  EXPECT_NE(a, b);
  EXPECT_EQ(metrics.shard(0).instantiates.load(), 1u);
  EXPECT_EQ(metrics.shard(1).instantiates.load(), 1u);
}

}  // namespace
