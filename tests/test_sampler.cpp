// Unit tests for the sample controller (enable -> accumulate -> capture).
#include <gtest/gtest.h>

#include "fpga/fabric.hpp"
#include "sim/sampler.hpp"

namespace trng::sim {
namespace {

fpga::ElaboratedTrng make_elaborated(std::uint64_t die = 42,
                                     const fpga::FabricSpec& spec = {}) {
  fpga::Fabric fabric(fpga::DeviceGeometry{}, die, spec);
  const auto fp =
      fpga::TrngFloorplan::canonical(fabric.geometry(), 3, 36, 0, 17);
  return fabric.elaborate(fp);
}

TEST(SampleController, RejectsBadArguments) {
  const auto e = make_elaborated();
  fpga::FlipFlopTimingSpec ff;
  EXPECT_THROW(SampleController(e, ff, NoiseConfig{}, 1,
                                SamplingMode::kRestart, 0.0),
               std::invalid_argument);
  SampleController sc(e, ff, NoiseConfig{}, 1);
  EXPECT_THROW(sc.next_capture(0), std::invalid_argument);
}

TEST(SampleController, CaptureHasOneSnapshotPerLine) {
  const auto e = make_elaborated();
  SampleController sc(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 7);
  const auto cap = sc.next_capture(1);
  ASSERT_EQ(cap.lines.size(), 3u);
  for (const auto& snap : cap.lines) EXPECT_EQ(snap.size(), 36u);
  EXPECT_DOUBLE_EQ(cap.sample_time_ps, 10000.0);
}

TEST(SampleController, SampleTimesAdvanceByAccumulationPlusOneCycle) {
  const auto e = make_elaborated();
  SampleController sc(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 7);
  const auto c1 = sc.next_capture(5);
  const auto c2 = sc.next_capture(5);
  EXPECT_DOUBLE_EQ(c1.sample_time_ps, 50000.0);
  EXPECT_DOUBLE_EQ(c2.sample_time_ps, 50000.0 + 10000.0 + 50000.0);
}

TEST(SampleController, RestartModeIsPhaseDeterministicWithoutNoise) {
  const auto e = make_elaborated(42, fpga::ideal_fabric_spec());
  fpga::FlipFlopTimingSpec ff = fpga::ideal_fabric_spec().flip_flop;
  NoiseConfig off = NoiseConfig::white_only();
  off.white_sigma_scale = 0.0;
  SampleController sc(e, ff, off, 9, SamplingMode::kRestart);
  const auto c1 = sc.next_capture(1);
  const auto c2 = sc.next_capture(1);
  EXPECT_EQ(c1.lines, c2.lines);  // identical phase, identical snapshot
}

TEST(SampleController, FreeRunningModeDrifts) {
  // Without restarts the oscillator phase moves relative to the sampling
  // grid, so consecutive noise-free captures generally differ.
  const auto e = make_elaborated(42, fpga::ideal_fabric_spec());
  fpga::FlipFlopTimingSpec ff = fpga::ideal_fabric_spec().flip_flop;
  NoiseConfig off = NoiseConfig::white_only();
  off.white_sigma_scale = 0.0;
  SampleController sc(e, ff, off, 9, SamplingMode::kFreeRunning);
  const auto c1 = sc.next_capture(1);
  bool any_diff = false;
  for (int i = 0; i < 8 && !any_diff; ++i) {
    any_diff = !(sc.next_capture(1).lines == c1.lines);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SampleController, DeterministicPerSeed) {
  const auto e = make_elaborated();
  SampleController a(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 1234);
  SampleController b(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 1234);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_capture(1).lines, b.next_capture(1).lines);
  }
}

TEST(SampleController, MetastableCounterAccumulates) {
  const auto e = make_elaborated();
  SampleController sc(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 5,
                      SamplingMode::kFreeRunning);
  for (int i = 0; i < 500; ++i) (void)sc.next_capture(1);
  // Free-running sweeps all phases; some captures must hit the aperture.
  EXPECT_GT(sc.metastable_events(), 0u);
}

TEST(SampleController, RejectsMismatchedElaboration) {
  auto e = make_elaborated();
  e.lines.pop_back();  // now 3 stages but 2 lines
  EXPECT_THROW(
      SampleController(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 1),
      std::invalid_argument);
}

TEST(SampleController, PackedCaptureMatchesScalarCapture) {
  // next_capture_into is the batched reference path used by the TRNG's
  // generate_into: for identically-seeded controllers it must reproduce
  // next_capture bit for bit, with identical sample times, and
  // classify_packed must agree with classify_snapshots on every capture —
  // in both sampling modes (free-running sweeps all Figure-4 classes).
  const auto e = make_elaborated();
  for (auto mode : {SamplingMode::kRestart, SamplingMode::kFreeRunning}) {
    SCOPED_TRACE(mode == SamplingMode::kRestart ? "restart" : "free-running");
    SampleController scalar(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 7,
                            mode);
    SampleController batched(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 7,
                             mode);
    PackedCapture pc;
    for (int iter = 0; iter < 60; ++iter) {
      const CaptureResult cap = scalar.next_capture(2);
      batched.next_capture_into(2, pc);
      ASSERT_DOUBLE_EQ(pc.sample_time_ps, cap.sample_time_ps);
      ASSERT_EQ(pc.lines, static_cast<int>(cap.lines.size()));
      ASSERT_EQ(pc.taps, static_cast<int>(cap.lines.front().size()));
      for (int i = 0; i < pc.lines; ++i) {
        const std::uint64_t* words = pc.line(i);
        for (int j = 0; j < pc.taps; ++j) {
          ASSERT_EQ(static_cast<bool>((words[j >> 6] >> (j & 63)) & 1ULL),
                    cap.lines[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(j)])
              << "capture " << iter << " line " << i << " tap " << j;
        }
      }
      ASSERT_EQ(classify_packed(pc), classify_snapshots(cap.lines))
          << "capture " << iter;
    }
    EXPECT_EQ(scalar.metastable_events(), batched.metastable_events());
  }
}

}  // namespace
}  // namespace trng::sim
