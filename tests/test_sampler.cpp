// Unit tests for the sample controller (enable -> accumulate -> capture).
#include <gtest/gtest.h>

#include "fpga/fabric.hpp"
#include "sim/sampler.hpp"

namespace trng::sim {
namespace {

fpga::ElaboratedTrng make_elaborated(std::uint64_t die = 42,
                                     const fpga::FabricSpec& spec = {}) {
  fpga::Fabric fabric(fpga::DeviceGeometry{}, die, spec);
  const auto fp =
      fpga::TrngFloorplan::canonical(fabric.geometry(), 3, 36, 0, 17);
  return fabric.elaborate(fp);
}

TEST(SampleController, RejectsBadArguments) {
  const auto e = make_elaborated();
  fpga::FlipFlopTimingSpec ff;
  EXPECT_THROW(SampleController(e, ff, NoiseConfig{}, 1,
                                SamplingMode::kRestart, 0.0),
               std::invalid_argument);
  SampleController sc(e, ff, NoiseConfig{}, 1);
  EXPECT_THROW(sc.next_capture(0), std::invalid_argument);
}

TEST(SampleController, CaptureHasOneSnapshotPerLine) {
  const auto e = make_elaborated();
  SampleController sc(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 7);
  const auto cap = sc.next_capture(1);
  ASSERT_EQ(cap.lines.size(), 3u);
  for (const auto& snap : cap.lines) EXPECT_EQ(snap.size(), 36u);
  EXPECT_DOUBLE_EQ(cap.sample_time_ps, 10000.0);
}

TEST(SampleController, SampleTimesAdvanceByAccumulationPlusOneCycle) {
  const auto e = make_elaborated();
  SampleController sc(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 7);
  const auto c1 = sc.next_capture(5);
  const auto c2 = sc.next_capture(5);
  EXPECT_DOUBLE_EQ(c1.sample_time_ps, 50000.0);
  EXPECT_DOUBLE_EQ(c2.sample_time_ps, 50000.0 + 10000.0 + 50000.0);
}

TEST(SampleController, RestartModeIsPhaseDeterministicWithoutNoise) {
  const auto e = make_elaborated(42, fpga::ideal_fabric_spec());
  fpga::FlipFlopTimingSpec ff = fpga::ideal_fabric_spec().flip_flop;
  NoiseConfig off = NoiseConfig::white_only();
  off.white_sigma_scale = 0.0;
  SampleController sc(e, ff, off, 9, SamplingMode::kRestart);
  const auto c1 = sc.next_capture(1);
  const auto c2 = sc.next_capture(1);
  EXPECT_EQ(c1.lines, c2.lines);  // identical phase, identical snapshot
}

TEST(SampleController, FreeRunningModeDrifts) {
  // Without restarts the oscillator phase moves relative to the sampling
  // grid, so consecutive noise-free captures generally differ.
  const auto e = make_elaborated(42, fpga::ideal_fabric_spec());
  fpga::FlipFlopTimingSpec ff = fpga::ideal_fabric_spec().flip_flop;
  NoiseConfig off = NoiseConfig::white_only();
  off.white_sigma_scale = 0.0;
  SampleController sc(e, ff, off, 9, SamplingMode::kFreeRunning);
  const auto c1 = sc.next_capture(1);
  bool any_diff = false;
  for (int i = 0; i < 8 && !any_diff; ++i) {
    any_diff = !(sc.next_capture(1).lines == c1.lines);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SampleController, DeterministicPerSeed) {
  const auto e = make_elaborated();
  SampleController a(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 1234);
  SampleController b(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 1234);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_capture(1).lines, b.next_capture(1).lines);
  }
}

TEST(SampleController, MetastableCounterAccumulates) {
  const auto e = make_elaborated();
  SampleController sc(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 5,
                      SamplingMode::kFreeRunning);
  for (int i = 0; i < 500; ++i) (void)sc.next_capture(1);
  // Free-running sweeps all phases; some captures must hit the aperture.
  EXPECT_GT(sc.metastable_events(), 0u);
}

TEST(SampleController, RejectsMismatchedElaboration) {
  auto e = make_elaborated();
  e.lines.pop_back();  // now 3 stages but 2 lines
  EXPECT_THROW(
      SampleController(e, fpga::FlipFlopTimingSpec{}, NoiseConfig{}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace trng::sim
