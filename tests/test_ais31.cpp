// Unit tests for the AIS-31 procedure-A tests.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "stattests/ais31.hpp"

namespace trng::stat::ais31 {
namespace {

common::BitStream random_bits(std::size_t n, std::uint64_t seed = 1) {
  common::Xoshiro256StarStar rng(seed);
  common::BitStream b;
  b.reserve(n);
  for (std::size_t w = 0; w < n / 64 + 1; ++w) b.append_bits(rng.next(), 64);
  return b.slice(0, n);
}

common::BitStream biased_bits(std::size_t n, double p, std::uint64_t seed) {
  common::Xoshiro256StarStar rng(seed);
  common::BitStream b;
  for (std::size_t i = 0; i < n; ++i) b.push_back(rng.next_double() < p);
  return b;
}

TEST(T0Disjointness, PassesRandomFailsRepeating) {
  EXPECT_TRUE(t0_disjointness(random_bits(65536 * 48)).passed);
  // A stream that repeats a 48-bit pattern has colliding words.
  common::BitStream repeat;
  const auto pattern = random_bits(48, 9);
  for (int i = 0; i < 65536; ++i) repeat.append(pattern);
  EXPECT_FALSE(t0_disjointness(repeat).passed);
  EXPECT_FALSE(t0_disjointness(random_bits(1000)).applicable);
}

TEST(T1Monobit, BoundsAreExact) {
  // 9655 ones passes, 9654 fails (bounds are exclusive).
  common::BitStream pass;
  for (int i = 0; i < 9655; ++i) pass.push_back(true);
  for (int i = 0; i < 20000 - 9655; ++i) pass.push_back(false);
  EXPECT_TRUE(t1_monobit(pass).passed);
  common::BitStream fail;
  for (int i = 0; i < 9654; ++i) fail.push_back(true);
  for (int i = 0; i < 20000 - 9654; ++i) fail.push_back(false);
  EXPECT_FALSE(t1_monobit(fail).passed);
  EXPECT_FALSE(t1_monobit(random_bits(100)).applicable);
}

TEST(T1Monobit, PassesRandom) {
  EXPECT_TRUE(t1_monobit(random_bits(20000)).passed);
}

TEST(T2Poker, PassesRandomFailsConstant) {
  EXPECT_TRUE(t2_poker(random_bits(20000)).passed);
  common::BitStream constant;
  for (int i = 0; i < 20000; ++i) constant.push_back(false);
  EXPECT_FALSE(t2_poker(constant).passed);
}

TEST(T2Poker, FailsTooUniform) {
  // Cycling through all 16 nibbles gives X ~ 0 < 1.03: suspiciously even.
  common::BitStream cycle;
  for (int b = 0; b < 1250; ++b) {
    for (int v = 0; v < 16; ++v) {
      for (int j = 3; j >= 0; --j) cycle.push_back((v >> j) & 1);
    }
  }
  ASSERT_EQ(cycle.size(), 80000u);
  EXPECT_FALSE(t2_poker(cycle).passed);
}

TEST(T3Runs, PassesRandomFailsAlternating) {
  EXPECT_TRUE(t3_runs(random_bits(20000)).passed);
  common::BitStream alt;
  for (int i = 0; i < 20000; ++i) alt.push_back(i % 2 == 0);
  EXPECT_FALSE(t3_runs(alt).passed);  // all runs length 1: way over bound
}

TEST(T4LongRun, DetectsRunOf34) {
  auto bits = random_bits(20000, 3);
  EXPECT_TRUE(t4_long_run(bits).passed);
  common::BitStream with_run = bits.slice(0, 10000);
  for (int i = 0; i < 34; ++i) with_run.push_back(true);
  with_run.append(bits.slice(10000, 20000 - with_run.size()));
  EXPECT_FALSE(t4_long_run(with_run).passed);
}

TEST(T5Autocorrelation, PassesRandomFailsPeriodic) {
  EXPECT_TRUE(t5_autocorrelation(random_bits(20000)).passed);
  // Period-16 signal: tau = 16 correlates perfectly in phase 2 as well.
  common::BitStream periodic;
  for (int i = 0; i < 20000; ++i) periodic.push_back((i % 16) < 8);
  EXPECT_FALSE(t5_autocorrelation(periodic).passed);
  EXPECT_FALSE(t5_autocorrelation(random_bits(10000)).applicable);
}

TEST(T6Uniform, BoundsAreRespected) {
  EXPECT_TRUE(t6_uniform_distribution(random_bits(100000)).passed);
  EXPECT_FALSE(t6_uniform_distribution(biased_bits(100000, 0.53, 11)).passed);
  EXPECT_FALSE(t6_uniform_distribution(random_bits(50000)).applicable);
}

TEST(T7Homogeneity, PassesIidFailsMarkov) {
  EXPECT_TRUE(t7_homogeneity(random_bits(100001)).passed);
  // A sticky chain has P(1|1) != P(1|0): homogeneity must fail even though
  // the marginal distribution is perfectly balanced.
  common::Xoshiro256StarStar rng(12);
  common::BitStream sticky;
  bool cur = false;
  for (int i = 0; i < 100001; ++i) {
    if (rng.next_double() < 0.4) cur = !cur;
    sticky.push_back(cur);
  }
  EXPECT_TRUE(t6_uniform_distribution(sticky).passed);  // balanced marginal
  EXPECT_FALSE(t7_homogeneity(sticky).passed);
  EXPECT_FALSE(t7_homogeneity(random_bits(1000)).applicable);
}

TEST(T7Homogeneity, InapplicableForNearConstant) {
  common::BitStream almost;
  for (int i = 0; i < 100001; ++i) almost.push_back(i % 5000 == 0);
  EXPECT_FALSE(t7_homogeneity(almost).applicable);
}

TEST(ProcedureB, PassesGoodFailsCorrelated) {
  EXPECT_TRUE(procedure_b(random_bits((2560 + 256000) * 8)));
  common::Xoshiro256StarStar rng(13);
  common::BitStream sticky;
  bool cur = false;
  for (std::size_t i = 0; i < (2560 + 256000) * 8; ++i) {
    if (rng.next_double() < 0.3) cur = !cur;
    sticky.push_back(cur);
  }
  EXPECT_FALSE(procedure_b(sticky));
}

TEST(T8Entropy, PassesRandom) {
  // Needs (2560 + 256000) * 8 bits.
  const auto r = t8_entropy(random_bits((2560 + 256000) * 8));
  EXPECT_TRUE(r.applicable);
  EXPECT_TRUE(r.passed);
  // The statistic approximates the per-word entropy: ~8 for ideal input.
  EXPECT_NEAR(r.statistic, 8.0, 0.05);
}

TEST(T8Entropy, FailsBiased) {
  const auto r = t8_entropy(biased_bits((2560 + 256000) * 8, 0.7, 4));
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.passed);
  EXPECT_LT(r.statistic, 7.6);
}

TEST(T8Entropy, RejectsBadParameters) {
  EXPECT_FALSE(t8_entropy(random_bits(1000), 8).applicable);
  EXPECT_FALSE(t8_entropy(random_bits(100000), 20).applicable);
  EXPECT_FALSE(t8_entropy(random_bits(100000), 8, 10).applicable);
}

TEST(ProcedureA, PassesGoodRandomness) {
  EXPECT_TRUE(procedure_a(random_bits(65536 * 48 + 1)));
}

TEST(ProcedureA, FailsBiasedSource) {
  EXPECT_FALSE(procedure_a(biased_bits(65536 * 48 + 1, 0.6, 5)));
}

}  // namespace
}  // namespace trng::stat::ais31
