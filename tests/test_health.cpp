// Unit tests for the embedded online health tests (future work, Section 7).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/health.hpp"

namespace trng::core {
namespace {

TEST(RepetitionCount, RejectsBadParameters) {
  EXPECT_THROW(RepetitionCountTest(0.0), std::invalid_argument);
  EXPECT_THROW(RepetitionCountTest(1.5), std::invalid_argument);
  EXPECT_THROW(RepetitionCountTest(0.9, 0.0), std::invalid_argument);
}

TEST(RepetitionCount, CutoffFormula) {
  // C = 1 + ceil(alpha_log2 / H): H = 1, alpha 2^-20 -> 21.
  EXPECT_EQ(RepetitionCountTest(1.0, 20.0).cutoff(), 21u);
  EXPECT_EQ(RepetitionCountTest(0.5, 20.0).cutoff(), 41u);
}

TEST(RepetitionCount, FiresOnStuckSource) {
  RepetitionCountTest t(1.0, 20.0);
  bool fired = false;
  for (int i = 0; i < 30; ++i) fired = t.feed(true) || fired;
  EXPECT_TRUE(fired);
  EXPECT_EQ(t.alarms(), 1u);
}

TEST(RepetitionCount, QuietOnAlternatingSource) {
  RepetitionCountTest t(1.0, 20.0);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(t.feed(i % 2 == 0));
  EXPECT_EQ(t.alarms(), 0u);
}

TEST(RepetitionCount, QuietOnFairRandom) {
  // Cutoff 31 (alpha = 2^-30): expected alarms over 2e5 fair bits ~ 1e-4.
  common::Xoshiro256StarStar rng(1);
  RepetitionCountTest t(1.0, 30.0);
  for (int i = 0; i < 200000; ++i) t.feed(rng.next() & 1);
  EXPECT_EQ(t.alarms(), 0u);
}

TEST(AdaptiveProportion, RejectsBadParameters) {
  EXPECT_THROW(AdaptiveProportionTest(0.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveProportionTest(1.0, 8), std::invalid_argument);
}

TEST(AdaptiveProportion, FiresOnHeavyBias) {
  AdaptiveProportionTest t(1.0, 1024, 20.0);
  common::Xoshiro256StarStar rng(2);
  bool fired = false;
  for (int i = 0; i < 20000 && !fired; ++i) {
    fired = t.feed(rng.next_double() < 0.95);
  }
  EXPECT_TRUE(fired);
}

TEST(AdaptiveProportion, QuietOnFairRandom) {
  AdaptiveProportionTest t(1.0, 1024, 20.0);
  common::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 500000; ++i) t.feed(rng.next() & 1);
  EXPECT_EQ(t.alarms(), 0u);
}

TEST(AdaptiveProportion, ToleratesDeclaredEntropyLevel) {
  // A source assessed at H = 0.6 per bit (p ~ 0.66) must NOT alarm when it
  // behaves exactly that way.
  AdaptiveProportionTest t(0.6, 1024, 20.0);
  common::Xoshiro256StarStar rng(4);
  for (int i = 0; i < 500000; ++i) t.feed(rng.next_double() < 0.66);
  EXPECT_EQ(t.alarms(), 0u);
}

TEST(TotalFailure, FiresAfterConsecutiveMisses) {
  TotalFailureTest t(4);
  EXPECT_FALSE(t.feed(false));
  EXPECT_FALSE(t.feed(false));
  EXPECT_FALSE(t.feed(false));
  EXPECT_TRUE(t.feed(false));
  EXPECT_EQ(t.alarms(), 1u);
}

TEST(TotalFailure, EdgeResetsTheCounter) {
  TotalFailureTest t(3);
  t.feed(false);
  t.feed(false);
  EXPECT_FALSE(t.feed(true));  // recovery
  t.feed(false);
  t.feed(false);
  EXPECT_TRUE(t.feed(false));
}

TEST(TotalFailure, RejectsZeroCutoff) {
  EXPECT_THROW(TotalFailureTest(0), std::invalid_argument);
}

TEST(OnlineHealthMonitor, QuietOnHealthySource) {
  OnlineHealthMonitor m(0.95);
  common::Xoshiro256StarStar rng(5);
  for (int i = 0; i < 300000; ++i) {
    EXPECT_FALSE(m.feed(rng.next() & 1, true));
  }
  EXPECT_EQ(m.total_alarms(), 0u);
}

TEST(OnlineHealthMonitor, CatchesDeadOscillator) {
  OnlineHealthMonitor m(0.95);
  // A dead oscillator: no edges, constant zero output.
  bool fired = false;
  for (int i = 0; i < 50 && !fired; ++i) fired = m.feed(false, false);
  EXPECT_TRUE(fired);
  EXPECT_GT(m.total_failure().alarms() + m.repetition().alarms(), 0u);
}

TEST(OnlineHealthMonitor, FeedBlockMatchesScalarFeed) {
  // feed_block is the batched facet used by the BitSource datapath: for
  // the same bit sequence it must leave the monitor in the same state and
  // report the same alarm totals as per-bit feed(bit, true) — across
  // unbiased, biased and adversarial (constant) words, and regardless of
  // the block sizes the sequence is split into.
  OnlineHealthMonitor scalar(0.95);
  OnlineHealthMonitor batched(0.95);
  common::Xoshiro256StarStar rng(31);
  const std::vector<std::size_t> blocks = {1, 3, 64, 65, 127, 1024, 40000};
  std::uint64_t scalar_alarms = 0;
  std::uint64_t batched_alarms = 0;
  for (std::size_t phase = 0; phase < 3; ++phase) {
    for (std::size_t nbits : blocks) {
      std::vector<std::uint64_t> words((nbits + 63) / 64, 0);
      for (std::size_t i = 0; i < nbits; ++i) {
        bool bit;
        if (phase == 0) bit = (rng.next() & 1) != 0;        // fair
        else if (phase == 1) bit = rng.next_double() < 0.8;  // biased
        else bit = true;                                     // stuck
        words[i >> 6] |=
            static_cast<std::uint64_t>(bit ? 1 : 0) << (i & 63);
        if (scalar.feed(bit, true)) ++scalar_alarms;
      }
      batched_alarms += batched.feed_block(words.data(), trng::common::Bits{nbits});
    }
  }
  EXPECT_EQ(batched_alarms, scalar_alarms);
  EXPECT_EQ(batched.total_alarms(), scalar.total_alarms());
  EXPECT_EQ(batched.repetition().alarms(), scalar.repetition().alarms());
  EXPECT_EQ(batched.proportion().alarms(), scalar.proportion().alarms());
  EXPECT_GT(batched_alarms, 0u);  // the stuck phase must trip something
}

TEST(OnlineHealthMonitor, FeedBlockBitStreamOverload) {
  OnlineHealthMonitor a(0.95);
  OnlineHealthMonitor b(0.95);
  common::Xoshiro256StarStar rng(77);
  common::BitStream bits;
  for (int i = 0; i < 5000; ++i) bits.push_back((rng.next() & 1) != 0);
  std::uint64_t scalar_alarms = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (a.feed(bits[i], true)) ++scalar_alarms;
  }
  EXPECT_EQ(b.feed_block(bits), scalar_alarms);
  EXPECT_EQ(b.total_alarms(), a.total_alarms());
}

TEST(OnlineHealthMonitor, CatchesBiasCollapse) {
  OnlineHealthMonitor m(0.95);
  common::Xoshiro256StarStar rng(6);
  bool fired = false;
  for (int i = 0; i < 50000 && !fired; ++i) {
    fired = m.feed(rng.next_double() < 0.9, true);
  }
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace trng::core
