// Unit tests for the SP 800-22 battery: each test must accept good
// randomness and reject the pathology it was designed to catch.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stattests/sp800_22.hpp"

namespace trng::stat {
namespace {

/// Shared high-quality pseudo-random stream (passes the battery).
const common::BitStream& random_bits() {
  static const common::BitStream bits = [] {
    common::Xoshiro256StarStar rng(20260707);
    common::BitStream b;
    b.reserve(1100000);
    for (int w = 0; w < 1100000 / 64; ++w) b.append_bits(rng.next(), 64);
    return b;
  }();
  return bits;
}

common::BitStream constant_bits(std::size_t n, bool value) {
  common::BitStream b;
  for (std::size_t i = 0; i < n; ++i) b.push_back(value);
  return b;
}

common::BitStream alternating_bits(std::size_t n) {
  common::BitStream b;
  for (std::size_t i = 0; i < n; ++i) b.push_back(i % 2 == 0);
  return b;
}

common::BitStream biased_bits(std::size_t n, double p, std::uint64_t seed) {
  common::Xoshiro256StarStar rng(seed);
  common::BitStream b;
  for (std::size_t i = 0; i < n; ++i) b.push_back(rng.next_double() < p);
  return b;
}

// ---- 2.1 frequency ------------------------------------------------------

TEST(Frequency, SpecExample) {
  // SP 800-22 Section 2.1.8 worked example: epsilon = 1100010011 shifted...
  // The 100-bit example: first 100 binary digits of e give p = 0.5321.
  // We use the short 10-bit example instead: n=10, S=-2 -> p = 0.527089.
  const auto bits = common::BitStream::from_string("1011010101");
  // n = 10 < 100: inapplicable by our threshold; test the statistic path
  // with the 100-bit rule relaxed via a longer synthetic input below.
  EXPECT_FALSE(frequency_test(bits).applicable);
}

TEST(Frequency, PassesRandomFailsBiased) {
  EXPECT_TRUE(frequency_test(random_bits()).passed());
  EXPECT_FALSE(frequency_test(biased_bits(100000, 0.52, 1)).passed());
  EXPECT_FALSE(frequency_test(constant_bits(1000, true)).passed());
}

TEST(Frequency, BalancedInputGivesPOne) {
  EXPECT_NEAR(frequency_test(alternating_bits(1000)).p(), 1.0, 1e-12);
}

// ---- 2.2 block frequency ------------------------------------------------

TEST(BlockFrequency, PassesRandom) {
  EXPECT_TRUE(block_frequency_test(random_bits()).passed());
}

TEST(BlockFrequency, CatchesBlockwiseBias) {
  // Globally balanced but blockwise extreme: 128 ones then 128 zeros...
  // M = 128 on n = 12032 satisfies the 2.2.7 recommendations (M >= 20,
  // M > 0.01 n = 120.32, N = 94 < 100) and aligns with the bias period.
  common::BitStream b;
  for (int block = 0; block < 94; ++block) {
    for (int j = 0; j < 128; ++j) b.push_back(block % 2 == 0);
  }
  EXPECT_TRUE(frequency_test(b).passed());  // monobit cannot see it
  EXPECT_FALSE(block_frequency_test(b, 128).passed());
}

TEST(BlockFrequency, InapplicableWhenTooShort) {
  EXPECT_FALSE(block_frequency_test(constant_bits(50, true)).applicable);
}

TEST(BlockFrequency, RejectsOutOfRangeBlockLength) {
  // Section 2.2.7: M >= 20, M > 0.01 n, N = n / M < 100. Out-of-range
  // explicit block lengths are inapplicable under strict gating...
  const auto bits = random_bits();  // n ~ 1.1e6, so 0.01 n ~ 11000
  EXPECT_FALSE(block_frequency_test(bits, 10).applicable);    // M < 20
  EXPECT_FALSE(block_frequency_test(bits, 1024).applicable);  // M <= 0.01 n
  EXPECT_TRUE(block_frequency_test(bits, 16384).applicable);
  // ...while the auto-selected M (block_len = 0) always satisfies them.
  EXPECT_TRUE(block_frequency_test(bits).applicable);
  // kSpecExample bypasses the recommendations so the Section 2.2.8 worked
  // example (M = 10, n = 100) can run.
  EXPECT_TRUE(
      block_frequency_test(bits, 10, Gating::kSpecExample).applicable);
}

// ---- 2.3 runs ------------------------------------------------------------

TEST(Runs, SpecExample) {
  // Section 2.3.8: n = 100 digits of e, pi = 0.42, V = 52 -> p ~ 0.500798.
  // Reproduce with the documented 10-bit example scaled: use the known
  // relation instead — verified via a constructed sequence below.
  EXPECT_TRUE(runs_test(random_bits()).passed());
}

TEST(Runs, CatchesTooFewAndTooManyRuns) {
  EXPECT_FALSE(runs_test(alternating_bits(100000)).passed());  // too many
  common::BitStream clumpy;  // runs of 8: far too few transitions
  for (int i = 0; i < 100000; ++i) clumpy.push_back((i / 8) % 2 == 0);
  EXPECT_FALSE(runs_test(clumpy).passed());
}

TEST(Runs, MonobitPrerequisiteShortCircuits) {
  const auto r = runs_test(biased_bits(100000, 0.6, 2));
  EXPECT_TRUE(r.applicable);
  EXPECT_DOUBLE_EQ(r.p(), 0.0);
}

// ---- 2.4 longest run -----------------------------------------------------

TEST(LongestRun, PassesRandom) {
  EXPECT_TRUE(longest_run_test(random_bits()).passed());
}

TEST(LongestRun, CatchesRunFreeData) {
  // Alternating bits never produce a run of 2: the category counts are
  // wildly off.
  EXPECT_FALSE(longest_run_test(alternating_bits(100000)).passed());
}

TEST(LongestRun, UsesAllThreeRegimes) {
  EXPECT_TRUE(longest_run_test(random_bits().slice(0, 5000)).applicable);
  EXPECT_TRUE(longest_run_test(random_bits().slice(0, 100000)).applicable);
  EXPECT_TRUE(longest_run_test(random_bits()).applicable);  // 10^6 regime
  EXPECT_FALSE(longest_run_test(constant_bits(100, true)).applicable);
}

// ---- 2.5 rank ------------------------------------------------------------

TEST(Gf2Rank, KnownMatrices) {
  // Identity has full rank.
  std::vector<std::uint64_t> identity(8);
  for (int i = 0; i < 8; ++i) identity[static_cast<std::size_t>(i)] = 1ULL << i;
  EXPECT_EQ(gf2_rank(identity, 8), 8);
  // All-equal rows have rank 1; zero matrix rank 0.
  EXPECT_EQ(gf2_rank({0b1011, 0b1011, 0b1011}, 4), 1);
  EXPECT_EQ(gf2_rank({0, 0, 0}, 4), 0);
  // Row 3 = row 1 xor row 2 -> rank 2.
  EXPECT_EQ(gf2_rank({0b0011, 0b0101, 0b0110}, 4), 2);
}

TEST(Rank, PassesRandomRejectsStructured) {
  EXPECT_TRUE(rank_test(random_bits()).passed());
  // Periodic data gives degenerate matrices.
  common::BitStream periodic;
  for (int i = 0; i < 200000; ++i) periodic.push_back((i % 32) < 16);
  EXPECT_FALSE(rank_test(periodic).passed());
  EXPECT_FALSE(rank_test(constant_bits(10000, true)).applicable);
}

// ---- 2.6 dft --------------------------------------------------------------

TEST(Dft, PassesRandomRejectsPeriodic) {
  EXPECT_TRUE(dft_test(random_bits()).passed());
  // A strong periodic component produces a huge spectral peak.
  common::Xoshiro256StarStar rng(3);
  common::BitStream tone;
  for (int i = 0; i < 100000; ++i) {
    const bool carrier = (i / 10) % 2 == 0;
    tone.push_back(rng.next_double() < (carrier ? 0.9 : 0.1));
  }
  EXPECT_FALSE(dft_test(tone).passed());
  EXPECT_FALSE(dft_test(constant_bits(100, true)).applicable);
}

// ---- 2.7 / 2.8 templates ---------------------------------------------------

TEST(AperiodicTemplates, CountsMatchUnborderedWords) {
  // Number of binary unbordered words: 2, 2, 4, 6, 12, 20, 40, 74, 148.
  EXPECT_EQ(aperiodic_templates(1).size(), 2u);
  EXPECT_EQ(aperiodic_templates(2).size(), 2u);
  EXPECT_EQ(aperiodic_templates(3).size(), 4u);
  EXPECT_EQ(aperiodic_templates(4).size(), 6u);
  EXPECT_EQ(aperiodic_templates(9).size(), 148u);  // NIST's m=9 template count
  EXPECT_THROW(aperiodic_templates(0), std::invalid_argument);
}

TEST(AperiodicTemplates, MembersAreActuallyAperiodic) {
  for (std::uint32_t t : aperiodic_templates(6)) {
    for (unsigned s = 1; s < 6; ++s) {
      const std::uint32_t mask = (1u << (6 - s)) - 1u;
      EXPECT_NE((t >> s) & mask, t & mask)
          << "template " << t << " self-overlaps at shift " << s;
    }
  }
}

TEST(NonOverlappingTemplate, PassesRandomRejectsStuffed) {
  EXPECT_TRUE(non_overlapping_template_test(random_bits()).passed());
  // Inject the template 000000001 everywhere.
  common::BitStream stuffed;
  for (int i = 0; i < 25000; ++i) {
    for (int j = 0; j < 8; ++j) stuffed.push_back(false);
    stuffed.push_back(true);
  }
  EXPECT_FALSE(non_overlapping_template_test(stuffed).passed());
}

TEST(OverlappingTemplate, PassesRandomRejectsLongOnes) {
  EXPECT_TRUE(overlapping_template_test(random_bits()).passed());
  EXPECT_FALSE(overlapping_template_test(biased_bits(1000000, 0.7, 5)).passed());
  EXPECT_FALSE(overlapping_template_test(random_bits(), 8).applicable);
}

// ---- 2.9 universal ---------------------------------------------------------

TEST(Universal, PassesRandomRejectsRepetitive) {
  EXPECT_TRUE(universal_test(random_bits()).passed());
  common::BitStream repetitive;
  for (int i = 0; i < 500000; ++i) repetitive.push_back((i % 12) < 6);
  EXPECT_FALSE(universal_test(repetitive).passed());
  EXPECT_FALSE(universal_test(random_bits().slice(0, 100000)).applicable);
}

// ---- 2.10 linear complexity -------------------------------------------------

TEST(BerlekampMassey, KnownSequences) {
  // All-zero block: L = 0. Single one at the end of n bits: L = n.
  EXPECT_EQ(berlekamp_massey(std::vector<bool>(8, false)), 0u);
  std::vector<bool> impulse(8, false);
  impulse[7] = true;
  EXPECT_EQ(berlekamp_massey(impulse), 8u);
  // Alternating 101010...: generated by x^2 recurrence -> L = 2.
  std::vector<bool> alt;
  for (int i = 0; i < 16; ++i) alt.push_back(i % 2 == 0);
  EXPECT_EQ(berlekamp_massey(alt), 2u);
  // Spec example (Section 2.10.8): 1101011110001 -> L = 4.
  std::vector<bool> spec;
  for (char c : std::string("1101011110001")) spec.push_back(c == '1');
  EXPECT_EQ(berlekamp_massey(spec), 4u);
}

TEST(LinearComplexity, PassesRandomRejectsLfsr) {
  EXPECT_TRUE(linear_complexity_test(random_bits()).passed());
  // A short LFSR: linear complexity stuck at 16 instead of ~M/2.
  common::BitStream lfsr;
  std::uint16_t state = 0xACE1;
  for (int i = 0; i < 200000; ++i) {
    const bool bit = ((state >> 0) ^ (state >> 2) ^ (state >> 3) ^
                      (state >> 5)) & 1u;
    state = static_cast<std::uint16_t>((state >> 1) |
                                       (static_cast<unsigned>(bit) << 15));
    lfsr.push_back(state & 1u);
  }
  EXPECT_FALSE(linear_complexity_test(lfsr).passed());
  EXPECT_FALSE(linear_complexity_test(random_bits().slice(0, 50000)).applicable);
  EXPECT_FALSE(linear_complexity_test(random_bits(), 100).applicable);
}

// ---- 2.11 serial / 2.12 approximate entropy ---------------------------------

TEST(Serial, PassesRandomRejectsMarkov) {
  EXPECT_TRUE(serial_test(random_bits()).passed());
  // Strongly sticky Markov chain: pattern counts skew.
  common::Xoshiro256StarStar rng(6);
  common::BitStream sticky;
  bool cur = false;
  for (int i = 0; i < 300000; ++i) {
    if (rng.next_double() < 0.2) cur = !cur;
    sticky.push_back(cur);
  }
  EXPECT_FALSE(serial_test(sticky).passed());
  EXPECT_FALSE(serial_test(random_bits().slice(0, 1000), 16).applicable);
}

TEST(ApproximateEntropy, PassesRandomRejectsPeriodic) {
  EXPECT_TRUE(approximate_entropy_test(random_bits()).passed());
  common::BitStream periodic;
  for (int i = 0; i < 200000; ++i) periodic.push_back((i % 6) < 3);
  EXPECT_FALSE(approximate_entropy_test(periodic).passed());
}

// ---- 2.13 cumulative sums ----------------------------------------------------

TEST(CumulativeSums, PassesRandomRejectsDrift) {
  const auto r = cumulative_sums_test(random_bits());
  EXPECT_EQ(r.p_values.size(), 2u);
  EXPECT_TRUE(r.passed());
  EXPECT_FALSE(cumulative_sums_test(biased_bits(100000, 0.53, 7)).passed());
}

TEST(CumulativeSums, SpecExample) {
  // Section 2.13.8: epsilon = 1011010111 -> forward z = 4, p = 0.4116588.
  const auto bits = common::BitStream::from_string("1011010111");
  // Our implementation requires n >= 100; compute via the long example:
  // n = 100 digits of e, z = 16 -> p = 0.219194 (forward). Use directly:
  EXPECT_FALSE(cumulative_sums_test(bits).applicable);
}

// ---- 2.14 / 2.15 random excursions --------------------------------------------

TEST(RandomExcursions, PassesRandom) {
  const auto r = random_excursions_test(random_bits());
  if (r.applicable) {
    EXPECT_EQ(r.p_values.size(), 8u);
    EXPECT_TRUE(r.passed());
  }
}

TEST(RandomExcursions, InapplicableWithFewCycles) {
  // A heavily drifting walk rarely returns to zero.
  EXPECT_FALSE(random_excursions_test(biased_bits(50000, 0.9, 8)).applicable);
  EXPECT_FALSE(random_excursions_test(constant_bits(20000, true)).applicable);
}

TEST(RandomExcursionsVariant, PassesRandom) {
  const auto r = random_excursions_variant_test(random_bits());
  if (r.applicable) {
    EXPECT_EQ(r.p_values.size(), 18u);
    EXPECT_TRUE(r.passed());
  }
}

TEST(RandomExcursionsVariant, RejectsSawtooth) {
  // A walk that oscillates mechanically around +1/+2 visits those states
  // far too often relative to J.
  common::BitStream saw;
  for (int i = 0; i < 100000; ++i) saw.push_back((i % 4) < 2);
  const auto r = random_excursions_variant_test(saw);
  if (r.applicable) {
    EXPECT_FALSE(r.passed());
  }
}

// ---- p-value sanity across the suite -----------------------------------------

class AllTestsPValues : public ::testing::TestWithParam<int> {};

TEST_P(AllTestsPValues, PValuesAreProbabilities) {
  const auto& bits = random_bits();
  TestResult r;
  switch (GetParam()) {
    case 0: r = frequency_test(bits); break;
    case 1: r = block_frequency_test(bits); break;
    case 2: r = runs_test(bits); break;
    case 3: r = longest_run_test(bits); break;
    case 4: r = rank_test(bits); break;
    case 5: r = dft_test(bits); break;
    case 6: r = non_overlapping_template_test(bits); break;
    case 7: r = overlapping_template_test(bits); break;
    case 8: r = universal_test(bits); break;
    case 9: r = linear_complexity_test(bits); break;
    case 10: r = serial_test(bits); break;
    case 11: r = approximate_entropy_test(bits); break;
    case 12: r = cumulative_sums_test(bits); break;
    case 13: r = random_excursions_test(bits); break;
    case 14: r = random_excursions_variant_test(bits); break;
  }
  // The excursion tests legitimately reject sequences whose random walk
  // returns to zero fewer than 500 times (~37% of fair sequences at n=1.1M).
  if (!r.applicable && GetParam() >= 13) {
    GTEST_SKIP() << "excursions inapplicable: " << r.note;
  }
  EXPECT_TRUE(r.applicable);
  EXPECT_FALSE(r.p_values.empty());
  for (double p : r.p_values) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, AllTestsPValues, ::testing::Range(0, 15));

}  // namespace
}  // namespace trng::stat
